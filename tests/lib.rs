#![forbid(unsafe_code)]
//! Workspace-level integration tests for the big.TINY reproduction.
