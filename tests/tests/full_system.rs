//! Cross-crate integration tests: every application kernel on every runtime
//! variant, end to end through the full simulated machine, with functional
//! verification and system-level invariants.

use bigtiny_apps::{all_apps, AppSize, AppSpec};
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind, TaskRun};
use bigtiny_engine::{AddrSpace, Protocol, SystemConfig, TrafficClass};
use bigtiny_mesh::{MeshConfig, Topology};

fn small_sys(big: usize, tiny: usize, proto: Protocol) -> SystemConfig {
    SystemConfig::big_tiny(
        "itest",
        MeshConfig::with_topology(Topology::new(4, 4)),
        big,
        tiny,
        proto,
    )
}

fn run(app: &AppSpec, sys: &SystemConfig, kind: RuntimeKind) -> TaskRun {
    let mut space = AddrSpace::new();
    let prepared = app.prepare_default(&mut space, AppSize::Test);
    let run = run_task_parallel(sys, &RuntimeConfig::new(kind), &mut space, prepared.root);
    if let Err(e) = (prepared.verify)() {
        panic!("{} on {}/{kind:?}: {e}", app.name, sys.name);
    }
    run
}

/// Every kernel, on every runtime variant, is functionally correct and
/// DAG-consistent (zero stale reads) on a 16-core mixed machine.
#[test]
fn all_kernels_all_runtimes() {
    for app in all_apps() {
        for (kind, proto) in [
            (RuntimeKind::Baseline, Protocol::Mesi),
            (RuntimeKind::Hcc, Protocol::DeNovo),
            (RuntimeKind::Hcc, Protocol::GpuWt),
            (RuntimeKind::Hcc, Protocol::GpuWb),
            (RuntimeKind::Dts, Protocol::DeNovo),
            (RuntimeKind::Dts, Protocol::GpuWt),
            (RuntimeKind::Dts, Protocol::GpuWb),
        ] {
            let sys = small_sys(2, 14, proto);
            let r = run(&app, &sys, kind);
            assert_eq!(r.report.stale_reads, 0, "{} {kind:?}/{proto:?}", app.name);
            assert!(r.report.completion_cycles > 0, "{}", app.name);
        }
    }
}

/// Traffic invariants hold on full application runs: every L2 fetch gets
/// exactly one data response; DRAM responses never exceed requests; ULI
/// traffic exists only under DTS.
#[test]
fn system_invariants_on_full_runs() {
    for app in all_apps().into_iter().take(4) {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWb), (RuntimeKind::Dts, Protocol::GpuWb)]
        {
            let sys = small_sys(1, 7, proto);
            let r = run(&app, &sys, kind);
            let t = &r.report.traffic;
            assert_eq!(
                t.messages(TrafficClass::CpuReq),
                t.messages(TrafficClass::DataResp),
                "{}: fetch req/resp conservation",
                app.name
            );
            assert!(
                t.messages(TrafficClass::DramReq) >= t.messages(TrafficClass::DramResp),
                "{}: DRAM write-backs have no response",
                app.name
            );
            assert_eq!(
                t.messages(TrafficClass::SyncReq),
                t.messages(TrafficClass::SyncResp),
                "{}: AMO req/resp conservation",
                app.name
            );
            match kind {
                RuntimeKind::Dts => {
                    assert!(r.report.uli.messages >= 2 * r.stats.steals, "{}", app.name)
                }
                _ => assert_eq!(r.report.uli.messages, 0, "{}", app.name),
            }
        }
    }
}

/// Full-application determinism: identical runs produce identical cycles,
/// traffic, and steal counts.
#[test]
fn applications_are_deterministic() {
    for name in ["cilk5-nq", "ligra-cc", "ligra-radii"] {
        let app = bigtiny_apps::app_by_name(name).unwrap();
        let sys = small_sys(1, 7, Protocol::GpuWb);
        let a = run(&app, &sys, RuntimeKind::Dts);
        let b = run(&app, &sys, RuntimeKind::Dts);
        assert_eq!(a.report.completion_cycles, b.report.completion_cycles, "{name}");
        assert_eq!(a.report.core_cycles, b.report.core_cycles, "{name}");
        assert_eq!(a.stats.steals, b.stats.steals, "{name}");
        assert_eq!(
            a.report.traffic.total_data_bytes(),
            b.report.traffic.total_data_bytes(),
            "{name}"
        );
    }
}

/// The 256-core machine runs end to end (scaled-down input).
#[test]
fn large_machine_smoke() {
    let app = bigtiny_apps::app_by_name("ligra-bfs").unwrap();
    let sys = SystemConfig::big_tiny_256(Protocol::GpuWb);
    let r = run(&app, &sys, RuntimeKind::Dts);
    assert_eq!(r.report.stale_reads, 0);
    // With a test-size input most of the 255 thieves come up empty, but the
    // machine must at least be trying to distribute work.
    assert!(r.stats.steal_attempts > 0, "work stealing active on the big machine");
}

/// A big out-of-order core beats a tiny in-order core on the same kernel.
#[test]
fn big_core_outperforms_tiny_core() {
    let app = bigtiny_apps::app_by_name("cilk5-mm").unwrap();
    let tiny = SystemConfig::tiny_only(1, Protocol::Mesi);
    let big = SystemConfig::o3(1);
    let rt = run(&app, &tiny, RuntimeKind::Baseline);
    let rb = run(&app, &big, RuntimeKind::Baseline);
    assert!(
        rb.report.completion_cycles * 2 < rt.report.completion_cycles,
        "big {} vs tiny {}",
        rb.report.completion_cycles,
        rt.report.completion_cycles
    );
}

/// DTS collapses coherence-operation counts relative to the HCC runtime
/// across the whole application suite (Section IV's structural claim).
#[test]
fn dts_cuts_coherence_ops_across_suite() {
    let mut total_hcc = 0u64;
    let mut total_dts = 0u64;
    for app in all_apps().into_iter().take(6) {
        let sys = small_sys(1, 7, Protocol::GpuWb);
        let tiny: Vec<usize> = (1..8).collect();
        let h = run(&app, &sys, RuntimeKind::Hcc);
        let d = run(&app, &sys, RuntimeKind::Dts);
        total_hcc += h.report.mem_stats_over(&tiny).invalidate_ops;
        total_dts += d.report.mem_stats_over(&tiny).invalidate_ops;
    }
    assert!(
        (total_dts as f64) < 0.5 * total_hcc as f64,
        "suite-wide invalidate ops: DTS {total_dts} vs HCC {total_hcc}"
    );
}

/// The work/span profile of each kernel is schedule-invariant: two very
/// different machines report identical logical work and span.
#[test]
fn workspan_schedule_invariance_across_apps() {
    for name in ["cilk5-cs", "ligra-bfs", "ligra-mis"] {
        let app = bigtiny_apps::app_by_name(name).unwrap();
        let a = run(&app, &small_sys(1, 3, Protocol::GpuWb), RuntimeKind::Dts);
        let b = run(&app, &small_sys(2, 10, Protocol::GpuWb), RuntimeKind::Hcc);
        assert_eq!(a.stats.workspan.work, b.stats.workspan.work, "{name} work");
        assert_eq!(a.stats.workspan.span, b.stats.workspan.span, "{name} span");
    }
}

/// In-process smoke of the `ablate_deque` bin's cell structure: one
/// duplicate-safe kernel through every deque policy plus the two
/// forced-duplicate cells, with the bin's gates — kernel verify, exact
/// cycle conservation, the per-policy task-event audit, and the
/// duplicate-execution counters (at least one duplicate with `DupTask`
/// armed, exactly zero under the exactly-once policies).
#[test]
fn deque_policy_ablation_cells_smoke() {
    use bigtiny_checker::{audit_task_events_mode, kernel_is_duplicate_safe, AuditMode};
    use bigtiny_core::{DequeKind, Mutation, MutationKind};
    use bigtiny_obs::CycleConservation;

    let name = "cilk5-cs";
    assert!(kernel_is_duplicate_safe(name), "the smoke kernel must tolerate at-most-twice");
    let app = bigtiny_apps::app_by_name(name).unwrap();
    let cells = [
        (DequeKind::Locked, false),
        (DequeKind::ChaseLev, false),
        (DequeKind::FenceFree, false),
        (DequeKind::Idempotent, false),
        (DequeKind::FenceFree, true),
        (DequeKind::Idempotent, true),
    ];
    for (deque, dup) in cells {
        let sys = small_sys(1, 7, Protocol::Mesi);
        let mut rt = RuntimeConfig::new(RuntimeKind::Baseline);
        rt.deque_kind = deque;
        rt.record_task_events = true;
        if dup {
            rt.mutation = Some(Mutation { kind: MutationKind::DupTask, core: 0, nth: 0 });
        }
        let mut space = AddrSpace::new();
        let prepared = app.prepare_default(&mut space, AppSize::Test);
        let r = run_task_parallel(&sys, &rt, &mut space, prepared.root);
        let ctx = format!("{name}/{deque:?}{}", if dup { "+dup" } else { "" });
        if let Err(e) = (prepared.verify)() {
            panic!("{ctx}: {e}");
        }
        assert_eq!(r.report.stale_reads, 0, "{ctx}");
        let cons = CycleConservation::from_report(&r.report);
        assert!(
            cons.holds(),
            "{ctx}: conservation breach: buckets {} != {}",
            cons.bucket_sum(),
            cons.total_core_cycles
        );
        let mode = if deque.multiplicity() {
            AuditMode::Multiplicity { crash_armed: false }
        } else {
            AuditMode::ExactlyOnce
        };
        let audit = audit_task_events_mode(&r.task_events, mode, name);
        assert!(audit.is_clean(), "{ctx}: audit:\n{}", audit.render());
        let dups = r.stats.duplicate_executions;
        if dup {
            assert!(dups >= 1, "{ctx}: DupTask armed but no duplicate ran");
        }
        if !deque.multiplicity() {
            assert_eq!(dups, 0, "{ctx}: duplicates under an exactly-once policy");
        }
    }
}
