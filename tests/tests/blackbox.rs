//! Black-box dump and heartbeat-stream contracts.
//!
//! A watchdog-tripped run must leave a usable flight-recorder dump behind:
//! the engine's bundle ring retains the crash-time state, the obs layer
//! serializes it into a valid `bigtiny-obs-blackbox-v1` document with
//! non-empty, time-ordered per-core tails, and the whole artifact is
//! deterministic — the same hang reruns to the same dump, on the threaded
//! and the sharded-fiber backend alike. Heartbeat lines inherit the same
//! split the engine makes: every in-band field is a function of the grant
//! stream and replays bit-for-bit, while wall-clock extras ride out-of-band.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_engine::{
    last_bundle_for, run_system, ExecBackend, Heartbeat, PoisonReason, Protocol, SystemConfig,
    TimeCategory, Worker,
};
use bigtiny_obs::{
    blackbox_from_bundle, blackbox_tail_trace, validate_blackbox, validate_chrome_trace,
};

/// Builds the progress-free machine: every core spins in `idle`, grants
/// keep flowing, nobody ever marks progress, so the deterministic grant
/// budget trips at a fixed point in the grant stream.
fn idle_spin_workers(n: usize) -> Vec<Worker> {
    (0..n)
        .map(|_| -> Worker {
            Box::new(|port| {
                while !port.is_done() {
                    port.wait_cycles(50, TimeCategory::Idle);
                }
            })
        })
        .collect()
}

/// Trips the watchdog on `backend` under `config_name` and returns the
/// serialized black-box document.
fn trip_and_dump(backend: ExecBackend, config_name: &str) -> String {
    let mut config = SystemConfig::o3(4).with_watchdog(5_000).with_backend(backend);
    config.name = config_name.to_owned();
    config.watchdog_wall_ms = 60_000;
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_system(&config, idle_spin_workers(4));
    }));
    result.expect_err("a progress-free spin must trip the grant-budget watchdog");

    let bundle = last_bundle_for(config_name)
        .expect("the watchdog abort must deposit a bundle in the engine ring");
    assert!(
        matches!(bundle.reason, PoisonReason::Watchdog { .. }),
        "bundle records the trip reason: {:?}",
        bundle.reason
    );
    assert_eq!(bundle.backend, backend_name(backend));
    assert_eq!(bundle.fault_spec, "none", "no faults were armed");
    assert!(
        bundle.cores.iter().all(|c| !c.flight_tail.is_empty()),
        "every spinning core retained a flight tail"
    );
    for c in &bundle.cores {
        assert!(
            c.flight_tail.windows(2).all(|w| w[0].time <= w[1].time),
            "core {} tail out of time order",
            c.core
        );
    }

    let doc = blackbox_from_bundle(&bundle);
    let summary = validate_blackbox(&doc).expect("bundle serializes to a valid black box");
    assert_eq!(summary.cores, 4);
    assert_eq!(summary.cores_with_tail, 4);
    assert!(summary.events > 0);
    let trace = blackbox_tail_trace(&doc).expect("tail trace renders");
    validate_chrome_trace(&trace).expect("tail trace is a valid Chrome trace");
    doc.to_json()
}

fn backend_name(backend: ExecBackend) -> &'static str {
    match backend {
        ExecBackend::Threads => "threads",
        ExecBackend::Fibers => "fibers",
        ExecBackend::ShardedFibers => "sharded-fibers",
        ExecBackend::Auto => unreachable!("tests pin a concrete backend"),
    }
}

/// Threads backend: a forced idle-spin trips the watchdog, and the dump is
/// bit-for-bit stable across reruns (the budget trip is a deterministic
/// function of the grant stream; nothing in the bundle reads the wall
/// clock).
#[test]
fn watchdog_trip_dumps_stable_blackbox_on_threads() {
    let a = trip_and_dump(ExecBackend::Threads, "blackbox-threads-a");
    let b = trip_and_dump(ExecBackend::Threads, "blackbox-threads-b");
    let normalize =
        |s: &str| s.replace("blackbox-threads-a", "X").replace("blackbox-threads-b", "X");
    assert_eq!(normalize(&a), normalize(&b), "rerun produced a different black box");
}

/// Sharded-fiber backend: same contract — the trip still deposits a full
/// bundle even though all cores multiplex onto island-sharded host fibers.
#[test]
#[cfg_attr(not(all(target_os = "linux", target_arch = "x86_64")), ignore)]
fn watchdog_trip_dumps_stable_blackbox_on_sharded_fibers() {
    let a = trip_and_dump(ExecBackend::ShardedFibers, "blackbox-sharded-a");
    let b = trip_and_dump(ExecBackend::ShardedFibers, "blackbox-sharded-b");
    let normalize =
        |s: &str| s.replace("blackbox-sharded-a", "X").replace("blackbox-sharded-b", "X");
    assert_eq!(normalize(&a), normalize(&b), "rerun produced a different black box");
}

/// The in-band fields of one beat: everything except `fast_grants`, the
/// core strip, and the island vector (those depend on host thread
/// interleaving and are documented out-of-band).
type InBandBeat = (u64, u64, u64, u64, [u64; 9], [u64; 6]);

/// Runs cilk5-nq with a heartbeat armed and collects every beat's in-band
/// field tuple.
fn deterministic_beats(every: u64) -> Vec<InBandBeat> {
    let beats = Arc::new(Mutex::new(Vec::new()));
    let sink_beats = Arc::clone(&beats);
    let mut setup = Setup::bt_hcc(Protocol::GpuWb, true);
    setup.sys = setup.sys.clone().with_heartbeat(Heartbeat::new(
        every,
        Arc::new(move |snap| {
            sink_beats.lock().unwrap().push((
                snap.seq,
                snap.time,
                snap.total_grants,
                snap.max_clock,
                snap.breakdown,
                snap.faults,
            ));
        }),
    ));
    let app = app_by_name("cilk5-nq").unwrap();
    run_app(&setup, &app, AppSize::Test, 0);
    // The setup still holds the sink closure (and with it one Arc clone),
    // so read the collected beats out through the lock.
    let out = beats.lock().unwrap().clone();
    out
}

/// The in-band heartbeat fields are a deterministic function of the grant
/// stream: two reruns at the same cadence produce identical snapshots,
/// beat for beat.
#[test]
fn heartbeat_in_band_fields_are_run_to_run_stable() {
    let a = deterministic_beats(500);
    let b = deterministic_beats(500);
    assert!(!a.is_empty(), "cadence 500 must fire at least one beat at Test size");
    assert_eq!(a, b, "in-band heartbeat fields diverged across reruns");
    for w in a.windows(2) {
        assert!(w[0].0 < w[1].0, "seq strictly increases");
        assert!(w[0].2 <= w[1].2, "grants never go backwards");
    }
}
