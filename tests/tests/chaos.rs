//! Chaos suite: the simulator under deterministic fault injection, plus the
//! liveness watchdog and crash diagnostics on deliberately broken programs.
//!
//! Three guarantees are pinned down here:
//!
//! 1. `FaultPlan::none()` is free: arming the (empty) fault machinery changes
//!    nothing, bit for bit.
//! 2. Seeded fault plans are deterministic, and the hardened runtimes stay
//!    functionally correct — same results, zero stale reads, no hangs — under
//!    every plan, on every runtime variant.
//! 3. A program that cannot make progress is *detected*, not hung: the
//!    watchdog trips and the panic carries per-core diagnostics.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bigtiny_apps::{app_by_name, AppSize, AppSpec};
use bigtiny_checker::{audit_task_events_mode, kernel_is_duplicate_safe, AuditMode};
use bigtiny_core::{run_task_parallel, DequeKind, RuntimeConfig, RuntimeKind, TaskRun};
use bigtiny_engine::{AddrSpace, FaultPlan, Protocol, SystemConfig, TimeCategory, WATCHDOG_MSG};
use bigtiny_mesh::{MeshConfig, Topology, UliNetwork, UliOutcome};

fn sys(big: usize, tiny: usize, proto: Protocol) -> SystemConfig {
    SystemConfig::big_tiny(
        "chaos",
        MeshConfig::with_topology(Topology::new(4, 4)),
        big,
        tiny,
        proto,
    )
}

fn run(app: &AppSpec, sys: &SystemConfig, kind: RuntimeKind) -> TaskRun {
    let mut space = AddrSpace::new();
    let prepared = app.prepare_default(&mut space, AppSize::Test);
    let run = run_task_parallel(sys, &RuntimeConfig::new(kind), &mut space, prepared.root);
    if let Err(e) = (prepared.verify)() {
        panic!("{} on {}/{kind:?}: {e}", app.name, sys.name);
    }
    run
}

/// Everything deterministic a run produces, for bit-for-bit comparison.
#[allow(clippy::type_complexity)]
fn fingerprint(r: &TaskRun) -> (u64, Vec<u64>, Vec<u64>, u64, u64, u64, u64, u64, u64) {
    (
        r.report.completion_cycles,
        r.report.core_cycles.clone(),
        r.report.instructions.clone(),
        r.report.total_traffic_bytes(),
        r.report.uli.messages,
        r.report.seq_grants,
        r.stats.steals,
        r.stats.steal_attempts,
        r.stats.spawns,
    )
}

/// Arming `FaultPlan::none()` must be invisible: every cycle count, traffic
/// byte, and steal decision is identical to a run without the fault
/// machinery (three kernels, two machine configurations each).
#[test]
fn fault_plan_none_is_bit_for_bit_free() {
    for name in ["cilk5-cs", "ligra-bfs", "ligra-cc"] {
        let app = app_by_name(name).unwrap();
        for (cfg, kind) in [
            (sys(1, 7, Protocol::GpuWb), RuntimeKind::Dts),
            (sys(2, 6, Protocol::GpuWt), RuntimeKind::Hcc),
        ] {
            let bare = run(&app, &cfg, kind);
            let armed_cfg = cfg.clone().with_faults(FaultPlan::none());
            let armed = run(&app, &armed_cfg, kind);
            assert_eq!(
                fingerprint(&bare),
                fingerprint(&armed),
                "{name}/{kind:?}: FaultPlan::none() perturbed the run"
            );
            assert_eq!(armed.report.fault_counters.total(), 0, "{name}: nothing injected");
        }
    }
}

/// Every seeded fault plan, on every runtime variant: the run completes (no
/// hang), the kernel's output verifies, and DAG consistency holds.
#[test]
fn seeded_fault_plans_keep_every_runtime_correct() {
    let plans = [
        ("uli-drop-storm", FaultPlan::uli_drop_storm(0xC0FF_EE01)),
        ("steal-miss-storm", FaultPlan::steal_miss_storm(7)),
        ("mesh-latency-spikes", FaultPlan::mesh_latency_spikes(99)),
        ("hostile", FaultPlan::hostile(0x0BAD_5EED)),
    ];
    let app = app_by_name("cilk5-nq").unwrap();
    for (label, plan) in plans {
        for (kind, proto) in [
            (RuntimeKind::Baseline, Protocol::Mesi),
            (RuntimeKind::Hcc, Protocol::GpuWb),
            (RuntimeKind::Dts, Protocol::GpuWb),
        ] {
            let cfg = sys(1, 7, proto).with_faults(plan.clone());
            let r = run(&app, &cfg, kind);
            assert_eq!(r.report.stale_reads, 0, "{label}/{kind:?}: stale read under faults");
            assert!(r.report.completion_cycles > 0, "{label}/{kind:?}");
        }
    }
}

/// Fault injection is deterministic: the same plan and seed produce the same
/// injected faults and the same run, bit for bit; a different seed produces
/// a different fault pattern.
#[test]
fn fault_injection_is_deterministic_in_its_seed() {
    let app = app_by_name("cilk5-cs").unwrap();
    let go = |seed: u64| {
        let cfg = sys(1, 7, Protocol::GpuWb).with_faults(FaultPlan::hostile(seed));
        let r = run(&app, &cfg, RuntimeKind::Dts);
        (fingerprint(&r), r.report.fault_counters.total(), r.report.mesh_fault_spikes)
    };
    let a = go(42);
    let b = go(42);
    assert_eq!(a, b, "same seed, same run");
    assert!(a.1 + a.2 > 0, "the hostile plan must actually inject something");
    let c = go(43);
    assert_ne!((a.1, a.2), (c.1, c.2), "different seed, different fault pattern");
}

/// Cilksort under the hostile plan on all four protocols: the hardened DTS
/// retry paths (and the baseline runtime on MESI) stay functionally correct
/// under simultaneous ULI drops, NACKs, delays, steal misses, and mesh
/// latency spikes.
#[test]
fn cilksort_survives_hostile_faults_on_all_protocols() {
    let app = app_by_name("cilk5-cs").unwrap();
    for (kind, proto) in [
        (RuntimeKind::Baseline, Protocol::Mesi),
        (RuntimeKind::Dts, Protocol::DeNovo),
        (RuntimeKind::Dts, Protocol::GpuWt),
        (RuntimeKind::Dts, Protocol::GpuWb),
    ] {
        let cfg = sys(1, 7, proto).with_faults(FaultPlan::hostile(0x5EED));
        let r = run(&app, &cfg, kind);
        assert_eq!(r.report.stale_reads, 0, "{proto:?}: stale read under hostile faults");
        if kind == RuntimeKind::Dts {
            assert!(
                r.report.fault_counters.total() > 0,
                "{proto:?}: hostile plan injected nothing"
            );
        }
    }
}

/// Telemetry stays trustworthy under fault injection. Steal counters obey
/// the *adjusted* accounting invariant — `hits + misses` may exceed
/// `attempts` by at most the timed-out-then-late-hit double counts
/// (bounded by `uli_timeouts`), and may fall short by at most one
/// completion-race attempt per worker — and the recorded task-event
/// stream still reconstructs a well-formed spawn/join DAG even while ULI
/// drops, NACKs, and mesh spikes mangle the steal protocol underneath.
#[test]
fn telemetry_survives_fault_injection_with_consistent_accounting() {
    let plans = [
        ("uli-drop-storm", FaultPlan::uli_drop_storm(0xC0FF_EE01)),
        ("hostile", FaultPlan::hostile(0x0BAD_5EED)),
    ];
    let app = app_by_name("cilk5-nq").unwrap();
    for (label, plan) in plans {
        let cfg = sys(1, 7, Protocol::GpuWb).with_faults(plan);
        let mut rt = RuntimeConfig::new(RuntimeKind::Dts);
        rt.record_task_events = true;
        let mut space = AddrSpace::new();
        let prepared = app.prepare_default(&mut space, AppSize::Test);
        let r = run_task_parallel(&cfg, &rt, &mut space, prepared.root);
        if let Err(e) = (prepared.verify)() {
            panic!("{} under {label}: {e}", app.name);
        }

        let t = &r.telemetry;
        let workers = t.per_victim.len() as u64;
        let (attempts, hits, misses) = (t.total_attempts(), t.total_hits(), t.total_misses());
        let resolved = hits + misses;
        assert!(
            resolved + workers >= attempts,
            "{label}: {resolved} resolved outcomes for {attempts} attempts — more than \
             {workers} completion-race attempts vanished"
        );
        assert!(
            resolved <= attempts + r.stats.uli_timeouts,
            "{label}: {resolved} resolved outcomes exceed {attempts} attempts plus \
             {} timeout double counts",
            r.stats.uli_timeouts
        );
        assert!(
            r.stats.steal_nacks <= misses,
            "{label}: {} NACKs but only {misses} misses — NACKs must count as misses",
            r.stats.steal_nacks
        );
        // The victim-side grant counter can exceed thief-side hits only by
        // unclaimed completion-race grants (at most one per worker).
        assert!(
            hits <= r.stats.steals && r.stats.steals <= hits + workers,
            "{label}: {hits} claimed hits vs {} granted steals (workers {workers})",
            r.stats.steals
        );
        assert!(
            r.report.fault_counters.total() > 0,
            "{label}: plan injected nothing; the test is vacuous"
        );

        // The DAG checker must accept the stream recorded under fire:
        // faults may reorder and retry steals, never corrupt lifecycle
        // bookkeeping.
        let dag = bigtiny_obs::check_task_dag(&r.task_events)
            .unwrap_or_else(|e| panic!("{label}: malformed task DAG under faults: {e}"));
        assert_eq!(dag.tasks, dag.executed, "{label}: {dag:?} — spawned tasks never executed");
        assert_eq!(dag.steals, hits, "{label}: Stolen events must match claimed hits");
    }
}

/// The steal back-off cap is the configuration product
/// `steal_backoff_cycles * steal_backoff_max_factor`. The chaos fuzzer
/// drove that product past `u64::MAX`, which panicked debug builds with an
/// arithmetic overflow on the very first failed steal; the cap now
/// saturates ("effectively unbounded"). This pins the minimized repro: a
/// steal-miss storm guarantees failed steals, so the saturated cap is
/// actually exercised, and the run must still verify, stay free of stale
/// reads, and remain deterministic.
#[test]
fn steal_backoff_cap_saturates_on_overflowing_config() {
    let app = app_by_name("cilk5-nq").unwrap();
    let go = || {
        let cfg = sys(1, 7, Protocol::Mesi).with_faults(FaultPlan::steal_miss_storm(7));
        let mut rt = RuntimeConfig::new(RuntimeKind::Baseline);
        rt.steal_backoff_cycles = 2;
        rt.steal_backoff_max_factor = u64::MAX; // 2 * MAX overflows u64
        let mut space = AddrSpace::new();
        let prepared = app.prepare_default(&mut space, AppSize::Test);
        let r = run_task_parallel(&cfg, &rt, &mut space, prepared.root);
        if let Err(e) = (prepared.verify)() {
            panic!("overflowing back-off cap broke the run: {e}");
        }
        r
    };
    let a = go();
    assert!(
        a.stats.forced_steal_misses > 0,
        "the storm forced no misses; the saturated cap was never exercised"
    );
    assert_eq!(a.report.stale_reads, 0);
    let b = go();
    assert_eq!(fingerprint(&a), fingerprint(&b), "saturated back-off must stay deterministic");
}

/// The `duplicate_executions` counter is reserved for multiplicity-deque
/// duplicates: under the hostile and crash-storm fault plans on
/// exactly-once policies it must stay zero — crash respawns land in
/// `reexecutions`, never in `duplicate_executions`, so the two failure
/// modes stay separable in telemetry.
#[test]
fn fault_plans_never_inflate_duplicate_execution_counters() {
    let app = app_by_name("cilk5-nq").unwrap();
    let plans =
        [("hostile", FaultPlan::hostile(0x0BAD_5EED)), ("crash-storm", FaultPlan::crash_storm(3))];
    for (label, plan) in plans {
        for (kind, deque, proto) in [
            (RuntimeKind::Baseline, DequeKind::Locked, Protocol::Mesi),
            (RuntimeKind::Baseline, DequeKind::ChaseLev, Protocol::Mesi),
            (RuntimeKind::Dts, DequeKind::Locked, Protocol::GpuWb),
        ] {
            let cfg = sys(1, 7, proto).with_faults(plan.clone());
            let mut rt = RuntimeConfig::new(kind);
            rt.deque_kind = deque;
            let mut space = AddrSpace::new();
            let prepared = app.prepare_default(&mut space, AppSize::Test);
            let r = run_task_parallel(&cfg, &rt, &mut space, prepared.root);
            if let Err(e) = (prepared.verify)() {
                panic!("{label}/{kind:?}/{deque:?}: {e}");
            }
            assert_eq!(
                r.stats.duplicate_executions, 0,
                "{label}/{kind:?}/{deque:?}: fault-plan re-execution leaked into the \
                 multiplicity duplicate counter"
            );
            if label == "crash-storm" {
                assert!(
                    r.report.fault_counters.crashes > 0,
                    "{kind:?}/{deque:?}: the storm crashed nobody; the test is vacuous"
                );
            }
        }
    }
}

/// Steal accounting under the multiplicity deque policies: on every
/// software policy the victim-side grant counter stays within the
/// attempted steals, the recorded task events pass the policy's audit
/// (exactly-once for Chase-Lev, at-most-twice for fence-free and
/// idempotent), and the runtime's `duplicate_executions` counter agrees
/// with the duplicates the auditor reconstructs from the event stream —
/// both on the golden path and under a forced steal-miss storm.
#[test]
fn steal_accounting_bounds_hold_on_every_deque_policy() {
    let name = "cilk5-nq";
    assert!(kernel_is_duplicate_safe(name), "the kernel must tolerate at-most-twice");
    let app = app_by_name(name).unwrap();
    let plans = [("none", FaultPlan::none()), ("steal-miss-storm", FaultPlan::steal_miss_storm(7))];
    for (label, plan) in plans {
        for deque in
            [DequeKind::Locked, DequeKind::ChaseLev, DequeKind::FenceFree, DequeKind::Idempotent]
        {
            let cfg = sys(1, 7, Protocol::Mesi).with_faults(plan.clone());
            let mut rt = RuntimeConfig::new(RuntimeKind::Baseline);
            rt.deque_kind = deque;
            rt.record_task_events = true;
            let mut space = AddrSpace::new();
            let prepared = app.prepare_default(&mut space, AppSize::Test);
            let r = run_task_parallel(&cfg, &rt, &mut space, prepared.root);
            if let Err(e) = (prepared.verify)() {
                panic!("{label}/{deque:?}: {e}");
            }
            assert!(
                r.stats.steals <= r.stats.steal_attempts,
                "{label}/{deque:?}: {} grants for {} attempts",
                r.stats.steals,
                r.stats.steal_attempts
            );
            let mode = if deque.multiplicity() {
                AuditMode::Multiplicity { crash_armed: false }
            } else {
                AuditMode::ExactlyOnce
            };
            let audit = audit_task_events_mode(&r.task_events, mode, name);
            assert!(audit.is_clean(), "{label}/{deque:?}: audit:\n{}", audit.render());
            assert_eq!(
                r.stats.duplicate_executions, audit.duplicates,
                "{label}/{deque:?}: runtime counter disagrees with the audited event stream"
            );
        }
    }
}

/// A deliberately deadlocked program — the root waits on a child that never
/// completes — is detected by the watchdog, and the panic message carries
/// crash-consistent per-core state — sequencer position, clocks, deque
/// depths — instead of a hang.
#[test]
fn deadlocked_program_trips_watchdog_with_per_core_state() {
    let cfg = SystemConfig::big_tiny(
        "deadlock",
        MeshConfig::with_topology(Topology::new(2, 2)),
        1,
        3,
        Protocol::GpuWb,
    )
    .with_watchdog(20_000);
    let mut space = AddrSpace::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_task_parallel(&cfg, &RuntimeConfig::new(RuntimeKind::Dts), &mut space, |cx| {
            cx.set_pending(1);
            cx.spawn(|cx| {
                // The child spins on a completion signal that can never
                // arrive, so the parent's wait() below never returns.
                while !cx.port().is_done() {
                    cx.port().wait_cycles(16, TimeCategory::Idle);
                }
            });
            cx.wait();
        });
    }));
    let payload = result.expect_err("the spin loop must not complete");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("watchdog panics carry a printable message");
    assert!(msg.contains(WATCHDOG_MSG), "got: {msg}");
    assert!(msg.contains("watchdog tripped on core"), "bundle header missing: {msg}");
    assert!(msg.contains("core   0"), "per-core state missing: {msg}");
    assert!(msg.contains("grants without progress"), "budget missing: {msg}");
    assert!(msg.contains("runtime state:"), "runtime diagnostics missing: {msg}");
    assert!(msg.contains("deque depth"), "deque depths missing: {msg}");
}

/// A panic inside a task body fails the whole run fast, and the original
/// message survives to the caller (not a cascade of poison panics).
#[test]
fn task_body_panic_fails_fast_with_original_message() {
    let cfg = sys(1, 3, Protocol::GpuWb);
    let mut space = AddrSpace::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_task_parallel(&cfg, &RuntimeConfig::new(RuntimeKind::Dts), &mut space, |_cx| {
            panic!("boom in task body");
        });
    }));
    let payload = result.expect_err("task panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload is printable");
    assert!(msg.contains("boom in task body"), "original message lost: {msg}");
}

// ---------------------------------------------------------------------------
// ULI edge cases at the network level (satellite coverage beyond the mesh
// crate's unit tests).
// ---------------------------------------------------------------------------

/// A steal request NACKed because the victim's receiver is disabled can be
/// retried and succeeds once the victim re-enables — the NACK is advisory,
/// not sticky.
#[test]
fn uli_nack_on_disabled_receiver_then_retry_succeeds() {
    let mut u = UliNetwork::new(Topology::new(4, 4), 16);
    assert!(
        matches!(u.try_send_request(0, 5, 7, 0), UliOutcome::Nack { .. }),
        "disabled receiver must NACK"
    );
    u.set_enabled(5, true);
    assert_eq!(u.try_send_request(0, 5, 7, 100), UliOutcome::Sent, "retry after enable");
    assert!(u.take_request(5, 1_000).is_some());
}

/// Receivers hold at most one request in flight: a second thief is NACKed
/// until the first request is serviced, then gets through.
#[test]
fn uli_one_in_flight_per_receiver() {
    let mut u = UliNetwork::new(Topology::new(4, 4), 16);
    u.set_enabled(3, true);
    assert_eq!(u.try_send_request(0, 3, 1, 0), UliOutcome::Sent);
    assert!(matches!(u.try_send_request(1, 3, 2, 0), UliOutcome::Nack { .. }), "unit busy");
    assert!(u.take_request(3, 1_000).is_some(), "first request serviced");
    assert_eq!(u.try_send_request(1, 3, 2, 2_000), UliOutcome::Sent, "slot free again");
}

/// A response already on the wire survives the victim's death: the thief can
/// still poll it after the victim disables its receiver and retires.
#[test]
fn uli_response_outlives_victim_death() {
    let mut u = UliNetwork::new(Topology::new(4, 4), 16);
    u.set_enabled(8, true);
    assert_eq!(u.try_send_request(0, 8, 1, 0), UliOutcome::Sent);
    let req = u.take_request(8, 500).expect("request delivered");
    u.send_response(8, req.from, 1, 500);
    u.set_enabled(8, false); // victim finishes and tears down its receiver
    let resp = u.take_response(0, 5_000).expect("response still deliverable");
    assert_eq!((resp.from, resp.payload), (8, 1));
}
