//! Tier-1 guarantees for the critical-path profiler.
//!
//! Two invariant families, both at Test scale:
//!
//! * **Cycle conservation** on the full 13-kernel x 7-setup matrix: the
//!   attribution buckets (compute / steal protocol / AMO / invalidate /
//!   flush / idle) must sum *exactly* to total core-cycles for every run —
//!   no profiling arming required, so the sweep is cheap.
//! * **Work/span sanity** on armed runs: the replayed DAG must satisfy the
//!   textbook bounds T∞ ≤ Tp ≤ T1 and ⌈T1/P⌉ ≤ Tp, the task-event stream
//!   must pass the DAG well-formedness checker, and the attribution spans
//!   must tile each core's timeline exactly.

use bigtiny_apps::{all_apps, app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_obs::{
    check_task_dag, replay_run, verify_attr_spans, CycleConservation, CycleLens, WhatIf,
};

/// Every kernel on every 64-core configuration: the six attribution
/// buckets account for every core-cycle, with nothing armed.
#[test]
fn cycle_conservation_holds_on_the_full_matrix() {
    let setups = Setup::big_tiny_matrix();
    for app in all_apps() {
        for setup in &setups {
            let r = run_app(setup, &app, AppSize::Test, 0);
            let cons = CycleConservation::from_report(&r.run.report);
            assert!(
                cons.holds(),
                "{} @ {}: buckets sum to {} but core-cycles total {}",
                r.app,
                r.setup,
                cons.bucket_sum(),
                cons.total_core_cycles
            );
            assert!(cons.total_core_cycles > 0, "{} @ {}: empty run", r.app, r.setup);
        }
    }
}

/// Armed, fault-free runs satisfy the work/span laws on every
/// configuration. Fault plans are deliberately excluded: injected ULI
/// drops retry outside the task DAG's control, voiding the greedy bound.
#[test]
fn profiled_runs_satisfy_work_span_bounds() {
    let setups: Vec<Setup> = Setup::big_tiny_matrix()
        .into_iter()
        .map(|mut s| {
            s.sys.attr = true;
            s.rt.record_task_events = true;
            s
        })
        .collect();
    for name in ["cilk5-nq", "cilk5-cs", "ligra-bfs"] {
        let app = app_by_name(name).unwrap();
        for setup in &setups {
            let r = run_app(setup, &app, AppSize::Test, 0);
            verify_attr_spans(&r.run.report)
                .unwrap_or_else(|e| panic!("{name} @ {}: bad spans: {e}", r.setup));
            let dag = check_task_dag(&r.run.task_events)
                .unwrap_or_else(|e| panic!("{name} @ {}: malformed DAG: {e}", r.setup));
            assert!(dag.tasks > 0 && dag.executed == dag.tasks, "{name} @ {}: {dag:?}", r.setup);

            let w = WhatIf::project(&r.run).unwrap_or_else(|e| panic!("{name} @ {}: {e}", r.setup));
            let (t1, tinf, tp, p) =
                (w.burdened.work, w.burdened.span, w.measured_tp, w.workers.max(1));
            assert!(tinf <= tp, "{name} @ {}: span {tinf} > measured {tp}", r.setup);
            assert!(tp <= t1, "{name} @ {}: measured {tp} > work {t1}", r.setup);
            assert!(t1.div_ceil(p) <= tp, "{name} @ {}: ceil({t1}/{p}) > measured {tp}", r.setup);
            // The greedy bound is a lower bound, so the measured run can
            // never beat it; and stripping overhead can only shrink the DAG.
            assert!(w.measured.speedup_bound >= 1.0, "{name} @ {}: {:?}", r.setup, w.measured);
            for proj in w.projections() {
                assert!(
                    proj.work <= t1 && proj.span <= tinf,
                    "{name} @ {}: lens {:?} grew the DAG",
                    r.setup,
                    proj.lens
                );
            }
        }
    }
}

/// The extracted chain is internally consistent: links are time-ordered,
/// begin on recorded cores, and the steal count matches the flags.
#[test]
fn critical_path_chain_is_well_formed() {
    let app = app_by_name("cilk5-nq").unwrap();
    let mut setup = Setup::bt_hcc(bigtiny_engine::Protocol::GpuWb, true);
    setup.sys.attr = true;
    setup.rt.record_task_events = true;
    let r = run_app(&setup, &app, AppSize::Test, 0);
    let cp = replay_run(&r.run, CycleLens::Burdened).expect("armed run profiles");
    assert!(!cp.chain.is_empty(), "empty chain on a profiled run");
    assert_eq!(cp.chain[0].task, 0, "chain must start at the root task");
    let cores = r.run.report.core_cycles.len();
    // The chain is a root-to-leaf slice of the spawn tree in pre-order:
    // every non-root link's spawning parent must appear earlier in it.
    let parent_of = |t: u32| -> u32 {
        r.run
            .task_events
            .iter()
            .find_map(|e| match e.kind {
                bigtiny_core::TaskEventKind::Spawn { parent: Some(p) } if e.task == t => Some(p),
                _ => None,
            })
            .unwrap_or_else(|| panic!("task {t} has no spawning parent in the event stream"))
    };
    for (i, link) in cp.chain.iter().enumerate() {
        assert!(link.core < cores, "link on unknown core: {link:?}");
        assert!(link.exec_begin <= link.exec_end, "inverted link: {link:?}");
        if i > 0 {
            let p = parent_of(link.task);
            assert!(
                cp.chain[..i].iter().any(|l| l.task == p),
                "link {link:?}: parent {p} not earlier in the chain"
            );
        }
    }
    assert_eq!(
        cp.chain_steals(),
        cp.chain.iter().filter(|l| l.stolen).count() as u64,
        "steal count disagrees with link flags"
    );
}
