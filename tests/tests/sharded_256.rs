//! The paper's 256-core configuration (Table V) end to end, at test size.
//!
//! Two guarantees are pinned down here, both past the old 64-core ceiling:
//!
//! 1. A fail-stop crash of core 200 — a core id no `u64` bitmask can hold —
//!    is taken, detected, and recovered from with a clean crash audit. This
//!    is the regression test for the silent `core < 64` guard that used to
//!    make every crash plan above core 63 a no-op.
//! 2. The sharded fiber backend replays the 256-core runs bit for bit
//!    against the one-thread-per-core reference backend, while actually
//!    exercising its cross-island machinery (four mesh-quadrant islands,
//!    non-zero conservative lookahead).

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_checker::audit_task_events;
use bigtiny_core::RuntimeKind;
use bigtiny_engine::{ExecBackend, FaultPlan, Protocol};

/// A crash plan that dooms exactly core 200 — representable only since
/// `crash_cores` became a growable [`bigtiny_mesh::CoreSet`].
fn crash_core_200(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.crash_cores.insert(200);
    plan.crash_at_cycle = 1500;
    plan
}

/// Core 200 of the 256-core DTS machine dies mid-run: the crash must be
/// taken (not silently skipped), the run must still verify, and the
/// recovery must leave a clean task-event audit — every task spawned by or
/// stolen from the dead core re-executed exactly once.
#[test]
fn crash_of_core_200_recovers_with_clean_audit() {
    let app = app_by_name("cilk5-nq").unwrap();
    let mut setup = Setup::bt_256(Protocol::GpuWb, RuntimeKind::Dts);
    setup.sys = setup.sys.clone().with_faults(crash_core_200(7)).with_watchdog(2_000_000);
    setup.rt.record_task_events = true;
    let r = run_app(&setup, &app, AppSize::Test, 0);
    assert_eq!(
        r.run.report.fault_counters.crashes, 1,
        "the core-200 crash must actually fire (the old u64 mask dropped it)"
    );
    let audit = audit_task_events(&r.run.task_events, true, r.app);
    assert!(
        audit.is_clean(),
        "recovery from a core-200 crash left a dirty audit:\n{}",
        audit.render()
    );
}

/// The same core-200 crash schedule replays bit for bit run to run: crash
/// recovery past core 64 is scheduled work like any other.
#[test]
fn crash_of_core_200_is_deterministic() {
    let app = app_by_name("cilk5-nq").unwrap();
    let run_once = || {
        let mut setup = Setup::bt_256(Protocol::GpuWb, RuntimeKind::Dts);
        setup.sys = setup.sys.clone().with_faults(crash_core_200(7));
        let r = run_app(&setup, &app, AppSize::Test, 0);
        (r.cycles, r.run.report.seq_op_hash, r.run.report.fault_counters)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "core-200 crash runs must be run-to-run stable");
    assert_eq!(a.2.crashes, 1);
}

/// The sharded backend on the 256-core machine: four quadrant islands, a
/// non-zero conservative lookahead, and — the whole point — the exact same
/// sequenced-op stream and cycle count as the reference backend.
#[test]
fn sharded_backend_matches_threads_on_256_cores() {
    if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        eprintln!("skipping: sharded fiber backend needs x86_64 linux");
        return;
    }
    let app = app_by_name("ligra-bfs").unwrap();
    let run_once = |backend: ExecBackend| {
        let mut setup = Setup::bt_256(Protocol::GpuWb, RuntimeKind::Dts);
        setup.sys = setup.sys.clone().with_backend(backend).with_watchdog(2_000_000);
        run_app(&setup, &app, AppSize::Test, 0)
    };
    let a = run_once(ExecBackend::Threads);
    let b = run_once(ExecBackend::ShardedFibers);
    assert_eq!(a.cycles, b.cycles, "sharded backend must not change simulated time");
    assert_eq!(
        a.run.report.seq_op_hash, b.run.report.seq_op_hash,
        "sharded backend must replay the exact grant stream"
    );
    assert_eq!(a.run.report.core_cycles, b.run.report.core_cycles);
    assert_eq!(a.run.report.instructions, b.run.report.instructions);
    assert_eq!(a.run.report.total_traffic_bytes(), b.run.report.total_traffic_bytes());
    assert_eq!(a.run.report.seq_lookahead, 0, "reference backend reports no lookahead");
    assert!(
        b.run.report.seq_lookahead > 0,
        "256-core mesh has >1 island, so cross-island lookahead must be non-zero"
    );
}
