//! Golden determinism pins for the engine.
//!
//! Each entry hashes the full sequenced-op stream — every `(time, core)`
//! token grant the `Sequencer` issues, in grant order — for one protocol ×
//! representative kernel at the fixed default seed, plus the end-to-end
//! simulated cycle count. The hashes below were captured before the engine
//! fast paths (sequencer re-grant, compute coalescing) landed, so a match
//! proves those wall-clock optimizations are bit-for-bit invisible to
//! simulated results. Future engine PRs inherit the guard: if a change is
//! *meant* to alter simulated timing, re-capture with
//! `BIGTINY_SIZE=test cargo run --release --bin perf_regress` and update
//! the table with a note in the PR; if it isn't, a mismatch here is a bug.

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_engine::Protocol;

/// `(kernel, setup label, simulated cycles, sequenced-op-stream hash)` at
/// `AppSize::Test`, default seed, default grain.
const GOLDEN: &[(&str, &str, u64, u64)] = &[
    // cilk5-nq pins re-captured after the kernel moved to crash-tolerant
    // slot-keyed result placement (idempotent re-execution discipline),
    // which changes its memory access pattern and thus simulated timing.
    ("cilk5-nq", "b.T/MESI", 7808, 0x7cc8_52c9_2c4f_0918),
    ("cilk5-nq", "b.T/HCC-DTS-dnv", 7605, 0x2915_0624_3f55_68bb),
    ("cilk5-nq", "b.T/HCC-DTS-gwt", 8096, 0x3e56_d2df_ec25_e841),
    ("cilk5-nq", "b.T/HCC-DTS-gwb", 6350, 0x1509_ceed_9a81_bda9),
    ("cilk5-mm", "b.T/MESI", 17000, 0x63c9_0ddb_29fb_7035),
    ("cilk5-mm", "b.T/HCC-DTS-dnv", 16781, 0x91b5_3ab6_61df_c838),
    ("cilk5-mm", "b.T/HCC-DTS-gwt", 17531, 0x5311_8468_369a_19db),
    ("cilk5-mm", "b.T/HCC-DTS-gwb", 19227, 0xadf2_ba2b_2ec5_a127),
    ("ligra-bfs", "b.T/MESI", 19945, 0xf532_cb4f_96b3_9f7c),
    ("ligra-bfs", "b.T/HCC-DTS-dnv", 23200, 0x6860_8335_6e60_d76a),
    ("ligra-bfs", "b.T/HCC-DTS-gwt", 22096, 0x4814_806a_746e_12f9),
    ("ligra-bfs", "b.T/HCC-DTS-gwb", 22190, 0x32b3_7afd_1f96_2a4b),
];

fn setup_by_label(label: &str) -> Setup {
    match label {
        "b.T/MESI" => Setup::bt_mesi(),
        "b.T/HCC-DTS-dnv" => Setup::bt_hcc(Protocol::DeNovo, true),
        "b.T/HCC-DTS-gwt" => Setup::bt_hcc(Protocol::GpuWt, true),
        "b.T/HCC-DTS-gwb" => Setup::bt_hcc(Protocol::GpuWb, true),
        other => panic!("unknown golden setup {other}"),
    }
}

#[test]
fn sequenced_op_stream_matches_golden_hashes() {
    let mut failures = Vec::new();
    for &(app_name, setup_label, want_cycles, want_hash) in GOLDEN {
        let app = app_by_name(app_name).unwrap();
        let setup = setup_by_label(setup_label);
        let r = run_app(&setup, &app, AppSize::Test, 0);
        let got_hash = r.run.report.seq_op_hash;
        if r.cycles != want_cycles || got_hash != want_hash {
            failures.push(format!(
                "{app_name} on {setup_label}: cycles {} (want {want_cycles}), \
                 op hash {got_hash:#018x} (want {want_hash:#018x})",
                r.cycles
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "sequenced-op stream diverged from golden pins:\n  {}",
        failures.join("\n  ")
    );
}

/// All three execution backends (one OS thread per core, stackful fibers
/// on one thread, island-sharded fibers on one thread per mesh quadrant)
/// must replay the exact same grant stream: they share the sequencer's
/// grant-selection rule and differ only in how a blocked core yields the
/// host CPU. Pinning all of them against the same table proves the fiber
/// and sharding fast paths cannot change a single simulated cycle.
#[test]
fn both_backends_produce_identical_op_streams() {
    use bigtiny_engine::ExecBackend;
    let fibers_supported = cfg!(all(target_os = "linux", target_arch = "x86_64"));
    let mut failures = Vec::new();
    for &(app_name, setup_label, want_cycles, want_hash) in
        GOLDEN.iter().filter(|g| g.0 == "cilk5-nq")
    {
        let app = app_by_name(app_name).unwrap();
        for backend in [ExecBackend::Threads, ExecBackend::Fibers, ExecBackend::ShardedFibers] {
            if backend != ExecBackend::Threads && !fibers_supported {
                continue;
            }
            let mut setup = setup_by_label(setup_label);
            setup.sys = setup.sys.clone().with_backend(backend);
            let r = run_app(&setup, &app, AppSize::Test, 0);
            if r.cycles != want_cycles || r.run.report.seq_op_hash != want_hash {
                failures.push(format!(
                    "{app_name} on {setup_label} with {backend:?}: cycles {} (want \
                     {want_cycles}), op hash {:#018x} (want {want_hash:#018x})",
                    r.cycles, r.run.report.seq_op_hash
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "backends diverged from golden pins:\n  {}",
        failures.join("\n  ")
    );
}

/// Arming the DRF checker must be bit-for-bit invisible to simulation:
/// event capture observes the op stream but never perturbs timing, so a
/// fully armed run replays the exact golden cycles and grant hashes while
/// actually collecting (and passing judgment on) a non-empty event stream.
#[test]
fn armed_checker_changes_no_golden_pin() {
    use bigtiny_checker::check_run;
    use bigtiny_engine::CheckMode;
    let mut failures = Vec::new();
    for &(app_name, setup_label, want_cycles, want_hash) in
        GOLDEN.iter().filter(|g| g.0 == "cilk5-nq" || g.0 == "ligra-bfs")
    {
        let app = app_by_name(app_name).unwrap();
        let mut setup = setup_by_label(setup_label);
        setup.sys = setup.sys.clone().with_check(CheckMode::Full);
        let r = run_app(&setup, &app, AppSize::Test, 0);
        if r.cycles != want_cycles || r.run.report.seq_op_hash != want_hash {
            failures.push(format!(
                "{app_name} on {setup_label} armed: cycles {} (want {want_cycles}), \
                 op hash {:#018x} (want {want_hash:#018x})",
                r.cycles, r.run.report.seq_op_hash
            ));
        }
        let report = check_run(&setup.sys, &r.run.report);
        assert!(report.events > 0, "{app_name} on {setup_label}: armed run captured no events");
        assert!(report.is_clean(), "{app_name} on {setup_label}:\n{}", report.render());
    }
    assert!(
        failures.is_empty(),
        "arming the checker perturbed simulated results:\n  {}",
        failures.join("\n  ")
    );
}

/// Arming the full observability stack — per-core tracing, ULI protocol
/// marks, task-event recording, and per-task cycle attribution — must
/// likewise be bit-for-bit invisible: telemetry only ever reads the
/// simulated clock and writes host-side buffers. An armed run replays the
/// exact golden cycles and grant hashes while actually collecting a
/// non-empty trace, ULI marks, task events, and attribution spans.
#[test]
fn armed_observability_changes_no_golden_pin() {
    let mut failures = Vec::new();
    for &(app_name, setup_label, want_cycles, want_hash) in
        GOLDEN.iter().filter(|g| g.0 == "cilk5-nq" || g.0 == "ligra-bfs")
    {
        let app = app_by_name(app_name).unwrap();
        let mut setup = setup_by_label(setup_label);
        setup.sys.trace = true;
        setup.sys.attr = true;
        setup.rt.record_task_events = true;
        let r = run_app(&setup, &app, AppSize::Test, 0);
        if r.cycles != want_cycles || r.run.report.seq_op_hash != want_hash {
            failures.push(format!(
                "{app_name} on {setup_label} armed: cycles {} (want {want_cycles}), \
                 op hash {:#018x} (want {want_hash:#018x})",
                r.cycles, r.run.report.seq_op_hash
            ));
        }
        let spans: usize = r.run.report.traces.iter().map(Vec::len).sum();
        assert!(spans > 0, "{app_name} on {setup_label}: armed run captured no trace spans");
        assert!(
            !r.run.task_events.is_empty(),
            "{app_name} on {setup_label}: armed run recorded no task events"
        );
        assert!(
            r.run.report.attr_spans.iter().any(|s| !s.is_empty()),
            "{app_name} on {setup_label}: armed run recorded no attribution spans"
        );
        if setup_label != "b.T/MESI" {
            let marks: usize = r.run.report.uli_marks.iter().map(Vec::len).sum();
            assert!(marks > 0, "{app_name} on {setup_label}: DTS run recorded no ULI marks");
        }
        // The flight recorder is always-on (default ring capacity): the
        // same armed run must also have retained per-core tails, each in
        // non-decreasing time order — the black box is usable as-is.
        assert!(
            r.run.report.flight.iter().any(|t| !t.is_empty()),
            "{app_name} on {setup_label}: default-armed run retained no flight events"
        );
        for (core, tail) in r.run.report.flight.iter().enumerate() {
            assert!(
                tail.windows(2).all(|w| w[0].time <= w[1].time),
                "{app_name} on {setup_label}: core {core} flight tail out of time order"
            );
            assert!(
                r.run.report.flight_totals[core] >= tail.len() as u64,
                "{app_name} on {setup_label}: core {core} total below retained tail"
            );
        }
    }
    assert!(
        failures.is_empty(),
        "arming observability perturbed simulated results:\n  {}",
        failures.join("\n  ")
    );
}

/// The live-telemetry layer must be bit-for-bit invisible too, on every
/// backend: turning the flight ring off, growing it past its default, or
/// arming a heartbeat sink all replay the exact golden cycles and grant
/// hashes. The ring only reads already-computed core clocks and the
/// heartbeat only observes grant boundaries — neither sequences an op nor
/// charges a cycle.
#[test]
fn flight_ring_and_heartbeat_change_no_golden_pin() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use bigtiny_engine::{ExecBackend, Heartbeat, DEFAULT_FLIGHT_CAPACITY};

    let fibers_supported = cfg!(all(target_os = "linux", target_arch = "x86_64"));
    let mut failures = Vec::new();
    for &(app_name, setup_label, want_cycles, want_hash) in
        GOLDEN.iter().filter(|g| g.0 == "cilk5-nq")
    {
        let app = app_by_name(app_name).unwrap();
        for backend in [ExecBackend::Threads, ExecBackend::Fibers, ExecBackend::ShardedFibers] {
            if backend != ExecBackend::Threads && !fibers_supported {
                continue;
            }
            let beats = Arc::new(AtomicU64::new(0));
            let sink_beats = Arc::clone(&beats);
            let variants: [(&str, Setup); 3] = [
                ("ring-off", {
                    let mut s = setup_by_label(setup_label);
                    s.sys = s.sys.clone().with_flight_ring(0);
                    s
                }),
                ("ring-4x", {
                    let mut s = setup_by_label(setup_label);
                    s.sys = s.sys.clone().with_flight_ring(4 * DEFAULT_FLIGHT_CAPACITY);
                    s
                }),
                ("heartbeat", {
                    let mut s = setup_by_label(setup_label);
                    s.sys = s.sys.clone().with_heartbeat(Heartbeat::new(
                        100,
                        Arc::new(move |_snap| {
                            sink_beats.fetch_add(1, Ordering::Relaxed);
                        }),
                    ));
                    s
                }),
            ];
            for (variant, mut setup) in variants {
                setup.sys = setup.sys.clone().with_backend(backend);
                let r = run_app(&setup, &app, AppSize::Test, 0);
                if r.cycles != want_cycles || r.run.report.seq_op_hash != want_hash {
                    failures.push(format!(
                        "{app_name} on {setup_label} [{variant}, {backend:?}]: cycles {} (want \
                         {want_cycles}), op hash {:#018x} (want {want_hash:#018x})",
                        r.cycles, r.run.report.seq_op_hash
                    ));
                }
                match variant {
                    "ring-off" => assert!(
                        r.run.report.flight.iter().all(Vec::is_empty)
                            && r.run.report.flight_totals.iter().all(|&t| t == 0),
                        "{setup_label} [{backend:?}]: capacity-0 ring recorded events"
                    ),
                    _ => assert!(
                        r.run.report.flight.iter().any(|t| !t.is_empty()),
                        "{setup_label} [{variant}, {backend:?}]: armed ring retained nothing"
                    ),
                }
            }
            assert!(
                beats.load(Ordering::Relaxed) > 0,
                "{setup_label} [{backend:?}]: heartbeat sink never fired"
            );
        }
    }
    assert!(
        failures.is_empty(),
        "live telemetry perturbed simulated results:\n  {}",
        failures.join("\n  ")
    );
}

/// Crash-armed runs inherit the full determinism contract: the same fault
/// seed replays the same crash schedule, the same recovery actions, the
/// same metrics document, and the same crash-audit verdict — across
/// repeated runs and across both execution backends. Recovery is scheduled
/// work like any other; nothing about it may depend on host timing.
#[test]
fn crash_runs_pin_metrics_and_audit_verdict_across_backends() {
    use bigtiny_checker::audit_task_events;
    use bigtiny_engine::{ExecBackend, FaultPlan};
    use bigtiny_obs::{metrics_document, RunMetrics};

    let app = app_by_name("cilk5-nq").unwrap();
    let run_once = |backend: ExecBackend| {
        let mut setup = setup_by_label("b.T/HCC-DTS-gwb");
        setup.sys = setup.sys.clone().with_faults(FaultPlan::crash_storm(11)).with_backend(backend);
        if backend != ExecBackend::Fibers {
            // The watchdog is observational (it never perturbs simulated
            // results) but needs a second runnable thread for its
            // wall-clock fallback, so every backend except the
            // single-threaded fiber one arms it.
            setup.sys = setup.sys.clone().with_watchdog(2_000_000);
        }
        setup.rt.record_task_events = true;
        let r = run_app(&setup, &app, AppSize::Test, 0);
        let audit = audit_task_events(&r.run.task_events, true, r.app);
        assert!(audit.is_clean(), "{backend:?}:\n{}", audit.render());
        let doc = metrics_document(&[RunMetrics {
            app: r.app,
            setup: &r.setup,
            deque_policy: r.deque_policy,
            run: &r.run,
            tiny_cores: &r.tiny_cores,
        }])
        .to_json();
        (r.cycles, r.run.report.seq_op_hash, audit.verdict_hash(), doc)
    };

    let a = run_once(ExecBackend::Threads);
    let b = run_once(ExecBackend::Threads);
    assert_eq!(a.0, b.0, "crash-armed cycles are run-to-run stable");
    assert_eq!(a.1, b.1, "crash-armed op stream is run-to-run stable");
    assert_eq!(a.2, b.2, "crash-audit verdict is run-to-run stable");
    assert_eq!(a.3, b.3, "crash-armed metrics document is run-to-run stable");
    assert_ne!(a.2, 0, "verdict hash folds real counts");
    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        let c = run_once(ExecBackend::Fibers);
        assert_eq!(a, c, "fiber backend agrees bit-for-bit under a crash storm");
        let d = run_once(ExecBackend::ShardedFibers);
        assert_eq!(a, d, "sharded backend agrees bit-for-bit under a crash storm");
    }
}

#[test]
fn op_hash_is_run_to_run_stable() {
    let app = app_by_name("cilk5-nq").unwrap();
    let setup = Setup::bt_hcc(Protocol::DeNovo, true);
    let a = run_app(&setup, &app, AppSize::Test, 0);
    let b = run_app(&setup, &app, AppSize::Test, 0);
    assert_eq!(a.run.report.seq_op_hash, b.run.report.seq_op_hash);
    assert_eq!(a.cycles, b.cycles);
    assert_ne!(a.run.report.seq_op_hash, 0, "hash must fold real grants");
}
