//! DRF conformance-checker integration tests: the oracle against the real
//! runtimes on the full simulated machine.
//!
//! Three suites:
//!
//! * **Clean pass** — unmutated kernels across the full (runtime ×
//!   protocol) matrix produce zero findings of any kind, and the benign-
//!   race audit is visible in the report.
//! * **Mutation detection** — each seeded sync-discipline bug
//!   ([`MutationKind`]) is flagged on the protocols where it is a real
//!   bug, with a precise (core, cycle, address) report, and stays clean
//!   on the protocols where the elided operation is a no-op. The
//!   `skip_coherence_ops` ablation is the end-to-end fixture: every
//!   coherence op dropped at once must light up every software-centric
//!   protocol and leave hardware-coherent MESI clean.
//! * **Audit pinning** — the `RacyTag` whitelist and the set of audited
//!   benign-race call sites in the source tree must match exactly.

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_checker::{check_run, CheckReport, ViolationKind};
use bigtiny_core::{
    run_task_parallel, Mutation, MutationKind, RuntimeConfig, RuntimeKind, TaskRun,
};
use bigtiny_engine::{AddrSpace, CheckMode, Protocol, RacyTag, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

/// 16-core mixed machine with the checker fully armed.
fn checked_sys(proto: Protocol) -> SystemConfig {
    SystemConfig::big_tiny("ctest", MeshConfig::with_topology(Topology::new(4, 4)), 2, 14, proto)
        .with_check(CheckMode::Full)
}

/// Runs `name` end to end (without the bench harness, whose verification
/// asserts would reject mutated runs before the checker sees them) and
/// returns the armed system plus the run.
fn run_checked(
    name: &str,
    proto: Protocol,
    kind: RuntimeKind,
    tweak: impl FnOnce(&mut RuntimeConfig),
) -> (SystemConfig, TaskRun) {
    let sys = checked_sys(proto);
    let app = app_by_name(name).expect("kernel");
    let mut space = AddrSpace::new();
    let prepared = app.prepare_default(&mut space, AppSize::Test);
    let mut rt = RuntimeConfig::new(kind);
    tweak(&mut rt);
    let run = run_task_parallel(&sys, &rt, &mut space, prepared.root);
    (sys, run)
}

fn report_of(name: &str, proto: Protocol, kind: RuntimeKind) -> CheckReport {
    let (sys, run) = run_checked(name, proto, kind, |_| {});
    check_run(&sys, &run.report)
}

const MATRIX: [(RuntimeKind, Protocol); 7] = [
    (RuntimeKind::Baseline, Protocol::Mesi),
    (RuntimeKind::Hcc, Protocol::DeNovo),
    (RuntimeKind::Hcc, Protocol::GpuWt),
    (RuntimeKind::Hcc, Protocol::GpuWb),
    (RuntimeKind::Dts, Protocol::DeNovo),
    (RuntimeKind::Dts, Protocol::GpuWt),
    (RuntimeKind::Dts, Protocol::GpuWb),
];

/// Unmutated runs are clean on every runtime × protocol pairing —
/// including `ligra-radii`, whose multi-winner frontier insertion is the
/// audited benign *write*-write race.
#[test]
fn clean_sweep_zero_findings() {
    for name in ["cilk5-nq", "ligra-bfs", "ligra-radii"] {
        for (kind, proto) in MATRIX {
            let (sys, run) = run_checked(name, proto, kind, |_| {});
            assert_eq!(run.report.stale_reads, 0, "{name} {kind:?}/{proto:?}");
            let report = check_run(&sys, &run.report);
            assert!(report.events > 0, "{name} {kind:?}/{proto:?}: armed run produced no events");
            assert!(report.is_clean(), "{name} {kind:?}/{proto:?}:\n{}", report.render());
        }
    }
    // The audit is visible: the Ligra kernels declare benign races.
    let r = report_of("ligra-bfs", Protocol::DeNovo, RuntimeKind::Dts);
    assert!(r.racy_total() > 0, "expected audited benign-race loads in ligra-bfs");
}

/// `CheckMode::Off` buffers nothing: the unarmed run's report has an empty
/// event stream and the checker returns an empty, clean verdict.
#[test]
fn off_mode_collects_nothing() {
    let sys = checked_sys(Protocol::GpuWb).with_check(CheckMode::Off);
    let app = app_by_name("cilk5-nq").unwrap();
    let mut space = AddrSpace::new();
    let prepared = app.prepare_default(&mut space, AppSize::Test);
    let run =
        run_task_parallel(&sys, &RuntimeConfig::new(RuntimeKind::Dts), &mut space, prepared.root);
    assert!(run.report.mem_events.is_empty());
    let report = check_run(&sys, &run.report);
    assert!(report.is_clean());
    assert_eq!(report.events, 0);
}

fn mutated(name: &str, proto: Protocol, kind: RuntimeKind, m: Mutation) -> CheckReport {
    let (sys, run) = run_checked(name, proto, kind, |rt| rt.mutation = Some(m));
    check_run(&sys, &run.report)
}

/// The mutations target a *tiny* core: in the 2-big/14-tiny layout, core 2
/// is the first software-centric core. (Seeding on a big MESI core is
/// correctly invisible — its invalidate/flush really are no-ops — and the
/// MESI control legs below pin exactly that.)
const TINY: usize = 2;

/// Dropping one `cache_invalidate` (Figure 3(b) line 3) is flagged with a
/// precise first report on every software-centric protocol, and is
/// harmless under MESI where the call is a no-op. The tiny worker's very
/// first invalidate follows its first deque lock acquire, so `nth: 0`
/// deterministically mutates a Figure 3(b) line-3 site.
#[test]
fn drop_invalidate_is_flagged_where_it_matters() {
    let m = Mutation { kind: MutationKind::DropInvalidate, core: TINY, nth: 0 };
    for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
        let report = mutated("cilk5-nq", proto, RuntimeKind::Hcc, m);
        assert!(
            report.count(ViolationKind::LintAcquireNoInvalidate) >= 1,
            "{proto:?}:\n{}",
            report.render()
        );
        let v = report
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::LintAcquireNoInvalidate)
            .unwrap();
        assert_eq!(v.core, TINY, "mutation was seeded on core {TINY}");
        assert!(v.cycle > 0 && v.addr.is_some(), "diagnostics: {v}");
    }
    let report = mutated("cilk5-nq", Protocol::Mesi, RuntimeKind::Hcc, m);
    assert!(report.is_clean(), "MESI invalidate is a no-op:\n{}", report.render());
}

/// Dropping one `cache_flush` (Figure 3(b) lines 4/9) is flagged under
/// GPU-WB — the only protocol whose stores sit dirty in the L1 — and is
/// harmless everywhere else, where the flush is a no-op.
///
/// Not every flush call protects dirty data (a thief's empty-pop critical
/// section writes nothing, and eliding its flush is genuinely harmless —
/// the checker's silence there is precision, not a miss), so this scans
/// occurrences until it mutates one that covers real stores and asserts
/// the checker convicts that one.
#[test]
fn drop_flush_is_flagged_on_writeback_only() {
    const SCAN: u64 = 12;
    let mut caught = None;
    for nth in 0..SCAN {
        let m = Mutation { kind: MutationKind::DropFlush, core: TINY, nth };
        let report = mutated("cilk5-nq", Protocol::GpuWb, RuntimeKind::Hcc, m);
        if !report.is_clean() {
            caught = Some((nth, report));
            break;
        }
    }
    let (nth, report) = caught.unwrap_or_else(|| {
        panic!("no dropped flush among the first {SCAN} on core {TINY} was flagged")
    });
    assert!(
        report.count(ViolationKind::LintReleaseNoFlush) >= 1,
        "GpuWb nth={nth}:\n{}",
        report.render()
    );
    let v = report.violations.iter().find(|v| v.kind == ViolationKind::LintReleaseNoFlush).unwrap();
    assert_eq!(v.core, TINY, "mutation was seeded on core {TINY}");
    assert!(v.cycle > 0 && v.addr.is_some(), "diagnostics: {v}");
    // Everywhere else stores commit at store time: the same mutations are
    // no-ops and the checker must stay clean for every occurrence scanned.
    for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::Mesi] {
        for nth in 0..SCAN {
            let m = Mutation { kind: MutationKind::DropFlush, core: TINY, nth };
            let report = mutated("cilk5-nq", proto, RuntimeKind::Hcc, m);
            assert!(
                report.is_clean(),
                "{proto:?} nth={nth} flush is a no-op:\n{}",
                report.render()
            );
        }
    }
}

/// A `has_stolen_child` flag stuck at `false` makes DTS elide the join
/// AMO/invalidate on steal-tainted joins — the dangerous direction — and
/// the lint convicts it from the runtime's own annotations on every
/// protocol (the plain join-counter decrement races with thief AMOs no
/// matter what the caches do).
#[test]
fn hsc_stuck_false_is_flagged() {
    let m = Mutation { kind: MutationKind::HscStuckFalse, core: 0, nth: 0 };
    for proto in [Protocol::DeNovo, Protocol::GpuWb] {
        let (sys, run) = run_checked("cilk5-nq", proto, RuntimeKind::Dts, |rt| {
            rt.mutation = Some(m);
        });
        assert!(run.stats.steals > 0, "{proto:?}: mutation needs steals to matter");
        let report = check_run(&sys, &run.report);
        assert!(
            report.count(ViolationKind::LintHscElideAfterSteal) >= 1,
            "{proto:?}:\n{}",
            report.render()
        );
        let v = report
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::LintHscElideAfterSteal)
            .unwrap();
        assert_eq!(v.core, 0, "mutation was seeded on core 0");
        assert!(v.cycle > 0, "diagnostics: {v}");
    }
}

/// Stuck at `true` the elision never fires: strictly more conservative
/// synchronization, so the checker must stay clean.
#[test]
fn hsc_stuck_true_stays_clean() {
    let m = Mutation { kind: MutationKind::HscStuckTrue, core: 0, nth: 0 };
    for proto in [Protocol::DeNovo, Protocol::GpuWb] {
        let (sys, run) = run_checked("cilk5-nq", proto, RuntimeKind::Dts, |rt| {
            rt.mutation = Some(m);
        });
        let report = check_run(&sys, &run.report);
        assert!(report.is_clean(), "{proto:?}:\n{}", report.render());
    }
}

/// The `skip_coherence_ops` ablation — drop *every* invalidate and flush —
/// is the checker's end-to-end fixture: flagged on every software-centric
/// protocol, clean under MESI (whose hardware coherence makes both calls
/// no-ops).
#[test]
fn skip_coherence_ops_fixture() {
    for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
        let (sys, run) = run_checked("cilk5-nq", proto, RuntimeKind::Hcc, |rt| {
            rt.skip_coherence_ops = true;
        });
        let report = check_run(&sys, &run.report);
        assert!(!report.is_clean(), "{proto:?}: ablation must be flagged");
        assert!(
            report.count(ViolationKind::LintAcquireNoInvalidate) >= 1,
            "{proto:?}:\n{}",
            report.render()
        );
        // The simulator's own stale-read accounting and the replayed
        // oracle must agree about whether data went stale.
        if run.report.stale_reads > 0 {
            assert!(
                report.count(ViolationKind::StaleMissingInvalidate)
                    + report.count(ViolationKind::StaleMissingFlush)
                    > 0,
                "{proto:?}: simulator saw {} stale reads but the oracle saw none:\n{}",
                run.report.stale_reads,
                report.render()
            );
        }
    }
    let (sys, run) = run_checked("cilk5-nq", Protocol::Mesi, RuntimeKind::Hcc, |rt| {
        rt.skip_coherence_ops = true;
    });
    let report = check_run(&sys, &run.report);
    assert!(report.is_clean(), "MESI:\n{}", report.render());
}

/// The `RacyTag` whitelist and the audited call sites in the source tree
/// pin each other: every tag in [`RacyTag::ALL`] is used by at least one
/// `*_racy` call site outside the engine, and no call site names a tag the
/// whitelist (and thus the checker's per-tag accounting) doesn't know.
#[test]
fn racy_whitelist_matches_audited_call_sites() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../crates");
    let mut used: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for dir in ["apps", "core", "bench"] {
        scan_dir(&format!("{root}/{dir}/src"), &mut used);
    }
    let whitelist: Vec<&str> = RacyTag::ALL.iter().map(|t| t.label()).collect();
    for (tag, sites) in &used {
        assert!(
            whitelist.contains(&tag.as_str()),
            "source uses RacyTag::{tag} ({sites} site(s)) but it is not in RacyTag::ALL"
        );
    }
    for tag in &whitelist {
        assert!(
            used.contains_key(*tag),
            "RacyTag::{tag} is whitelisted but no audited call site uses it"
        );
    }
}

/// Recursively collects `RacyTag::<Ident>` mentions under `dir`.
fn scan_dir(dir: &str, used: &mut std::collections::BTreeMap<String, usize>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {dir}: {e}")) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            scan_dir(path.to_str().unwrap(), used);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).unwrap();
            for (i, _) in text.match_indices("RacyTag::") {
                let rest = &text[i + "RacyTag::".len()..];
                let ident: String =
                    rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                if !ident.is_empty() && ident != "ALL" {
                    *used.entry(ident).or_insert(0) += 1;
                }
            }
        }
    }
}
