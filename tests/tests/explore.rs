//! Schedule-space exploration: golden pins for the default policy,
//! schedule-robustness of clean kernels, and a seeded mutation proving
//! the explorer catches what single-schedule checking cannot.
//!
//! The engine's only schedule freedom is the sequencer tie-break
//! ([`SchedulePolicy`]), so these tests pin three layers of the new
//! machinery:
//!
//! 1. making the default policy *explicit* (and running under an empty
//!    script) is bit-for-bit invisible — the golden `cilk5-nq` pin from
//!    `golden_trace.rs` must replay exactly, on all three backends;
//! 2. a clean kernel stays clean under *any* scripted permutation of its
//!    tie-breaks (kernel `verify()`, the full checker battery, and cycle
//!    conservation all hold);
//! 3. a seeded schedule-dependent lost-update bug that the default
//!    schedule masks is found by [`explore`], with a minimal replayable
//!    script.

use std::sync::Arc;

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_checker::check_run;
use bigtiny_checker::explore::{explore, ExploreBudget, ScheduleOutcome};
use bigtiny_checker::{audit_task_events_mode, AuditMode};
use bigtiny_core::{parallel_invoke, run_task_parallel, DequeKind, RuntimeConfig, RuntimeKind};
use bigtiny_engine::{
    run_system, AddrSpace, CheckMode, ExecBackend, Protocol, SchedulePolicy, ShScalar,
    SystemConfig, Worker,
};
use bigtiny_obs::CycleConservation;

/// The `("cilk5-nq", "b.T/MESI")` golden pin from `golden_trace.rs`:
/// simulated cycles and sequenced-op-stream hash at `AppSize::Test`,
/// default seed, default grain.
const NQ_PIN: (u64, u64) = (7808, 0x7cc8_52c9_2c4f_0918);

/// Spelling out `SchedulePolicy::MinCore` (the default) must replay the
/// golden op stream exactly, on every execution backend: the policy
/// plumbing may not perturb the default path by a single grant.
#[test]
fn explicit_min_core_policy_replays_the_golden_pin_on_every_backend() {
    let fibers_supported = cfg!(all(target_os = "linux", target_arch = "x86_64"));
    let app = app_by_name("cilk5-nq").unwrap();
    for backend in [ExecBackend::Threads, ExecBackend::Fibers, ExecBackend::ShardedFibers] {
        if backend != ExecBackend::Threads && !fibers_supported {
            continue;
        }
        let mut setup = Setup::bt_mesi();
        setup.sys = setup.sys.clone().with_backend(backend).with_schedule(SchedulePolicy::MinCore);
        let r = run_app(&setup, &app, AppSize::Test, 0);
        assert_eq!(
            (r.cycles, r.run.report.seq_op_hash),
            NQ_PIN,
            "explicit MinCore diverged from the golden pin on {backend:?}"
        );
        assert!(
            r.run.report.choice_points.is_empty(),
            "MinCore must record no choice points ({backend:?})"
        );
    }
}

/// The empty script replays the default tie-breaks bit-for-bit while
/// recording every tie it took: same cycles, same op hash, non-empty
/// choice points, each well-formed and resolved to the min-core default.
#[test]
fn empty_script_matches_min_core_bit_for_bit_and_records_ties() {
    let app = app_by_name("cilk5-nq").unwrap();
    let mut scripted = Setup::bt_mesi();
    scripted.sys = scripted.sys.clone().with_schedule(SchedulePolicy::Scripted(Vec::new()));
    let r = run_app(&scripted, &app, AppSize::Test, 0);
    assert_eq!(
        (r.cycles, r.run.report.seq_op_hash),
        NQ_PIN,
        "empty script diverged from the MinCore golden pin"
    );
    let cps = &r.run.report.choice_points;
    assert!(!cps.is_empty(), "an 8-core nqueens run must hit at least one sequencer tie");
    for cp in cps {
        assert!(cp.candidates.len() >= 2, "a choice point needs at least two tied waiters");
        assert_eq!(cp.chosen, 0, "an empty script must always take the default choice");
        assert_eq!(
            cp.candidates[cp.chosen as usize],
            *cp.candidates.iter().min().unwrap(),
            "the default choice must be the min-core candidate"
        );
    }
}

/// Property test: any scripted permutation of a clean kernel's tie-breaks
/// is still a correct execution. Random scripts (including out-of-range
/// entries, which clamp) must preserve kernel `verify()`, a clean full
/// checker battery, zero stale reads, and cycle conservation.
#[test]
fn random_scripts_of_a_clean_run_stay_clean() {
    // XorShift64: deterministic, seed fixed — failures are replayable.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let spec = app_by_name("cilk5-nq").unwrap();
    for trial in 0..6 {
        let len = 1 + (next() as usize) % 6;
        let script: Vec<u32> = (0..len).map(|_| (next() % 4) as u32).collect();
        let sys = SystemConfig::tiny_only(2, Protocol::Mesi)
            .with_check(CheckMode::Full)
            .with_schedule(SchedulePolicy::Scripted(script.clone()));
        let mut space = AddrSpace::new();
        let prepared = spec.prepare_default(&mut space, AppSize::Test);
        let rt = RuntimeConfig::new(RuntimeKind::Baseline);
        let run = run_task_parallel(&sys, &rt, &mut space, prepared.root);
        let ctx = format!("trial {trial}, script {script:?}");
        if let Err(e) = (prepared.verify)() {
            panic!("{ctx}: kernel verify failed under permuted schedule: {e}");
        }
        assert_eq!(run.report.stale_reads, 0, "{ctx}: stale reads under permuted schedule");
        let check = check_run(&sys, &run.report);
        assert!(
            check.violations.is_empty(),
            "{ctx}: checker violations under permuted schedule: {}",
            check.violations[0]
        );
        let cons = CycleConservation::from_report(&run.report);
        assert!(
            cons.holds(),
            "{ctx}: cycle conservation breach: buckets {} != core cycles {}",
            cons.bucket_sum(),
            cons.total_core_cycles
        );
    }
}

/// The Chase-Lev regression cell pinned from the `model_check`
/// deque-policy sweep: the local `fib` micro-kernel (one AMO per leaf —
/// the smallest workload that pushes, pops, steals, and joins) on a
/// 2-core MESI machine with `DequeKind::ChaseLev`. This is the cell
/// class where a steal CAS that consulted *fresher* deque state than the
/// thief's peeks was schedule-dependent: with a sequencer tie flipped,
/// the CAS could claim a task pushed after the thief's acquiring `tail`
/// peek (breaking the push-publish happens-before edge) or double-claim
/// the last element against the owner's pop. `cl_steal` now validates
/// the claim against the peeked `head`/`tail`, and every explored
/// tie-break must keep the full battery clean: kernel `verify()`, the
/// checker passes, zero stale reads, an exactly-once task-event audit,
/// and one fingerprint.
fn chase_lev_fib_run(script: &[u32]) -> ScheduleOutcome {
    let sys = SystemConfig::tiny_only(2, Protocol::Mesi)
        .with_check(CheckMode::Full)
        .with_schedule(SchedulePolicy::Scripted(script.to_vec()));
    let mut rt = RuntimeConfig::new(RuntimeKind::Baseline);
    rt.deque_kind = DequeKind::ChaseLev;
    rt.record_task_events = true;
    let mut space = AddrSpace::new();
    // fib(8) by one-AMO-per-leaf: leaves of value 1 bump the accumulator.
    let acc = Arc::new(ShScalar::new(&mut space, 0u64));
    let a = Arc::clone(&acc);
    fn fib(cx: &mut bigtiny_core::TaskCx<'_>, n: u64, acc: Arc<ShScalar<u64>>) {
        if n < 2 {
            cx.port().advance(2);
            if n == 1 {
                acc.amo(cx.port(), |c| *c += 1);
            }
            return;
        }
        let (x, y) = (Arc::clone(&acc), acc);
        parallel_invoke(cx, move |cx| fib(cx, n - 1, x), move |cx| fib(cx, n - 2, y));
    }
    let run = run_task_parallel(&sys, &rt, &mut space, move |cx| fib(cx, 8, a));
    let got = acc.host_read();
    let mut failure = (got != 21).then(|| format!("fib: counted {got}, expected 21"));
    if failure.is_none() && run.report.stale_reads > 0 {
        failure = Some(format!("{} stale reads", run.report.stale_reads));
    }
    if failure.is_none() {
        let audit = audit_task_events_mode(&run.task_events, AuditMode::ExactlyOnce, "fib");
        if !audit.is_clean() {
            failure = audit.violations.first().map(|v| format!("audit: {v}"));
        }
    }
    ScheduleOutcome {
        choices: run.report.choice_points.clone(),
        events: run.report.mem_events.clone(),
        report: check_run(&sys, &run.report),
        failure,
        fingerprint: Some(got),
    }
}

/// Regression pin for the Chase-Lev steal-validation fix: the fib cell
/// explores clean — no failing schedule, no checker violation, one
/// fingerprint, every racy tag schedule-invariant — and actually flips
/// at least one dependent tie (a vacuous one-schedule walk would hide a
/// reintroduced race exactly the way the pre-fix sweep did).
#[test]
fn chase_lev_steal_cell_is_schedule_independent() {
    let baseline = chase_lev_fib_run(&[]);
    assert!(baseline.failure.is_none(), "default schedule broken: {:?}", baseline.failure);
    assert!(!baseline.choices.is_empty(), "a 2-core fib run must hit at least one sequencer tie");
    let budget = ExploreBudget { max_choice_points: 5, max_schedules: 24 };
    let report = explore(&budget, chase_lev_fib_run);
    assert!(report.is_clean(), "Chase-Lev cell regressed:\n{}", report.render());
    assert!(
        report.schedules_explored >= 2,
        "only one schedule explored ({} pruned); the pin is vacuous",
        report.schedules_pruned
    );
}

/// A seeded schedule-dependent mutation: two cores AMO the same word at a
/// tied time, and the (deliberately wrong) "kernel" asserts core 1's
/// update lands last — true under the default min-core tie-break, false
/// the moment the tie flips. This run executes one scripted schedule.
fn lost_update_run(script: &[u32]) -> ScheduleOutcome {
    let sys = SystemConfig::tiny_only(2, Protocol::Mesi)
        .with_check(CheckMode::Full)
        .with_schedule(SchedulePolicy::Scripted(script.to_vec()));
    let mut space = AddrSpace::new();
    let cell = Arc::new(ShScalar::new(&mut space, 0u64));
    let (c0, c1) = (Arc::clone(&cell), Arc::clone(&cell));
    let workers: Vec<Worker> = vec![
        Box::new(move |port| {
            c0.amo(port, |v| *v = 1);
        }),
        Box::new(move |port| {
            c1.amo(port, |v| *v = 2);
        }),
    ];
    let report = run_system(&sys, workers);
    let got = cell.host_read();
    ScheduleOutcome {
        choices: report.choice_points.clone(),
        events: report.mem_events.clone(),
        report: check_run(&sys, &report),
        failure: (got != 2).then(|| format!("lost update: final value {got}, want 2")),
        fingerprint: Some(got),
    }
}

/// The default schedule masks the seeded bug; the explorer must find a
/// failing schedule anyway and hand back a minimal script that replays
/// it deterministically.
#[test]
fn explorer_finds_a_schedule_dependent_bug_the_default_schedule_misses() {
    // Single-schedule checking — the status quo before the explorer —
    // is blind to the mutation.
    let baseline = lost_update_run(&[]);
    assert!(
        baseline.failure.is_none(),
        "the default schedule must mask the seeded bug: {:?}",
        baseline.failure
    );
    assert!(!baseline.choices.is_empty(), "the tied AMOs must record a choice point");

    let budget = ExploreBudget { max_choice_points: 4, max_schedules: 16 };
    let report = explore(&budget, lost_update_run);
    assert!(!report.is_clean(), "the explorer must catch the seeded mutation");
    let f = &report.failures[0];
    assert!(f.what.contains("lost update"), "unexpected failure kind: {}", f.what);
    assert!(!f.script.is_empty(), "a failing script must pin at least one flipped tie");
    assert!(
        f.script.len() <= budget.max_choice_points,
        "repro script {:?} exceeds the depth budget",
        f.script
    );

    // The script is a deterministic repro: replaying it reproduces the
    // exact failure, outside the explorer.
    let replay = lost_update_run(&f.script);
    assert_eq!(replay.failure.as_deref(), Some(f.what.as_str()), "repro script did not replay");
}
