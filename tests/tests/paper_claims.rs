//! Shape-level regression tests for the paper's headline claims, at
//! evaluation scale. These take minutes, so they are `#[ignore]`d by
//! default; run them with:
//!
//! ```text
//! cargo test --release -p bigtiny-tests --test paper_claims -- --ignored
//! ```

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{geomean, run_app, Setup};
use bigtiny_core::RuntimeKind;
use bigtiny_engine::Protocol;

const SUBSET: [&str; 3] = ["cilk5-cs", "ligra-bfs", "ligra-cc"];

/// big.TINY/MESI outperforms the area-equivalent O3x8 (paper: 16.9 vs 14.7
/// geomean over serial).
#[test]
#[ignore = "evaluation-scale; minutes of wall time"]
fn big_tiny_beats_area_equivalent_o3x8() {
    let mut ratios = Vec::new();
    for name in SUBSET {
        let app = app_by_name(name).unwrap();
        let o3 = run_app(&Setup::o3(8), &app, AppSize::Eval, 0).cycles;
        let bt = run_app(&Setup::bt_mesi(), &app, AppSize::Eval, 0).cycles;
        ratios.push(o3 as f64 / bt as f64);
    }
    let g = geomean(ratios.iter().copied());
    assert!(g > 1.0, "b.T/MESI vs O3x8 geomean speedup {g:.2} must exceed 1");
}

/// DTS recovers the HCC performance loss on GPU-WB (paper: 0.96 -> 1.21;
/// here we require DTS to clearly beat the HCC runtime it replaces).
#[test]
#[ignore = "evaluation-scale; minutes of wall time"]
fn dts_beats_hcc_runtime_on_gwb() {
    let mut ratios = Vec::new();
    for name in SUBSET {
        let app = app_by_name(name).unwrap();
        let hcc = run_app(&Setup::bt_hcc(Protocol::GpuWb, false), &app, AppSize::Eval, 0).cycles;
        let dts = run_app(&Setup::bt_hcc(Protocol::GpuWb, true), &app, AppSize::Eval, 0).cycles;
        ratios.push(hcc as f64 / dts as f64);
    }
    let g = geomean(ratios.iter().copied());
    assert!(g > 1.05, "DTS vs HCC geomean speedup {g:.2} must be clearly above 1");
}

/// At 256 cores the DTS advantage grows and exceeds full hardware coherence
/// (Table V's headline).
#[test]
#[ignore = "evaluation-scale; minutes of wall time"]
fn dts_exceeds_mesi_at_256_cores() {
    // The 256-core machine needs the Large inputs to have enough
    // parallelism (Table V's setup).
    let app = app_by_name("ligra-cc").unwrap();
    let mesi =
        run_app(&Setup::bt_256(Protocol::Mesi, RuntimeKind::Baseline), &app, AppSize::Large, 0);
    let dts = run_app(&Setup::bt_256(Protocol::GpuWb, RuntimeKind::Dts), &app, AppSize::Large, 0);
    let ratio = mesi.cycles as f64 / dts.cycles as f64;
    assert!(ratio > 1.0, "256-core DTS-gwb vs MESI: {ratio:.2} must exceed 1");
}

/// Table IV's mechanism: DTS cuts tiny-core line invalidations and flushes
/// substantially at evaluation scale.
#[test]
#[ignore = "evaluation-scale; minutes of wall time"]
fn dts_cuts_invalidations_and_flushes_at_scale() {
    let app = app_by_name("ligra-bfs").unwrap();
    let hcc = run_app(&Setup::bt_hcc(Protocol::GpuWb, false), &app, AppSize::Eval, 0);
    let dts = run_app(&Setup::bt_hcc(Protocol::GpuWb, true), &app, AppSize::Eval, 0);
    let (hi, di) = (hcc.tiny_mem().lines_invalidated, dts.tiny_mem().lines_invalidated);
    let (hf, df) = (hcc.tiny_mem().lines_flushed, dts.tiny_mem().lines_flushed);
    assert!((di as f64) < 0.5 * hi as f64, "InvDec: {di} vs {hi}");
    assert!((df as f64) < 0.4 * hf as f64, "FlsDec: {df} vs {hf}");
    assert!(dts.l1d_hit_rate() > hcc.l1d_hit_rate(), "hit rate must increase");
}
