//! Task-granularity sweep (the paper's Figure 4 in miniature): sweep the
//! grain of a parallel triangle count on 64 tiny cores and watch the
//! speedup/parallelism trade-off play out.
//!
//! ```text
//! cargo run --release -p bigtiny-apps --example granularity_sweep
//! ```

use std::sync::Arc;

use bigtiny_apps::graph::Graph;
use bigtiny_apps::ligra_apps::tc::{host_triangles, run_tc, TcSlots};
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
use bigtiny_engine::ShVec;
use bigtiny_engine::{AddrSpace, Protocol, ShScalar, SystemConfig};

fn count_triangles(sys: &SystemConfig, grain: usize) -> (u64, bigtiny_core::TaskRun) {
    let mut space = AddrSpace::new();
    let g = Arc::new(Graph::rmat(&mut space, 512, 8, 0x716));
    let count = Arc::new(ShScalar::new(&mut space, 0u64));
    let slots = Arc::new(TcSlots {
        by_vertex: ShVec::new(&mut space, g.num_vertices(), 0u64),
        by_edge: ShVec::new(&mut space, g.num_edges(), 0u64),
    });
    let want = host_triangles(&g.host_adjacency());
    let (g2, c2, s2) = (Arc::clone(&g), Arc::clone(&count), Arc::clone(&slots));
    let run =
        run_task_parallel(sys, &RuntimeConfig::new(RuntimeKind::Baseline), &mut space, move |cx| {
            run_tc(cx, &g2, &c2, &s2, grain);
        });
    assert_eq!(count.host_read(), want, "triangle count verified");
    (run.report.completion_cycles, run)
}

fn main() {
    let serial_sys = SystemConfig::tiny_only(1, Protocol::Mesi);
    let (serial, _) = count_triangles(&serial_sys, usize::MAX >> 1);
    println!("serial (1 tiny core): {serial} cycles\n");

    let parallel_sys = SystemConfig::tiny_only(64, Protocol::Mesi);
    println!(
        "{:>6} {:>10} {:>9} {:>13} {:>7} {:>6}",
        "grain", "cycles", "speedup", "parallelism", "tasks", "IPT"
    );
    for grain in [1usize, 4, 16, 64, 256] {
        let (cycles, run) = count_triangles(&parallel_sys, grain);
        let ws = run.stats.workspan;
        println!(
            "{:>6} {:>10} {:>8.2}x {:>13.1} {:>7} {:>6.0}",
            grain,
            cycles,
            serial as f64 / cycles as f64,
            ws.parallelism(),
            ws.tasks,
            ws.instructions_per_task(),
        );
    }
    println!("\nToo fine a grain pays runtime overhead; too coarse a grain starves the cores.");
}
