//! Execution-trace visualization: run a small kernel with tracing enabled
//! and print an ASCII per-core timeline — steals, flushes, and idle tails
//! become visible at a glance.
//!
//! ```text
//! cargo run --release -p bigtiny-apps --example trace_timeline
//! ```

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
use bigtiny_engine::{render_timeline, AddrSpace, Protocol, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

fn main() {
    let mut sys = SystemConfig::big_tiny(
        "trace8",
        MeshConfig::with_topology(Topology::new(3, 3)),
        1,
        7,
        Protocol::GpuWb,
    );
    sys.trace = true;

    let app = app_by_name("ligra-bfs").expect("registered");
    let mut space = AddrSpace::new();
    let prepared = app.prepare_default(&mut space, AppSize::Test);
    let run =
        run_task_parallel(&sys, &RuntimeConfig::new(RuntimeKind::Dts), &mut space, prepared.root);
    (prepared.verify)().expect("verified");

    let total = run.report.completion_cycles;
    println!(
        "ligra-bfs on 8 cores (1 big + 7 tiny GPU-WB, DTS): {total} cycles, {} steals\n",
        run.stats.steals
    );
    // Render the whole run in ~100 columns.
    let per_col = (total / 100).max(1);
    print!("{}", render_timeline(&run.report.traces, 0, per_col, 100));
    println!(
        "\nCore 0 is the big core running the root task; tiny cores fill up as steals succeed."
    );
}
