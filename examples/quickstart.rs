//! Quickstart: run a parallel Fibonacci (the paper's Figure 2 example) on a
//! simulated big.TINY system with the DTS runtime, and print what the
//! simulator measured.
//!
//! ```text
//! cargo run --release -p bigtiny-apps --example quickstart
//! ```

use std::sync::Arc;

use bigtiny_core::{parallel_invoke, run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig};

/// Figure 2 of the paper, in this library's API: each task spawns two
/// children, waits for them, and combines their results through simulated
/// shared memory.
fn fib(cx: &mut TaskCx<'_>, out: Arc<ShVec<u64>>, slot: usize, n: u64) {
    cx.port().advance(6); // a few instructions of control flow
    if n < 2 {
        out.write(cx.port(), slot, n);
        return;
    }
    let (a, b) = (Arc::clone(&out), Arc::clone(&out));
    let (sa, sb) = (2 * slot + 1, 2 * slot + 2);
    parallel_invoke(cx, move |cx| fib(cx, a, sa, n - 1), move |cx| fib(cx, b, sb, n - 2));
    let x = out.read(cx.port(), sa);
    let y = out.read(cx.port(), sb);
    out.write(cx.port(), slot, x + y);
}

fn main() {
    // A 64-core big.TINY machine: 4 big MESI cores + 60 tiny GPU-WB cores,
    // with the direct-task-stealing runtime.
    let system = SystemConfig::big_tiny_hcc(Protocol::GpuWb);
    let runtime = RuntimeConfig::new(RuntimeKind::Dts);

    // Application data lives in simulated memory: every access costs cycles
    // and produces coherence traffic.
    let n = 16u64;
    let mut space = AddrSpace::new();
    let out = Arc::new(ShVec::new(&mut space, 1 << (n + 1), 0u64));

    let o = Arc::clone(&out);
    let run = run_task_parallel(&system, &runtime, &mut space, move |cx| fib(cx, o, 0, n));

    println!("fib({n}) = {}", out.host_read(0));
    println!("configuration:        {}", run.report.config_name);
    println!("simulated cycles:     {}", run.report.completion_cycles);
    println!("tasks executed:       {}", run.stats.tasks_executed);
    println!("steals (ULI):         {} ({} messages)", run.stats.steals, run.report.uli.messages);
    println!(
        "work/span:            {} / {} insts  (parallelism {:.1})",
        run.stats.workspan.work,
        run.stats.workspan.span,
        run.stats.workspan.parallelism()
    );
    println!("OCN traffic:          {} bytes", run.report.total_traffic_bytes());
    println!("stale reads:          {} (must be 0)", run.report.stale_reads);
    assert_eq!(out.host_read(0), 987);
    assert_eq!(run.report.stale_reads, 0);
}
