//! Protocol comparison: run one graph kernel on every coherence/runtime
//! configuration of the paper and compare cycles, L1 hit rate, coherence
//! operations, and network traffic — a miniature of Figures 5-8.
//!
//! ```text
//! cargo run --release -p bigtiny-apps --example protocol_comparison
//! ```

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
use bigtiny_engine::{AddrSpace, Protocol, SystemConfig};

fn main() {
    let app = app_by_name("ligra-bfs").expect("kernel registered");

    let configs: Vec<(SystemConfig, RuntimeKind)> = vec![
        (SystemConfig::big_tiny_mesi(), RuntimeKind::Baseline),
        (SystemConfig::big_tiny_hcc(Protocol::DeNovo), RuntimeKind::Hcc),
        (SystemConfig::big_tiny_hcc(Protocol::GpuWt), RuntimeKind::Hcc),
        (SystemConfig::big_tiny_hcc(Protocol::GpuWb), RuntimeKind::Hcc),
        (SystemConfig::big_tiny_hcc(Protocol::DeNovo), RuntimeKind::Dts),
        (SystemConfig::big_tiny_hcc(Protocol::GpuWt), RuntimeKind::Dts),
        (SystemConfig::big_tiny_hcc(Protocol::GpuWb), RuntimeKind::Dts),
    ];

    println!(
        "{:<16} {:>9} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "config+runtime", "cycles", "L1D hit", "inv", "flush", "steals", "OCN bytes"
    );
    let mut mesi_cycles = 0u64;
    for (sys, kind) in configs {
        let mut space = AddrSpace::new();
        let prepared = app.prepare_default(&mut space, AppSize::Test);
        let run = run_task_parallel(&sys, &RuntimeConfig::new(kind), &mut space, prepared.root);
        (prepared.verify)().expect("functional result verified");
        assert_eq!(run.report.stale_reads, 0, "DAG-consistent on real hardware");

        let tiny = sys.tiny_cores();
        let mem = run.report.mem_stats_over(&tiny);
        let label = format!("{}+{}", sys.name, kind.label());
        if mesi_cycles == 0 {
            mesi_cycles = run.report.completion_cycles;
        }
        println!(
            "{:<16} {:>9} {:>9.1}% {:>8} {:>8} {:>8} {:>12}",
            label,
            run.report.completion_cycles,
            100.0 * run.report.l1d_hit_rate(&tiny),
            mem.lines_invalidated,
            mem.lines_flushed,
            run.stats.steals,
            run.report.total_traffic_bytes(),
        );
    }
    println!("\nAll configurations verified against the serial reference, with zero stale reads.");
}
