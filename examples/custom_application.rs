//! Writing your own task-parallel application against the public API: a
//! parallel histogram with per-task private accumulation and an atomic
//! merge, run on heterogeneous coherence with direct task stealing.
//!
//! Demonstrates the full surface a downstream user touches: simulated
//! shared arrays ([`ShVec`]), `parallel_for` with an explicit grain,
//! AMO-based reduction, functional verification against host-side truth,
//! and the zero-stale-reads invariant.
//!
//! ```text
//! cargo run --release -p bigtiny-apps --example custom_application
//! ```

use std::sync::Arc;

use bigtiny_core::{parallel_for, run_task_parallel, RuntimeConfig, RuntimeKind};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig, XorShift64};

const BUCKETS: usize = 16;

fn main() {
    // Input: deterministic pseudo-random values, placed in simulated memory.
    let n = 4096usize;
    let mut rng = XorShift64::new(0x4157);
    let values: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 20)).collect();

    // Host-side ground truth.
    let mut expected = vec![0u64; BUCKETS];
    for v in &values {
        expected[(v % BUCKETS as u64) as usize] += 1;
    }

    let mut space = AddrSpace::new();
    let data = Arc::new(ShVec::from_vec(&mut space, values));
    let hist = Arc::new(ShVec::new(&mut space, BUCKETS, 0u64));

    let system = SystemConfig::big_tiny_hcc(Protocol::GpuWb);
    let runtime = RuntimeConfig::new(RuntimeKind::Dts);

    let (d, h) = (Arc::clone(&data), Arc::clone(&hist));
    let run = run_task_parallel(&system, &runtime, &mut space, move |cx| {
        let (d2, h2) = (Arc::clone(&d), Arc::clone(&h));
        parallel_for(cx, 0..n, 128, move |cx, range| {
            // Accumulate privately, then merge each nonzero bucket with one
            // AMO — the same per-leaf reduction pattern the Ligra kernels
            // use to keep at-L2 atomics rare.
            let mut local = [0u64; BUCKETS];
            for i in range {
                let v = d2.read(cx.port(), i);
                cx.port().advance(4);
                local[(v % BUCKETS as u64) as usize] += 1;
            }
            for (b, count) in local.into_iter().enumerate() {
                if count > 0 {
                    h2.amo(cx.port(), b, |x| *x += count);
                }
            }
        });
    });

    println!("histogram: {:?}", hist.snapshot());
    assert_eq!(hist.snapshot(), expected, "parallel histogram matches host truth");
    assert_eq!(run.report.stale_reads, 0);
    println!(
        "cycles: {}   tasks: {}   steals: {}   parallelism: {:.1}",
        run.report.completion_cycles,
        run.stats.tasks_executed,
        run.stats.steals,
        run.stats.workspan.parallelism()
    );
}
