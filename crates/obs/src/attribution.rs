//! Cycle attribution: the conservation table that accounts for every
//! core-cycle of a run, and the what-if projector built on critical-path
//! replays.
//!
//! The conservation invariant is the load-bearing property: the six
//! buckets of [`CycleConservation`] partition the nine engine time
//! categories, so their sum equals the sum of final core clocks *exactly*
//! — any drift means the engine charged a cycle it never classified.
//! `tests/tests/critpath.rs` checks the invariant across the full
//! kernel × configuration matrix.

use bigtiny_core::TaskRun;
use bigtiny_engine::{RunReport, TimeBreakdown, TimeCategory};

use crate::critpath::{replay_run, CritPath, CycleLens};

/// Where every core-cycle of a run went, folded into the six buckets the
/// profiler reports. Buckets sum exactly to the total core-cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CycleConservation {
    /// Instruction execution plus demand load/store stalls.
    pub compute: u64,
    /// Steal-protocol overhead: ULI send/receive/handler cycles plus
    /// waiting for steal responses.
    pub steal_protocol: u64,
    /// Atomic-memory-operation stalls.
    pub amo: u64,
    /// Bulk self-invalidations.
    pub invalidate: u64,
    /// Bulk cache flushes.
    pub flush: u64,
    /// Idle: steal back-off and waiting for work.
    pub idle: u64,
    /// Sum of every core's final clock — what the buckets must add up to.
    pub total_core_cycles: u64,
}

impl CycleConservation {
    /// Builds the table from a run report. Needs nothing armed: the
    /// per-core breakdowns are always measured.
    pub fn from_report(rep: &RunReport) -> Self {
        use TimeCategory::*;
        let mut total = TimeBreakdown::new();
        for b in &rep.breakdowns {
            total += *b;
        }
        CycleConservation {
            compute: total.get(Compute) + total.get(Load) + total.get(Store),
            steal_protocol: total.get(Uli) + total.get(UliWait),
            amo: total.get(Atomic),
            invalidate: total.get(Invalidate),
            flush: total.get(Flush),
            idle: total.get(Idle),
            total_core_cycles: rep.core_cycles.iter().sum(),
        }
    }

    /// Sum of the six buckets.
    pub fn bucket_sum(&self) -> u64 {
        self.compute + self.steal_protocol + self.amo + self.invalidate + self.flush + self.idle
    }

    /// The conservation invariant: buckets account for every core-cycle.
    pub fn holds(&self) -> bool {
        self.bucket_sum() == self.total_core_cycles
    }

    /// All `(label, cycles)` bucket pairs in display order, zero buckets
    /// included — the stable surface the metrics schema keys on.
    pub fn pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("compute", self.compute),
            ("steal_protocol", self.steal_protocol),
            ("amo", self.amo),
            ("invalidate", self.invalidate),
            ("flush", self.flush),
            ("idle", self.idle),
        ]
    }
}

/// Verifies the structural invariants of a run's attribution spans
/// (requires [`bigtiny_engine::SystemConfig::attr`]): per core, spans
/// tile `[0, clock]` without gaps or overlap, each span's breakdown
/// totals its length, and the per-core span breakdowns sum to the core's
/// reported breakdown.
pub fn verify_attr_spans(rep: &RunReport) -> Result<(), String> {
    if rep.attr_spans.iter().all(Vec::is_empty) && rep.core_cycles.iter().any(|&c| c > 0) {
        return Err("no attribution spans recorded (SystemConfig::attr not armed)".into());
    }
    for (core, spans) in rep.attr_spans.iter().enumerate() {
        let clock = rep.core_cycles[core];
        let mut at = 0u64;
        let mut sum = TimeBreakdown::new();
        for (i, s) in spans.iter().enumerate() {
            if s.start != at {
                return Err(format!(
                    "core {core} span {i}: starts at {} but previous span ended at {at}",
                    s.start
                ));
            }
            if s.end <= s.start {
                return Err(format!(
                    "core {core} span {i}: empty or inverted [{}, {})",
                    s.start, s.end
                ));
            }
            if s.breakdown.total() != s.end - s.start {
                return Err(format!(
                    "core {core} span {i}: breakdown totals {} for a {}-cycle interval",
                    s.breakdown.total(),
                    s.end - s.start
                ));
            }
            sum += s.breakdown;
            at = s.end;
        }
        if at != clock {
            return Err(format!("core {core}: spans end at {at}, clock is {clock}"));
        }
        if sum != rep.breakdowns[core] {
            return Err(format!("core {core}: span breakdowns do not sum to the core breakdown"));
        }
    }
    Ok(())
}

/// One lens's work/span numbers and the completion bound they imply.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Projection {
    /// The lens replayed under.
    pub lens: CycleLens,
    /// T1 under the lens.
    pub work: u64,
    /// T∞ under the lens.
    pub span: u64,
    /// Greedy-scheduler completion bound `max(⌈work/P⌉, span)`.
    pub greedy_bound: u64,
    /// Measured completion over the bound: the speedup a perfect
    /// scheduler could at best deliver with the lens's stripped
    /// overheads removed. `0` when the bound is degenerate.
    pub speedup_bound: f64,
}

/// The full what-if analysis of one profiled run.
#[derive(Clone, Debug)]
pub struct WhatIf {
    /// Measured completion cycles Tp.
    pub measured_tp: u64,
    /// Worker (core) count P.
    pub workers: u64,
    /// The burdened replay, chain included — what actually happened.
    pub burdened: CritPath,
    /// Burdened bound (speedup ≥ 1 would mean the scheduler beat greedy).
    pub measured: Projection,
    /// Steal protocol, response waits, and idle back-off zeroed.
    pub zero_steal: Projection,
    /// Atomics, invalidations, and flushes zeroed.
    pub zero_coherence: Projection,
    /// Every overhead category zeroed: the ideal P-core greedy bound on
    /// pure compute.
    pub work_only: Projection,
}

fn projection(cp: &CritPath, workers: u64, tp: u64) -> Projection {
    let greedy = cp.work.div_ceil(workers.max(1)).max(cp.span);
    Projection {
        lens: cp.lens,
        work: cp.work,
        span: cp.span,
        greedy_bound: greedy,
        speedup_bound: if greedy == 0 { 0.0 } else { tp as f64 / greedy as f64 },
    }
}

impl WhatIf {
    /// Replays `run` under every lens. Fails unless the run recorded both
    /// task events and attribution spans ([`crate::critpath::profiled`]).
    pub fn project(run: &TaskRun) -> Result<WhatIf, String> {
        if !crate::critpath::profiled(run) {
            return Err(
                "run is not profiled: arm SystemConfig::attr and RuntimeConfig::record_task_events"
                    .into(),
            );
        }
        let workers = run.report.core_cycles.len() as u64;
        let tp = run.report.completion_cycles;
        let burdened = replay_run(run, CycleLens::Burdened)?;
        let zero_steal = replay_run(run, CycleLens::ZeroSteal)?;
        let zero_coherence = replay_run(run, CycleLens::ZeroCoherence)?;
        let work_only = replay_run(run, CycleLens::WorkOnly)?;
        Ok(WhatIf {
            measured_tp: tp,
            workers,
            measured: projection(&burdened, workers, tp),
            zero_steal: projection(&zero_steal, workers, tp),
            zero_coherence: projection(&zero_coherence, workers, tp),
            work_only: projection(&work_only, workers, tp),
            burdened,
        })
    }

    /// The three what-if projections in display order.
    pub fn projections(&self) -> [&Projection; 3] {
        [&self.zero_steal, &self.zero_coherence, &self.work_only]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_run, small_run_profiled};
    use bigtiny_core::RuntimeKind;

    #[test]
    fn conservation_holds_without_anything_armed() {
        for kind in [RuntimeKind::Baseline, RuntimeKind::Hcc, RuntimeKind::Dts] {
            let run = small_run(kind);
            let cons = CycleConservation::from_report(&run.report);
            assert!(
                cons.holds(),
                "{kind:?}: buckets {} != cycles {}",
                cons.bucket_sum(),
                cons.total_core_cycles
            );
            assert!(cons.compute > 0);
            if kind == RuntimeKind::Dts {
                assert!(cons.steal_protocol > 0, "DTS steals ride ULI");
            }
        }
    }

    #[test]
    fn attr_spans_tile_each_core_exactly() {
        let run = small_run_profiled(RuntimeKind::Dts, 10);
        verify_attr_spans(&run.report).unwrap();
        // An unprofiled run fails loudly rather than vacuously passing.
        let plain = small_run(RuntimeKind::Dts);
        assert!(verify_attr_spans(&plain.report).unwrap_err().contains("not armed"));
    }

    #[test]
    fn what_if_projections_are_ordered_and_bound_measured_time() {
        let run = small_run_profiled(RuntimeKind::Dts, 10);
        let w = WhatIf::project(&run).unwrap();
        // Stripping categories can only shrink work and span, and
        // work-only strips a superset of both other lenses.
        for p in w.projections() {
            assert!(p.work <= w.measured.work, "{:?}", p.lens);
            assert!(p.span <= w.measured.span, "{:?}", p.lens);
            assert!(w.work_only.work <= p.work, "{:?}", p.lens);
            assert!(w.work_only.span <= p.span, "{:?}", p.lens);
        }
        // The burdened greedy bound is a true lower bound on the measured
        // completion, so the measured "speedup" over it is at least 1.
        assert!(w.measured.greedy_bound <= w.measured_tp);
        assert!(w.measured.speedup_bound >= 1.0);
        // Removing overheads can only lower the bound further.
        for p in w.projections() {
            assert!(p.greedy_bound <= w.measured.greedy_bound, "{:?}", p.lens);
            assert!(p.speedup_bound >= w.measured.speedup_bound, "{:?}", p.lens);
        }
        // Unprofiled runs are rejected.
        assert!(WhatIf::project(&small_run(RuntimeKind::Dts))
            .unwrap_err()
            .contains("not profiled"));
    }
}
