//! Black-box dumps: structured JSON serialization of flight-recorder
//! tails, plus a Perfetto-loadable tail trace.
//!
//! The engine's always-on per-core flight recorder keeps the last
//! [`bigtiny_engine::SystemConfig::flight_ring`] events of every core. On
//! a watchdog trip or worker panic the engine snapshots everything into a
//! [`DiagnosticBundle`]; harnesses retrieve it with
//! [`bigtiny_engine::last_bundle_for`] and call [`blackbox_from_bundle`]
//! to write the dump. A *clean* run that nevertheless needs forensics (a
//! dirty crash audit, an explicit `--blackbox-out`) dumps straight from
//! its [`RunReport`] via [`blackbox_from_report`].
//!
//! Each dump is one JSON document tagged [`BLACKBOX_SCHEMA`] whose header
//! (`config`, `backend`, `faults`) is a self-contained repro recipe, and
//! [`blackbox_tail_trace`] re-renders any dump as a Chrome trace-event
//! document of instant events (one Perfetto thread per core) that passes
//! [`validate_chrome_trace`](crate::validate_chrome_trace).

use bigtiny_engine::{DiagnosticBundle, FlightEvent, PoisonReason, RunReport};

use crate::json::Json;

/// Schema tag carried in every black-box document.
pub const BLACKBOX_SCHEMA: &str = "bigtiny-obs-blackbox-v1";

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn flight_json(tail: &[FlightEvent]) -> Json {
    Json::Arr(
        tail.iter()
            .map(|e| {
                let mut fields = vec![("t", Json::u64(e.time)), ("ev", Json::str(e.kind.label()))];
                if let Some((key, value)) = e.kind.arg() {
                    fields.push((key, Json::u64(value)));
                }
                obj(fields)
            })
            .collect(),
    )
}

fn header(reason: &str, config: &str, backend: &str, faults: &str) -> Vec<(String, Json)> {
    vec![
        ("schema".to_owned(), Json::str(BLACKBOX_SCHEMA)),
        ("reason".to_owned(), Json::str(reason)),
        ("config".to_owned(), Json::str(config)),
        ("backend".to_owned(), Json::str(backend)),
        ("faults".to_owned(), Json::str(faults)),
    ]
}

/// Renders a [`PoisonReason`] as the dump's `reason` string.
pub fn reason_label(reason: PoisonReason) -> String {
    match reason {
        PoisonReason::WorkerPanic => "worker_panic".to_owned(),
        PoisonReason::Watchdog { core, time } => format!("watchdog(core={core},cycle={time})"),
    }
}

/// Serializes a crash-time [`DiagnosticBundle`] — the black box proper —
/// into one structured JSON document.
pub fn blackbox_from_bundle(bundle: &DiagnosticBundle) -> Json {
    let mut fields = header(
        &reason_label(bundle.reason),
        &bundle.config_name,
        &bundle.backend,
        &bundle.fault_spec,
    );
    fields.push(("total_grants".to_owned(), Json::u64(bundle.total_grants)));
    fields.push(("uli_messages".to_owned(), Json::u64(bundle.uli_messages)));
    fields.push(("uli_nacks".to_owned(), Json::u64(bundle.uli_nacks)));
    let cores = bundle
        .cores
        .iter()
        .map(|c| {
            let mut cf = vec![
                ("core", Json::u64(c.core as u64)),
                ("clock", Json::u64(c.clock)),
                ("instructions", Json::u64(c.instructions)),
                ("idle_cycles", Json::u64(c.idle_cycles)),
                ("grants", Json::u64(c.seq.grants)),
                ("last_grant", Json::u64(c.seq.last_time)),
                ("retired", Json::Bool(c.seq.retired)),
            ];
            if let Some(t) = c.seq.waiting_at {
                cf.push(("waiting_at", Json::u64(t)));
            }
            cf.push(("flight_total", Json::u64(c.flight_total)));
            cf.push(("flight", flight_json(&c.flight_tail)));
            obj(cf)
        })
        .collect();
    fields.push(("cores".to_owned(), Json::Arr(cores)));
    Json::Obj(fields)
}

/// Serializes the flight tails of a *completed* run — an explicit or
/// audit-triggered dump. `reason` names the trigger (e.g. `"explicit"`,
/// `"crash_audit"`); `backend` and `fault_spec` complete the repro header
/// (the report does not carry them itself).
pub fn blackbox_from_report(
    reason: &str,
    backend: &str,
    fault_spec: &str,
    report: &RunReport,
) -> Json {
    let mut fields = header(reason, &report.config_name, backend, fault_spec);
    fields.push(("total_grants".to_owned(), Json::u64(report.seq_grants)));
    fields.push(("uli_messages".to_owned(), Json::u64(report.uli.messages)));
    fields.push(("uli_nacks".to_owned(), Json::u64(report.uli.nacks)));
    let cores = report
        .flight
        .iter()
        .enumerate()
        .map(|(core, tail)| {
            obj(vec![
                ("core", Json::u64(core as u64)),
                ("clock", Json::u64(report.core_cycles[core])),
                ("instructions", Json::u64(report.instructions[core])),
                ("flight_total", Json::u64(report.flight_totals[core])),
                ("flight", flight_json(tail)),
            ])
        })
        .collect();
    fields.push(("cores".to_owned(), Json::Arr(cores)));
    Json::Obj(fields)
}

/// Counts from a structurally valid black-box document.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BlackboxSummary {
    /// Cores in the dump.
    pub cores: usize,
    /// Cores whose flight tail is non-empty.
    pub cores_with_tail: usize,
    /// Total flight events across all tails.
    pub events: usize,
}

/// Structurally validates a black-box document: the [`BLACKBOX_SCHEMA`]
/// tag, the repro header, and per-core tails each sorted by time with
/// every event carrying a label and a timestamp.
pub fn validate_blackbox(doc: &Json) -> Result<BlackboxSummary, String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing schema tag")?;
    if schema != BLACKBOX_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BLACKBOX_SCHEMA:?}"));
    }
    for key in ["reason", "config", "backend", "faults"] {
        doc.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing header {key:?}"))?;
    }
    doc.get("total_grants").and_then(Json::as_num).ok_or("missing total_grants")?;
    let cores = doc.get("cores").and_then(Json::as_arr).ok_or("missing cores array")?;
    let mut summary = BlackboxSummary { cores: cores.len(), ..Default::default() };
    for c in cores {
        let id = c.get("core").and_then(Json::as_num).ok_or("core entry missing id")?;
        c.get("flight_total").and_then(Json::as_num).ok_or("core missing flight_total")?;
        let tail = c.get("flight").and_then(Json::as_arr).ok_or("core missing flight tail")?;
        let mut last = f64::NEG_INFINITY;
        for e in tail {
            e.get("ev").and_then(Json::as_str).ok_or("flight event missing label")?;
            let t = e.get("t").and_then(Json::as_num).ok_or("flight event missing time")?;
            if t < last {
                return Err(format!("core {id}: flight tail out of order ({t} after {last})"));
            }
            last = t;
        }
        if !tail.is_empty() {
            summary.cores_with_tail += 1;
        }
        summary.events += tail.len();
    }
    Ok(summary)
}

/// Re-renders a black-box document as a Chrome trace-event document: one
/// Perfetto thread per core, one `"i"` instant event per flight-tail
/// entry. Loadable at `ui.perfetto.dev`; passes
/// [`validate_chrome_trace`](crate::validate_chrome_trace).
pub fn blackbox_tail_trace(doc: &Json) -> Result<Json, String> {
    validate_blackbox(doc)?;
    let config = doc.get("config").and_then(Json::as_str).unwrap_or("?");
    let reason = doc.get("reason").and_then(Json::as_str).unwrap_or("?");
    let mut events: Vec<Json> = vec![obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::u64(1)),
        (
            "args",
            Json::Obj(vec![("name".into(), Json::str(format!("black box: {config} ({reason})")))]),
        ),
    ])];
    for c in doc.get("cores").and_then(Json::as_arr).expect("validated") {
        let core = c.get("core").and_then(Json::as_num).expect("validated") as u64;
        events.push(obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(1)),
            ("tid", Json::u64(core)),
            ("args", Json::Obj(vec![("name".into(), Json::str(format!("core {core}")))])),
        ]));
        for e in c.get("flight").and_then(Json::as_arr).expect("validated") {
            let label = e.get("ev").and_then(Json::as_str).expect("validated").to_owned();
            let t = e.get("t").and_then(Json::as_num).expect("validated");
            events.push(obj(vec![
                ("name", Json::Str(label)),
                ("cat", Json::str("flight")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", Json::Num(t)),
                ("pid", Json::u64(1)),
                ("tid", Json::u64(core)),
            ]));
        }
    }
    Ok(Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ns")),
        (
            "metadata".into(),
            Json::Obj(vec![
                ("schema".into(), Json::str(crate::TRACE_SCHEMA)),
                ("time_unit".into(), Json::str("simulated cycles")),
                ("source".into(), Json::str(BLACKBOX_SCHEMA)),
            ]),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::testutil::small_run_n;
    use crate::validate_chrome_trace;
    use bigtiny_core::RuntimeKind;

    #[test]
    fn report_dump_validates_and_traces() {
        let run = small_run_n(RuntimeKind::Dts, 11, false, false);
        let doc = blackbox_from_report("explicit", "threads", "none", &run.report);
        let s = validate_blackbox(&doc).expect("self-emitted dump validates");
        assert_eq!(s.cores, run.report.core_cycles.len());
        assert!(s.cores_with_tail > 0, "default-on ring captured events");
        assert!(s.events > 0);
        // Survives its own strict parser round trip.
        let reparsed = parse_json(&doc.to_json()).unwrap();
        assert_eq!(validate_blackbox(&reparsed).unwrap(), s);
        // And re-renders to a structurally valid Perfetto document.
        let trace = blackbox_tail_trace(&reparsed).unwrap();
        let ts = validate_chrome_trace(&trace).unwrap();
        assert_eq!(ts.instants, s.events);
        assert_eq!(ts.metadata, 1 + s.cores);
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        assert!(validate_blackbox(&parse_json("{}").unwrap()).is_err());
        let wrong = r#"{"schema":"other","reason":"x","config":"c","backend":"b","faults":"none","total_grants":1,"cores":[]}"#;
        assert!(validate_blackbox(&parse_json(wrong).unwrap()).unwrap_err().contains("schema"));
        let unordered = r#"{"schema":"bigtiny-obs-blackbox-v1","reason":"x","config":"c",
            "backend":"b","faults":"none","total_grants":1,
            "cores":[{"core":0,"flight_total":2,
                      "flight":[{"t":5,"ev":"grant"},{"t":3,"ev":"grant"}]}]}"#;
        assert!(validate_blackbox(&parse_json(unordered).unwrap())
            .unwrap_err()
            .contains("out of order"));
    }

    #[test]
    fn reason_labels() {
        assert_eq!(reason_label(PoisonReason::WorkerPanic), "worker_panic");
        assert_eq!(
            reason_label(PoisonReason::Watchdog { core: 3, time: 99 }),
            "watchdog(core=3,cycle=99)"
        );
    }
}
