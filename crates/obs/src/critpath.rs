//! Critical-path profiler: cycle-accurate work/span analysis over the
//! task DAG, replayed from recorded task-lifecycle events and the
//! engine's per-task attribution spans.
//!
//! The runtime's online profiler measures work and span in *user
//! instructions* ([`bigtiny_core::WorkSpan`]). This module recomputes
//! both in *cycles*, weighting every DAG node with the cycles the machine
//! actually charged while that task ran — so the span it reports is the
//! **burdened** critical path: compute plus the steal-protocol ULI
//! traffic, steal-response waits, coherence stalls, and idle back-off
//! that lay on it. Re-running the replay under a different [`CycleLens`]
//! strips chosen overhead categories from every node, which is what the
//! what-if projector in [`crate::attribution`] is built on.
//!
//! # Replay semantics
//!
//! The replay mirrors the online profiler's recursion exactly, swapping
//! instruction tallies for attributed cycles:
//!
//! * every cycle a core charged while task `t` owned the core (per
//!   [`AttrSpan`]) accrues to `path(t)` — including waits, which is the
//!   burden;
//! * `Spawn { parent }` snapshots `spawn_path(child) = path(parent)`;
//! * at the child's `ExecEnd`, `span(child) = max(path, candidate)` folds
//!   into `candidate(parent) = max(candidate, spawn_path + span(child))`;
//! * at `Join`, `path = max(path, candidate)`.
//!
//! The root's final span is the program span T∞; the sum of all
//! task-attributed cycles is the work T1. Because the harness attributes
//! core 0's whole timeline (through `set_done`) to the root, the
//! fault-free measured completion time Tp obeys `⌈T1/P⌉ ≤ Tp ≤ T1` and
//! `T∞ ≤ Tp` exactly, not approximately — `tests/tests/critpath.rs` pins
//! those bounds across the kernel matrix.

use std::rc::Rc;

use bigtiny_core::{TaskEvent, TaskEventKind, TaskRun};
use bigtiny_engine::{AttrSpan, TimeBreakdown, TimeCategory};

/// Which time categories a replay counts when weighting DAG nodes.
///
/// Each lens answers one what-if question: how long would the critical
/// path (and the total work) be if the machine never charged the stripped
/// categories? The projections are optimistic bounds — removing an
/// overhead in reality also reshuffles scheduling — but they bracket
/// where the cycles on the path went.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CycleLens {
    /// Every category — the burdened profile, what actually happened.
    Burdened,
    /// Strips the steal protocol and its consequences: ULI
    /// send/receive/handler cycles, steal-response waits, and idle
    /// back-off.
    ZeroSteal,
    /// Strips coherence overhead: atomics, self-invalidations, flushes.
    ZeroCoherence,
    /// Compute + load + store only — every overhead category stripped.
    WorkOnly,
}

impl CycleLens {
    /// Label used in reports and metrics documents.
    pub fn label(self) -> &'static str {
        match self {
            CycleLens::Burdened => "burdened",
            CycleLens::ZeroSteal => "zero_steal",
            CycleLens::ZeroCoherence => "zero_coherence",
            CycleLens::WorkOnly => "work_only",
        }
    }

    /// Cycles of `b` this lens counts.
    pub fn weigh(self, b: &TimeBreakdown) -> u64 {
        use TimeCategory::*;
        match self {
            CycleLens::Burdened => b.total(),
            CycleLens::ZeroSteal => b.total() - b.get(Uli) - b.get(UliWait) - b.get(Idle),
            CycleLens::ZeroCoherence => {
                b.total() - b.get(Atomic) - b.get(Invalidate) - b.get(Flush)
            }
            CycleLens::WorkOnly => b.get(Compute) + b.get(Load) + b.get(Store),
        }
    }
}

/// One task on the critical-path chain, root first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChainLink {
    /// Task id.
    pub task: u32,
    /// Cycle the task body started executing.
    pub exec_begin: u64,
    /// Cycle the task body returned.
    pub exec_end: u64,
    /// Core the task executed on.
    pub core: usize,
    /// Whether a thief claimed this task from another core's deque.
    pub stolen: bool,
}

/// The result of one critical-path replay.
#[derive(Clone, Debug)]
pub struct CritPath {
    /// The lens the replay weighed cycles under.
    pub lens: CycleLens,
    /// T1: total lens-weighted cycles attributed to tasks.
    pub work: u64,
    /// T∞: the root task's final span — the longest weighted
    /// spawn-to-join chain through the DAG.
    pub span: u64,
    /// Tasks seen in the event stream.
    pub tasks: u64,
    /// Steal claims seen in the event stream.
    pub steals: u64,
    /// Category breakdown of the cycles on the winning chain (always full
    /// categories, whatever the lens counted).
    pub span_breakdown: TimeBreakdown,
    /// The tasks the critical path runs through, in path order starting at
    /// the root. A task's chain interleaves its own serial cycles with the
    /// complete chains of the children it joined on the path, so parents
    /// precede (and their execution windows contain) the children they
    /// descend into.
    pub chain: Vec<ChainLink>,
}

impl CritPath {
    /// Logical parallelism T1/T∞.
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            self.work as f64 / self.span as f64
        }
    }

    /// Steal claims among the chain's tasks — how many times the critical
    /// path crossed cores.
    pub fn chain_steals(&self) -> u64 {
        self.chain.iter().filter(|l| l.stolen).count() as u64
    }
}

/// Structural counts from a well-formed task-event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DagCheck {
    /// Tasks spawned (including the root).
    pub tasks: u64,
    /// Tasks whose body ran to completion.
    pub executed: u64,
    /// Steal claims.
    pub steals: u64,
    /// Completed `wait()` joins.
    pub joins: u64,
    /// Crash-recovery re-spawns of tasks lost on dead cores.
    pub respawns: u64,
    /// Orphan tasks discarded from dead cores' deques.
    pub discards: u64,
    /// Multiplicity-deque duplicate re-executions (owner and thief both
    /// claimed a slot, or a seeded `DupTask` mutation fired).
    pub duplicates: u64,
}

/// Checks that a recorded task-event stream describes a well-formed
/// spawn/join DAG:
///
/// * every task is spawned exactly once, before any of its other events;
/// * every `Spawn`'s parent was spawned earlier (so parent links are
///   acyclic), and exactly one task — the root — has no parent;
/// * each task begins and ends execution at most once, in order, and
///   never ends without beginning;
/// * event cycles are non-decreasing per core.
///
/// Crash-recovery streams stay well-formed under two relaxations: a task
/// that began but never ended is accepted when it — or an ancestor — was
/// covered by a `Respawn` (its core fail-stopped mid-execution and a
/// replacement re-runs the subtree), and `Discarded` orphans are accepted
/// as terminal without ever executing.
///
/// Multiplicity-deque streams add one more shape: a `Duplicate { of }`
/// enters a parentless non-root task that re-executes `of`'s body. Unlike
/// a `Respawn` it does not *cover* the original — the original also runs
/// to completion — so it never relaxes the began-but-never-ended check.
pub fn check_task_dag(events: &[TaskEvent]) -> Result<DagCheck, String> {
    // Task id -> (spawned, began, ended); ids are dense.
    let mut state: Vec<(bool, bool, bool)> = Vec::new();
    let mut parents: Vec<Option<u32>> = Vec::new();
    let mut respawned_of: Vec<bool> = Vec::new();
    let mut last_cycle_per_core: Vec<u64> = Vec::new();
    let mut check = DagCheck::default();
    let mut roots = 0u64;
    for e in events {
        let id = e.task as usize;
        if state.len() <= id {
            state.resize(id + 1, (false, false, false));
            parents.resize(id + 1, None);
            respawned_of.resize(id + 1, false);
        }
        if last_cycle_per_core.len() <= e.core {
            last_cycle_per_core.resize(e.core + 1, 0);
        }
        if e.cycle < last_cycle_per_core[e.core] {
            return Err(format!(
                "core {} went back in time: cycle {} after {}",
                e.core, e.cycle, last_cycle_per_core[e.core]
            ));
        }
        last_cycle_per_core[e.core] = e.cycle;
        match e.kind {
            TaskEventKind::Spawn { parent } => {
                if state[id].0 {
                    return Err(format!("task {id} spawned twice"));
                }
                state[id].0 = true;
                parents[id] = parent;
                check.tasks += 1;
                match parent {
                    None => roots += 1,
                    Some(p) => {
                        if p as usize == id {
                            return Err(format!("task {id} is its own parent"));
                        }
                        if !state.get(p as usize).is_some_and(|s| s.0) {
                            return Err(format!(
                                "task {id} spawned by task {p}, which was never spawned"
                            ));
                        }
                    }
                }
            }
            TaskEventKind::Respawn { of } => {
                if state[id].0 {
                    return Err(format!("task {id} spawned twice"));
                }
                if !state.get(of as usize).is_some_and(|s| s.0) {
                    return Err(format!("task {id} respawns task {of}, which was never spawned"));
                }
                state[id].0 = true;
                // The replacement re-runs the dead task's subtree in its
                // parent's stead.
                parents[id] = parents[of as usize];
                respawned_of[of as usize] = true;
                check.tasks += 1;
                check.respawns += 1;
            }
            TaskEventKind::Duplicate { of } => {
                if state[id].0 {
                    return Err(format!("task {id} spawned twice"));
                }
                if !state.get(of as usize).is_some_and(|s| s.0) {
                    return Err(format!("task {id} duplicates task {of}, which was never spawned"));
                }
                // Parentless by construction (no join obligation), but not
                // a root: `roots` counts only parentless `Spawn`s.
                state[id].0 = true;
                check.tasks += 1;
                check.duplicates += 1;
            }
            TaskEventKind::Discarded => {
                if !state[id].0 {
                    return Err(format!("task {id} discarded without a Spawn"));
                }
                if state[id].1 {
                    return Err(format!("task {id} discarded after it began executing"));
                }
                check.discards += 1;
            }
            TaskEventKind::ExecBegin => {
                if !state[id].0 {
                    return Err(format!("task {id} began executing without a Spawn"));
                }
                if state[id].1 {
                    return Err(format!("task {id} began executing twice"));
                }
                state[id].1 = true;
            }
            TaskEventKind::ExecEnd => {
                if !state[id].1 {
                    return Err(format!("task {id} ended without beginning"));
                }
                if state[id].2 {
                    return Err(format!("task {id} ended twice"));
                }
                state[id].2 = true;
                check.executed += 1;
            }
            TaskEventKind::Stolen { .. } => {
                if !state[id].0 {
                    return Err(format!("task {id} stolen without a Spawn"));
                }
                check.steals += 1;
            }
            TaskEventKind::Join => {
                if !state[id].0 {
                    return Err(format!("task {id} joined without a Spawn"));
                }
                check.joins += 1;
            }
        }
    }
    if !events.is_empty() && roots != 1 {
        return Err(format!("expected exactly one parentless root task, found {roots}"));
    }
    // A task lost mid-execution is accounted for iff a Respawn covers it
    // or one of its ancestors (the re-executed subtree recreates it).
    let covered = |mut t: usize| -> bool {
        loop {
            if respawned_of[t] {
                return true;
            }
            match parents[t] {
                Some(p) => t = p as usize,
                None => return false,
            }
        }
    };
    for (id, (_, began, ended)) in state.iter().enumerate() {
        if *began && !*ended && !covered(id) {
            return Err(format!("task {id} began executing but never ended"));
        }
    }
    Ok(check)
}

/// Whether `run` carries everything a replay needs: recorded task events
/// (`RuntimeConfig::record_task_events`) *and* attribution spans
/// (`SystemConfig::attr`).
pub fn profiled(run: &TaskRun) -> bool {
    !run.task_events.is_empty() && run.report.attr_spans.iter().any(|s| !s.is_empty())
}

/// The children a task's path descends through, newest first — a
/// persistent list so snapshotting a parent's structure at every spawn is
/// one `Rc` clone instead of a vector copy.
type Via = Option<Rc<ViaNode>>;

struct ViaNode {
    task: u32,
    prev: Via,
}

/// `via` in path order (oldest absorbed child first).
fn via_forward(via: &Via) -> Vec<u32> {
    let mut out = Vec::new();
    let mut cur = via;
    while let Some(n) = cur {
        out.push(n.task);
        cur = &n.prev;
    }
    out.reverse();
    out
}

/// Per-task replay state, mirroring the online profiler's `TaskProfile`
/// with cycles for instructions, plus the path *structure* (which child
/// chains the path runs through) that the online profiler never needs.
#[derive(Clone)]
struct TaskNode {
    spawned: bool,
    parent: Option<u32>,
    /// Lens-weighted cycles on this task's longest serial chain so far.
    path: u64,
    path_bd: TimeBreakdown,
    /// Children whose chains the current `path` descends through.
    via: Via,
    /// Best completed-child chain folded in so far, and its structure:
    /// the winning child appended to the parent structure snapshotted at
    /// that child's spawn.
    candidate: u64,
    cand_bd: TimeBreakdown,
    cand_via: Via,
    /// Parent's `path` (and structure) at the moment this task was
    /// spawned.
    spawn_path: u64,
    spawn_bd: TimeBreakdown,
    spawn_via: Via,
    /// Total lens-weighted cycles attributed to this task (its work).
    accrued: u64,
    /// Fixed at ExecEnd: the task's final span, its category breakdown,
    /// and its structure.
    final_span: Option<u64>,
    final_bd: TimeBreakdown,
    final_via: Via,
    exec_begin: Option<(u64, usize)>,
    exec_end: Option<u64>,
    stolen: bool,
}

impl TaskNode {
    fn new() -> Self {
        TaskNode {
            spawned: false,
            parent: None,
            path: 0,
            path_bd: TimeBreakdown::new(),
            via: None,
            candidate: 0,
            cand_bd: TimeBreakdown::new(),
            cand_via: None,
            spawn_path: 0,
            spawn_bd: TimeBreakdown::new(),
            spawn_via: None,
            accrued: 0,
            final_span: None,
            final_bd: TimeBreakdown::new(),
            final_via: None,
            exec_begin: None,
            exec_end: None,
            stolen: false,
        }
    }

    fn span(&self) -> (u64, TimeBreakdown, Via) {
        // Ties go to the serial path, like the online profiler's
        // `path.max(candidate)`.
        if self.candidate > self.path {
            (self.candidate, self.cand_bd, self.cand_via.clone())
        } else {
            (self.path, self.path_bd, self.via.clone())
        }
    }
}

fn node(nodes: &mut Vec<TaskNode>, id: u32) -> &mut TaskNode {
    let id = id as usize;
    if nodes.len() <= id {
        nodes.resize(id + 1, TaskNode::new());
    }
    &mut nodes[id]
}

/// Replays the task DAG over `events` and `attr_spans` (per core, as in
/// [`bigtiny_engine::RunReport::attr_spans`]), weighting cycles under
/// `lens`. Fails if the event stream is not a well-formed DAG.
///
/// An empty event stream replays to an all-zero profile; attribution
/// spans for cores, tasks, or intervals the events never mention still
/// accrue work (the trailing `set_done` cycles on core 0 are the main
/// case — they belong to the root and keep `Tp ≤ T1` exact).
pub fn replay(
    events: &[TaskEvent],
    attr_spans: &[Vec<AttrSpan>],
    lens: CycleLens,
) -> Result<CritPath, String> {
    let check = check_task_dag(events)?;
    let mut nodes: Vec<TaskNode> = Vec::new();
    let mut cursors: Vec<usize> = vec![0; attr_spans.len()];
    let mut root: Option<u32> = None;

    // Consume the spans of `core` that closed at or before `cycle`,
    // accruing each interval to its owning task. Task-lifecycle recording
    // marks a span boundary at every event, so spans never straddle one.
    let consume = |nodes: &mut Vec<TaskNode>, cursors: &mut [usize], core: usize, cycle: u64| {
        let spans = &attr_spans[core];
        let cur = &mut cursors[core];
        while *cur < spans.len() && spans[*cur].end <= cycle {
            let s = &spans[*cur];
            *cur += 1;
            if let Some(t) = s.task {
                let w = lens.weigh(&s.breakdown);
                let n = node(nodes, t);
                n.path += w;
                n.path_bd += s.breakdown;
                n.accrued += w;
            }
        }
    };

    for e in events {
        if e.core < attr_spans.len() {
            consume(&mut nodes, &mut cursors, e.core, e.cycle);
        }
        match e.kind {
            TaskEventKind::Spawn { parent } => {
                let snapshot = parent.map(|p| {
                    let pn = node(&mut nodes, p);
                    (pn.path, pn.path_bd, pn.via.clone())
                });
                let n = node(&mut nodes, e.task);
                n.spawned = true;
                n.parent = parent;
                if let Some((path, bd, via)) = snapshot {
                    n.spawn_path = path;
                    n.spawn_bd = bd;
                    n.spawn_via = via;
                } else {
                    root = Some(e.task);
                }
            }
            TaskEventKind::ExecBegin => {
                node(&mut nodes, e.task).exec_begin = Some((e.cycle, e.core));
            }
            TaskEventKind::ExecEnd => {
                let n = node(&mut nodes, e.task);
                let (span, span_bd, via) = n.span();
                n.final_span = Some(span);
                n.final_bd = span_bd;
                n.final_via = via;
                n.exec_end = Some(e.cycle);
                let (spawn_path, spawn_bd, spawn_via, parent) =
                    (n.spawn_path, n.spawn_bd, n.spawn_via.clone(), n.parent);
                if let Some(parent) = parent {
                    let pn = node(&mut nodes, parent);
                    let chain = spawn_path + span;
                    if chain > pn.candidate {
                        pn.candidate = chain;
                        let mut bd = spawn_bd;
                        bd += span_bd;
                        pn.cand_bd = bd;
                        pn.cand_via = Some(Rc::new(ViaNode { task: e.task, prev: spawn_via }));
                    }
                }
            }
            TaskEventKind::Respawn { of } => {
                // A crash-recovery replacement: re-enters the DAG under
                // the dead task's parent, snapshotting that parent at the
                // respawn like a fresh spawn.
                let parent = nodes.get(of as usize).and_then(|n| n.parent);
                let snapshot = parent.map(|p| {
                    let pn = node(&mut nodes, p);
                    (pn.path, pn.path_bd, pn.via.clone())
                });
                let n = node(&mut nodes, e.task);
                n.spawned = true;
                n.parent = parent;
                if let Some((path, bd, via)) = snapshot {
                    n.spawn_path = path;
                    n.spawn_bd = bd;
                    n.spawn_via = via;
                }
            }
            TaskEventKind::Duplicate { .. } => {
                // A multiplicity duplicate enters the replay as a
                // parentless task: its cycles count as work (the duplicate
                // execution is real burden) but it folds no span into any
                // parent — the original carries the join chain.
                node(&mut nodes, e.task).spawned = true;
            }
            TaskEventKind::Discarded => {
                // Orphans reclaimed from a dead core's deque never ran:
                // nothing accrues.
            }
            TaskEventKind::Stolen { .. } => {
                node(&mut nodes, e.task).stolen = true;
            }
            TaskEventKind::Join => {
                let n = node(&mut nodes, e.task);
                if n.candidate > n.path {
                    n.path = n.candidate;
                    n.path_bd = n.cand_bd;
                    n.via = n.cand_via.clone();
                }
            }
        }
    }

    // Drain every core's remaining spans: cycles after the last event
    // (scheduler wind-down, the root's set_done tail) still count as work.
    for core in 0..attr_spans.len() {
        consume(&mut nodes, &mut cursors, core, u64::MAX);
    }

    let work: u64 = nodes.iter().map(|n| n.accrued).sum();
    let (span, span_breakdown, chain) = match root {
        None => (0, TimeBreakdown::new(), Vec::new()),
        Some(root) => {
            let rn = &nodes[root as usize];
            let (span, bd, via) = match rn.final_span {
                // Normal case: frozen at the root's ExecEnd, before the
                // wind-down tail accrued.
                Some(s) => (s, rn.final_bd, rn.final_via.clone()),
                None => rn.span(),
            };
            // Pre-order expansion: each task on the path, then the chains
            // of the children its path descends through, in path order.
            let mut chain = Vec::new();
            let mut stack = vec![(root, via)];
            while let Some((t, via)) = stack.pop() {
                let n = &nodes[t as usize];
                let (begin, core) = n.exec_begin.unwrap_or((0, 0));
                chain.push(ChainLink {
                    task: t,
                    exec_begin: begin,
                    exec_end: n.exec_end.unwrap_or(begin),
                    core,
                    stolen: n.stolen,
                });
                if chain.len() > nodes.len() {
                    return Err("critical-path chain longer than the task count".into());
                }
                for c in via_forward(&via).into_iter().rev() {
                    let cn = &nodes[c as usize];
                    stack.push((c, cn.final_via.clone()));
                }
            }
            (span, bd, chain)
        }
    };

    Ok(CritPath {
        lens,
        work,
        span,
        tasks: check.tasks,
        steals: check.steals,
        span_breakdown,
        chain,
    })
}

/// [`replay`] over a finished run.
pub fn replay_run(run: &TaskRun, lens: CycleLens) -> Result<CritPath, String> {
    replay(&run.task_events, &run.report.attr_spans, lens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_run_profiled;
    use bigtiny_core::RuntimeKind;

    fn event(cycle: u64, core: usize, task: u32, kind: TaskEventKind) -> TaskEvent {
        TaskEvent { cycle, core, task, kind }
    }

    fn span(task: Option<u32>, start: u64, end: u64, cat: TimeCategory) -> AttrSpan {
        let mut breakdown = TimeBreakdown::new();
        breakdown.add(cat, end - start);
        AttrSpan { task, start, end, breakdown }
    }

    fn mixed_span(
        task: Option<u32>,
        start: u64,
        end: u64,
        cats: &[(TimeCategory, u64)],
    ) -> AttrSpan {
        let mut breakdown = TimeBreakdown::new();
        for &(c, n) in cats {
            breakdown.add(c, n);
        }
        assert_eq!(breakdown.total(), end - start, "fixture span must tile its interval");
        AttrSpan { task, start, end, breakdown }
    }

    /// A two-core fixture, built by hand so every number below is checked
    /// against the replay exactly:
    ///
    /// * task 0 (root) executes on core 0, spawns task 1 (stolen to
    ///   core 1) and task 2 (inlined on core 0), waits, and finishes;
    /// * task 1 carries 10 cycles of ULI-wait burden, task 2 is pure
    ///   compute; the root idles 40 cycles waiting for the join.
    fn fixture() -> (Vec<TaskEvent>, Vec<Vec<AttrSpan>>) {
        use TaskEventKind::*;
        use TimeCategory::*;
        let events = vec![
            event(0, 0, 0, Spawn { parent: None }),
            event(10, 0, 0, ExecBegin),
            event(20, 0, 1, Spawn { parent: Some(0) }),
            event(25, 0, 2, Spawn { parent: Some(0) }),
            event(30, 0, 2, ExecBegin),
            event(30, 1, 1, Stolen { from: 0 }),
            event(30, 1, 1, ExecBegin),
            event(50, 0, 2, ExecEnd),
            event(85, 1, 1, ExecEnd),
            event(90, 0, 0, Join),
            event(100, 0, 0, ExecEnd),
        ];
        let core0 = vec![
            span(None, 0, 10, Idle),
            span(Some(0), 10, 20, Compute),
            span(Some(0), 20, 25, Compute),
            span(Some(0), 25, 30, Compute),
            span(Some(2), 30, 50, Compute),
            span(Some(0), 50, 90, Idle),
            span(Some(0), 90, 100, Compute),
        ];
        let core1 = vec![
            span(None, 0, 30, Idle),
            mixed_span(Some(1), 30, 85, &[(Compute, 45), (UliWait, 10)]),
            span(None, 85, 88, Idle),
        ];
        (events, vec![core0, core1])
    }

    #[test]
    fn hand_built_dag_replays_to_exact_work_and_span() {
        let (events, spans) = fixture();
        let cp = replay(&events, &spans, CycleLens::Burdened).unwrap();
        // T1: every task-attributed cycle. Root 70 (20 pre-spawn + 40 idle
        // + 10 tail), task 1 55, task 2 20.
        assert_eq!(cp.work, 145);
        // T∞: root path 10 to the spawn of task 1, task 1's 55 burdened
        // cycles, 10 serial cycles after the join. The idle wait (20 + 40
        // = 60 by the join) loses to the candidate chain (10 + 55 = 65).
        assert_eq!(cp.span, 75);
        assert_eq!(cp.tasks, 3);
        assert_eq!(cp.steals, 1);
        assert!(cp.parallelism() > 1.9 && cp.parallelism() < 2.0, "{}", cp.parallelism());
        // The chain runs root -> stolen task 1.
        let tasks: Vec<u32> = cp.chain.iter().map(|l| l.task).collect();
        assert_eq!(tasks, vec![0, 1]);
        assert_eq!(cp.chain_steals(), 1);
        assert_eq!(cp.chain[1].core, 1);
        assert_eq!(cp.chain[1].exec_begin, 30);
        assert_eq!(cp.chain[1].exec_end, 85);
        // The burden on the path is visible by category.
        assert_eq!(cp.span_breakdown.get(TimeCategory::Compute), 65);
        assert_eq!(cp.span_breakdown.get(TimeCategory::UliWait), 10);
        assert_eq!(cp.span_breakdown.total(), cp.span);
    }

    #[test]
    fn lenses_strip_overhead_categories_from_the_path() {
        let (events, spans) = fixture();
        // Zero-steal: task 1's 10 ULI-wait cycles and the root's idle wait
        // vanish; the chain through task 1 still wins (10 + 45 = 55 over a
        // 20-cycle serial path), and 10 tail cycles follow the join.
        let zs = replay(&events, &spans, CycleLens::ZeroSteal).unwrap();
        assert_eq!(zs.span, 65);
        assert_eq!(zs.work, 95);
        // No atomics/invalidates/flushes in the fixture: zero-coherence
        // equals burdened, work-only equals zero-steal.
        let zc = replay(&events, &spans, CycleLens::ZeroCoherence).unwrap();
        assert_eq!((zc.work, zc.span), (145, 75));
        let wo = replay(&events, &spans, CycleLens::WorkOnly).unwrap();
        assert_eq!((wo.work, wo.span), (95, 65));
    }

    #[test]
    fn empty_event_stream_replays_to_zero() {
        let cp = replay(&[], &[], CycleLens::Burdened).unwrap();
        assert_eq!((cp.work, cp.span, cp.tasks), (0, 0, 0));
        assert!(cp.chain.is_empty());
    }

    #[test]
    fn checker_rejects_malformed_streams() {
        use TaskEventKind::*;
        let root = event(0, 0, 0, Spawn { parent: None });
        let err = |events: &[TaskEvent]| check_task_dag(events).unwrap_err();
        assert!(err(&[event(5, 0, 1, ExecBegin)]).contains("without a Spawn"));
        assert!(err(&[root, event(1, 0, 0, Spawn { parent: None })]).contains("spawned twice"));
        assert!(err(&[root, event(2, 0, 1, Spawn { parent: Some(3) })]).contains("never spawned"));
        assert!(err(&[root, event(2, 0, 1, Spawn { parent: Some(1) })]).contains("its own parent"));
        assert!(err(&[root, event(5, 0, 0, ExecBegin), event(3, 0, 0, ExecEnd)])
            .contains("back in time"));
        assert!(err(&[root, event(1, 0, 0, ExecEnd)]).contains("without beginning"));
        assert!(err(&[root, event(1, 0, 0, ExecBegin)]).contains("never ended"));
        assert!(err(&[root, event(1, 0, 1, Spawn { parent: None })]).contains("root"));
        let (events, _) = fixture();
        let check = check_task_dag(&events).unwrap();
        assert_eq!(
            check,
            DagCheck {
                tasks: 3,
                executed: 3,
                steals: 1,
                joins: 1,
                respawns: 0,
                discards: 0,
                duplicates: 0
            }
        );
    }

    /// A real profiled run obeys the work/span laws: `T∞ ≤ Tp ≤ T1` (the
    /// root-attribution policy makes both exact) and replay work matches
    /// the attributed cycles summed straight off the spans.
    #[test]
    fn real_run_satisfies_workspan_bounds() {
        for kind in [RuntimeKind::Dts, RuntimeKind::Hcc] {
            let run = small_run_profiled(kind, 10);
            assert!(profiled(&run));
            let cp = replay_run(&run, CycleLens::Burdened).unwrap();
            let p = run.report.core_cycles.len() as u64;
            let tp = run.report.completion_cycles;
            assert!(cp.span <= tp, "{kind:?}: span {} > Tp {tp}", cp.span);
            assert!(tp <= cp.work, "{kind:?}: Tp {tp} > work {}", cp.work);
            assert!(cp.work.div_ceil(p) <= tp, "{kind:?}: work/P > Tp");
            let attributed: u64 = run
                .report
                .attr_spans
                .iter()
                .flatten()
                .filter(|s| s.task.is_some())
                .map(|s| s.end - s.start)
                .sum();
            assert_eq!(cp.work, attributed, "{kind:?}: replay must conserve attributed cycles");
            assert!(cp.chain.len() >= 2, "{kind:?}: fib's critical path crosses tasks");
        }
    }
}
