//! Shared test fixture: a small fib run on a 1-big + 7-tiny GPU-WB system.

use std::sync::Arc;

use bigtiny_core::{
    parallel_invoke, run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx, TaskRun,
};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

fn fib(cx: &mut TaskCx<'_>, out: Arc<ShVec<u64>>, slot: usize, n: u64) {
    cx.port().advance(6);
    if n < 2 {
        out.write(cx.port(), slot, n);
        return;
    }
    let (a, b) = (Arc::clone(&out), Arc::clone(&out));
    let (sa, sb) = (2 * slot + 1, 2 * slot + 2);
    parallel_invoke(cx, move |cx| fib(cx, a, sa, n - 1), move |cx| fib(cx, b, sb, n - 2));
    let x = out.read(cx.port(), sa);
    let y = out.read(cx.port(), sb);
    out.write(cx.port(), slot, x + y);
}

/// Runs fib(`n`) under `kind` on a 2×4-mesh 1-big/7-tiny GPU-WB machine,
/// with optional tracing and task-event recording.
pub fn small_run_n(kind: RuntimeKind, n: u64, trace: bool, record_events: bool) -> TaskRun {
    let mut sys = SystemConfig::big_tiny(
        "obs-test",
        MeshConfig::with_topology(Topology::new(2, 4)),
        1,
        7,
        Protocol::GpuWb,
    );
    sys.trace = trace;
    let mut rt = RuntimeConfig::new(kind);
    rt.record_task_events = record_events;
    let mut space = AddrSpace::new();
    let out = Arc::new(ShVec::new(&mut space, 1 << (n + 1), 0u64));
    let o = Arc::clone(&out);
    run_task_parallel(&sys, &rt, &mut space, move |cx| fib(cx, o, 0, n))
}

/// [`small_run_n`] at fib(10) without tracing.
pub fn small_run(kind: RuntimeKind) -> TaskRun {
    small_run_n(kind, 10, false, false)
}

/// Runs fib(`n`) under `kind` with everything the critical-path profiler
/// needs armed: task-event recording and per-task attribution spans.
pub fn small_run_profiled(kind: RuntimeKind, n: u64) -> TaskRun {
    let mut sys = SystemConfig::big_tiny(
        "obs-test",
        MeshConfig::with_topology(Topology::new(2, 4)),
        1,
        7,
        Protocol::GpuWb,
    );
    sys.attr = true;
    let mut rt = RuntimeConfig::new(kind);
    rt.record_task_events = true;
    let mut space = AddrSpace::new();
    let out = Arc::new(ShVec::new(&mut space, 1 << (n + 1), 0u64));
    let o = Arc::clone(&out);
    run_task_parallel(&sys, &rt, &mut space, move |cx| fib(cx, o, 0, n))
}
