//! The structured metrics document: one schema-stable JSON object
//! gathering everything a run measured — time breakdowns, coherence
//! counters, mesh traffic, ULI and fault/watchdog counters, and the
//! scheduler's steal telemetry — across every `(app, setup)` run of a
//! harness invocation.
//!
//! The document layout (section names, key names, histogram bucket count)
//! is frozen under [`METRICS_SCHEMA`]; extending it means bumping the
//! schema tag, never silently reshaping a section. Downstream tooling can
//! therefore `jq` the same paths across commits.

use bigtiny_core::{Log2Histogram, StealTelemetry, TaskRun};

use crate::attribution::{CycleConservation, Projection, WhatIf};
use crate::json::Json;

/// Schema tag carried in the document's `schema` field. Bump on any
/// structural change to the document.
///
/// History: `v1` → `v2` added the per-run `critpath` section
/// (cycle-conservation table, work/span profile, what-if projections)
/// and `p50`/`p90`/`p99` keys on every histogram object. `v2` → `v3`
/// added the per-run `deque_policy` label and the
/// `steals.lifecycle.duplicate_executions` counter (multiplicity deque
/// policies). Readers ([`crate::parse_json`] consumers like
/// `metrics_diff` and `json_check`) accept all three; older documents
/// simply lack the added keys.
pub const METRICS_SCHEMA: &str = "bigtiny-obs-metrics-v3";

/// Every schema tag readers must accept, oldest first.
pub const METRICS_SCHEMAS_ACCEPTED: [&str; 3] =
    ["bigtiny-obs-metrics-v1", "bigtiny-obs-metrics-v2", METRICS_SCHEMA];

/// One run to include in a metrics document.
pub struct RunMetrics<'a> {
    /// Kernel name (e.g. `cilk5-nq`).
    pub app: &'a str,
    /// Setup label (e.g. `b.T/HCC-DTS-gwb`).
    pub setup: &'a str,
    /// Deque-policy label the run scheduled under (e.g. `locked`,
    /// `chase-lev`, `fence-free`, `idempotent`).
    pub deque_policy: &'a str,
    /// The run's full measurements.
    pub run: &'a TaskRun,
    /// Tiny-core ids of the setup, for the aggregated tiny-core sections.
    pub tiny_cores: &'a [usize],
}

/// Builds the complete metrics document for a set of runs.
pub fn metrics_document(runs: &[RunMetrics<'_>]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str(METRICS_SCHEMA)),
        ("runs".into(), Json::Arr(runs.iter().map(run_object).collect())),
    ])
}

fn run_object(r: &RunMetrics<'_>) -> Json {
    let rep = &r.run.report;
    Json::Obj(vec![
        ("app".into(), Json::str(r.app)),
        ("setup".into(), Json::str(r.setup)),
        ("deque_policy".into(), Json::str(r.deque_policy)),
        ("cycles".into(), Json::u64(rep.completion_cycles)),
        ("instructions".into(), Json::u64(rep.total_instructions())),
        ("seq_grants".into(), Json::u64(rep.seq_grants)),
        ("seq_op_hash".into(), Json::hash(rep.seq_op_hash)),
        ("breakdown".into(), breakdown_section(r)),
        ("coherence".into(), coherence_section(r)),
        ("mesh".into(), mesh_section(r)),
        ("uli".into(), uli_section(r)),
        ("faults".into(), faults_section(r)),
        ("watchdog".into(), watchdog_section(r)),
        ("steals".into(), steals_section(r)),
        ("critpath".into(), critpath_section(r)),
    ])
}

fn pairs_object(pairs: impl IntoIterator<Item = (&'static str, u64)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), Json::u64(v))).collect())
}

/// Per-core and tiny-core-aggregate time breakdowns, every category listed
/// (zeros included) so the key set never depends on the data.
fn breakdown_section(r: &RunMetrics<'_>) -> Json {
    let rep = &r.run.report;
    let tiny = rep.breakdown_over(r.tiny_cores);
    Json::Obj(vec![
        ("tiny_total".into(), pairs_object(tiny.pairs())),
        (
            "per_core".into(),
            Json::Arr(rep.breakdowns.iter().map(|b| pairs_object(b.pairs())).collect()),
        ),
    ])
}

fn coherence_section(r: &RunMetrics<'_>) -> Json {
    let rep = &r.run.report;
    let tiny = rep.mem_stats_over(r.tiny_cores);
    Json::Obj(vec![
        ("tiny_total".into(), pairs_object(tiny.pairs())),
        ("tiny_l1d_hit_rate".into(), Json::f64(tiny.l1d_hit_rate())),
        ("stale_reads".into(), Json::u64(rep.stale_reads)),
        (
            "per_core".into(),
            Json::Arr(rep.mem_stats.iter().map(|m| pairs_object(m.pairs())).collect()),
        ),
    ])
}

fn mesh_section(r: &RunMetrics<'_>) -> Json {
    let t = &r.run.report.traffic;
    let classes = t
        .by_class()
        .into_iter()
        .map(|(label, bytes, messages)| {
            Json::Obj(vec![
                ("class".into(), Json::str(label)),
                ("bytes".into(), Json::u64(bytes)),
                ("messages".into(), Json::u64(messages)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("classes".into(), Json::Arr(classes)),
        ("total_data_bytes".into(), Json::u64(t.total_data_bytes())),
        ("total_data_messages".into(), Json::u64(t.total_data_messages())),
        ("hop_cycles".into(), Json::u64(t.hop_cycles())),
    ])
}

fn uli_section(r: &RunMetrics<'_>) -> Json {
    let u = &r.run.report.uli;
    Json::Obj(vec![
        ("messages".into(), Json::u64(u.messages)),
        ("nacks".into(), Json::u64(u.nacks)),
        ("mean_latency".into(), Json::f64(u.mean_latency)),
        ("mean_hops".into(), Json::f64(u.mean_hops)),
        ("bytes".into(), Json::u64(u.bytes)),
        ("utilization".into(), Json::f64(u.utilization)),
    ])
}

fn faults_section(r: &RunMetrics<'_>) -> Json {
    let rep = &r.run.report;
    let st = &r.run.stats;
    let mut kv: Vec<(String, Json)> =
        rep.fault_counters.pairs().into_iter().map(|(k, v)| (k.to_owned(), Json::u64(v))).collect();
    kv.push(("mesh_fault_spikes".into(), Json::u64(rep.mesh_fault_spikes)));
    kv.push(("uli_timeouts".into(), Json::u64(st.uli_timeouts)));
    kv.push(("fallback_steals".into(), Json::u64(st.fallback_steals)));
    kv.push(("forced_steal_misses".into(), Json::u64(st.forced_steal_misses)));
    // Crash-recovery counters (additive; zero on crash-free runs).
    kv.push(("orphans_reclaimed".into(), Json::u64(st.orphans_reclaimed)));
    kv.push(("mailbox_rescues".into(), Json::u64(st.mailbox_rescues)));
    kv.push(("reexecutions".into(), Json::u64(st.reexecutions)));
    kv.push(("joins_repaired".into(), Json::u64(st.joins_repaired)));
    kv.push(("quarantines".into(), Json::u64(st.quarantines)));
    kv.push(("revivals".into(), Json::u64(st.revivals)));
    Json::Obj(kv)
}

fn watchdog_section(r: &RunMetrics<'_>) -> Json {
    let rep = &r.run.report;
    Json::Obj(vec![
        ("seq_grants".into(), Json::u64(rep.seq_grants)),
        ("seq_fast_grants".into(), Json::u64(rep.seq_fast_grants)),
    ])
}

/// Steal telemetry: scheduler counters, per-victim outcomes, the ULI
/// round-trip histogram, and task lifecycle counts.
fn steals_section(r: &RunMetrics<'_>) -> Json {
    let st = &r.run.stats;
    let tel = &r.run.telemetry;
    let per_victim = tel
        .per_victim
        .iter()
        .enumerate()
        .map(|(victim, v)| {
            Json::Obj(vec![
                ("victim".into(), Json::u64(victim as u64)),
                ("attempts".into(), Json::u64(v.attempts)),
                ("hits".into(), Json::u64(v.hits)),
                ("misses".into(), Json::u64(v.misses)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("attempts".into(), Json::u64(tel.total_attempts())),
        ("hits".into(), Json::u64(tel.total_hits())),
        ("misses".into(), Json::u64(tel.total_misses())),
        ("steal_nacks".into(), Json::u64(st.steal_nacks)),
        ("hsc_elisions".into(), Json::u64(tel.hsc_elisions)),
        ("joins".into(), Json::u64(tel.joins)),
        ("per_victim".into(), Json::Arr(per_victim)),
        ("uli_rtt".into(), histogram_object(&tel.uli_rtt)),
        ("lifecycle".into(), lifecycle_object(r.run, tel)),
    ])
}

fn histogram_object(h: &Log2Histogram) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::u64(h.count())),
        ("sum".into(), Json::u64(h.sum())),
        ("max".into(), Json::u64(h.max())),
        ("mean".into(), Json::f64(h.mean())),
        ("p50".into(), Json::u64(h.p50())),
        ("p90".into(), Json::u64(h.p90())),
        ("p99".into(), Json::u64(h.p99())),
        (
            "bucket_lo".into(),
            Json::Arr(
                (0..Log2Histogram::NUM_BUCKETS)
                    .map(Log2Histogram::bucket_lo)
                    .map(Json::u64)
                    .collect(),
            ),
        ),
        ("buckets".into(), Json::Arr(h.buckets().iter().map(|&c| Json::u64(c)).collect())),
    ])
}

/// Critical-path profile (schema v2). The cycle-conservation table is
/// always present — the per-core breakdowns it folds are always measured.
/// The work/span profile and what-if projections need the run profiled
/// (task events + attribution spans armed); unprofiled runs emit the same
/// key set with `profiled: false` and zeros, so the schema's shape never
/// depends on the data.
fn critpath_section(r: &RunMetrics<'_>) -> Json {
    let cons = CycleConservation::from_report(&r.run.report);
    let mut cons_kv: Vec<(String, Json)> =
        cons.pairs().into_iter().map(|(k, v)| (k.to_owned(), Json::u64(v))).collect();
    cons_kv.push(("total_core_cycles".into(), Json::u64(cons.total_core_cycles)));
    cons_kv.push(("holds".into(), Json::Bool(cons.holds())));

    let what_if = if crate::critpath::profiled(r.run) { WhatIf::project(r.run).ok() } else { None };
    let mut kv = vec![
        ("conservation".into(), Json::Obj(cons_kv)),
        ("profiled".into(), Json::Bool(what_if.is_some())),
    ];
    match &what_if {
        Some(w) => {
            kv.push(("work".into(), Json::u64(w.burdened.work)));
            kv.push(("span".into(), Json::u64(w.burdened.span)));
            kv.push(("parallelism".into(), Json::f64(w.burdened.parallelism())));
            kv.push(("measured_tp".into(), Json::u64(w.measured_tp)));
            kv.push(("workers".into(), Json::u64(w.workers)));
            kv.push(("span_breakdown".into(), pairs_object(w.burdened.span_breakdown.pairs())));
            kv.push(("chain_tasks".into(), Json::u64(w.burdened.chain.len() as u64)));
            kv.push(("chain_steals".into(), Json::u64(w.burdened.chain_steals())));
            let what_if = w
                .projections()
                .into_iter()
                .map(|p| (p.lens.label().to_owned(), projection_object(p)))
                .collect();
            kv.push(("what_if".into(), Json::Obj(what_if)));
        }
        None => {
            let zero = Projection {
                lens: crate::critpath::CycleLens::Burdened,
                work: 0,
                span: 0,
                greedy_bound: 0,
                speedup_bound: 0.0,
            };
            kv.push(("work".into(), Json::u64(0)));
            kv.push(("span".into(), Json::u64(0)));
            kv.push(("parallelism".into(), Json::f64(0.0)));
            kv.push(("measured_tp".into(), Json::u64(r.run.report.completion_cycles)));
            kv.push(("workers".into(), Json::u64(r.run.report.core_cycles.len() as u64)));
            kv.push((
                "span_breakdown".into(),
                pairs_object(bigtiny_engine::TimeBreakdown::new().pairs()),
            ));
            kv.push(("chain_tasks".into(), Json::u64(0)));
            kv.push(("chain_steals".into(), Json::u64(0)));
            let what_if = ["zero_steal", "zero_coherence", "work_only"]
                .into_iter()
                .map(|k| (k.to_owned(), projection_object(&zero)))
                .collect();
            kv.push(("what_if".into(), Json::Obj(what_if)));
        }
    }
    Json::Obj(kv)
}

fn projection_object(p: &Projection) -> Json {
    Json::Obj(vec![
        ("work".into(), Json::u64(p.work)),
        ("span".into(), Json::u64(p.span)),
        ("greedy_bound".into(), Json::u64(p.greedy_bound)),
        ("speedup_bound".into(), Json::f64(p.speedup_bound)),
    ])
}

/// Task lifecycle counts. Spawn/exec counts come from the always-on
/// scheduler counters; join/elision counts from the telemetry, so the
/// section is populated even when per-event recording is off.
fn lifecycle_object(run: &TaskRun, tel: &StealTelemetry) -> Json {
    Json::Obj(vec![
        ("spawns".into(), Json::u64(run.stats.spawns)),
        ("tasks_executed".into(), Json::u64(run.stats.tasks_executed)),
        ("steals".into(), Json::u64(run.stats.steals)),
        ("joins".into(), Json::u64(tel.joins)),
        ("duplicate_executions".into(), Json::u64(run.stats.duplicate_executions)),
        ("task_events_recorded".into(), Json::u64(run.task_events.len() as u64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::testutil::small_run;
    use bigtiny_core::RuntimeKind;

    #[test]
    fn document_has_every_section_and_round_trips() {
        let run = small_run(RuntimeKind::Dts);
        let rm = RunMetrics {
            app: "fib",
            setup: "b.T/HCC-DTS-gwb",
            deque_policy: "locked",
            run: &run,
            tiny_cores: &[1, 2, 3, 4, 5, 6, 7],
        };
        let doc = metrics_document(&[rm]);
        let text = doc.to_json();
        let back = parse_json(&text).expect("self-emitted document parses strictly");
        assert_eq!(back.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
        let runs = back.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        let sections =
            ["breakdown", "coherence", "mesh", "uli", "faults", "watchdog", "steals", "critpath"];
        for section in sections {
            assert!(r.get(section).is_some(), "missing section {section}");
        }
        // v3 keys: the policy label and the duplicate counter are always
        // present, even for the default locked policy.
        assert_eq!(r.get("deque_policy").unwrap().as_str(), Some("locked"));
        // The steal section carries real DTS telemetry.
        let steals = r.get("steals").unwrap();
        assert_eq!(
            steals.get("lifecycle").unwrap().get("duplicate_executions").unwrap().as_num(),
            Some(0.0)
        );
        assert!(steals.get("attempts").unwrap().as_num().unwrap() >= 1.0);
        let rtt = steals.get("uli_rtt").unwrap();
        assert_eq!(
            rtt.get("buckets").unwrap().as_arr().unwrap().len(),
            Log2Histogram::NUM_BUCKETS,
            "bucket count is part of the schema"
        );
        assert!(rtt.get("count").unwrap().as_num().unwrap() > 0.0, "DTS records round trips");
        // Hashes survive as exact hex strings.
        let hash = r.get("seq_op_hash").unwrap().as_str().unwrap();
        assert_eq!(hash, format!("{:#018x}", run.report.seq_op_hash));
        // Per-core sections cover every core.
        let cores = run.report.breakdowns.len();
        assert_eq!(
            r.get("breakdown").unwrap().get("per_core").unwrap().as_arr().unwrap().len(),
            cores
        );
        assert_eq!(
            r.get("coherence").unwrap().get("per_core").unwrap().as_arr().unwrap().len(),
            cores
        );
        // Mesh lists all ten classes regardless of data.
        assert_eq!(r.get("mesh").unwrap().get("classes").unwrap().as_arr().unwrap().len(), 10);
    }

    #[test]
    fn critpath_section_is_schema_stable_profiled_or_not() {
        // Unprofiled run: conservation present and holding, profiled:false,
        // every profile key present but zero.
        let plain = small_run(RuntimeKind::Dts);
        let rm = RunMetrics {
            app: "fib",
            setup: "dts",
            deque_policy: "locked",
            run: &plain,
            tiny_cores: &[1],
        };
        let doc = parse_json(&metrics_document(&[rm]).to_json()).unwrap();
        let cp = doc.get("runs").unwrap().as_arr().unwrap()[0].get("critpath").unwrap().clone();
        assert_eq!(cp.get("profiled").and_then(|v| v.as_num()), None, "profiled is a bool");
        assert!(matches!(cp.get("profiled"), Some(Json::Bool(false))));
        assert!(matches!(cp.get("conservation").unwrap().get("holds"), Some(Json::Bool(true))));
        assert_eq!(cp.get("span").unwrap().as_num(), Some(0.0));

        // Profiled run: the same key set, now populated, with the what-if
        // object carrying all three lenses.
        let prof = crate::testutil::small_run_profiled(RuntimeKind::Dts, 10);
        let rm = RunMetrics {
            app: "fib",
            setup: "dts",
            deque_policy: "locked",
            run: &prof,
            tiny_cores: &[1],
        };
        let doc = parse_json(&metrics_document(&[rm]).to_json()).unwrap();
        let pcp = doc.get("runs").unwrap().as_arr().unwrap()[0].get("critpath").unwrap().clone();
        assert!(matches!(pcp.get("profiled"), Some(Json::Bool(true))));
        assert!(pcp.get("span").unwrap().as_num().unwrap() > 0.0);
        assert!(
            pcp.get("work").unwrap().as_num().unwrap()
                >= pcp.get("span").unwrap().as_num().unwrap()
        );
        let keys = |j: &Json| -> Vec<String> {
            match j {
                Json::Obj(kv) => kv.iter().map(|(k, _)| k.clone()).collect(),
                _ => Vec::new(),
            }
        };
        assert_eq!(keys(&cp), keys(&pcp), "profiled and unprofiled sections must share a key set");
        for lens in ["zero_steal", "zero_coherence", "work_only"] {
            let p = pcp.get("what_if").unwrap().get(lens).unwrap();
            assert!(p.get("greedy_bound").unwrap().as_num().unwrap() > 0.0, "{lens}");
        }
        // Histograms now carry percentile keys.
        let steals = doc.get("runs").unwrap().as_arr().unwrap()[0].get("steals").unwrap().clone();
        let rtt = steals.get("uli_rtt").unwrap();
        for k in ["p50", "p90", "p99"] {
            assert!(rtt.get(k).and_then(Json::as_num).is_some(), "uli_rtt missing {k}");
        }
    }

    #[test]
    fn baseline_runs_emit_empty_but_valid_steal_histograms() {
        let run = small_run(RuntimeKind::Baseline);
        let rm = RunMetrics {
            app: "fib",
            setup: "b.T/MESI",
            deque_policy: "locked",
            run: &run,
            tiny_cores: &[1],
        };
        let doc = metrics_document(&[rm]);
        let back = parse_json(&doc.to_json()).unwrap();
        let rtt = back.get("runs").unwrap().as_arr().unwrap()[0]
            .get("steals")
            .unwrap()
            .get("uli_rtt")
            .unwrap();
        assert_eq!(rtt.get("count").unwrap().as_num(), Some(0.0));
        // mean of an empty histogram is 0, not null/NaN
        assert_eq!(rtt.get("mean").unwrap().as_num(), Some(0.0));
    }
}
