#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Unified observability for the big.TINY reproduction.
//!
//! Three pieces, all host-side and bit-for-bit invisible to simulated
//! cycles (the golden-trace pins in `tests/tests/golden_trace.rs` hold the
//! whole stack to that):
//!
//! * [`metrics_document`] — one schema-stable JSON document per harness
//!   invocation gathering time breakdowns, coherence counters, mesh
//!   traffic, ULI/fault/watchdog counters, and the scheduler's steal
//!   telemetry for every `(app, setup)` run (`eval_all --metrics-out`).
//! * [`export_chrome_trace`] / [`validate_chrome_trace`] — Chrome
//!   trace-event export of core spans, task lifetimes, and ULI flow
//!   arrows, loadable in `ui.perfetto.dev` (`eval_all --trace-out`), with
//!   a structural validator CI gates on.
//! * [`Json`] / [`parse_json`] — the dependency-free nested JSON value,
//!   strict parser, and deterministic serializer underneath both.
//! * [`replay`] / [`WhatIf`] — the critical-path profiler: cycle-accurate
//!   work/span analysis replayed over the task DAG from lifecycle events
//!   and per-task attribution spans, the cycle-conservation table, and
//!   what-if projections (zero-cost steals, zero coherence overhead,
//!   ideal P-core greedy bound).
//! * [`heartbeat_line`] / [`validate_heartbeat_stream`] — the
//!   `bigtiny-obs-heartbeat-v1` line-JSON live-telemetry stream a
//!   heartbeat-armed run emits every K sequencer grants
//!   (`eval_all --heartbeat-out`, followed live by `tail_run`).
//! * [`blackbox_from_bundle`] / [`blackbox_from_report`] — black-box
//!   dumps of the always-on per-core flight recorder (crash-time
//!   [`DiagnosticBundle`](bigtiny_engine::DiagnosticBundle)s and explicit
//!   dumps), with a validator and a Perfetto-loadable tail trace.

mod attribution;
mod blackbox;
mod critpath;
mod heartbeat;
mod json;
mod metrics;
mod perfetto;
#[cfg(test)]
mod testutil;

pub use attribution::{verify_attr_spans, CycleConservation, Projection, WhatIf};
pub use blackbox::{
    blackbox_from_bundle, blackbox_from_report, blackbox_tail_trace, reason_label,
    validate_blackbox, BlackboxSummary, BLACKBOX_SCHEMA,
};
pub use critpath::{
    check_task_dag, profiled, replay, replay_run, ChainLink, CritPath, CycleLens, DagCheck,
};
pub use heartbeat::{
    heartbeat_line, looks_like_heartbeat_stream, validate_heartbeat_line,
    validate_heartbeat_stream, HEARTBEAT_SCHEMA,
};
pub use json::{parse_json, Json};
pub use metrics::{metrics_document, RunMetrics, METRICS_SCHEMA, METRICS_SCHEMAS_ACCEPTED};
pub use perfetto::{
    export_chrome_trace, validate_chrome_trace, TraceRun, TraceSummary, TRACE_SCHEMA,
};
