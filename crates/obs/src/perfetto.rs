//! Chrome trace-event (Perfetto-loadable) export of a run's execution.
//!
//! One JSON document, loadable at `ui.perfetto.dev` or `chrome://tracing`:
//!
//! * each `(app, setup)` run becomes one *process* (pid), each simulated
//!   core one *thread* (tid), named via `M` metadata events;
//! * per-core [`TraceEvent`] spans become `"X"` complete events (`ts` and
//!   `dur` in simulated cycles);
//! * task lifetimes (first to last recorded lifecycle event) become async
//!   `"b"`/`"e"` pairs with globally unique ids, so a task's span is
//!   visible across the cores it migrated over, with steal claims as
//!   instant events;
//! * ULI request/response protocol marks become flow arrows (`"s"`/`"f"`)
//!   from sender to receiver, FIFO-paired per directed core pair.
//!
//! [`validate_chrome_trace`] structurally checks a document — balanced
//! async pairs, 1:1 flow ids, well-formed events — so CI can gate on the
//! exporter without a browser.

use std::collections::BTreeMap;

use bigtiny_core::{TaskEventKind, TaskRun};
use bigtiny_engine::UliMarkKind;

use crate::json::Json;

/// Schema tag carried in the document's `metadata.schema` field.
pub const TRACE_SCHEMA: &str = "bigtiny-obs-trace-v1";

/// One run to include in a trace document.
pub struct TraceRun<'a> {
    /// Kernel name.
    pub app: &'a str,
    /// Setup label.
    pub setup: &'a str,
    /// The run (with `SystemConfig::trace` and, for task lifetimes,
    /// `RuntimeConfig::record_task_events` enabled).
    pub run: &'a TaskRun,
}

fn ev(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Exports one Chrome trace-event document covering every run.
pub fn export_chrome_trace(runs: &[TraceRun<'_>]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut flow_id = 0u64;
    for (ri, r) in runs.iter().enumerate() {
        let pid = ri as u64 + 1;
        emit_metadata(&mut events, pid, r);
        emit_core_spans(&mut events, pid, r);
        emit_task_lifetimes(&mut events, pid, r);
        emit_uli_flows(&mut events, pid, r, &mut flow_id);
        emit_critpath_track(&mut events, pid, r);
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ns")),
        (
            "metadata".into(),
            Json::Obj(vec![
                ("schema".into(), Json::str(TRACE_SCHEMA)),
                ("time_unit".into(), Json::str("simulated cycles")),
            ]),
        ),
    ])
}

/// Process/thread naming so the Perfetto UI shows run and core labels.
fn emit_metadata(events: &mut Vec<Json>, pid: u64, r: &TraceRun<'_>) {
    events.push(ev(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::u64(pid)),
        ("args", Json::Obj(vec![("name".into(), Json::str(format!("{} @ {}", r.app, r.setup)))])),
    ]));
    for core in 0..r.run.report.traces.len() {
        events.push(ev(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(core as u64)),
            ("args", Json::Obj(vec![("name".into(), Json::str(format!("core {core}")))])),
        ]));
    }
}

/// Per-core execution spans as `"X"` complete events.
fn emit_core_spans(events: &mut Vec<Json>, pid: u64, r: &TraceRun<'_>) {
    for (core, trace) in r.run.report.traces.iter().enumerate() {
        for t in trace {
            events.push(ev(vec![
                ("name", Json::str(t.category.label())),
                ("cat", Json::str("core")),
                ("ph", Json::str("X")),
                ("ts", Json::u64(t.start)),
                ("dur", Json::u64(t.cycles)),
                ("pid", Json::u64(pid)),
                ("tid", Json::u64(core as u64)),
            ]));
        }
    }
}

/// Task lifetimes as async `"b"`/`"e"` pairs plus steal-claim instants.
///
/// A task's lifetime runs from its first to its last recorded lifecycle
/// event, which keeps every pair balanced by construction even for tasks
/// that were spawned but inlined, or whose join elided (the pair may be
/// zero-length). The async id embeds the pid so ids stay globally unique
/// across runs in one document.
fn emit_task_lifetimes(events: &mut Vec<Json>, pid: u64, r: &TraceRun<'_>) {
    // task id -> (first cycle, first core, last cycle, last core); the
    // event stream is sorted by (cycle, core), so first/last are just the
    // extremes in stream order.
    let mut lifetimes: BTreeMap<u32, (u64, usize, u64, usize)> = BTreeMap::new();
    for e in &r.run.task_events {
        lifetimes
            .entry(e.task)
            .and_modify(|l| {
                l.2 = e.cycle;
                l.3 = e.core;
            })
            .or_insert((e.cycle, e.core, e.cycle, e.core));
        if let TaskEventKind::Stolen { from } = e.kind {
            events.push(ev(vec![
                ("name", Json::str("steal")),
                ("cat", Json::str("steal")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", Json::u64(e.cycle)),
                ("pid", Json::u64(pid)),
                ("tid", Json::u64(e.core as u64)),
                ("args", Json::Obj(vec![("from".into(), Json::u64(from as u64))])),
            ]));
        }
    }
    for (task, (t0, c0, t1, c1)) in lifetimes {
        let id = Json::str(format!("task-{pid}-{task}"));
        let name = Json::str(format!("task {task}"));
        events.push(ev(vec![
            ("name", name.clone()),
            ("cat", Json::str("task")),
            ("ph", Json::str("b")),
            ("id", id.clone()),
            ("ts", Json::u64(t0)),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(c0 as u64)),
        ]));
        events.push(ev(vec![
            ("name", name),
            ("cat", Json::str("task")),
            ("ph", Json::str("e")),
            ("id", id),
            ("ts", Json::u64(t1)),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(c1 as u64)),
        ]));
    }
}

/// The burdened critical-path chain as a highlighted extra track.
///
/// Emitted only for profiled runs (task events + attribution spans both
/// recorded): one thread per run, tid one past the last core, carrying an
/// `"X"` span per chain task over its execution window. Parent windows
/// contain the child windows they descend into, so the track renders as a
/// nested flame of the chain in the Perfetto UI; `args` carry the task id,
/// executing core, and whether the task was stolen (a core crossing on
/// the path).
fn emit_critpath_track(events: &mut Vec<Json>, pid: u64, r: &TraceRun<'_>) {
    if !crate::critpath::profiled(r.run) {
        return;
    }
    let Ok(cp) = crate::critpath::replay_run(r.run, crate::critpath::CycleLens::Burdened) else {
        return;
    };
    let tid = r.run.report.core_cycles.len() as u64;
    events.push(ev(vec![
        ("name", Json::str("thread_name")),
        ("ph", Json::str("M")),
        ("pid", Json::u64(pid)),
        ("tid", Json::u64(tid)),
        ("args", Json::Obj(vec![("name".into(), Json::str("critical path"))])),
    ]));
    for link in &cp.chain {
        events.push(ev(vec![
            ("name", Json::str(format!("task {}", link.task))),
            ("cat", Json::str("critpath")),
            ("ph", Json::str("X")),
            ("ts", Json::u64(link.exec_begin)),
            ("dur", Json::u64(link.exec_end.saturating_sub(link.exec_begin))),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(tid)),
            (
                "args",
                Json::Obj(vec![
                    ("core".into(), Json::u64(link.core as u64)),
                    ("stolen".into(), Json::Bool(link.stolen)),
                ]),
            ),
        ]));
    }
}

/// ULI request/response pairs as flow arrows.
///
/// Marks are FIFO-paired per directed `(sender, receiver)` pair — the ULI
/// network delivers in order per pair, so the k-th send matches the k-th
/// receive. Under fault injection a send may have been dropped in flight;
/// unmatched marks are skipped (a flow arrow needs both ends).
fn emit_uli_flows(events: &mut Vec<Json>, pid: u64, r: &TraceRun<'_>, flow_id: &mut u64) {
    // (sender, receiver, is_response) -> (send cycles, recv cycles)
    type PairKey = (usize, usize, bool);
    let mut pairs: BTreeMap<PairKey, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
    for (core, marks) in r.run.report.uli_marks.iter().enumerate() {
        for m in marks {
            match m.kind {
                UliMarkKind::ReqSend { to } => {
                    pairs.entry((core, to, false)).or_default().0.push(m.cycle)
                }
                UliMarkKind::ReqRecv { from } => {
                    pairs.entry((from, core, false)).or_default().1.push(m.cycle)
                }
                UliMarkKind::RespSend { to } => {
                    pairs.entry((core, to, true)).or_default().0.push(m.cycle)
                }
                UliMarkKind::RespRecv { from } => {
                    pairs.entry((from, core, true)).or_default().1.push(m.cycle)
                }
            }
        }
    }
    for ((sender, receiver, is_resp), (sends, recvs)) in pairs {
        let name = if is_resp { "uli_resp" } else { "uli_req" };
        for (s_cycle, r_cycle) in sends.iter().zip(recvs.iter()) {
            let id = Json::u64(*flow_id);
            *flow_id += 1;
            events.push(ev(vec![
                ("name", Json::str(name)),
                ("cat", Json::str("uli")),
                ("ph", Json::str("s")),
                ("id", id.clone()),
                ("ts", Json::u64(*s_cycle)),
                ("pid", Json::u64(pid)),
                ("tid", Json::u64(sender as u64)),
            ]));
            events.push(ev(vec![
                ("name", Json::str(name)),
                ("cat", Json::str("uli")),
                ("ph", Json::str("f")),
                ("bp", Json::str("e")),
                ("id", id),
                ("ts", Json::u64((*r_cycle).max(*s_cycle))),
                ("pid", Json::u64(pid)),
                ("tid", Json::u64(receiver as u64)),
            ]));
        }
    }
}

/// Counts from a structurally valid trace document.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TraceSummary {
    /// `"X"` complete events.
    pub complete: usize,
    /// Balanced async `"b"`/`"e"` pairs.
    pub async_pairs: usize,
    /// Matched `"s"`/`"f"` flow pairs.
    pub flows: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"M"` metadata events.
    pub metadata: usize,
}

fn num_field(e: &Json, key: &str) -> Result<f64, String> {
    e.get(key).and_then(Json::as_num).ok_or_else(|| format!("event missing numeric {key:?}: {e}"))
}

fn id_key(e: &Json) -> Result<String, String> {
    match e.get("id") {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(Json::Num(n)) => Ok(format!("#{n}")),
        _ => Err(format!("event missing id: {e}")),
    }
}

/// Structurally validates a Chrome trace-event document:
///
/// * `traceEvents` is an array, every event an object with a known `ph`,
///   a `pid`, and (except metadata) a finite non-negative `ts`;
/// * every `"X"` has a non-negative `dur`;
/// * async `"b"`/`"e"` events pair 1:1 per `(cat, id)` with begin ≤ end;
/// * flow `"s"`/`"f"` events pair 1:1 per id with start ≤ finish.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceSummary, String> {
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary::default();
    // (cat, id) -> (begin cycles, end cycles) for async; id -> same for flows.
    let mut asyncs: BTreeMap<(String, String), (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    let mut flows: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for e in events {
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or_else(|| format!("event missing ph: {e}"))?;
        num_field(e, "pid")?;
        if ph != "M" {
            let ts = num_field(e, "ts")?;
            if ts < 0.0 {
                return Err(format!("negative ts: {e}"));
            }
        }
        match ph {
            "M" => {
                e.get("name").and_then(Json::as_str).ok_or("metadata event without name")?;
                summary.metadata += 1;
            }
            "X" => {
                if num_field(e, "dur")? < 0.0 {
                    return Err(format!("negative dur: {e}"));
                }
                summary.complete += 1;
            }
            "b" | "e" => {
                let cat = e
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("async event missing cat: {e}"))?;
                let slot = asyncs.entry((cat.to_owned(), id_key(e)?)).or_default();
                let ts = num_field(e, "ts")?;
                if ph == "b" {
                    slot.0.push(ts);
                } else {
                    slot.1.push(ts);
                }
            }
            "s" | "f" => {
                let slot = flows.entry(id_key(e)?).or_default();
                let ts = num_field(e, "ts")?;
                if ph == "s" {
                    slot.0.push(ts);
                } else {
                    slot.1.push(ts);
                }
            }
            "i" => summary.instants += 1,
            other => return Err(format!("unknown event phase {other:?}: {e}")),
        }
    }
    for ((cat, id), (begins, ends)) in &asyncs {
        if begins.len() != 1 || ends.len() != 1 {
            return Err(format!(
                "async {cat}/{id}: {} begins, {} ends (want 1:1)",
                begins.len(),
                ends.len()
            ));
        }
        if begins[0] > ends[0] {
            return Err(format!("async {cat}/{id}: begin {} after end {}", begins[0], ends[0]));
        }
        summary.async_pairs += 1;
    }
    for (id, (starts, finishes)) in &flows {
        if starts.len() != 1 || finishes.len() != 1 {
            return Err(format!(
                "flow {id}: {} starts, {} finishes (want 1:1)",
                starts.len(),
                finishes.len()
            ));
        }
        if starts[0] > finishes[0] {
            return Err(format!("flow {id}: start {} after finish {}", starts[0], finishes[0]));
        }
        summary.flows += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::testutil::small_run_n;
    use bigtiny_core::RuntimeKind;

    #[test]
    fn dts_trace_exports_and_validates() {
        let run = small_run_n(RuntimeKind::Dts, 11, true, true);
        let tr = TraceRun { app: "fib", setup: "b.T/HCC-DTS-gwb", run: &run };
        let doc = export_chrome_trace(&[tr]);
        let s = validate_chrome_trace(&doc).expect("self-emitted trace validates");
        assert!(s.complete > 0, "core spans present");
        assert!(s.async_pairs > 0, "task lifetimes present");
        assert!(s.flows > 0, "ULI flow arrows present");
        assert!(s.instants as u64 >= run.stats.steals, "steal instants present");
        // 1 process_name + one thread_name per core
        assert_eq!(s.metadata, 1 + run.report.traces.len());
        // Each DTS steal is a request and a response round trip. Almost
        // every protocol mark pairs into a flow — except a completion-race
        // tail: when the program finishes, an already-sent request or
        // response can go forever un-received (at most one in-flight
        // message per core).
        let marks: usize = run.report.uli_marks.iter().map(Vec::len).sum();
        let unmatched = marks - s.flows * 2;
        assert!(
            unmatched <= run.report.traces.len(),
            "at most one unmatched in-flight ULI mark per core: {unmatched} from {marks} marks"
        );
        // The document survives its own strict parser.
        let text = doc.to_json();
        assert_eq!(validate_chrome_trace(&parse_json(&text).unwrap()).unwrap(), s);
    }

    #[test]
    fn flow_arrows_point_forward_in_time() {
        let run = small_run_n(RuntimeKind::Dts, 11, true, false);
        let doc = export_chrome_trace(&[TraceRun { app: "fib", setup: "dts", run: &run }]);
        // validate_chrome_trace enforces start <= finish for every flow.
        let s = validate_chrome_trace(&doc).unwrap();
        assert!(s.flows > 0);
        assert_eq!(s.async_pairs, 0, "no task events recorded, no async spans");
    }

    #[test]
    fn multi_run_documents_keep_ids_distinct() {
        let a = small_run_n(RuntimeKind::Dts, 9, true, true);
        let b = small_run_n(RuntimeKind::Hcc, 9, true, true);
        let doc = export_chrome_trace(&[
            TraceRun { app: "fib", setup: "dts", run: &a },
            TraceRun { app: "fib", setup: "hcc", run: &b },
        ]);
        // Same task ids exist in both runs; validation would report a 2:2
        // async pairing if the ids collided across pids.
        validate_chrome_trace(&doc).expect("cross-run ids stay unique");
    }

    #[test]
    fn validator_rejects_unbalanced_documents() {
        let bad = |events: &str| -> String {
            let doc = parse_json(&format!("{{\"traceEvents\":{events}}}")).unwrap();
            validate_chrome_trace(&doc).unwrap_err()
        };
        let b = r#"{"name":"t","cat":"task","ph":"b","id":"x","ts":5,"pid":1,"tid":0}"#;
        let e_early = r#"{"name":"t","cat":"task","ph":"e","id":"x","ts":2,"pid":1,"tid":0}"#;
        assert!(bad(&format!("[{b}]")).contains("1 begins, 0 ends"));
        assert!(bad(&format!("[{b},{e_early}]")).contains("after end"));
        let s = r#"{"name":"u","cat":"uli","ph":"s","id":7,"ts":5,"pid":1,"tid":0}"#;
        assert!(bad(&format!("[{s}]")).contains("1 starts, 0 finishes"));
        assert!(bad(r#"[{"ph":"X","pid":1,"ts":0,"dur":-1}]"#).contains("negative dur"));
        assert!(bad(r#"[{"ph":"??","pid":1,"ts":0}]"#).contains("unknown event phase"));
        assert!(validate_chrome_trace(&parse_json(r#"{"traceEvents":[]}"#).unwrap()).is_ok());
    }

    #[test]
    fn profiled_run_gets_a_critical_path_track() {
        use crate::critpath::{replay_run, CycleLens};
        use crate::testutil::small_run_profiled;
        let run = small_run_profiled(RuntimeKind::Dts, 10);
        let doc = export_chrome_trace(&[TraceRun { app: "fib", setup: "dts", run: &run }]);
        let s = validate_chrome_trace(&doc).expect("profiled trace validates");
        let cp = replay_run(&run, CycleLens::Burdened).unwrap();
        assert!(!cp.chain.is_empty(), "burdened replay yields a chain");
        // Per-core tracing is off, so the only X spans are the chain's, and
        // the metadata adds the critical-path thread name.
        assert_eq!(s.complete, cp.chain.len());
        assert_eq!(s.metadata, 1 + run.report.traces.len() + 1);
        // An unprofiled run of the same shape emits no critpath track.
        let plain = small_run_n(RuntimeKind::Dts, 10, false, true);
        let doc = export_chrome_trace(&[TraceRun { app: "fib", setup: "dts", run: &plain }]);
        let s = validate_chrome_trace(&doc).unwrap();
        assert_eq!(s.complete, 0);
        assert_eq!(s.metadata, 1 + plain.report.traces.len());
    }

    #[test]
    fn disabled_trace_run_exports_an_empty_but_valid_document() {
        let run = small_run_n(RuntimeKind::Baseline, 8, false, false);
        let doc = export_chrome_trace(&[TraceRun { app: "fib", setup: "base", run: &run }]);
        let s = validate_chrome_trace(&doc).unwrap();
        assert_eq!(s.complete, 0);
        assert_eq!(s.flows, 0);
    }
}
