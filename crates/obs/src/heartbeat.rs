//! The `bigtiny-obs-heartbeat-v1` line-JSON stream.
//!
//! A heartbeat-armed run emits one JSON document per line, each carrying
//! its own schema tag, so a stream can be followed (`tail_run`), appended
//! across runs, and validated line by line (`json_check`). Two kinds of
//! fields share a line:
//!
//! * **Deterministic** — a pure function of the sequenced-op stream,
//!   identical across reruns and backends: `seq`, `cycle`, `grants`,
//!   `max_core_clock`, the `conservation` buckets, and `faults` (all
//!   published only while a core holds the sequencer token).
//! * **Out-of-band** — host-timing artifacts for humans and dashboards,
//!   never for pins: `fast_grants`, the per-core `strip`, `islands` lag,
//!   and everything the emitting harness appends (wall milliseconds,
//!   grants/s, live runtime stats).
//!
//! [`heartbeat_line`] renders the deterministic core plus the snapshot's
//! out-of-band strip; harnesses append their own out-of-band pairs via
//! `extra`.

use bigtiny_engine::HeartbeatSnap;

use crate::json::{parse_json, Json};

/// Schema tag carried by every heartbeat line.
pub const HEARTBEAT_SCHEMA: &str = "bigtiny-obs-heartbeat-v1";

/// Indices of [`bigtiny_engine::TIME_CATEGORIES`] folded into each
/// conservation bucket (the same partition as
/// [`CycleConservation`](crate::CycleConservation)).
const BUCKETS: [(&str, &[usize]); 6] = [
    ("compute", &[0, 1, 2]),     // Compute + Load + Store
    ("amo", &[3]),               // Atomic
    ("flush", &[4]),             // Flush
    ("invalidate", &[5]),        // Invalidate
    ("steal_protocol", &[6, 7]), // Uli + UliWait
    ("idle", &[8]),              // Idle
];

/// Fault-counter labels, in [`bigtiny_engine::FaultCounters::pairs`]
/// order (the order [`HeartbeatSnap::faults`] uses).
const FAULT_LABELS: [&str; 6] =
    ["uli_drops", "uli_nacks", "uli_delays", "uli_rx_drops", "steal_misses", "crashes"];

/// Renders one heartbeat line (no trailing newline). `app` and `setup`
/// identify the run inside a multi-run stream; `extra` appends
/// harness-side out-of-band pairs (wall clock, rates, runtime stats) after
/// the deterministic fields.
pub fn heartbeat_line(
    app: &str,
    setup: &str,
    snap: &HeartbeatSnap,
    extra: Vec<(String, Json)>,
) -> String {
    let conservation = Json::Obj(
        BUCKETS
            .iter()
            .map(|(label, idxs)| {
                ((*label).to_owned(), Json::u64(idxs.iter().map(|i| snap.breakdown[*i]).sum()))
            })
            .collect(),
    );
    let faults = Json::Obj(
        FAULT_LABELS
            .iter()
            .zip(snap.faults.iter())
            .map(|(label, v)| ((*label).to_owned(), Json::u64(*v)))
            .collect(),
    );
    // Per-core state strip, one char per core: running `r`, waiting `w`,
    // retired `.` (out-of-band — scheduler state is host-instantaneous).
    let strip: String = snap
        .cores
        .iter()
        .map(|c| {
            if c.retired {
                '.'
            } else if c.waiting_at.is_some() {
                'w'
            } else {
                'r'
            }
        })
        .collect();
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".into(), Json::str(HEARTBEAT_SCHEMA)),
        ("app".into(), Json::str(app)),
        ("setup".into(), Json::str(setup)),
        ("seq".into(), Json::u64(snap.seq)),
        ("cycle".into(), Json::u64(snap.time)),
        ("grants".into(), Json::u64(snap.total_grants)),
        ("max_core_clock".into(), Json::u64(snap.max_clock)),
        ("conservation".into(), conservation),
        ("faults".into(), faults),
        ("fast_grants".into(), Json::u64(snap.fast_grants)),
        ("strip".into(), Json::str(strip)),
        ("islands".into(), Json::Arr(snap.islands.iter().map(|t| Json::u64(*t)).collect())),
    ];
    fields.extend(extra);
    Json::Obj(fields).to_json()
}

/// Validates one heartbeat line: parseable JSON object, the
/// [`HEARTBEAT_SCHEMA`] tag, and every required field with its required
/// shape.
pub fn validate_heartbeat_line(line: &str) -> Result<(), String> {
    let doc = parse_json(line)?;
    let schema =
        doc.get("schema").and_then(Json::as_str).ok_or_else(|| "missing schema tag".to_owned())?;
    if schema != HEARTBEAT_SCHEMA {
        return Err(format!("schema {schema:?}, expected {HEARTBEAT_SCHEMA:?}"));
    }
    for key in ["app", "setup", "strip"] {
        doc.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string {key:?}"))?;
    }
    for key in ["seq", "cycle", "grants", "max_core_clock", "fast_grants"] {
        doc.get(key).and_then(Json::as_num).ok_or_else(|| format!("missing number {key:?}"))?;
    }
    let cons = doc.get("conservation").ok_or_else(|| "missing conservation".to_owned())?;
    for (label, _) in BUCKETS {
        cons.get(label)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("conservation missing bucket {label:?}"))?;
    }
    let faults = doc.get("faults").ok_or_else(|| "missing faults".to_owned())?;
    for label in FAULT_LABELS {
        faults
            .get(label)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("faults missing counter {label:?}"))?;
    }
    doc.get("islands").and_then(Json::as_arr).ok_or_else(|| "missing islands".to_owned())?;
    Ok(())
}

/// Validates a whole heartbeat stream (one document per non-empty line)
/// and returns the number of heartbeat lines. `seq` must be
/// non-decreasing within each `(app, setup)` run.
pub fn validate_heartbeat_stream(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_seq: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_heartbeat_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let doc = parse_json(line).expect("validated above");
        let key = (
            doc.get("app").and_then(Json::as_str).expect("validated").to_owned(),
            doc.get("setup").and_then(Json::as_str).expect("validated").to_owned(),
        );
        let seq = doc.get("seq").and_then(Json::as_num).expect("validated");
        if let Some(prev) = last_seq.get(&key) {
            if seq < *prev {
                return Err(format!(
                    "line {}: seq went backwards ({seq} after {prev}) for {key:?}",
                    i + 1
                ));
            }
        }
        last_seq.insert(key, seq);
        count += 1;
    }
    if count == 0 {
        return Err("no heartbeat lines in stream".to_owned());
    }
    Ok(count)
}

/// Whether `text` looks like a heartbeat stream: its first non-empty line
/// is a JSON object carrying the [`HEARTBEAT_SCHEMA`] tag. Used by
/// `json_check` to route a file before strict validation.
pub fn looks_like_heartbeat_stream(text: &str) -> bool {
    text.lines().find(|l| !l.trim().is_empty()).is_some_and(|line| {
        parse_json(line)
            .ok()
            .and_then(|doc| doc.get("schema").and_then(Json::as_str).map(String::from))
            .is_some_and(|s| s == HEARTBEAT_SCHEMA)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigtiny_engine::CoreBeat;

    fn snap() -> HeartbeatSnap {
        HeartbeatSnap {
            seq: 3,
            time: 3000,
            total_grants: 1500,
            fast_grants: 700,
            max_clock: 3100,
            breakdown: [100, 20, 10, 5, 2, 3, 7, 9, 44],
            faults: [1, 2, 3, 4, 5, 6],
            cores: vec![
                CoreBeat { grants: 800, last_time: 3000, retired: false, waiting_at: None },
                CoreBeat { grants: 700, last_time: 2990, retired: false, waiting_at: Some(3001) },
                CoreBeat { grants: 0, last_time: 100, retired: true, waiting_at: None },
            ],
            islands: vec![3000, 2990],
        }
    }

    #[test]
    fn line_roundtrips_and_validates() {
        let line = heartbeat_line(
            "fib",
            "b.T/MESI",
            &snap(),
            vec![
                ("wall_ms".to_owned(), Json::u64(123)),
                ("grants_per_sec".to_owned(), Json::f64(1.5e6)),
            ],
        );
        assert!(!line.contains('\n'));
        validate_heartbeat_line(&line).unwrap();
        let doc = parse_json(&line).unwrap();
        assert_eq!(doc.get("strip").and_then(Json::as_str), Some("rw."));
        assert_eq!(doc.get("cycle").and_then(Json::as_num), Some(3000.0));
        assert_eq!(
            doc.get("conservation").and_then(|c| c.get("compute")).and_then(Json::as_num),
            Some(130.0)
        );
        assert_eq!(
            doc.get("conservation").and_then(|c| c.get("steal_protocol")).and_then(Json::as_num),
            Some(16.0)
        );
        assert_eq!(doc.get("wall_ms").and_then(Json::as_num), Some(123.0));
    }

    #[test]
    fn stream_validation_counts_and_orders() {
        let l1 = heartbeat_line("fib", "a", &snap(), vec![]);
        let mut later = snap();
        later.seq = 4;
        let l2 = heartbeat_line("fib", "a", &later, vec![]);
        let text = format!("{l1}\n{l2}\n\n");
        assert_eq!(validate_heartbeat_stream(&text).unwrap(), 2);
        // Reversed order must fail the seq monotonicity check.
        let rev = format!("{l2}\n{l1}\n");
        assert!(validate_heartbeat_stream(&rev).unwrap_err().contains("seq went backwards"));
        assert!(looks_like_heartbeat_stream(&text));
        assert!(!looks_like_heartbeat_stream("{\"schema\":\"other\"}"));
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(validate_heartbeat_line("{}").is_err());
        assert!(validate_heartbeat_line("not json").is_err());
        let line = heartbeat_line("fib", "a", &snap(), vec![]);
        let broken = line.replace("\"grants\"", "\"grantz\"");
        assert!(validate_heartbeat_line(&broken).is_err());
    }
}
