//! A small nested JSON value type with a strict parser and a compact
//! serializer, on std only (the workspace is deliberately dependency-free).
//!
//! The serializer never emits an unparseable document: non-finite numbers
//! become `null` (JSON has no NaN/Infinity literals), strings escape every
//! control character, and 64-bit hashes are rendered as hex *strings* so a
//! downstream double-precision JSON reader cannot silently round them.
//! The parser is strict where it matters for CI artifacts: duplicate keys,
//! bare words, trailing garbage, raw control characters, and non-finite
//! numbers are all hard errors.

use std::fmt;

/// A JSON value. Object keys keep insertion order so serialization is
/// deterministic and schema diffs stay readable.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null` (also how non-finite floats serialize).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned counter. Counters in this workspace are cycle and event
    /// counts far below 2^53, so the double-precision JSON number is exact;
    /// the assert keeps that assumption honest.
    pub fn u64(v: u64) -> Json {
        debug_assert!(v <= (1 << 53), "counter {v} would lose precision as a JSON number");
        Json::Num(v as f64)
    }

    /// A float value; non-finite inputs become [`Json::Null`].
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A 64-bit hash as a `0x`-prefixed hex string, immune to
    /// double-precision rounding in downstream readers.
    pub fn hash(v: u64) -> Json {
        Json::Str(format!("{v:#018x}"))
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite f64, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), deterministically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(kv) => {
                out.push('{');
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Byte length of the UTF-8 sequence starting with leading byte `b`, or
/// `None` if `b` cannot start a sequence.
fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

/// Nesting depth limit: deep enough for any document we emit, shallow
/// enough that a hostile input cannot overflow the parser's stack.
const MAX_DEPTH: usize = 64;

/// Strictly parses a complete JSON document (arbitrary nesting). Rejects
/// duplicate keys, bare words other than `true`/`false`/`null`, non-finite
/// numbers, raw control characters in strings, documents nested deeper
/// than an internal limit, and trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { s: text.as_bytes(), i: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes after document at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.i += 1;
                Ok(())
            }
            Some(b) => {
                Err(format!("expected {:?} at byte {}, got {:?}", want as char, self.i, b as char))
            }
            None => Err(format!("expected {:?}, got end of input", want as char)),
        }
    }

    fn literal(&mut self, word: &[u8], v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.i)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv: Vec<(String, Json)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if kv.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            kv.push((key, val));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.s.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(cp).ok_or(format!("\\u{hex} is not a scalar"))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b if b < 0x20 => return Err("raw control character in string".to_owned()),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode exactly one UTF-8 scalar. Validating from the
                    // leading byte's length (never the whole remaining
                    // input) keeps the parser linear in document size.
                    let start = self.i - 1;
                    let len = utf8_len(b).ok_or("invalid UTF-8 in string")?;
                    let bytes = self.s.get(start..start + len).ok_or("truncated UTF-8")?;
                    let ch = std::str::from_utf8(bytes)
                        .map_err(|_| "invalid UTF-8 in string")?
                        .chars()
                        .next()
                        .expect("nonempty");
                    out.push(ch);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(self.s.get(self.i), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii digits");
        let v: f64 = text.parse().map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("v1")),
            ("n".into(), Json::u64(42)),
            ("rate".into(), Json::f64(0.5)),
            ("hash".into(), Json::hash(0x7a5b_548b_12b2_90de)),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("x\n\u{1}")])),
            ("obj".into(), Json::Obj(vec![("k".into(), Json::u64(1))])),
        ]);
        let text = doc.to_json();
        let back = parse_json(&text).expect("round trip");
        assert_eq!(back, doc);
        assert_eq!(back.get("hash").unwrap().as_str(), Some("0x7a5b548b12b290de"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::f64(bad), Json::Null);
            assert_eq!(Json::Num(bad).to_json(), "null");
        }
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        for cp in 0u32..0x20 {
            let s = char::from_u32(cp).unwrap().to_string();
            let text = Json::str(&s).to_json();
            assert!(!text.bytes().any(|b| b < 0x20), "raw control byte in {text:?}");
            assert_eq!(parse_json(&text).unwrap().as_str(), Some(s.as_str()));
        }
    }

    /// The parser must stay linear in document size: decoding a string
    /// character must never re-validate the whole remaining input (the
    /// megabyte-scale trace documents made that quadratic path take
    /// minutes). A multi-megabyte string-heavy document parses in well
    /// under the test timeout, and multibyte text round-trips exactly.
    #[test]
    fn large_string_documents_parse_in_linear_time() {
        let chunk = "big.TINY ménage of cœurs — 大小核 ☂ ".repeat(4096);
        let doc = Json::Arr((0..16).map(|_| Json::str(&chunk)).collect());
        let text = doc.to_json();
        assert!(text.len() > 2 << 20, "fixture should be multi-megabyte");
        let t0 = std::time::Instant::now();
        let back = parse_json(&text).expect("round trip");
        assert_eq!(back, doc);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(20),
            "string parsing is no longer linear: {:?}",
            t0.elapsed()
        );
    }

    /// The single-scalar decode path must reproduce multibyte text
    /// exactly (the input is `&str`, so truncated sequences cannot occur;
    /// the parser's truncation errors are defensive only).
    #[test]
    fn multibyte_utf8_round_trips_exactly() {
        for s in ["é", "大", "🚀", "a大é🚀b"] {
            let text = Json::str(s).to_json();
            assert_eq!(parse_json(&text).unwrap().as_str(), Some(s));
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,\"a\":2}",
            "{\"a\":NaN}",
            "nullx",
            "{\"a\":1}trailing",
            "\"\u{1}\"",
            "{\"a\":}",
            "[1 2]",
        ] {
            assert!(parse_json(bad).is_err(), "accepted malformed document {bad:?}");
        }
    }

    #[test]
    fn parser_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse_json(r#"{"a":{"b":[1,2]},"s":"x"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
