#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! DRF conformance checker for the big.TINY op stream.
//!
//! The paper's correctness argument (Section III) is that the runtimes of
//! Figure 3 are data-race-free *given* their sync discipline: every deque
//! acquire is followed by a `cache_invalidate`, every release preceded by a
//! `cache_flush`, and DTS's `has_stolen_child` elision only skips them on
//! steal-free joins. This crate is the oracle that checks an actual
//! execution against that argument. It consumes the addressed per-op event
//! stream a [`CheckMode`]-armed run records
//! ([`bigtiny_engine::RunReport::mem_events`]) and replays it through three
//! cooperating passes:
//!
//! 1. **Happens-before** ([`ViolationKind::HbRace`]) — a FastTrack-style
//!    vector-clock race detector. Sync edges come from AMOs
//!    (acquire-release on the word's sync clock), deque release stores
//!    (marked by [`SyncNote::DequeRelease`]), ULI request/response
//!    delivery, and the join-counter spin (a [`RacyTag::RcWaitLoop`] load
//!    acquires the counter's sync clock — the paper's argument for why the
//!    plain spin is safe). Audited benign-race loads are race-exempt.
//! 2. **Staleness** ([`ViolationKind::StaleMissingInvalidate`],
//!    [`ViolationKind::StaleMissingFlush`]) — a word-granular replay of
//!    each protocol's visibility rules from `bigtiny-coherence`, flagging
//!    every non-racy load that could legally observe stale data on real
//!    hardware: a cached copy outliving a remote write with no invalidate
//!    on the reader, or a miss served while the latest write sits
//!    unflushed in a GPU-WB cache.
//! 3. **Sync-discipline lint** ([`ViolationKind::LintAcquireNoInvalidate`],
//!    [`ViolationKind::LintReleaseNoFlush`],
//!    [`ViolationKind::LintHscElideAfterSteal`]) — the Figure 3 structure,
//!    checked literally against the runtime's own annotations.
//!
//! The checker is deterministic: the event stream is a pure function of
//! the simulated schedule (which is deterministic), and the passes do no
//! hashing-order-dependent iteration, so the same run always yields the
//! same report and the same [`CheckReport::verdict_hash`].

pub mod audit;
pub mod explore;
mod hb;
mod lint;
mod stale;

pub use audit::{
    audit_task_events, audit_task_events_mode, kernel_is_duplicate_safe, kernel_is_idempotent,
    AuditMode, AuditReport, AuditViolation, AuditViolationKind, DUPLICATE_SAFE_KERNELS,
    IDEMPOTENT_KERNELS,
};

use bigtiny_coherence::{Addr, Protocol};
use bigtiny_engine::{hash, CheckMode, MemEvent, MemOp, RacyTag, RunReport, SystemConfig};

/// What kind of conformance violation a finding reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ViolationKind {
    /// Two conflicting accesses (at least one a plain, non-exempt access)
    /// with no happens-before edge between them.
    HbRace,
    /// A load hit a cached copy that a remote write had made stale, with no
    /// `cache_invalidate` on the reader in between (the acquire-side half
    /// of Figure 3's discipline).
    StaleMissingInvalidate,
    /// A load missed while the latest write to the word sat unflushed in a
    /// remote GPU-WB cache (the release-side half: `cache_flush` before
    /// publishing).
    StaleMissingFlush,
    /// A deque lock acquire was not followed by a `cache_invalidate`
    /// before the first data access (Figure 3(b) line 3), on a protocol
    /// where the invalidate is not a no-op.
    LintAcquireNoInvalidate,
    /// A deque lock release with dirty data since the last `cache_flush`
    /// (Figure 3(b) line 4/9), on a protocol where the flush is not a
    /// no-op.
    LintReleaseNoFlush,
    /// A `has_stolen_child` elision fired for a task that *did* have a
    /// stolen child (Figure 3(c) line 8 taken on a steal-tainted join).
    LintHscElideAfterSteal,
    /// The event stream itself is malformed (e.g. a ULI handler entry with
    /// no matching request send) — a harness bug, not a runtime bug.
    ProtocolStream,
}

impl ViolationKind {
    /// Every kind, in severity/report order.
    pub const ALL: [ViolationKind; 7] = [
        ViolationKind::HbRace,
        ViolationKind::StaleMissingInvalidate,
        ViolationKind::StaleMissingFlush,
        ViolationKind::LintAcquireNoInvalidate,
        ViolationKind::LintReleaseNoFlush,
        ViolationKind::LintHscElideAfterSteal,
        ViolationKind::ProtocolStream,
    ];

    /// Stable label used in reports and verdict JSON.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::HbRace => "hb-race",
            ViolationKind::StaleMissingInvalidate => "stale-missing-invalidate",
            ViolationKind::StaleMissingFlush => "stale-missing-flush",
            ViolationKind::LintAcquireNoInvalidate => "lint-acquire-no-invalidate",
            ViolationKind::LintReleaseNoFlush => "lint-release-no-flush",
            ViolationKind::LintHscElideAfterSteal => "lint-hsc-elide-after-steal",
            ViolationKind::ProtocolStream => "protocol-stream",
        }
    }
}

/// One conformance finding, with the diagnostics the ISSUE demands:
/// which core, at which simulated cycle, on which address.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Core whose access exposed the violation.
    pub core: usize,
    /// That core's local clock when the offending operation was granted.
    pub cycle: u64,
    /// Word address involved, when the violation is addressed.
    pub addr: Option<Addr>,
    /// Human-readable specifics (the other side of the race, version
    /// numbers, the lock or task involved).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] core {} cycle {}", self.kind.label(), self.core, self.cycle)?;
        if let Some(a) = self.addr {
            write!(f, " addr {a}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The result of checking one run's event stream.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Mode the check ran under.
    pub mode: CheckMode,
    /// Events consumed.
    pub events: u64,
    /// Findings, sorted by `(cycle, core)` — `violations.first()` is the
    /// earliest violation of the run. Deduplicated per `(kind, subject)`:
    /// one stale word produces one finding, however often it is re-read.
    pub violations: Vec<Violation>,
    /// Findings suppressed by deduplication.
    pub suppressed: u64,
    /// Audited benign-race load counts, per [`RacyTag`] (whitelist order).
    /// The staleness pass never flags these, but the audit keeps them
    /// visible: a verdict is "clean, with N declared benign races".
    pub racy_loads: [u64; RacyTag::ALL.len()],
}

impl CheckReport {
    /// No violations of any kind.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The earliest finding (by cycle, then core), if any.
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Number of findings of one kind (after deduplication).
    pub fn count(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// Total audited benign-race loads.
    pub fn racy_total(&self) -> u64 {
        self.racy_loads.iter().sum()
    }

    /// FNV-1a fingerprint of the verdict: folds every finding's kind,
    /// core, cycle and address plus the racy-load audit. Two runs with the
    /// same schedule produce the same hash; a mutation that changes any
    /// finding changes it.
    pub fn verdict_hash(&self) -> u64 {
        let mut h = hash::FNV_OFFSET;
        for v in &self.violations {
            h = hash::fnv1a_continue(h, v.kind.label().as_bytes());
            h = hash::fnv1a_continue(h, &(v.core as u64).to_le_bytes());
            h = hash::fnv1a_continue(h, &v.cycle.to_le_bytes());
            h = hash::fnv1a_continue(h, &v.addr.map_or(u64::MAX, |a| a.0).to_le_bytes());
        }
        for n in self.racy_loads {
            h = hash::fnv1a_continue(h, &n.to_le_bytes());
        }
        h
    }

    /// Renders a short human-readable summary (first finding + counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "clean: {} events, {} audited benign-race loads\n",
                self.events,
                self.racy_total()
            ));
        } else {
            out.push_str(&format!(
                "{} violation(s) (+{} deduplicated) in {} events\n",
                self.violations.len(),
                self.suppressed,
                self.events
            ));
            for kind in ViolationKind::ALL {
                let n = self.count(kind);
                if n > 0 {
                    out.push_str(&format!("  {:>5} x {}\n", n, kind.label()));
                }
            }
            out.push_str(&format!("  first: {}\n", self.violations[0]));
        }
        out
    }
}

/// Deduplicating violation collector shared by the three passes.
pub(crate) struct Collector {
    violations: Vec<Violation>,
    seen: std::collections::HashSet<(ViolationKind, u64)>,
    suppressed: u64,
}

impl Collector {
    fn new() -> Self {
        Collector { violations: Vec::new(), seen: std::collections::HashSet::new(), suppressed: 0 }
    }

    /// Records a finding unless an equal `(kind, subject)` was already
    /// reported; `subject` is the word address for addressed findings, the
    /// task id for `has_stolen_child` findings, the core for stream errors.
    pub(crate) fn report(
        &mut self,
        kind: ViolationKind,
        core: usize,
        cycle: u64,
        addr: Option<Addr>,
        subject: u64,
        detail: String,
    ) {
        if self.seen.insert((kind, subject)) {
            self.violations.push(Violation { kind, core, cycle, addr, detail });
        } else {
            self.suppressed += 1;
        }
    }
}

/// Checks an event stream recorded by an armed run.
///
/// `protocols` gives the per-core L1 protocol, in core-id order (the
/// stream's `core` fields index into it). `mode` selects the passes:
/// [`CheckMode::Hb`] runs only the race detector, [`CheckMode::Full`] all
/// three; [`CheckMode::Off`] returns an empty, clean report.
///
/// # Panics
///
/// Panics if the stream names a core outside `protocols`.
pub fn check_events(protocols: &[Protocol], mode: CheckMode, events: &[MemEvent]) -> CheckReport {
    let mut col = Collector::new();
    let mut racy = [0u64; RacyTag::ALL.len()];
    if mode.armed() {
        let mut hb = hb::HbPass::new(protocols.len());
        let mut full = (mode == CheckMode::Full)
            .then(|| (stale::StalePass::new(protocols), lint::LintPass::new(protocols)));
        for ev in events {
            assert!(ev.core < protocols.len(), "event core {} out of range", ev.core);
            if let MemOp::Load { racy: Some(tag), .. } = ev.op {
                racy[RacyTag::ALL.iter().position(|t| *t == tag).expect("tag in whitelist")] += 1;
            }
            hb.step(ev, &mut col);
            if let Some((stale, lint)) = full.as_mut() {
                stale.step(ev, &mut col);
                lint.step(ev, &mut col);
            }
        }
    }
    let mut violations = col.violations;
    violations.sort_by_key(|v| (v.cycle, v.core));
    CheckReport {
        mode,
        events: events.len() as u64,
        violations,
        suppressed: col.suppressed,
        racy_loads: racy,
    }
}

/// Convenience wrapper: checks a finished run against its own system
/// configuration (per-core protocols and armed [`CheckMode`] are taken
/// from `sys`; the event stream from `report.mem_events`).
pub fn check_run(sys: &SystemConfig, report: &RunReport) -> CheckReport {
    let protocols: Vec<Protocol> = sys.cores.iter().map(|c| c.mem.protocol).collect();
    check_events(&protocols, sys.check, &report.mem_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigtiny_engine::SyncNote;

    fn ev(cycle: u64, core: usize, op: MemOp) -> MemEvent {
        MemEvent { cycle, core, op }
    }

    fn load(a: u64) -> MemOp {
        MemOp::Load { addr: Addr(a), racy: None }
    }

    fn racy_load(a: u64, tag: RacyTag) -> MemOp {
        MemOp::Load { addr: Addr(a), racy: Some(tag) }
    }

    fn store(a: u64) -> MemOp {
        MemOp::Store { addr: Addr(a), racy: None }
    }

    fn racy_store(a: u64, tag: RacyTag) -> MemOp {
        MemOp::Store { addr: Addr(a), racy: Some(tag) }
    }

    fn amo(a: u64) -> MemOp {
        MemOp::Amo { addr: Addr(a) }
    }

    const MESI2: [Protocol; 2] = [Protocol::Mesi, Protocol::Mesi];
    const GWB2: [Protocol; 2] = [Protocol::GpuWb, Protocol::GpuWb];
    const DNV2: [Protocol; 2] = [Protocol::DeNovo, Protocol::DeNovo];

    #[test]
    fn off_mode_reports_nothing() {
        let events = [ev(0, 0, store(64)), ev(1, 1, load(64))];
        let r = check_events(&MESI2, CheckMode::Off, &events);
        assert!(r.is_clean());
        assert_eq!(r.events, 2);
    }

    #[test]
    fn unsynchronized_read_write_is_a_race() {
        let events = [ev(0, 0, store(64)), ev(5, 1, load(64))];
        let r = check_events(&MESI2, CheckMode::Hb, &events);
        assert_eq!(r.count(ViolationKind::HbRace), 1);
        let v = r.first().unwrap();
        assert_eq!((v.core, v.cycle, v.addr), (1, 5, Some(Addr(64))));
    }

    #[test]
    fn amo_chain_orders_accesses() {
        // Core 0 writes data, releases via AMO on a flag; core 1 acquires
        // via AMO on the same flag, then reads the data: no race.
        let events =
            [ev(0, 0, store(64)), ev(1, 0, amo(128)), ev(5, 1, amo(128)), ev(6, 1, load(64))];
        let r = check_events(&MESI2, CheckMode::Hb, &events);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn release_store_publishes_like_an_atomic() {
        // Lock handoff: core 0 holds the lock (AMO), writes data, flushes,
        // marks + stores the release; core 1 re-acquires with an AMO and
        // reads the data. The plain release store must carry release
        // semantics or this would (falsely) race.
        let events = [
            ev(0, 0, amo(8)),
            ev(1, 0, store(64)),
            ev(2, 0, MemOp::FlushAll),
            ev(3, 0, MemOp::Sync(SyncNote::DequeRelease { lock: Addr(8) })),
            ev(3, 0, store(8)),
            ev(9, 1, amo(8)),
            ev(10, 1, MemOp::InvalidateAll),
            ev(11, 1, load(64)),
        ];
        let r = check_events(&GWB2, CheckMode::Full, &events);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn racy_loads_are_exempt_but_audited() {
        let events = [
            ev(0, 0, store(64)),
            ev(5, 1, racy_load(64, RacyTag::LigraCondProbe)),
            ev(6, 1, racy_load(64, RacyTag::LigraCondProbe)),
        ];
        let r = check_events(&MESI2, CheckMode::Full, &events);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.racy_total(), 2);
        let idx = RacyTag::ALL.iter().position(|t| *t == RacyTag::LigraCondProbe).unwrap();
        assert_eq!(r.racy_loads[idx], 2);
    }

    #[test]
    fn racy_stores_spare_each_other_but_convict_plain_accesses() {
        // Two cores concurrently set the same dedup flag to the same
        // value (Ligra insert): audited, no race — including against a
        // concurrent racy probe.
        let events = [
            ev(0, 0, racy_store(64, RacyTag::LigraDedupFlag)),
            ev(1, 1, racy_store(64, RacyTag::LigraDedupFlag)),
            ev(2, 1, racy_load(64, RacyTag::LigraDedupFlag)),
        ];
        let r = check_events(&MESI2, CheckMode::Hb, &events);
        assert!(r.is_clean(), "{}", r.render());
        // An unordered *plain* access still races with the audited store.
        let events = [ev(0, 0, racy_store(64, RacyTag::LigraDedupFlag)), ev(5, 1, store(64))];
        let r = check_events(&MESI2, CheckMode::Hb, &events);
        assert_eq!(r.count(ViolationKind::HbRace), 1, "{}", r.render());
    }

    #[test]
    fn rc_wait_loop_load_acquires_the_counter_clock() {
        // Child decrements the join counter with an AMO; the parent's
        // tagged spin read of zero synchronizes with it, ordering the
        // parent's read of the child's data (the Figure 3(c) join
        // argument).
        let events = [
            ev(0, 1, store(64)),                           // child result
            ev(1, 1, amo(128)),                            // rc decrement (release)
            ev(5, 0, racy_load(128, RacyTag::RcWaitLoop)), // spin read sees 0
            ev(6, 0, MemOp::InvalidateAll),
            ev(7, 0, load(64)), // parent reads result
        ];
        let r = check_events(&DNV2, CheckMode::Full, &events);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn stale_cached_copy_without_invalidate_is_flagged() {
        // Core 1 caches the word, core 0 rewrites it (DeNovo: commits +
        // owns, no remote invalidation), core 1 re-reads its cached copy
        // with sync (AMO) but *without* an invalidate.
        let events = [
            ev(0, 0, store(64)),
            ev(1, 0, amo(128)),  // release
            ev(2, 1, amo(128)),  // acquire
            ev(3, 1, load(64)),  // fill: committed v1
            ev(4, 1, amo(256)),  // release (publish the read)
            ev(5, 0, amo(256)),  // acquire
            ev(6, 0, store(64)), // v2; core 1's copy now stale
            ev(7, 0, amo(192)),  // release on another flag
            ev(9, 1, amo(192)),  // acquire — but no InvalidateAll
            ev(10, 1, load(64)), // stale hit
        ];
        let r = check_events(&DNV2, CheckMode::Full, &events);
        assert_eq!(r.count(ViolationKind::StaleMissingInvalidate), 1, "{}", r.render());
        assert_eq!(r.violations.len(), 1, "HB-clean by design: {}", r.render());
        let v = r.first().unwrap();
        assert_eq!((v.core, v.cycle, v.addr), (1, 10, Some(Addr(64))));
        // The same schedule with the invalidate inserted is fully clean.
        let mut fixed = events.to_vec();
        fixed.insert(9, ev(9, 1, MemOp::InvalidateAll));
        let r = check_events(&DNV2, CheckMode::Full, &fixed);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unflushed_gwb_write_read_remotely_is_flagged() {
        // Core 0 writes under GPU-WB (dirty, uncommitted), releases the
        // lock WITHOUT flushing; core 1 acquires, invalidates, and misses:
        // the L2 can only supply the stale committed version.
        let events = [
            ev(0, 0, amo(8)),
            ev(1, 0, store(64)),
            ev(2, 0, MemOp::Sync(SyncNote::DequeRelease { lock: Addr(8) })),
            ev(2, 0, store(8)),
            ev(9, 1, amo(8)),
            ev(10, 1, MemOp::InvalidateAll),
            ev(11, 1, load(64)),
        ];
        let r = check_events(&GWB2, CheckMode::Full, &events);
        assert_eq!(r.count(ViolationKind::StaleMissingFlush), 1, "{}", r.render());
        let v = r.violations.iter().find(|v| v.kind == ViolationKind::StaleMissingFlush).unwrap();
        assert_eq!((v.core, v.cycle, v.addr), (1, 11, Some(Addr(64))));
        assert!(v.detail.contains("core 0"), "blames the unflushed writer: {}", v.detail);
        // The lint also notices the structural hole.
        assert_eq!(r.count(ViolationKind::LintReleaseNoFlush), 1, "{}", r.render());
    }

    #[test]
    fn mesi_tolerates_the_same_elision() {
        // Identical schedule, MESI cores: stores commit and invalidate
        // remote copies, so the flush-free handoff is safe — and the lint
        // knows the flush is a no-op.
        let events = [
            ev(0, 0, amo(8)),
            ev(1, 0, store(64)),
            ev(2, 0, MemOp::Sync(SyncNote::DequeRelease { lock: Addr(8) })),
            ev(2, 0, store(8)),
            ev(9, 1, amo(8)),
            ev(11, 1, load(64)),
        ];
        let r = check_events(&MESI2, CheckMode::Full, &events);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn acquire_without_invalidate_lint() {
        let events = [
            ev(0, 0, amo(8)),
            ev(0, 0, MemOp::Sync(SyncNote::DequeAcquire { lock: Addr(8) })),
            ev(1, 0, load(16)), // first CS access with no InvalidateAll
        ];
        let r = check_events(&DNV2, CheckMode::Full, &events);
        assert_eq!(r.count(ViolationKind::LintAcquireNoInvalidate), 1, "{}", r.render());
        let v = r.first().unwrap();
        assert_eq!((v.core, v.cycle, v.addr), (0, 1, Some(Addr(16))));
        // MESI: invalidate is a no-op, same stream is clean.
        let r = check_events(&MESI2, CheckMode::Full, &events);
        assert_eq!(r.count(ViolationKind::LintAcquireNoInvalidate), 0, "{}", r.render());
    }

    #[test]
    fn hsc_elide_after_steal_lint() {
        let events = [
            ev(0, 0, MemOp::Sync(SyncNote::HscSet { task: 7 })),
            ev(5, 0, MemOp::Sync(SyncNote::HscElide { task: 7 })),
        ];
        let r = check_events(&DNV2, CheckMode::Full, &events);
        assert_eq!(r.count(ViolationKind::LintHscElideAfterSteal), 1);
        // Eliding a task that was never stolen is the optimization working.
        let events = [
            ev(0, 0, MemOp::Sync(SyncNote::HscSet { task: 3 })),
            ev(5, 0, MemOp::Sync(SyncNote::HscElide { task: 7 })),
        ];
        let r = check_events(&DNV2, CheckMode::Full, &events);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn uli_edges_order_victim_and_thief() {
        // Victim (core 0) writes the mailbox in its handler and responds;
        // the thief's read of the mailbox after receiving the response is
        // ordered. Without the response edge this would race.
        let events = [
            ev(0, 1, MemOp::Sync(SyncNote::UliReqSend { to: 0 })),
            ev(4, 0, MemOp::Sync(SyncNote::HandlerEnter { from: 1 })),
            ev(5, 0, store(64)), // mailbox write
            ev(6, 0, MemOp::FlushAll),
            ev(7, 0, MemOp::Sync(SyncNote::UliRespSend { to: 1 })),
            ev(12, 1, MemOp::Sync(SyncNote::UliRespRecv { from: 0 })),
            ev(13, 1, MemOp::InvalidateAll),
            ev(14, 1, load(64)),
        ];
        let r = check_events(&GWB2, CheckMode::Full, &events);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn malformed_uli_stream_is_a_stream_error() {
        let events = [ev(4, 0, MemOp::Sync(SyncNote::HandlerEnter { from: 1 }))];
        let r = check_events(&MESI2, CheckMode::Hb, &events);
        assert_eq!(r.count(ViolationKind::ProtocolStream), 1);
    }

    #[test]
    fn dedup_and_verdict_hash_are_stable() {
        let events = [
            ev(0, 0, store(64)),
            ev(5, 1, load(64)),
            ev(6, 1, load(64)), // same race again: deduplicated
        ];
        let a = check_events(&MESI2, CheckMode::Hb, &events);
        let b = check_events(&MESI2, CheckMode::Hb, &events);
        assert_eq!(a.count(ViolationKind::HbRace), 1);
        assert_eq!(a.suppressed, 1);
        assert_eq!(a.verdict_hash(), b.verdict_hash());
        let clean = check_events(&MESI2, CheckMode::Off, &events);
        assert_ne!(a.verdict_hash(), clean.verdict_hash());
    }
}
