//! Happens-before race detection over the op stream.
//!
//! A FastTrack-flavoured vector-clock pass. The stream is replayed in
//! merged `(cycle, core)` order — which the engine guarantees equals grant
//! order — and each core carries a full vector clock. Synchronization
//! edges come from five sources, all explicit in the stream:
//!
//! * **AMOs** are acquire-release on the accessed word's sync clock
//!   (every runtime lock, CAS, and join-counter decrement is an AMO).
//! * **Deque release stores**: a plain store to the lock word immediately
//!   after a [`SyncNote::DequeRelease`] note publishes the critical
//!   section. The next `try_lock` AMO on that word acquires it. Without
//!   this the unlock store would race with other cores' failed `try_lock`
//!   AMOs.
//! * **Lock-free push publishes**: a [`RacyTag::DequeTailPublish`] store
//!   is a release on the deque's `tail` word, and a thief's
//!   [`RacyTag::DequeThiefPeek`] load acquires it — the lock-free deques'
//!   analog of the release/acquire pair the locked deque gets from its
//!   lock word.
//! * **ULI request/response delivery**: `UliReqSend -> HandlerEnter` and
//!   `UliRespSend -> UliRespRecv` each carry the sender's clock to the
//!   receiver (the mesh delivers ULI messages point-to-point in order).
//! * **Join-counter spins**: a [`RacyTag::RcWaitLoop`] load additionally
//!   acquires its word's sync clock — the paper's argument for why the
//!   plain spin is safe is exactly that the terminal read synchronizes
//!   with the child's releasing AMO decrement.
//!
//! Audited benign-race loads ([`MemOp::Load`] with `racy: Some(_)`) are
//! exempt: they neither race nor record a read epoch.

use std::collections::HashMap;

use bigtiny_coherence::Addr;
use bigtiny_engine::{MemEvent, MemOp, RacyTag, SyncNote};

use crate::{Collector, ViolationKind};

/// A vector clock over all cores.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Vc(Vec<u64>);

impl Vc {
    fn new(n: usize) -> Self {
        Vc(vec![0; n])
    }

    fn join(&mut self, other: &Vc) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `true` iff an event at `(core, clock)` happens-before this clock.
    fn covers(&self, core: usize, clock: u64) -> bool {
        self.0[core] >= clock
    }
}

/// Last-access metadata for one word.
#[derive(Default)]
struct WordState {
    /// Last write epoch: `(core, clock, cycle, atomic)`.
    write: Option<(usize, u64, u64, bool)>,
    /// Per-core last plain-read clocks (lazily allocated: most words are
    /// written before they are ever read by a second core).
    reads: Option<Box<[u64]>>,
    /// Cycle of the most recent plain read per core (diagnostics only).
    read_cycles: Option<Box<[u64]>>,
}

/// The happens-before pass.
pub(crate) struct HbPass {
    ncores: usize,
    /// Per-core vector clock.
    vc: Vec<Vc>,
    /// Per-word sync clock (release stores and AMOs publish here).
    sync: HashMap<u64, Vc>,
    /// Per-word last-access state for the race check.
    words: HashMap<u64, WordState>,
    /// Armed by a `DequeRelease` note: the next store to this word by this
    /// core is the release store.
    pending_release: Vec<Option<u64>>,
    /// In-flight ULI message clocks, keyed `(from, to, kind)` where kind 0
    /// is a request and 1 a response. FIFO per key (mesh delivers ULI
    /// point-to-point in order).
    uli: HashMap<(usize, usize, u8), Vec<Vc>>,
}

impl HbPass {
    pub(crate) fn new(ncores: usize) -> Self {
        let mut vc = vec![Vc::new(ncores); ncores];
        for (i, c) in vc.iter_mut().enumerate() {
            c.0[i] = 1;
        }
        HbPass {
            ncores,
            vc,
            sync: HashMap::new(),
            words: HashMap::new(),
            pending_release: vec![None; ncores],
            uli: HashMap::new(),
        }
    }

    fn bump(&mut self, core: usize) {
        self.vc[core].0[core] += 1;
    }

    /// Acquire: join the word's sync clock into the core's clock.
    fn acquire(&mut self, core: usize, word: u64) {
        if let Some(s) = self.sync.get(&word) {
            self.vc[core].join(s);
        }
    }

    /// Record an atomic write epoch on `word` (no race versus other
    /// atomics; still races with unordered plain accesses).
    fn atomic_write(&mut self, core: usize, cycle: u64, word: u64, col: &mut Collector) {
        let clock = self.vc[core].0[core];
        let st = self.words.entry(word).or_default();
        // Versus the previous plain write.
        if let Some((wc, wk, wcy, atomic)) = st.write {
            if !atomic && wc != core && !self.vc[core].covers(wc, wk) {
                col.report(
                    ViolationKind::HbRace,
                    core,
                    cycle,
                    Some(Addr(word)),
                    word,
                    format!("atomic write races with plain store by core {wc} at cycle {wcy}"),
                );
            }
        }
        // Versus unordered plain reads.
        if let Some(reads) = &st.reads {
            for rc in 0..self.ncores {
                if rc != core && reads[rc] > 0 && !self.vc[core].covers(rc, reads[rc]) {
                    let rcy = st.read_cycles.as_ref().map_or(0, |c| c[rc]);
                    col.report(
                        ViolationKind::HbRace,
                        core,
                        cycle,
                        Some(Addr(word)),
                        word,
                        format!("atomic write races with plain load by core {rc} at cycle {rcy}"),
                    );
                }
            }
        }
        st.write = Some((core, clock, cycle, true));
        st.reads = None;
        st.read_cycles = None;
    }

    fn plain_read(&mut self, core: usize, cycle: u64, word: u64, col: &mut Collector) {
        let st = self.words.entry(word).or_default();
        if let Some((wc, wk, wcy, atomic)) = st.write {
            if wc != core && !self.vc[core].covers(wc, wk) {
                let kind = if atomic { "atomic" } else { "plain" };
                col.report(
                    ViolationKind::HbRace,
                    core,
                    cycle,
                    Some(Addr(word)),
                    word,
                    format!("plain load races with {kind} write by core {wc} at cycle {wcy}"),
                );
            }
        }
        let clock = self.vc[core].0[core];
        st.reads.get_or_insert_with(|| vec![0; self.ncores].into_boxed_slice())[core] = clock;
        st.read_cycles.get_or_insert_with(|| vec![0; self.ncores].into_boxed_slice())[core] = cycle;
    }

    fn plain_write(&mut self, core: usize, cycle: u64, word: u64, col: &mut Collector) {
        let clock = self.vc[core].0[core];
        let st = self.words.entry(word).or_default();
        if let Some((wc, wk, wcy, atomic)) = st.write {
            if wc != core && !self.vc[core].covers(wc, wk) {
                let kind = if atomic { "atomic" } else { "plain" };
                col.report(
                    ViolationKind::HbRace,
                    core,
                    cycle,
                    Some(Addr(word)),
                    word,
                    format!("plain store races with {kind} write by core {wc} at cycle {wcy}"),
                );
            }
        }
        if let Some(reads) = &st.reads {
            for rc in 0..self.ncores {
                if rc != core && reads[rc] > 0 && !self.vc[core].covers(rc, reads[rc]) {
                    let rcy = st.read_cycles.as_ref().map_or(0, |c| c[rc]);
                    col.report(
                        ViolationKind::HbRace,
                        core,
                        cycle,
                        Some(Addr(word)),
                        word,
                        format!("plain store races with plain load by core {rc} at cycle {rcy}"),
                    );
                }
            }
        }
        st.write = Some((core, clock, cycle, false));
        st.reads = None;
        st.read_cycles = None;
    }

    /// ULI send: enqueue a copy of the sender's clock, then bump so the
    /// sender's subsequent work is not retroactively ordered.
    fn uli_send(&mut self, from: usize, to: usize, kind: u8) {
        let clock = self.vc[from].clone();
        self.uli.entry((from, to, kind)).or_default().push(clock);
        self.bump(from);
    }

    /// ULI receive: dequeue the matching send clock and join it.
    fn uli_recv(
        &mut self,
        from: usize,
        to: usize,
        kind: u8,
        cycle: u64,
        col: &mut Collector,
        what: &str,
    ) {
        let q = self.uli.entry((from, to, kind)).or_default();
        if q.is_empty() {
            col.report(
                ViolationKind::ProtocolStream,
                to,
                cycle,
                None,
                to as u64,
                format!("{what} from core {from} with no matching send in the stream"),
            );
            return;
        }
        let clock = q.remove(0);
        self.vc[to].join(&clock);
    }

    pub(crate) fn step(&mut self, ev: &MemEvent, col: &mut Collector) {
        let (core, cycle) = (ev.core, ev.cycle);
        match ev.op {
            MemOp::Load { addr, racy } => {
                match racy {
                    None => self.plain_read(core, cycle, addr.0, col),
                    // The join-counter spin read acquires the counter's
                    // sync clock (published by the child's AMO decrement),
                    // and a thief's deque peek acquires the word's clock
                    // (published by the owner's `DequeTailPublish` push
                    // store), ordering the stolen task's descriptor reads
                    // after the owner's pre-push writes. Other audited
                    // racy loads are simply exempt.
                    Some(RacyTag::RcWaitLoop | RacyTag::DequeThiefPeek) => {
                        self.acquire(core, addr.0);
                    }
                    Some(_) => {}
                }
            }
            MemOp::Store { addr, racy } => {
                if racy == Some(RacyTag::DequeTailPublish) {
                    // Lock-free push's release-publish on the `tail` word:
                    // like the deque-lock release store, but keyed by tag
                    // (there is no lock word to hang a note on).
                    self.atomic_write(core, cycle, addr.0, col);
                    let vc = self.vc[core].clone();
                    self.sync.entry(addr.0).or_insert_with(|| Vc::new(self.ncores)).join(&vc);
                    self.bump(core);
                } else if racy.is_some() {
                    // Audited benign write-write race (same-value
                    // idempotent stores): recorded as an atomic-like write
                    // epoch, so concurrent audited stores and exempt racy
                    // loads never race with it, while an unordered plain
                    // access still does.
                    self.atomic_write(core, cycle, addr.0, col);
                } else if self.pending_release[core] == Some(addr.0) {
                    // The release store: publish the core's clock on the
                    // lock word (join, so an interleaved foreign release —
                    // impossible under correct locking — cannot erase
                    // edges) and record it as an atomic write.
                    self.pending_release[core] = None;
                    self.atomic_write(core, cycle, addr.0, col);
                    let vc = self.vc[core].clone();
                    self.sync.entry(addr.0).or_insert_with(|| Vc::new(self.ncores)).join(&vc);
                    self.bump(core);
                } else {
                    self.plain_write(core, cycle, addr.0, col);
                }
            }
            MemOp::Amo { addr } => {
                // Acquire-release: join the word's sync clock, record the
                // atomic write, publish, bump.
                self.acquire(core, addr.0);
                self.atomic_write(core, cycle, addr.0, col);
                self.sync.insert(addr.0, self.vc[core].clone());
                self.bump(core);
            }
            MemOp::InvalidateAll | MemOp::FlushAll => {}
            MemOp::Sync(note) => match note {
                SyncNote::DequeAcquire { .. } => {
                    // The successful try_lock AMO that precedes this note
                    // already acquired the lock word's sync clock.
                }
                SyncNote::DequeRelease { lock } => {
                    self.pending_release[core] = Some(lock.0);
                }
                SyncNote::HscSet { .. } | SyncNote::HscElide { .. } => {}
                SyncNote::UliReqSend { to } => self.uli_send(core, to, 0),
                SyncNote::HandlerEnter { from } => {
                    self.uli_recv(from, core, 0, cycle, col, "handler entry")
                }
                SyncNote::UliRespSend { to } => self.uli_send(core, to, 1),
                SyncNote::UliRespRecv { from } => {
                    self.uli_recv(from, core, 1, cycle, col, "response receipt")
                }
            },
        }
    }
}
