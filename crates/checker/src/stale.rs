//! Staleness oracle: replays each protocol's visibility rules from
//! `bigtiny-coherence` over the op stream and flags every non-exempt load
//! that could legally observe stale data.
//!
//! The model is word-granular and eviction-blind: each word has a global
//! `latest` version (bumped by every store/AMO), a `committed` version
//! (what the shared L2 would supply on a miss), a last `writer` for blame,
//! and an optional ownership pin (MESI Modified / DeNovo registration);
//! each core holds a set of word copies `{version, dirty}`. Protocol
//! effects mirror `coherence::system`:
//!
//! * **MESI** stores commit and invalidate other *MESI* copies (hardware
//!   tracks MESI sharers in the directory; software-centric caches are
//!   deliberately untracked — that is the whole reason Figure 3 needs
//!   self-invalidation).
//! * **DeNovo** stores commit and register ownership; the owned copy is
//!   immune to self-invalidation.
//! * **GPU-WT** stores commit (write-through) without allocating.
//! * **GPU-WB** stores only dirty the local copy; `committed` advances at
//!   the next `cache_flush` — so a remote miss in between is served stale.
//! * **AMOs** execute at the point of coherence (L1 for MESI/DeNovo, L2
//!   for the GPU protocols) and always commit. AMO reads are never
//!   staleness-checked: in the simulator the L2 AMO observes `latest`
//!   directly, so e.g. a GPU-WB lock handoff whose unlock store is still
//!   unflushed is correct, and flagging it would condemn every clean run.
//!
//! Two checks fire, matching the two halves of Figure 3's discipline:
//! a *hit* on an unpinned copy older than `latest` is a missing
//! invalidate (acquire side); a *miss* while `committed < latest` is a
//! missing flush (release side, blamed on the delinquent writer). The
//! miss check also covers MESI readers — the simulator skips it there
//! (`check_stale_read` trusts MESI fills), but a MESI big core reading a
//! word some tiny core left unflushed is the same runtime bug, and clean
//! runs never trip it because clean remote reads happen only after a
//! flush-and-release.
//!
//! Word granularity and eviction blindness can only *miss* violations
//! (a reused or evicted line hides a stale copy), never invent them, so
//! a clean verdict is trustworthy modulo that documented slack.

use std::collections::HashMap;

use bigtiny_coherence::Protocol;
use bigtiny_engine::{MemEvent, MemOp};

use crate::{Collector, ViolationKind};

/// One core's cached copy of a word.
#[derive(Clone, Copy)]
struct Copy {
    version: u64,
    dirty: bool,
}

/// The staleness pass.
pub(crate) struct StalePass {
    protocols: Vec<Protocol>,
    /// Global version per word (every store/AMO bumps it).
    latest: HashMap<u64, u64>,
    /// Version the shared L2 would supply on a miss.
    committed: HashMap<u64, u64>,
    /// Last writer `(core, cycle)` of each word, for blame.
    writer: HashMap<u64, (usize, u64)>,
    /// Ownership pin: MESI Modified or DeNovo registration.
    owner: HashMap<u64, usize>,
    /// Per-core word copies.
    copies: Vec<HashMap<u64, Copy>>,
}

impl StalePass {
    pub(crate) fn new(protocols: &[Protocol]) -> Self {
        StalePass {
            protocols: protocols.to_vec(),
            latest: HashMap::new(),
            committed: HashMap::new(),
            writer: HashMap::new(),
            owner: HashMap::new(),
            copies: vec![HashMap::new(); protocols.len()],
        }
    }

    fn latest_of(&self, w: u64) -> u64 {
        self.latest.get(&w).copied().unwrap_or(0)
    }

    fn committed_of(&self, w: u64) -> u64 {
        self.committed.get(&w).copied().unwrap_or(0)
    }

    fn blame(&self, w: u64) -> String {
        match self.writer.get(&w) {
            Some((c, cy)) => format!("core {c} at cycle {cy}"),
            None => "host initialization".to_string(),
        }
    }

    /// Invalidate other MESI cores' copies of `w` (the directory tracks
    /// MESI sharers only) and clear a MESI ownership pin.
    fn drop_other_mesi(&mut self, w: u64, except: usize) {
        for d in 0..self.protocols.len() {
            if d != except && self.protocols[d] == Protocol::Mesi {
                self.copies[d].remove(&w);
                if self.owner.get(&w) == Some(&d) {
                    self.owner.remove(&w);
                }
            }
        }
    }

    /// Post-commit effects of an L1-coherent write (MESI / DeNovo store,
    /// or an AMO on those protocols).
    fn own_after_commit(&mut self, core: usize, w: u64, version: u64) {
        match self.protocols[core] {
            Protocol::Mesi => {
                self.drop_other_mesi(w, core);
                // A software-centric owner is unpinned (the directory
                // recall commits nothing new) but keeps its — now stale —
                // copy; only its own invalidate can clear it.
                if self.owner.get(&w).is_some_and(|&o| o != core) {
                    self.owner.remove(&w);
                }
                self.copies[core].insert(w, Copy { version, dirty: false });
                self.owner.insert(w, core);
            }
            Protocol::DeNovo => {
                // Ownership fetch only on the not-yet-owned path.
                if self.owner.get(&w) != Some(&core) {
                    self.drop_other_mesi(w, core);
                    self.owner.insert(w, core);
                }
                self.copies[core].insert(w, Copy { version, dirty: false });
            }
            Protocol::GpuWt | Protocol::GpuWb => unreachable!("L2-coherent protocol"),
        }
    }

    pub(crate) fn step(&mut self, ev: &MemEvent, col: &mut Collector) {
        let (core, cycle) = (ev.core, ev.cycle);
        match ev.op {
            MemOp::Load { addr, racy } => {
                let w = addr.0;
                let lat = self.latest_of(w);
                match self.copies[core].get(&w).copied() {
                    Some(cp) => {
                        // Pinned copies (owned, or dirty under GPU-WB) are
                        // the word's freshest value by construction.
                        let pinned = self.owner.get(&w) == Some(&core) || cp.dirty;
                        if racy.is_none() && !pinned && cp.version < lat {
                            col.report(
                                ViolationKind::StaleMissingInvalidate,
                                core,
                                cycle,
                                Some(addr),
                                w,
                                format!(
                                    "load hit cached version {} but version {} was written by {} \
                                     with no cache_invalidate on this core since",
                                    cp.version,
                                    lat,
                                    self.blame(w)
                                ),
                            );
                        }
                    }
                    None => {
                        let com = self.committed_of(w);
                        if racy.is_none() && com < lat {
                            col.report(
                                ViolationKind::StaleMissingFlush,
                                core,
                                cycle,
                                Some(addr),
                                w,
                                format!(
                                    "load missed and the L2 can only supply version {com}, but \
                                     version {lat} written by {} is still unflushed",
                                    self.blame(w)
                                ),
                            );
                        }
                        // Fill. A MESI reader revokes a software-centric
                        // owner (directory recall); a software-centric
                        // reader downgrades a MESI owner to Shared.
                        if let Some(&o) = self.owner.get(&w) {
                            if o != core
                                && (self.protocols[core] == Protocol::Mesi
                                    || self.protocols[o] == Protocol::Mesi)
                            {
                                self.owner.remove(&w);
                            }
                        }
                        self.copies[core].insert(w, Copy { version: com, dirty: false });
                    }
                }
            }
            MemOp::Store { addr, .. } => {
                let w = addr.0;
                let lat = {
                    let e = self.latest.entry(w).or_insert(0);
                    *e += 1;
                    *e
                };
                self.writer.insert(w, (core, cycle));
                match self.protocols[core] {
                    Protocol::Mesi | Protocol::DeNovo => {
                        self.committed.insert(w, lat);
                        self.own_after_commit(core, w, lat);
                    }
                    Protocol::GpuWt => {
                        // Write-through, no-allocate: commits immediately,
                        // invalidates tracked (MESI) sharers, updates a
                        // resident copy but does not install one.
                        self.committed.insert(w, lat);
                        self.drop_other_mesi(w, core);
                        self.owner.remove(&w);
                        if let Some(cp) = self.copies[core].get_mut(&w) {
                            cp.version = lat;
                        }
                    }
                    Protocol::GpuWb => {
                        // Write-back: dirty in L1 only. No commit and no
                        // remote effects until the flush — which is what
                        // makes a dropped flush observable.
                        self.copies[core].insert(w, Copy { version: lat, dirty: true });
                    }
                }
            }
            MemOp::Amo { addr } => {
                // AMOs always commit at their point of coherence; the
                // read side is never staleness-checked (see module docs).
                let w = addr.0;
                let lat = {
                    let e = self.latest.entry(w).or_insert(0);
                    *e += 1;
                    *e
                };
                self.committed.insert(w, lat);
                self.writer.insert(w, (core, cycle));
                if self.protocols[core].amo_in_l1() {
                    self.own_after_commit(core, w, lat);
                } else {
                    // Executed at the L2: tracked sharers are invalidated,
                    // any owner recalled, and the issuing core's own copy
                    // is invalidated (the sim drops the word from its L1).
                    self.drop_other_mesi(w, core);
                    self.owner.remove(&w);
                    self.copies[core].remove(&w);
                }
            }
            MemOp::InvalidateAll => match self.protocols[core] {
                // MESI caches are hardware-coherent; the runtime call is a
                // no-op. DeNovo keeps owned words, GPU-WT drops
                // everything, GPU-WB keeps only dirty words.
                Protocol::Mesi => {}
                Protocol::DeNovo => {
                    let owner = &self.owner;
                    self.copies[core].retain(|w, _| owner.get(w) == Some(&core));
                }
                Protocol::GpuWt => self.copies[core].clear(),
                Protocol::GpuWb => self.copies[core].retain(|_, cp| cp.dirty),
            },
            MemOp::FlushAll => {
                // Only GPU-WB buffers dirty data in the L1; everything
                // else already committed at store time.
                if self.protocols[core] == Protocol::GpuWb {
                    let dirty: Vec<u64> = self.copies[core]
                        .iter()
                        .filter(|(_, cp)| cp.dirty)
                        .map(|(w, _)| *w)
                        .collect();
                    for w in dirty {
                        let lat = self.latest_of(w);
                        self.committed.insert(w, lat);
                        if let Some(cp) = self.copies[core].get_mut(&w) {
                            cp.dirty = false;
                        }
                        // The write-back recalls/invalidates tracked
                        // sharers so MESI cores refetch the fresh value.
                        self.drop_other_mesi(w, core);
                    }
                }
            }
            MemOp::Sync(_) => {}
        }
    }
}
