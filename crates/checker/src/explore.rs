//! Stateless model checking over the sequencer's tie-break choice points.
//!
//! The engine is deterministic given a [`SchedulePolicy`]: the only
//! schedule freedom the machine has is *which* of several waiters tied at
//! the minimum time the sequencer grants first. Each such tie is a
//! recorded [`ChoicePoint`], and a `Scripted` policy replays any chosen
//! sequence of tie-breaks bit-exactly. That turns the schedule space of a
//! config into a finite choice tree, and this module walks it:
//!
//! - **DFS over the choice tree.** The root is the empty script (which
//!   replays the default `MinCore` tie-breaks while recording every tie).
//!   After each run, every not-yet-pinned choice point spawns one child
//!   script per alternative candidate; a child pins the observed prefix
//!   and flips exactly one choice, so each node of the tree is executed
//!   exactly once (a persistent-set walk — a flipped tie is never
//!   re-flipped from its own subtree).
//! - **Dynamic partial-order reduction.** Before executing a flip the
//!   explorer asks whether it can matter: a tie grants one of several
//!   cores first, and if the tied cores' next sequenced operations are
//!   independent (different cores, no common address with a write, no
//!   sync/cache-wide operation involved), the flipped schedule is
//!   Mazurkiewicz-equivalent to the one already checked and is pruned
//!   without running. Runs that do execute are folded to a Foata-layered
//!   trace signature (commutative within a dependence level, ordered
//!   across levels); a run whose signature was already seen has its
//!   remaining subtree pruned. Both prunes are counted in
//!   [`ExploreReport::schedules_pruned`].
//! - **Verdicts on every schedule.** The caller's runner executes the
//!   system under the script and reports the full battery's outcome
//!   ([`CheckReport`], kernel `verify()`, conservation/recovery audits)
//!   plus an optional final-memory fingerprint. The explorer aggregates
//!   failures (each with its minimal replay script), fingerprint
//!   invariance across schedules, and a per-[`RacyTag`]
//!   idempotence-safety verdict: a tag whose benignity depends on the
//!   tie-break — i.e. some schedule where it fired failed or changed the
//!   final memory fingerprint — is flagged.
//!
//! Caveat: independence is judged on addresses and operation kinds, not
//! on microarchitectural state. Two data operations on different words
//! can still couple through shared cache occupancy and shift later
//! *timings* (not values); a pruned flip is value-equivalent but may not
//! be cycle-identical. See DESIGN.md for the budget and soundness
//! discussion.
//!
//! [`SchedulePolicy`]: bigtiny_engine::SchedulePolicy

use std::collections::{HashMap, HashSet};

use bigtiny_engine::{hash, ChoicePoint, MemEvent, MemOp, RacyTag};

use crate::CheckReport;

/// Exploration limits. The choice tree of even a tiny config can be
/// astronomically deep (every deque-lock handoff is a potential tie), so
/// exhaustive exploration is always *up to a budget*; [`ExploreReport::
/// truncated`] records whether a limit was hit.
#[derive(Clone, Copy, Debug)]
pub struct ExploreBudget {
    /// Choice points beyond this depth are never flipped (the default
    /// tie-break is used past it, as if the tree were cut at this depth).
    pub max_choice_points: usize,
    /// Maximum number of schedule executions (runner invocations).
    pub max_schedules: usize,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget { max_choice_points: 10, max_schedules: 256 }
    }
}

/// What one scripted execution observed: everything the explorer needs to
/// judge the schedule and expand its children. Produced by the caller's
/// runner closure, which owns system construction, `Scripted` replay,
/// kernel `verify()`, and any extra audits.
pub struct ScheduleOutcome {
    /// The run's recorded tie-break choice points, in grant order
    /// ([`bigtiny_engine::RunReport::choice_points`]).
    pub choices: Vec<ChoicePoint>,
    /// The run's checker event stream, in grant order.
    pub events: Vec<MemEvent>,
    /// The full-battery conformance verdict for this schedule.
    pub report: CheckReport,
    /// A failure outside the checker's scope: kernel `verify()` error,
    /// cycle-conservation breach, recovery-audit finding, or a panic the
    /// runner caught. `None` means those all passed.
    pub failure: Option<String>,
    /// Fingerprint of the kernel's final memory state, when the kernel's
    /// output is schedule-deterministic. `None` for kernels with
    /// legitimately multi-valued outputs (e.g. MIS, BFS parent trees),
    /// which exempts them from fingerprint-invariance checks.
    pub fingerprint: Option<u64>,
}

/// One failing schedule, with its replay script.
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// Minimal choice script reproducing the failure: pass it to
    /// `SchedulePolicy::Scripted` on the same config. Trailing default
    /// choices are stripped (absent entries replay the default
    /// tie-break), so this is the shortest script reaching the failure
    /// along its path.
    pub script: Vec<u32>,
    /// What failed (first checker violation or the runner's failure).
    pub what: String,
}

/// Idempotence-safety verdict for one audited benign-race tag.
#[derive(Clone, Debug)]
pub struct TagVerdict {
    /// The tag.
    pub tag: RacyTag,
    /// In how many executed schedules the tag's racy loads fired.
    pub schedules_fired: u64,
    /// Whether every schedule in which the tag fired passed the battery
    /// and reproduced the baseline memory fingerprint — i.e. the race's
    /// benignity does not depend on the default tie-break. Vacuously true
    /// if the tag never fired.
    pub schedule_invariant: bool,
    /// A script witnessing the violation when `schedule_invariant` is
    /// false.
    pub witness: Option<Vec<u32>>,
}

/// The aggregated result of exploring one config's schedule space.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Schedules actually executed (each a distinct node of the choice
    /// tree).
    pub schedules_explored: u64,
    /// Schedules skipped by partial-order reduction: independent flips
    /// never executed, plus subtrees cut below trace-equivalent runs.
    pub schedules_pruned: u64,
    /// Deepest choice-point sequence observed in any run.
    pub max_depth: usize,
    /// Whether a budget limit cut the walk short (the report then covers
    /// a prefix of the schedule space, not all of it).
    pub truncated: bool,
    /// Every failing schedule found, in discovery order.
    pub failures: Vec<ExploreFailure>,
    /// Whether every clean schedule with a fingerprint reproduced the
    /// same final memory state.
    pub fingerprint_invariant: bool,
    /// A script whose clean run produced a different fingerprint, when
    /// `fingerprint_invariant` is false.
    pub divergent_fingerprint: Option<Vec<u32>>,
    /// Per-tag idempotence-safety verdicts, in [`RacyTag::ALL`] order.
    pub tags: Vec<TagVerdict>,
}

impl ExploreReport {
    /// No failing schedule, fingerprints invariant, every tag
    /// schedule-invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
            && self.fingerprint_invariant
            && self.tags.iter().all(|t| t.schedule_invariant)
    }

    /// Renders a short human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} schedules explored, {} pruned, max depth {}{}\n",
            if self.is_clean() { "clean" } else { "DIRTY" },
            self.schedules_explored,
            self.schedules_pruned,
            self.max_depth,
            if self.truncated { " (budget hit)" } else { "" },
        );
        if let Some(f) = self.failures.first() {
            out.push_str(&format!("  first failure @ script {:?}: {}\n", f.script, f.what));
        }
        if let Some(s) = &self.divergent_fingerprint {
            out.push_str(&format!("  divergent fingerprint @ script {s:?}\n"));
        }
        for t in &self.tags {
            if t.schedules_fired > 0 || !t.schedule_invariant {
                out.push_str(&format!(
                    "  tag {}: fired in {} schedules, {}\n",
                    t.tag.label(),
                    t.schedules_fired,
                    if t.schedule_invariant { "schedule-invariant" } else { "SCHEDULE-DEPENDENT" },
                ));
            }
        }
        out
    }
}

/// Walks the schedule space of one config.
///
/// `run` executes the system under the given choice script (via
/// `SystemConfig::with_schedule(SchedulePolicy::Scripted(script))`) and
/// reports what happened; it is called once per explored schedule,
/// starting with the empty script (the baseline: default tie-breaks,
/// choice points recorded). The baseline's fingerprint anchors the
/// invariance checks.
pub fn explore(
    budget: &ExploreBudget,
    mut run: impl FnMut(&[u32]) -> ScheduleOutcome,
) -> ExploreReport {
    let mut report = ExploreReport {
        schedules_explored: 0,
        schedules_pruned: 0,
        max_depth: 0,
        truncated: false,
        failures: Vec::new(),
        fingerprint_invariant: true,
        divergent_fingerprint: None,
        tags: RacyTag::ALL
            .iter()
            .map(|&tag| TagVerdict {
                tag,
                schedules_fired: 0,
                schedule_invariant: true,
                witness: None,
            })
            .collect(),
    };
    let mut baseline_fp: Option<u64> = None;
    let mut seen_sigs: HashSet<u64> = HashSet::new();
    // LIFO stack of pending scripts = depth-first over the choice tree.
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];

    while let Some(script) = stack.pop() {
        if report.schedules_explored as usize >= budget.max_schedules {
            report.truncated = true;
            break;
        }
        let outcome = run(&script);
        report.schedules_explored += 1;
        report.max_depth = report.max_depth.max(outcome.choices.len());
        if outcome.choices.len() > budget.max_choice_points {
            report.truncated = true;
        }

        let failure = schedule_failure(&outcome);
        let min_script = minimize(&script);
        if let Some(what) = &failure {
            report.failures.push(ExploreFailure { script: min_script.clone(), what: what.clone() });
        } else if let Some(fp) = outcome.fingerprint {
            match baseline_fp {
                None => baseline_fp = Some(fp),
                Some(base) if fp != base && report.fingerprint_invariant => {
                    report.fingerprint_invariant = false;
                    report.divergent_fingerprint = Some(min_script.clone());
                }
                Some(_) => {}
            }
        }
        // Idempotence-safety: a tag that fired in a failing or
        // fingerprint-divergent schedule is only benign under schedules
        // the default tie-break happens to produce.
        let divergent_fp =
            matches!((outcome.fingerprint, baseline_fp), (Some(fp), Some(base)) if fp != base);
        for (i, t) in report.tags.iter_mut().enumerate() {
            if outcome.report.racy_loads[i] == 0 {
                continue;
            }
            t.schedules_fired += 1;
            if (failure.is_some() || divergent_fp) && t.schedule_invariant {
                t.schedule_invariant = false;
                t.witness = Some(min_script.clone());
            }
        }

        // A failing schedule's subtree is not expanded: the repro script
        // stays minimal and the walk keeps hunting elsewhere.
        if failure.is_some() {
            continue;
        }
        let depth_cap = budget.max_choice_points.min(outcome.choices.len());
        if !seen_sigs.insert(trace_signature(&outcome.events)) {
            // Trace-equivalent to an already-expanded run: every flip
            // below it reaches a subtree equivalent to one already
            // scheduled from the first representative.
            report.schedules_pruned += outcome.choices[script.len()..depth_cap]
                .iter()
                .map(|c| c.candidates.len() as u64 - 1)
                .sum::<u64>();
            continue;
        }
        let index = next_op_index(&outcome.events);
        for depth in script.len()..depth_cap {
            let cp = &outcome.choices[depth];
            let granted = cp.candidates[cp.chosen as usize];
            for (alt_idx, &alt) in cp.candidates.iter().enumerate() {
                if alt_idx == cp.chosen as usize {
                    continue;
                }
                if flip_is_independent(&index, cp.time, granted, alt) {
                    report.schedules_pruned += 1;
                    continue;
                }
                let mut child: Vec<u32> =
                    outcome.choices[..depth].iter().map(|c| c.chosen).collect();
                child.push(alt_idx as u32);
                stack.push(child);
            }
        }
    }
    report.truncated |= !stack.is_empty();
    report
}

/// The schedule's verdict: the runner's failure, or the first checker
/// violation.
fn schedule_failure(outcome: &ScheduleOutcome) -> Option<String> {
    if let Some(what) = &outcome.failure {
        return Some(what.clone());
    }
    outcome.report.first().map(|v| v.to_string())
}

/// Strips trailing default choices: script entries beyond the script's
/// length replay choice index 0, so a trailing `0` never changes the run.
fn minimize(script: &[u32]) -> Vec<u32> {
    let len = script.iter().rposition(|&c| c != 0).map_or(0, |p| p + 1);
    script[..len].to_vec()
}

/// Index from `(core, cycle)` to the first sequenced operation that core
/// performed at that local clock — the operation a tie at `cycle` granted.
fn next_op_index(events: &[MemEvent]) -> HashMap<(usize, u64), MemOp> {
    let mut index = HashMap::new();
    for e in events {
        if !matches!(e.op, MemOp::Sync(_)) {
            index.entry((e.core, e.cycle)).or_insert(e.op);
        }
    }
    index
}

/// Whether flipping the tie at `time` between the granted core and an
/// alternative candidate provably cannot change any value: both tied
/// operations are known and independent. Unknown operations (no event at
/// that clock — the op predates checking, or is a pure wait) are never
/// pruned.
fn flip_is_independent(
    index: &HashMap<(usize, u64), MemOp>,
    time: u64,
    granted: usize,
    alt: usize,
) -> bool {
    match (index.get(&(granted, time)), index.get(&(alt, time))) {
        (Some(&a), Some(&b)) => !ops_dependent(a, b),
        _ => false,
    }
}

/// The dependence relation for partial-order reduction, on the two tied
/// cores' next operations (the cores are distinct by construction).
/// Conservative: anything that is not two data accesses without a
/// write-write/read-write conflict is dependent.
fn ops_dependent(a: MemOp, b: MemOp) -> bool {
    match (data_access(a), data_access(b)) {
        (Some((addr_a, write_a)), Some((addr_b, write_b))) => {
            addr_a == addr_b && (write_a || write_b)
        }
        // Sync notes, cache-wide invalidate/flush: order matters to the
        // staleness and lint passes regardless of address.
        _ => true,
    }
}

/// `Some((addr, writes))` for plain per-word data accesses, `None` for
/// everything whose footprint is not a single word.
fn data_access(op: MemOp) -> Option<(u64, bool)> {
    match op {
        MemOp::Load { addr, .. } => Some((addr.0, false)),
        MemOp::Store { addr, .. } => Some((addr.0, true)),
        MemOp::Amo { addr } => Some((addr.0, true)),
        MemOp::InvalidateAll | MemOp::FlushAll | MemOp::Sync(_) => None,
    }
}

/// Foata-layered trace signature: each event's dependence depth is one
/// past the deepest earlier event it depends on (same core, same-address
/// conflict, or any barrier-class operation); events at the same depth
/// commute, so their hashes fold with a commutative `wrapping_add` and
/// the per-depth sums fold in depth order. Two executions of the same
/// trace (same events, reordered only across independent pairs) produce
/// the same signature; cycles are excluded because equivalent schedules
/// need not be cycle-identical.
fn trace_signature(events: &[MemEvent]) -> u64 {
    let mut last_write: HashMap<u64, usize> = HashMap::new();
    let mut last_access: HashMap<u64, usize> = HashMap::new();
    let mut core_depth: HashMap<usize, usize> = HashMap::new();
    let mut barrier_depth = 0usize;
    let mut max_depth = 0usize;
    let mut levels: Vec<u64> = Vec::new();
    for e in events {
        let mut d = core_depth.get(&e.core).copied().unwrap_or(0).max(barrier_depth);
        match data_access(e.op) {
            Some((addr, write)) => {
                d = d.max(last_write.get(&addr).copied().unwrap_or(0));
                if write {
                    d = d.max(last_access.get(&addr).copied().unwrap_or(0));
                }
                d += 1;
                if write {
                    last_write.insert(addr, d);
                }
                let slot = last_access.entry(addr).or_insert(0);
                *slot = (*slot).max(d);
            }
            None => {
                // Barrier class: depends on everything seen, and
                // everything after depends on it.
                d = max_depth + 1;
                barrier_depth = d;
            }
        }
        core_depth.insert(e.core, d);
        max_depth = max_depth.max(d);
        if levels.len() < d {
            levels.resize(d, 0);
        }
        levels[d - 1] = levels[d - 1].wrapping_add(event_hash(e));
    }
    let mut h = hash::FNV_OFFSET;
    for level in levels {
        h = hash::fold_u64(h, level);
    }
    h
}

/// Order-insensitive per-event hash (no cycle: see [`trace_signature`]).
fn event_hash(e: &MemEvent) -> u64 {
    let (kind, addr) = match e.op {
        MemOp::Load { addr, racy } => (1 + racy.map_or(0, |t| 8 + t as u64), addr.0),
        MemOp::Store { addr, racy } => (64 + racy.map_or(0, |t| 8 + t as u64), addr.0),
        MemOp::Amo { addr } => (2, addr.0),
        MemOp::InvalidateAll => (3, 0),
        MemOp::FlushAll => (4, 0),
        MemOp::Sync(_) => (5, 0),
    };
    let mut h = hash::fold_u64(hash::FNV_OFFSET, e.core as u64);
    h = hash::fold_u64(h, kind);
    hash::fold_u64(h, addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigtiny_coherence::Addr;
    use bigtiny_engine::CheckMode;

    fn ev(core: usize, cycle: u64, op: MemOp) -> MemEvent {
        MemEvent { cycle, core, op }
    }

    fn load(addr: u64) -> MemOp {
        MemOp::Load { addr: Addr(addr), racy: None }
    }

    fn store(addr: u64) -> MemOp {
        MemOp::Store { addr: Addr(addr), racy: None }
    }

    fn clean_report() -> CheckReport {
        CheckReport {
            mode: CheckMode::Full,
            events: 0,
            violations: Vec::new(),
            suppressed: 0,
            racy_loads: [0; RacyTag::ALL.len()],
        }
    }

    /// A synthetic two-core "machine": one tie whose two candidate ops
    /// are given; the run reports the two ops in the scripted order.
    fn tied_machine(
        op0: MemOp,
        op1: MemOp,
        fp: impl Fn(u32) -> Option<u64> + Copy,
        fail: impl Fn(u32) -> Option<String> + Copy,
    ) -> impl FnMut(&[u32]) -> ScheduleOutcome {
        move |script: &[u32]| {
            let chosen = script.first().copied().unwrap_or(0).min(1);
            let (first, second) = if chosen == 0 { (0usize, 1usize) } else { (1, 0) };
            let ops = [op0, op1];
            ScheduleOutcome {
                choices: vec![ChoicePoint { time: 5, candidates: vec![0, 1], chosen }],
                events: vec![ev(first, 5, ops[first]), ev(second, 5, ops[second])],
                report: clean_report(),
                failure: fail(chosen),
                fingerprint: fp(chosen),
            }
        }
    }

    #[test]
    fn independent_tie_is_pruned_without_running() {
        let mut runs = 0u64;
        let mut machine = tied_machine(load(8), load(16), |_| Some(7), |_| None);
        let report = explore(&ExploreBudget::default(), |s| {
            runs += 1;
            machine(s)
        });
        assert_eq!(runs, 1, "the flip of two independent loads must not execute");
        assert_eq!(report.schedules_explored, 1);
        assert_eq!(report.schedules_pruned, 1);
        assert!(report.is_clean());
        assert!(!report.truncated);
    }

    #[test]
    fn conflicting_tie_is_explored_and_equivalent_runs_converge() {
        let mut runs = 0u64;
        let mut machine = tied_machine(store(8), load(8), |_| Some(7), |_| None);
        let report = explore(&ExploreBudget::default(), |s| {
            runs += 1;
            machine(s)
        });
        assert_eq!(runs, 2, "a write-read tie must execute both orders");
        assert_eq!(report.schedules_explored, 2);
        assert!(report.is_clean());
    }

    #[test]
    fn schedule_dependent_failure_yields_minimal_script() {
        let mut machine = tied_machine(
            store(8),
            load(8),
            |_| Some(7),
            |chosen| (chosen == 1).then(|| "verify: lost update".to_string()),
        );
        let report = explore(&ExploreBudget::default(), |s| machine(s));
        assert!(!report.is_clean());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].script, vec![1]);
        assert!(report.failures[0].what.contains("lost update"));
    }

    #[test]
    fn divergent_fingerprint_is_flagged_with_witness() {
        let mut machine =
            tied_machine(store(8), load(8), |chosen| Some(7 + u64::from(chosen)), |_| None);
        let report = explore(&ExploreBudget::default(), |s| machine(s));
        assert!(!report.fingerprint_invariant);
        assert_eq!(report.divergent_fingerprint, Some(vec![1]));
        assert!(!report.is_clean());
    }

    #[test]
    fn fired_tag_in_divergent_schedule_loses_invariance() {
        let mut base =
            tied_machine(store(8), load(8), |chosen| Some(7 + u64::from(chosen)), |_| None);
        let report = explore(&ExploreBudget::default(), |s| {
            let mut o = base(s);
            o.report.racy_loads[0] = 3;
            o
        });
        let tag = &report.tags[0];
        assert_eq!(tag.schedules_fired, 2);
        assert!(!tag.schedule_invariant);
        assert_eq!(tag.witness, Some(vec![1]));
        // A tag that never fired stays vacuously invariant.
        assert!(report.tags[1].schedule_invariant);
        assert_eq!(report.tags[1].schedules_fired, 0);
    }

    #[test]
    fn schedule_budget_truncates() {
        let mut machine = tied_machine(store(8), load(8), |_| None, |_| None);
        let budget = ExploreBudget { max_choice_points: 10, max_schedules: 1 };
        let report = explore(&budget, |s| machine(s));
        assert_eq!(report.schedules_explored, 1);
        assert!(report.truncated);
    }

    #[test]
    fn foata_signature_ignores_order_of_independent_ops_only() {
        let a = [ev(0, 5, load(8)), ev(1, 5, load(16))];
        let b = [ev(1, 5, load(16)), ev(0, 5, load(8))];
        assert_eq!(trace_signature(&a), trace_signature(&b), "independent pair commutes");
        let c = [ev(0, 5, store(8)), ev(1, 5, load(8))];
        let d = [ev(1, 5, load(8)), ev(0, 5, store(8))];
        assert_ne!(trace_signature(&c), trace_signature(&d), "write-read pair must not commute");
        let e = [ev(0, 5, MemOp::FlushAll), ev(1, 5, load(8))];
        let f = [ev(1, 5, load(8)), ev(0, 5, MemOp::FlushAll)];
        assert_ne!(trace_signature(&e), trace_signature(&f), "barrier class must not commute");
    }

    #[test]
    fn minimize_strips_trailing_defaults_only() {
        assert_eq!(minimize(&[1, 0, 0]), vec![1]);
        assert_eq!(minimize(&[0, 1]), vec![0, 1]);
        assert_eq!(minimize(&[0, 0]), Vec::<u32>::new());
    }
}
