//! Exactly-once / at-least-once execution audit over the task-event
//! stream.
//!
//! The DRF passes in this crate need the per-op memory stream, which is
//! incompatible with fault injection (`run_system` rejects armed checkers
//! under an active [`bigtiny_engine::FaultPlan`] because faults perturb
//! the schedule the oracle replays). Crash runs are instead audited at the
//! *task* level, from the lifecycle events a
//! [`bigtiny_core::RuntimeConfig::record_task_events`] run records:
//!
//! * **Crash-free runs are exactly-once**: every spawned task executes to
//!   completion exactly once; any respawn or discard is a violation.
//! * **Crash runs are at-least-once with accounting**: a task may stop
//!   mid-execution only if a [`TaskEventKind::Respawn`] covers it or an
//!   ancestor (the replacement re-runs the subtree); a task may be
//!   [`TaskEventKind::Discarded`] only if it never began executing; a
//!   subtree that re-executes is flagged as a *duplicated effect* unless
//!   the kernel is on the idempotence whitelist
//!   ([`IDEMPOTENT_KERNELS`]) — i.e. its side effects are written so that
//!   running a subtree twice lands the same final state.
//! * **Multiplicity-deque runs are at-most-twice**
//!   ([`AuditMode::Multiplicity`]): the fence-free and idempotent deque
//!   policies may double-claim a slot, re-executing the claimed task as a
//!   fresh [`TaskEventKind::Duplicate`] record. The audit verifies the
//!   multiplicity contract instead of flagging it: each original may be
//!   duplicated at most once ([`AuditViolationKind::OverDuplicated`]
//!   otherwise), the duplicated original must itself run to completion,
//!   and any duplicate on a kernel outside the *duplicate-safe* whitelist
//!   ([`DUPLICATE_SAFE_KERNELS`], strictly stronger than respawn
//!   idempotence) is a [`AuditViolationKind::NonIdempotentReexec`].
//!   Outside this mode a `Duplicate` event is an
//!   [`AuditViolationKind::UnexpectedDuplicate`].
//!
//! The audit is deterministic (one linear pass, no hash-order iteration),
//! so [`AuditReport::verdict_hash`] is a stable fingerprint of the
//! verdict: the chaos fuzzer and the golden-trace determinism pins compare
//! it across runs and backends.

use bigtiny_core::{TaskEvent, TaskEventKind};
use bigtiny_engine::hash;

/// Kernels whose side effects are idempotent under subtree re-execution:
/// every shared write is a pure function of the task's identity (slot
/// writes, CAS-claimed flags), never a read-modify-write accumulation.
/// Re-executing any subtree of these kernels lands the same final state,
/// so duplicated effects are not violations for them.
///
/// This list is a *claim* audited by the crash-matrix acceptance tests:
/// every kernel here must produce correct output under the crash-storm
/// plan on every setup.
pub const IDEMPOTENT_KERNELS: [&str; 13] = [
    "cilk5-cs",
    "cilk5-lu",
    "cilk5-mm",
    "cilk5-mt",
    "cilk5-nq",
    "ligra-bc",
    "ligra-bf",
    "ligra-bfs",
    "ligra-bfsbv",
    "ligra-cc",
    "ligra-mis",
    "ligra-radii",
    "ligra-tc",
];

/// Whether `kernel` declares its side effects idempotent under subtree
/// re-execution.
pub fn kernel_is_idempotent(kernel: &str) -> bool {
    IDEMPOTENT_KERNELS.contains(&kernel)
}

/// Kernels whose side effects survive *duplicate* execution — the same
/// task body running twice to completion, concurrently or back-to-back,
/// as the multiplicity deques allow. This is strictly stronger than
/// crash-respawn idempotence: a respawn replays a subtree whose first
/// attempt was cut short, while a duplicate re-applies a task that
/// already fully ran. Members either only ever write pure functions of
/// task identity (slot stores, CAS-claimed flags, monotone AMO min/max)
/// or switch their accumulations to idempotent slot writes when
/// `TaskCx::reexec_possible` reports a multiplicity policy (nqueens'
/// solution counter, BC's sigma, TC's triangle count). `cilk5-lu` and
/// `cilk5-mm` are respawn-idempotent but update their matrices in place
/// with unguarded read-modify-writes, which double-apply under
/// duplication — they are on [`IDEMPOTENT_KERNELS`] but not here.
///
/// Like the respawn whitelist, this is a *claim*: the `model_check`
/// duplicate-injection cells re-verify it on every sweep.
pub const DUPLICATE_SAFE_KERNELS: [&str; 11] = [
    "cilk5-cs",
    "cilk5-mt",
    "cilk5-nq",
    "ligra-bc",
    "ligra-bf",
    "ligra-bfs",
    "ligra-bfsbv",
    "ligra-cc",
    "ligra-mis",
    "ligra-radii",
    "ligra-tc",
];

/// Whether `kernel` declares its side effects safe under full duplicate
/// execution (the multiplicity deques' at-most-twice contract).
pub fn kernel_is_duplicate_safe(kernel: &str) -> bool {
    DUPLICATE_SAFE_KERNELS.contains(&kernel)
}

/// Which execution contract [`audit_task_events_mode`] verifies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditMode {
    /// Crash-free, exactly-once policy: every spawned task completes once;
    /// respawns, discards, and duplicates are all violations.
    ExactlyOnce,
    /// Crash-armed, at-least-once: respawn/discard accounting is expected,
    /// duplicates are not (the locked and Chase-Lev deques never double-
    /// claim).
    AtLeastOnce,
    /// A multiplicity deque policy (fence-free or idempotent) is active:
    /// at-most-twice execution is the invariant. `crash_armed` layers the
    /// at-least-once respawn/discard accounting on top when a crash plan
    /// is also armed.
    Multiplicity {
        /// Whether respawns/discards are additionally expected.
        crash_armed: bool,
    },
}

impl AuditMode {
    /// Whether respawn/discard recovery events are expected.
    pub fn crash_armed(self) -> bool {
        matches!(self, AuditMode::AtLeastOnce | AuditMode::Multiplicity { crash_armed: true })
    }

    /// Whether audited duplicate executions are expected.
    pub fn multiplicity(self) -> bool {
        matches!(self, AuditMode::Multiplicity { .. })
    }
}

/// What the audit found wrong with one task's lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditViolationKind {
    /// Spawned (or respawned), never executed, never discarded: the task
    /// was lost — dropped from a deque or mailbox without recovery.
    Lost,
    /// Began executing but never finished, and no respawn covers it or an
    /// ancestor: the crash consumed the task without a replacement.
    Unrecovered,
    /// Discarded after it began executing: recovery threw away a task
    /// whose partial effects are already visible.
    DiscardedMidExec,
    /// Executed to completion more than once (two `ExecEnd`s for one id) —
    /// forbidden even under at-least-once, which duplicates *subtrees*
    /// under fresh ids, never one record.
    DoubleExec,
    /// A respawn or discard appeared in a run whose fault plan has no
    /// crash dimension armed.
    UnexpectedRecovery,
    /// Subtree re-execution happened but the kernel is not on the
    /// idempotence whitelist: its duplicated side effects are unaudited.
    NonIdempotentReexec,
    /// A multiplicity duplicate appeared in a run whose deque policy never
    /// double-claims (exactly-once / at-least-once modes).
    UnexpectedDuplicate,
    /// One original was duplicated more than once: the at-most-twice
    /// contract of the multiplicity deques is broken.
    OverDuplicated,
    /// The event stream itself is malformed (respawn of an unknown task,
    /// events for a task never spawned).
    MalformedStream,
}

impl AuditViolationKind {
    /// Stable label used in reports and the verdict hash.
    pub fn label(self) -> &'static str {
        match self {
            AuditViolationKind::Lost => "lost",
            AuditViolationKind::Unrecovered => "unrecovered",
            AuditViolationKind::DiscardedMidExec => "discarded-mid-exec",
            AuditViolationKind::DoubleExec => "double-exec",
            AuditViolationKind::UnexpectedRecovery => "unexpected-recovery",
            AuditViolationKind::NonIdempotentReexec => "non-idempotent-reexec",
            AuditViolationKind::UnexpectedDuplicate => "unexpected-duplicate",
            AuditViolationKind::OverDuplicated => "over-duplicated",
            AuditViolationKind::MalformedStream => "malformed-stream",
        }
    }
}

/// One audit finding.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// What rule was broken.
    pub kind: AuditViolationKind,
    /// Task the finding concerns.
    pub task: u32,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] task {}: {}", self.kind.label(), self.task, self.detail)
    }
}

/// The result of auditing one run's task-event stream.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Whether the run's fault plan had a crash dimension armed (sets the
    /// exactly-once vs at-least-once expectation).
    pub crash_armed: bool,
    /// Tasks spawned (including respawn replacements).
    pub tasks: u64,
    /// Tasks that executed to completion.
    pub completed: u64,
    /// Respawn replacements seen.
    pub respawns: u64,
    /// Orphans discarded without executing.
    pub discards: u64,
    /// Tasks that died mid-execution and are covered by a respawn.
    pub recovered: u64,
    /// Multiplicity duplicates seen (fresh records re-executing a
    /// double-claimed original).
    pub duplicates: u64,
    /// Findings, in task-id order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// No violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of findings of one kind.
    pub fn count(&self, kind: AuditViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// FNV-1a fingerprint of the verdict: folds the lifecycle counts and
    /// every finding's kind and task. Deterministic runs produce identical
    /// hashes; any audit-visible divergence changes it.
    pub fn verdict_hash(&self) -> u64 {
        let mut h = hash::FNV_OFFSET;
        for n in [
            self.crash_armed as u64,
            self.tasks,
            self.completed,
            self.respawns,
            self.discards,
            self.recovered,
            self.duplicates,
        ] {
            h = hash::fnv1a_continue(h, &n.to_le_bytes());
        }
        for v in &self.violations {
            h = hash::fnv1a_continue(h, v.kind.label().as_bytes());
            h = hash::fnv1a_continue(h, &(v.task as u64).to_le_bytes());
        }
        h
    }

    /// Renders a short human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} tasks, {} completed, {} respawns, {} discards, {} recovered, {} duplicates\n",
            if self.is_clean() { "clean" } else { "VIOLATIONS" },
            self.tasks,
            self.completed,
            self.respawns,
            self.discards,
            self.recovered,
            self.duplicates,
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

/// Per-task lifecycle state accumulated by the linear pass.
#[derive(Clone, Copy, Default)]
struct TaskState {
    spawned: bool,
    began: bool,
    ended: u32,
    discarded: bool,
    parent: Option<u32>,
    /// A respawn named this task as the one that died mid-execution.
    respawned_of: bool,
    /// How many `Duplicate` events named this task as their original.
    dup_count: u32,
    /// This record *is* a multiplicity duplicate.
    is_duplicate: bool,
}

/// Audits a task-event stream for exactly-once (crash-free) or accounted
/// at-least-once (crash-armed) execution.
///
/// Compatibility wrapper over [`audit_task_events_mode`]: `crash_armed`
/// selects [`AuditMode::AtLeastOnce`] vs [`AuditMode::ExactlyOnce`].
pub fn audit_task_events(events: &[TaskEvent], crash_armed: bool, kernel: &str) -> AuditReport {
    let mode = if crash_armed { AuditMode::AtLeastOnce } else { AuditMode::ExactlyOnce };
    audit_task_events_mode(events, mode, kernel)
}

/// Audits a task-event stream under `mode` (see [`AuditMode`]).
///
/// `kernel` selects the idempotence expectation for re-executed subtrees
/// and duplicates; pass the registry name (e.g. `cilk5-nq`) or any other
/// label — unknown names are simply not whitelisted.
pub fn audit_task_events_mode(events: &[TaskEvent], mode: AuditMode, kernel: &str) -> AuditReport {
    let mut states: Vec<TaskState> = Vec::new();
    let mut report = AuditReport {
        crash_armed: mode.crash_armed(),
        tasks: 0,
        completed: 0,
        respawns: 0,
        discards: 0,
        recovered: 0,
        duplicates: 0,
        violations: Vec::new(),
    };
    fn flag(
        violations: &mut Vec<AuditViolation>,
        kind: AuditViolationKind,
        task: u32,
        detail: String,
    ) {
        violations.push(AuditViolation { kind, task, detail });
    }

    fn state(states: &mut Vec<TaskState>, id: u32) -> &mut TaskState {
        let id = id as usize;
        if states.len() <= id {
            states.resize(id + 1, TaskState::default());
        }
        &mut states[id]
    }

    for e in events {
        match e.kind {
            TaskEventKind::Spawn { parent } => {
                let s = state(&mut states, e.task);
                if s.spawned {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        "spawned twice".into(),
                    );
                }
                s.spawned = true;
                s.parent = parent;
                report.tasks += 1;
            }
            TaskEventKind::Respawn { of } => {
                let known = states.get(of as usize).is_some_and(|s| s.spawned);
                if !known {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        format!("respawns unknown task {of}"),
                    );
                }
                let parent = states.get(of as usize).and_then(|s| s.parent);
                {
                    let of_state = state(&mut states, of);
                    of_state.respawned_of = true;
                }
                let s = state(&mut states, e.task);
                s.spawned = true;
                s.parent = parent;
                report.tasks += 1;
                report.respawns += 1;
            }
            TaskEventKind::ExecBegin => {
                let s = state(&mut states, e.task);
                if !s.spawned {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        "executed without a spawn".into(),
                    );
                }
                s.began = true;
            }
            TaskEventKind::ExecEnd => {
                let s = state(&mut states, e.task);
                s.ended += 1;
                report.completed += 1;
                if s.ended == 2 {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::DoubleExec,
                        e.task,
                        "one task record completed twice".into(),
                    );
                }
            }
            TaskEventKind::Discarded => {
                let s = state(&mut states, e.task);
                if s.began {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::DiscardedMidExec,
                        e.task,
                        "discarded after its body began executing".into(),
                    );
                }
                s.discarded = true;
                report.discards += 1;
            }
            TaskEventKind::Duplicate { of } => {
                let known = states.get(of as usize).is_some_and(|s| s.spawned);
                if !known {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        format!("duplicates unknown task {of}"),
                    );
                }
                if !mode.multiplicity() {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::UnexpectedDuplicate,
                        e.task,
                        format!("duplicate of task {of} under an exactly-once deque policy"),
                    );
                }
                {
                    let of_state = state(&mut states, of);
                    of_state.dup_count += 1;
                    if of_state.dup_count == 2 {
                        flag(
                            &mut report.violations,
                            AuditViolationKind::OverDuplicated,
                            of,
                            "original duplicated more than once (at-most-twice broken)".into(),
                        );
                    }
                }
                let s = state(&mut states, e.task);
                s.spawned = true;
                s.is_duplicate = true;
                report.tasks += 1;
                report.duplicates += 1;
            }
            TaskEventKind::Stolen { .. } | TaskEventKind::Join => {}
        }
    }

    if !mode.crash_armed() && (report.respawns > 0 || report.discards > 0) {
        flag(
            &mut report.violations,
            AuditViolationKind::UnexpectedRecovery,
            0,
            format!(
                "{} respawns and {} discards in a crash-free run",
                report.respawns, report.discards
            ),
        );
    }

    // A task that stopped mid-execution is accounted for iff a respawn
    // covers it or one of its ancestors (the replacement re-runs the whole
    // subtree, recreating descendants under fresh ids).
    let covered = |mut t: usize| -> bool {
        loop {
            if states[t].respawned_of {
                return true;
            }
            match states[t].parent {
                Some(p) => t = p as usize,
                None => return false,
            }
        }
    };
    for (id, &s) in states.iter().enumerate() {
        if !s.spawned {
            continue;
        }
        if s.began && s.ended == 0 {
            if covered(id) {
                report.recovered += 1;
            } else {
                flag(
                    &mut report.violations,
                    AuditViolationKind::Unrecovered,
                    id as u32,
                    "died mid-execution with no covering respawn".into(),
                );
            }
        }
        if !s.began && !s.discarded && !covered(id) {
            flag(
                &mut report.violations,
                AuditViolationKind::Lost,
                id as u32,
                "spawned but never executed nor discarded".into(),
            );
        }
    }

    if report.respawns > 0 && !kernel_is_idempotent(kernel) {
        flag(
            &mut report.violations,
            AuditViolationKind::NonIdempotentReexec,
            0,
            format!(
                "{} subtree re-executions but kernel {kernel:?} is not respawn-idempotent",
                report.respawns
            ),
        );
    }
    // Duplicates are held to the stricter whitelist: re-running an
    // already-completed task double-applies accumulations that a
    // cut-short respawn replay would not.
    if report.duplicates > 0 && !kernel_is_duplicate_safe(kernel) {
        flag(
            &mut report.violations,
            AuditViolationKind::NonIdempotentReexec,
            0,
            format!(
                "{} duplicate executions but kernel {kernel:?} is not duplicate-safe",
                report.duplicates
            ),
        );
    }

    report.violations.sort_by_key(|v| (v.task, v.kind.label()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, core: usize, task: u32, kind: TaskEventKind) -> TaskEvent {
        TaskEvent { cycle, core, task, kind }
    }

    /// A clean crash-free stream: root spawns one child, both complete.
    fn clean_stream() -> Vec<TaskEvent> {
        use TaskEventKind::*;
        vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, Stolen { from: 0 }),
            ev(4, 1, 1, ExecBegin),
            ev(8, 1, 1, ExecEnd),
            ev(9, 0, 0, Join),
            ev(10, 0, 0, ExecEnd),
        ]
    }

    #[test]
    fn clean_stream_is_exactly_once() {
        let r = audit_task_events(&clean_stream(), false, "cilk5-nq");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!((r.tasks, r.completed, r.respawns, r.discards), (2, 2, 0, 0));
    }

    #[test]
    fn recovery_in_a_crash_free_run_is_flagged() {
        use TaskEventKind::*;
        let mut events = clean_stream();
        events.push(ev(11, 2, 2, Respawn { of: 1 }));
        events.push(ev(12, 2, 2, ExecBegin));
        events.push(ev(13, 2, 2, ExecEnd));
        let r = audit_task_events(&events, false, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::UnexpectedRecovery), 1, "{}", r.render());
    }

    #[test]
    fn crash_with_covering_respawn_is_accounted() {
        use TaskEventKind::*;
        // Task 1 dies mid-execution; its child 2 sat in the dead deque and
        // is discarded; task 3 respawns task 1 and completes the subtree.
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, Stolen { from: 0 }),
            ev(4, 1, 1, ExecBegin),
            ev(5, 1, 2, Spawn { parent: Some(1) }),
            // core 1 crashes here
            ev(9, 2, 2, Discarded),
            ev(10, 2, 3, Respawn { of: 1 }),
            ev(11, 2, 3, ExecBegin),
            ev(12, 2, 4, Spawn { parent: Some(3) }),
            ev(13, 2, 4, ExecBegin),
            ev(14, 2, 4, ExecEnd),
            ev(15, 2, 3, ExecEnd),
            ev(16, 0, 0, Join),
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!((r.tasks, r.respawns, r.discards, r.recovered), (5, 1, 1, 1));
    }

    #[test]
    fn uncovered_death_and_lost_tasks_are_violations() {
        use TaskEventKind::*;
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            // core 1 crashes; nobody respawns task 1
            ev(9, 0, 2, Spawn { parent: Some(0) }),
            // task 2 is never executed nor discarded
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::Unrecovered), 1, "{}", r.render());
        assert_eq!(r.count(AuditViolationKind::Lost), 1, "{}", r.render());
    }

    #[test]
    fn descendants_of_a_respawned_task_are_covered() {
        use TaskEventKind::*;
        // Task 2 (child of dead task 1) also began and never ended — the
        // ancestor's respawn covers it.
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            ev(4, 1, 2, Spawn { parent: Some(1) }),
            ev(5, 1, 2, ExecBegin),
            // core 1 crashes with both 1 and 2 on its stack
            ev(10, 2, 3, Respawn { of: 1 }),
            ev(11, 2, 3, ExecBegin),
            ev(15, 2, 3, ExecEnd),
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.recovered, 2);
    }

    #[test]
    fn discard_mid_exec_and_double_exec_are_violations() {
        use TaskEventKind::*;
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            ev(4, 2, 1, Discarded),
            ev(5, 0, 0, ExecEnd),
            ev(6, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::DiscardedMidExec), 1, "{}", r.render());
        assert_eq!(r.count(AuditViolationKind::DoubleExec), 1, "{}", r.render());
    }

    #[test]
    fn reexecution_outside_the_whitelist_is_flagged() {
        use TaskEventKind::*;
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            ev(10, 2, 2, Respawn { of: 1 }),
            ev(11, 2, 2, ExecBegin),
            ev(12, 2, 2, ExecEnd),
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "my-accumulating-kernel");
        assert_eq!(r.count(AuditViolationKind::NonIdempotentReexec), 1, "{}", r.render());
        let r = audit_task_events(&events, true, "ligra-tc");
        assert!(r.is_clean(), "{}", r.render());
    }

    /// A multiplicity stream: owner and thief both claim task 1; the
    /// duplicate runs under a fresh id 2 with no parent.
    fn duplicate_stream() -> Vec<TaskEvent> {
        use TaskEventKind::*;
        vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, Stolen { from: 0 }),
            ev(4, 1, 1, ExecBegin),
            ev(5, 0, 2, Duplicate { of: 1 }),
            ev(6, 0, 2, ExecBegin),
            ev(7, 0, 2, ExecEnd),
            ev(8, 1, 1, ExecEnd),
            ev(9, 0, 0, Join),
            ev(10, 0, 0, ExecEnd),
        ]
    }

    #[test]
    fn multiplicity_mode_accepts_an_at_most_twice_duplicate() {
        let r = audit_task_events_mode(
            &duplicate_stream(),
            AuditMode::Multiplicity { crash_armed: false },
            "ligra-cc",
        );
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!((r.tasks, r.completed, r.duplicates), (3, 3, 1));
    }

    #[test]
    fn duplicate_outside_multiplicity_mode_is_flagged() {
        let r = audit_task_events(&duplicate_stream(), false, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::UnexpectedDuplicate), 1, "{}", r.render());
        let r = audit_task_events(&duplicate_stream(), true, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::UnexpectedDuplicate), 1, "{}", r.render());
    }

    #[test]
    fn duplicating_one_original_twice_breaks_at_most_twice() {
        use TaskEventKind::*;
        let mut events = duplicate_stream();
        events.push(ev(11, 0, 3, Duplicate { of: 1 }));
        events.push(ev(12, 0, 3, ExecBegin));
        events.push(ev(13, 0, 3, ExecEnd));
        let r = audit_task_events_mode(
            &events,
            AuditMode::Multiplicity { crash_armed: false },
            "cilk5-nq",
        );
        assert_eq!(r.count(AuditViolationKind::OverDuplicated), 1, "{}", r.render());
    }

    #[test]
    fn duplicate_on_a_non_whitelisted_kernel_is_flagged() {
        let r = audit_task_events_mode(
            &duplicate_stream(),
            AuditMode::Multiplicity { crash_armed: false },
            "my-accumulating-kernel",
        );
        assert_eq!(r.count(AuditViolationKind::NonIdempotentReexec), 1, "{}", r.render());
    }

    #[test]
    fn respawn_idempotent_but_not_duplicate_safe_is_flagged_on_duplicates() {
        // LU tolerates a cut-short subtree respawn (the crash matrix
        // proves it) but its in-place panel updates double-apply if an
        // already-completed task runs again: the duplicate whitelist is
        // strictly stronger than the respawn one.
        assert!(kernel_is_idempotent("cilk5-lu") && !kernel_is_duplicate_safe("cilk5-lu"));
        let r = audit_task_events_mode(
            &duplicate_stream(),
            AuditMode::Multiplicity { crash_armed: false },
            "cilk5-lu",
        );
        assert_eq!(r.count(AuditViolationKind::NonIdempotentReexec), 1, "{}", r.render());
    }

    #[test]
    fn duplicated_original_must_still_complete() {
        use TaskEventKind::*;
        // The duplicate ran, but the original's claimant never finished it:
        // the rc decrement is lost, so this must not audit clean.
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, Stolen { from: 0 }),
            ev(4, 1, 1, ExecBegin),
            ev(5, 0, 2, Duplicate { of: 1 }),
            ev(6, 0, 2, ExecBegin),
            ev(7, 0, 2, ExecEnd),
            ev(10, 0, 0, ExecEnd),
        ];
        let r = audit_task_events_mode(
            &events,
            AuditMode::Multiplicity { crash_armed: false },
            "cilk5-nq",
        );
        assert_eq!(r.count(AuditViolationKind::Unrecovered), 1, "{}", r.render());
    }

    #[test]
    fn whitelist_is_pinned_to_the_kernel_registry_names() {
        // The whitelist is sorted and duplicate-free so membership checks
        // and the acceptance matrix agree on one canonical spelling.
        let mut sorted = IDEMPOTENT_KERNELS;
        sorted.sort_unstable();
        assert_eq!(sorted, IDEMPOTENT_KERNELS);
        assert!(kernel_is_idempotent("cilk5-nq"));
        assert!(!kernel_is_idempotent("nqueens"));
        let mut sorted = DUPLICATE_SAFE_KERNELS;
        sorted.sort_unstable();
        assert_eq!(sorted, DUPLICATE_SAFE_KERNELS);
        // Duplicate-safety implies respawn-idempotence, never the reverse.
        for k in DUPLICATE_SAFE_KERNELS {
            assert!(kernel_is_idempotent(k), "{k} duplicate-safe but not respawn-idempotent");
        }
    }

    #[test]
    fn verdict_hash_is_stable_and_sensitive() {
        let a = audit_task_events(&clean_stream(), false, "cilk5-nq");
        let b = audit_task_events(&clean_stream(), false, "cilk5-nq");
        assert_eq!(a.verdict_hash(), b.verdict_hash());
        let mut broken = clean_stream();
        broken.truncate(broken.len() - 1); // drop the root's ExecEnd
        let c = audit_task_events(&broken, false, "cilk5-nq");
        assert_ne!(a.verdict_hash(), c.verdict_hash());
    }
}
