//! Exactly-once / at-least-once execution audit over the task-event
//! stream.
//!
//! The DRF passes in this crate need the per-op memory stream, which is
//! incompatible with fault injection (`run_system` rejects armed checkers
//! under an active [`bigtiny_engine::FaultPlan`] because faults perturb
//! the schedule the oracle replays). Crash runs are instead audited at the
//! *task* level, from the lifecycle events a
//! [`bigtiny_core::RuntimeConfig::record_task_events`] run records:
//!
//! * **Crash-free runs are exactly-once**: every spawned task executes to
//!   completion exactly once; any respawn or discard is a violation.
//! * **Crash runs are at-least-once with accounting**: a task may stop
//!   mid-execution only if a [`TaskEventKind::Respawn`] covers it or an
//!   ancestor (the replacement re-runs the subtree); a task may be
//!   [`TaskEventKind::Discarded`] only if it never began executing; a
//!   subtree that re-executes is flagged as a *duplicated effect* unless
//!   the kernel is on the idempotence whitelist
//!   ([`IDEMPOTENT_KERNELS`]) — i.e. its side effects are written so that
//!   running a subtree twice lands the same final state.
//!
//! The audit is deterministic (one linear pass, no hash-order iteration),
//! so [`AuditReport::verdict_hash`] is a stable fingerprint of the
//! verdict: the chaos fuzzer and the golden-trace determinism pins compare
//! it across runs and backends.

use bigtiny_core::{TaskEvent, TaskEventKind};
use bigtiny_engine::hash;

/// Kernels whose side effects are idempotent under subtree re-execution:
/// every shared write is a pure function of the task's identity (slot
/// writes, CAS-claimed flags), never a read-modify-write accumulation.
/// Re-executing any subtree of these kernels lands the same final state,
/// so duplicated effects are not violations for them.
///
/// This list is a *claim* audited by the crash-matrix acceptance tests:
/// every kernel here must produce correct output under the crash-storm
/// plan on every setup.
pub const IDEMPOTENT_KERNELS: [&str; 13] = [
    "cilk5-cs",
    "cilk5-lu",
    "cilk5-mm",
    "cilk5-mt",
    "cilk5-nq",
    "ligra-bc",
    "ligra-bf",
    "ligra-bfs",
    "ligra-bfsbv",
    "ligra-cc",
    "ligra-mis",
    "ligra-radii",
    "ligra-tc",
];

/// Whether `kernel` declares its side effects idempotent under subtree
/// re-execution.
pub fn kernel_is_idempotent(kernel: &str) -> bool {
    IDEMPOTENT_KERNELS.contains(&kernel)
}

/// What the audit found wrong with one task's lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditViolationKind {
    /// Spawned (or respawned), never executed, never discarded: the task
    /// was lost — dropped from a deque or mailbox without recovery.
    Lost,
    /// Began executing but never finished, and no respawn covers it or an
    /// ancestor: the crash consumed the task without a replacement.
    Unrecovered,
    /// Discarded after it began executing: recovery threw away a task
    /// whose partial effects are already visible.
    DiscardedMidExec,
    /// Executed to completion more than once (two `ExecEnd`s for one id) —
    /// forbidden even under at-least-once, which duplicates *subtrees*
    /// under fresh ids, never one record.
    DoubleExec,
    /// A respawn or discard appeared in a run whose fault plan has no
    /// crash dimension armed.
    UnexpectedRecovery,
    /// Subtree re-execution happened but the kernel is not on the
    /// idempotence whitelist: its duplicated side effects are unaudited.
    NonIdempotentReexec,
    /// The event stream itself is malformed (respawn of an unknown task,
    /// events for a task never spawned).
    MalformedStream,
}

impl AuditViolationKind {
    /// Stable label used in reports and the verdict hash.
    pub fn label(self) -> &'static str {
        match self {
            AuditViolationKind::Lost => "lost",
            AuditViolationKind::Unrecovered => "unrecovered",
            AuditViolationKind::DiscardedMidExec => "discarded-mid-exec",
            AuditViolationKind::DoubleExec => "double-exec",
            AuditViolationKind::UnexpectedRecovery => "unexpected-recovery",
            AuditViolationKind::NonIdempotentReexec => "non-idempotent-reexec",
            AuditViolationKind::MalformedStream => "malformed-stream",
        }
    }
}

/// One audit finding.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// What rule was broken.
    pub kind: AuditViolationKind,
    /// Task the finding concerns.
    pub task: u32,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] task {}: {}", self.kind.label(), self.task, self.detail)
    }
}

/// The result of auditing one run's task-event stream.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Whether the run's fault plan had a crash dimension armed (sets the
    /// exactly-once vs at-least-once expectation).
    pub crash_armed: bool,
    /// Tasks spawned (including respawn replacements).
    pub tasks: u64,
    /// Tasks that executed to completion.
    pub completed: u64,
    /// Respawn replacements seen.
    pub respawns: u64,
    /// Orphans discarded without executing.
    pub discards: u64,
    /// Tasks that died mid-execution and are covered by a respawn.
    pub recovered: u64,
    /// Findings, in task-id order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// No violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of findings of one kind.
    pub fn count(&self, kind: AuditViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// FNV-1a fingerprint of the verdict: folds the lifecycle counts and
    /// every finding's kind and task. Deterministic runs produce identical
    /// hashes; any audit-visible divergence changes it.
    pub fn verdict_hash(&self) -> u64 {
        let mut h = hash::FNV_OFFSET;
        for n in [
            self.crash_armed as u64,
            self.tasks,
            self.completed,
            self.respawns,
            self.discards,
            self.recovered,
        ] {
            h = hash::fnv1a_continue(h, &n.to_le_bytes());
        }
        for v in &self.violations {
            h = hash::fnv1a_continue(h, v.kind.label().as_bytes());
            h = hash::fnv1a_continue(h, &(v.task as u64).to_le_bytes());
        }
        h
    }

    /// Renders a short human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} tasks, {} completed, {} respawns, {} discards, {} recovered\n",
            if self.is_clean() { "clean" } else { "VIOLATIONS" },
            self.tasks,
            self.completed,
            self.respawns,
            self.discards,
            self.recovered,
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

/// Per-task lifecycle state accumulated by the linear pass.
#[derive(Clone, Copy, Default)]
struct TaskState {
    spawned: bool,
    began: bool,
    ended: u32,
    discarded: bool,
    parent: Option<u32>,
    /// A respawn named this task as the one that died mid-execution.
    respawned_of: bool,
}

/// Audits a task-event stream for exactly-once (crash-free) or accounted
/// at-least-once (crash-armed) execution.
///
/// `kernel` selects the idempotence expectation for re-executed subtrees;
/// pass the registry name (e.g. `cilk5-nq`) or any other label — unknown
/// names are simply not whitelisted.
pub fn audit_task_events(events: &[TaskEvent], crash_armed: bool, kernel: &str) -> AuditReport {
    let mut states: Vec<TaskState> = Vec::new();
    let mut report = AuditReport {
        crash_armed,
        tasks: 0,
        completed: 0,
        respawns: 0,
        discards: 0,
        recovered: 0,
        violations: Vec::new(),
    };
    fn flag(
        violations: &mut Vec<AuditViolation>,
        kind: AuditViolationKind,
        task: u32,
        detail: String,
    ) {
        violations.push(AuditViolation { kind, task, detail });
    }

    fn state(states: &mut Vec<TaskState>, id: u32) -> &mut TaskState {
        let id = id as usize;
        if states.len() <= id {
            states.resize(id + 1, TaskState::default());
        }
        &mut states[id]
    }

    for e in events {
        match e.kind {
            TaskEventKind::Spawn { parent } => {
                let s = state(&mut states, e.task);
                if s.spawned {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        "spawned twice".into(),
                    );
                }
                s.spawned = true;
                s.parent = parent;
                report.tasks += 1;
            }
            TaskEventKind::Respawn { of } => {
                let known = states.get(of as usize).is_some_and(|s| s.spawned);
                if !known {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        format!("respawns unknown task {of}"),
                    );
                }
                let parent = states.get(of as usize).and_then(|s| s.parent);
                {
                    let of_state = state(&mut states, of);
                    of_state.respawned_of = true;
                }
                let s = state(&mut states, e.task);
                s.spawned = true;
                s.parent = parent;
                report.tasks += 1;
                report.respawns += 1;
            }
            TaskEventKind::ExecBegin => {
                let s = state(&mut states, e.task);
                if !s.spawned {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::MalformedStream,
                        e.task,
                        "executed without a spawn".into(),
                    );
                }
                s.began = true;
            }
            TaskEventKind::ExecEnd => {
                let s = state(&mut states, e.task);
                s.ended += 1;
                report.completed += 1;
                if s.ended == 2 {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::DoubleExec,
                        e.task,
                        "one task record completed twice".into(),
                    );
                }
            }
            TaskEventKind::Discarded => {
                let s = state(&mut states, e.task);
                if s.began {
                    flag(
                        &mut report.violations,
                        AuditViolationKind::DiscardedMidExec,
                        e.task,
                        "discarded after its body began executing".into(),
                    );
                }
                s.discarded = true;
                report.discards += 1;
            }
            TaskEventKind::Stolen { .. } | TaskEventKind::Join => {}
        }
    }

    if !crash_armed && (report.respawns > 0 || report.discards > 0) {
        flag(
            &mut report.violations,
            AuditViolationKind::UnexpectedRecovery,
            0,
            format!(
                "{} respawns and {} discards in a crash-free run",
                report.respawns, report.discards
            ),
        );
    }

    // A task that stopped mid-execution is accounted for iff a respawn
    // covers it or one of its ancestors (the replacement re-runs the whole
    // subtree, recreating descendants under fresh ids).
    let covered = |mut t: usize| -> bool {
        loop {
            if states[t].respawned_of {
                return true;
            }
            match states[t].parent {
                Some(p) => t = p as usize,
                None => return false,
            }
        }
    };
    for (id, &s) in states.iter().enumerate() {
        if !s.spawned {
            continue;
        }
        if s.began && s.ended == 0 {
            if covered(id) {
                report.recovered += 1;
            } else {
                flag(
                    &mut report.violations,
                    AuditViolationKind::Unrecovered,
                    id as u32,
                    "died mid-execution with no covering respawn".into(),
                );
            }
        }
        if !s.began && !s.discarded && !covered(id) {
            flag(
                &mut report.violations,
                AuditViolationKind::Lost,
                id as u32,
                "spawned but never executed nor discarded".into(),
            );
        }
    }

    if report.respawns > 0 && !kernel_is_idempotent(kernel) {
        flag(
            &mut report.violations,
            AuditViolationKind::NonIdempotentReexec,
            0,
            format!(
                "{} subtree re-executions but kernel {kernel:?} is not whitelisted",
                report.respawns
            ),
        );
    }

    report.violations.sort_by_key(|v| (v.task, v.kind.label()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, core: usize, task: u32, kind: TaskEventKind) -> TaskEvent {
        TaskEvent { cycle, core, task, kind }
    }

    /// A clean crash-free stream: root spawns one child, both complete.
    fn clean_stream() -> Vec<TaskEvent> {
        use TaskEventKind::*;
        vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, Stolen { from: 0 }),
            ev(4, 1, 1, ExecBegin),
            ev(8, 1, 1, ExecEnd),
            ev(9, 0, 0, Join),
            ev(10, 0, 0, ExecEnd),
        ]
    }

    #[test]
    fn clean_stream_is_exactly_once() {
        let r = audit_task_events(&clean_stream(), false, "cilk5-nq");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!((r.tasks, r.completed, r.respawns, r.discards), (2, 2, 0, 0));
    }

    #[test]
    fn recovery_in_a_crash_free_run_is_flagged() {
        use TaskEventKind::*;
        let mut events = clean_stream();
        events.push(ev(11, 2, 2, Respawn { of: 1 }));
        events.push(ev(12, 2, 2, ExecBegin));
        events.push(ev(13, 2, 2, ExecEnd));
        let r = audit_task_events(&events, false, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::UnexpectedRecovery), 1, "{}", r.render());
    }

    #[test]
    fn crash_with_covering_respawn_is_accounted() {
        use TaskEventKind::*;
        // Task 1 dies mid-execution; its child 2 sat in the dead deque and
        // is discarded; task 3 respawns task 1 and completes the subtree.
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, Stolen { from: 0 }),
            ev(4, 1, 1, ExecBegin),
            ev(5, 1, 2, Spawn { parent: Some(1) }),
            // core 1 crashes here
            ev(9, 2, 2, Discarded),
            ev(10, 2, 3, Respawn { of: 1 }),
            ev(11, 2, 3, ExecBegin),
            ev(12, 2, 4, Spawn { parent: Some(3) }),
            ev(13, 2, 4, ExecBegin),
            ev(14, 2, 4, ExecEnd),
            ev(15, 2, 3, ExecEnd),
            ev(16, 0, 0, Join),
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!((r.tasks, r.respawns, r.discards, r.recovered), (5, 1, 1, 1));
    }

    #[test]
    fn uncovered_death_and_lost_tasks_are_violations() {
        use TaskEventKind::*;
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            // core 1 crashes; nobody respawns task 1
            ev(9, 0, 2, Spawn { parent: Some(0) }),
            // task 2 is never executed nor discarded
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::Unrecovered), 1, "{}", r.render());
        assert_eq!(r.count(AuditViolationKind::Lost), 1, "{}", r.render());
    }

    #[test]
    fn descendants_of_a_respawned_task_are_covered() {
        use TaskEventKind::*;
        // Task 2 (child of dead task 1) also began and never ended — the
        // ancestor's respawn covers it.
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            ev(4, 1, 2, Spawn { parent: Some(1) }),
            ev(5, 1, 2, ExecBegin),
            // core 1 crashes with both 1 and 2 on its stack
            ev(10, 2, 3, Respawn { of: 1 }),
            ev(11, 2, 3, ExecBegin),
            ev(15, 2, 3, ExecEnd),
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.recovered, 2);
    }

    #[test]
    fn discard_mid_exec_and_double_exec_are_violations() {
        use TaskEventKind::*;
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            ev(4, 2, 1, Discarded),
            ev(5, 0, 0, ExecEnd),
            ev(6, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "cilk5-nq");
        assert_eq!(r.count(AuditViolationKind::DiscardedMidExec), 1, "{}", r.render());
        assert_eq!(r.count(AuditViolationKind::DoubleExec), 1, "{}", r.render());
    }

    #[test]
    fn reexecution_outside_the_whitelist_is_flagged() {
        use TaskEventKind::*;
        let events = vec![
            ev(0, 0, 0, Spawn { parent: None }),
            ev(1, 0, 0, ExecBegin),
            ev(2, 0, 1, Spawn { parent: Some(0) }),
            ev(3, 1, 1, ExecBegin),
            ev(10, 2, 2, Respawn { of: 1 }),
            ev(11, 2, 2, ExecBegin),
            ev(12, 2, 2, ExecEnd),
            ev(17, 0, 0, ExecEnd),
        ];
        let r = audit_task_events(&events, true, "my-accumulating-kernel");
        assert_eq!(r.count(AuditViolationKind::NonIdempotentReexec), 1, "{}", r.render());
        let r = audit_task_events(&events, true, "ligra-tc");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn whitelist_is_pinned_to_the_kernel_registry_names() {
        // The whitelist is sorted and duplicate-free so membership checks
        // and the acceptance matrix agree on one canonical spelling.
        let mut sorted = IDEMPOTENT_KERNELS;
        sorted.sort_unstable();
        assert_eq!(sorted, IDEMPOTENT_KERNELS);
        assert!(kernel_is_idempotent("cilk5-nq"));
        assert!(!kernel_is_idempotent("nqueens"));
    }

    #[test]
    fn verdict_hash_is_stable_and_sensitive() {
        let a = audit_task_events(&clean_stream(), false, "cilk5-nq");
        let b = audit_task_events(&clean_stream(), false, "cilk5-nq");
        assert_eq!(a.verdict_hash(), b.verdict_hash());
        let mut broken = clean_stream();
        broken.truncate(broken.len() - 1); // drop the root's ExecEnd
        let c = audit_task_events(&broken, false, "cilk5-nq");
        assert_ne!(a.verdict_hash(), c.verdict_hash());
    }
}
