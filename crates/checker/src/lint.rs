//! Sync-discipline lint: checks the Figure 3 structure literally.
//!
//! The staleness pass proves *semantic* safety; this pass checks the
//! *shape* the paper argues from, using the runtime's own annotations:
//!
//! * Every [`SyncNote::DequeAcquire`] must be followed by a
//!   `cache_invalidate` before the first data access (Figure 3(b)
//!   line 3) — on protocols where the invalidate is not a no-op.
//! * Every [`SyncNote::DequeRelease`] must find no dirty data since the
//!   last `cache_flush` (Figure 3(b) lines 4 and 9) — on protocols where
//!   the flush is not a no-op. A store dirties; an AMO dirties only on
//!   protocols that execute AMOs in the L1.
//! * A [`SyncNote::HscElide`] may only name a task whose children were
//!   never stolen (Figure 3(c) line 8): any earlier
//!   [`SyncNote::HscSet`] for the same task convicts it. Both notes are
//!   emitted by the task's owning core (the DTS steal handler runs on
//!   the victim), so stream order is program order and no clock
//!   reasoning is needed.

use std::collections::HashSet;

use bigtiny_coherence::{Addr, Protocol};
use bigtiny_engine::{MemEvent, MemOp, SyncNote};

use crate::{Collector, ViolationKind};

/// The sync-discipline lint pass.
pub(crate) struct LintPass {
    protocols: Vec<Protocol>,
    /// Armed at a lock acquire on a protocol needing invalidation:
    /// `(lock word, acquire cycle)`. Disarmed by `InvalidateAll`; any data
    /// access first is the violation.
    pending_inval: Vec<Option<(u64, u64)>>,
    /// Has this core dirtied its cache since its last `cache_flush`?
    /// Deliberately *not* cleared at a release: the unlock store itself
    /// re-dirties, so a mutated (flush-dropped) critical section stays
    /// convictable at the next release even if it wrote nothing else.
    dirty_since_flush: Vec<bool>,
    /// Task ids that had a child stolen (`HscSet` observed).
    stolen: HashSet<u32>,
}

impl LintPass {
    pub(crate) fn new(protocols: &[Protocol]) -> Self {
        LintPass {
            protocols: protocols.to_vec(),
            pending_inval: vec![None; protocols.len()],
            dirty_since_flush: vec![false; protocols.len()],
            stolen: HashSet::new(),
        }
    }

    /// A data access while an invalidate is owed is the violation.
    fn access(&mut self, core: usize, cycle: u64, addr: Addr, col: &mut Collector) {
        if let Some((lock, acq)) = self.pending_inval[core].take() {
            col.report(
                ViolationKind::LintAcquireNoInvalidate,
                core,
                cycle,
                Some(addr),
                lock,
                format!(
                    "first access after acquiring deque lock {} at cycle {acq} \
                     with no cache_invalidate in between",
                    Addr(lock)
                ),
            );
        }
    }

    pub(crate) fn step(&mut self, ev: &MemEvent, col: &mut Collector) {
        let (core, cycle) = (ev.core, ev.cycle);
        match ev.op {
            MemOp::Load { addr, .. } => self.access(core, cycle, addr, col),
            MemOp::Store { addr, .. } => {
                self.access(core, cycle, addr, col);
                self.dirty_since_flush[core] = true;
            }
            MemOp::Amo { addr } => {
                self.access(core, cycle, addr, col);
                if self.protocols[core].amo_in_l1() {
                    self.dirty_since_flush[core] = true;
                }
            }
            MemOp::InvalidateAll => self.pending_inval[core] = None,
            MemOp::FlushAll => self.dirty_since_flush[core] = false,
            MemOp::Sync(note) => match note {
                SyncNote::DequeAcquire { lock } => {
                    if !self.protocols[core].invalidate_is_noop() {
                        self.pending_inval[core] = Some((lock.0, cycle));
                    }
                }
                SyncNote::DequeRelease { lock } => {
                    if self.dirty_since_flush[core] && !self.protocols[core].flush_is_noop() {
                        col.report(
                            ViolationKind::LintReleaseNoFlush,
                            core,
                            cycle,
                            Some(lock),
                            lock.0,
                            "deque lock released with dirty data and no cache_flush since"
                                .to_string(),
                        );
                    }
                }
                SyncNote::HscSet { task } => {
                    self.stolen.insert(task);
                }
                SyncNote::HscElide { task } => {
                    if self.stolen.contains(&task) {
                        col.report(
                            ViolationKind::LintHscElideAfterSteal,
                            core,
                            cycle,
                            None,
                            u64::from(task),
                            format!(
                                "has_stolen_child elision for task {task}, whose children were \
                                 stolen (invalidate/AMO join skipped on a steal-tainted join)"
                            ),
                        );
                    }
                }
                SyncNote::UliReqSend { .. }
                | SyncNote::UliRespSend { .. }
                | SyncNote::UliRespRecv { .. }
                | SyncNote::HandlerEnter { .. } => {}
            },
        }
    }
}
