//! `ligra-mis`: maximal independent set with rootset-style rounds — a
//! deterministic Luby-style algorithm in which an undecided vertex joins the
//! set when its priority beats every undecided neighbour, and joining
//! vertices knock their neighbours out.

use std::sync::Arc;

use bigtiny_core::TaskCx;
use bigtiny_engine::{AddrSpace, ShScalar, ShVec, XorShift64};

use crate::graph::Graph;
use crate::registry::{AppSize, Prepared};

/// Vertex states.
const UNDECIDED: u64 = 0;
const IN: u64 = 1;
const OUT: u64 = 2;

/// Instantiates `ligra-mis` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (2048, 8),
        AppSize::Large => (4096, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0x315));
    let n = g.num_vertices();

    // Deterministic priorities (a permutation-ish hash; ties broken by id).
    let mut rng = XorShift64::new(0x9);
    let prio_vals: Vec<u64> = (0..n as u64).map(|v| (rng.next_u64() << 20) | v).collect();
    let prio = Arc::new(ShVec::from_vec(space, prio_vals));
    let state = Arc::new(ShVec::new(space, n, UNDECIDED));
    let joined = Arc::new(ShVec::new(space, n, 0u64));
    let undecided = Arc::new(ShScalar::new(space, n as u64));

    let (g2, p2, s2, j2, u2) = (
        Arc::clone(&g),
        Arc::clone(&prio),
        Arc::clone(&state),
        Arc::clone(&joined),
        Arc::clone(&undecided),
    );
    let root: crate::RootFn = Box::new(move |cx| {
        if cx.reexec_possible() {
            // At-least-once mode: a re-executed subtree could decrement
            // the shared countdown twice, so the crash-immune root
            // recounts the undecided set itself after each round.
            loop {
                round(cx, &g2, &p2, &s2, &j2, &u2, grain);
                let mut undec = 0u64;
                for v in 0..s2.len() {
                    if s2.read(cx.port(), v) == UNDECIDED {
                        undec += 1;
                    }
                }
                if undec == 0 {
                    break;
                }
            }
        } else {
            while u2.read(cx.port()) > 0 {
                round(cx, &g2, &p2, &s2, &j2, &u2, grain);
            }
        }
    });
    let verify = Box::new(move || {
        let adj = g.host_adjacency();
        let st = state.snapshot();
        // Every vertex decided.
        if let Some(v) = st.iter().position(|s| *s == UNDECIDED) {
            return Err(format!("ligra-mis: vertex {v} left undecided"));
        }
        // Independence.
        for v in 0..n {
            if st[v] == IN {
                for &u in &adj[v] {
                    if st[u] == IN {
                        return Err(format!(
                            "ligra-mis: adjacent vertices {v} and {u} both in set"
                        ));
                    }
                }
            }
        }
        // Maximality: every OUT vertex has an IN neighbour.
        for v in 0..n {
            if st[v] == OUT && !adj[v].iter().any(|&u| st[u] == IN) {
                return Err(format!("ligra-mis: vertex {v} is out with no in-neighbour"));
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: None }
}

#[allow(clippy::too_many_arguments)]
fn round(
    cx: &mut TaskCx<'_>,
    g: &Arc<Graph>,
    prio: &Arc<ShVec<u64>>,
    state: &Arc<ShVec<u64>>,
    joined: &Arc<ShVec<u64>>,
    undecided: &Arc<ShScalar<u64>>,
    grain: usize,
) {
    // Phase 1: undecided vertices with locally-minimal priority join.
    {
        let (g1, p1, s1, j1) =
            (Arc::clone(g), Arc::clone(prio), Arc::clone(state), Arc::clone(joined));
        crate::ligra::for_each_vertex_by_degree(cx, g, grain, move |cx, v| {
            if s1.read(cx.port(), v) != UNDECIDED {
                return;
            }
            let pv = p1.read(cx.port(), v);
            let lo = g1.offset(cx, v);
            let hi = g1.offset(cx, v + 1);
            let mut wins = true;
            for i in lo..hi {
                let u = g1.edge(cx, i);
                cx.port().advance(3);
                if s1.read(cx.port(), u) == UNDECIDED && p1.read(cx.port(), u) < pv {
                    wins = false;
                    break;
                }
            }
            if wins {
                j1.write(cx.port(), v, 1);
            }
        });
    }
    // Phase 2: joiners enter the set and knock neighbours out.
    {
        let (g1, s1, j1, u1) =
            (Arc::clone(g), Arc::clone(state), Arc::clone(joined), Arc::clone(undecided));
        crate::ligra::for_each_vertex_by_degree(cx, g, grain, move |cx, v| {
            let mut decided = 0u64;
            if j1.read(cx.port(), v) != 0 {
                j1.write(cx.port(), v, 0);
                let entered = if cx.reexec_possible() {
                    // A re-executed duplicate of a *different* leaf may
                    // have left a stale join flag behind after v was
                    // knocked out: only enter the set from UNDECIDED.
                    s1.cas(cx.port(), v, UNDECIDED, IN)
                } else {
                    s1.write(cx.port(), v, IN);
                    true
                };
                if entered {
                    decided += 1;
                    let lo = g1.offset(cx, v);
                    let hi = g1.offset(cx, v + 1);
                    for i in lo..hi {
                        let u = g1.edge(cx, i);
                        cx.port().advance(2);
                        // Neighbours of two joiners race benignly to OUT:
                        // the CAS makes the count exact.
                        if s1.cas(cx.port(), u, UNDECIDED, OUT) {
                            decided += 1;
                        }
                    }
                }
            }
            if decided > 0 && !cx.reexec_possible() {
                u1.amo(cx.port(), |c| *c -= decided);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn mis_is_independent_and_maximal() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::DeNovo), (RuntimeKind::Dts, Protocol::GpuWb)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }
}
