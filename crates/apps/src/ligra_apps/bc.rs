//! `ligra-bc`: single-source betweenness centrality with Brandes' two-phase
//! algorithm — a forward BFS accumulating shortest-path counts, then a
//! level-synchronous backward sweep accumulating dependencies (the Ligra BC
//! structure).

use std::sync::Arc;

use bigtiny_engine::{AddrSpace, RacyTag, ShVec};

use crate::graph::Graph;
use crate::ligra::{edge_map, VertexSubset};
use crate::registry::{AppSize, Prepared};

const UNSET: u64 = u64::MAX;

/// Instantiates `ligra-bc` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (2048, 8),
        AppSize::Large => (4096, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0xbc));
    let n = g.num_vertices();
    let src = g.first_nonisolated();

    let level = Arc::new(ShVec::new(space, n, UNSET));
    let sigma = Arc::new(ShVec::new(space, n, 0.0f64));
    let delta = Arc::new(ShVec::new(space, n, 0.0f64));
    level.host_write(src, 0);
    sigma.host_write(src, 1.0);
    let cur = Arc::new(VertexSubset::new(space, n));
    let nxt = Arc::new(VertexSubset::new(space, n));
    cur.host_insert(src);

    let (g2, l2, s2, d2) =
        (Arc::clone(&g), Arc::clone(&level), Arc::clone(&sigma), Arc::clone(&delta));
    let root: crate::RootFn = Box::new(move |cx| {
        let mut cur = cur;
        let mut nxt = nxt;
        // Forward phase: level-synchronous BFS accumulating path counts.
        let pull_sigma = cx.reexec_possible();
        let mut depth = 0u64;
        loop {
            depth += 1;
            let (lr, lu, sr, su) =
                (Arc::clone(&l2), Arc::clone(&l2), Arc::clone(&s2), Arc::clone(&s2));
            let this_depth = depth;
            edge_map(
                cx,
                &g2,
                &cur,
                &nxt,
                grain,
                // cond: not yet settled at a shallower level (racy probe;
                // the claim below decides).
                move |cx, d| {
                    // Benign race (LigraCondProbe): stale level only admits
                    // extra candidates; the CAS claim decides.
                    let l = lr.read_racy(cx.port(), d, RacyTag::LigraCondProbe);
                    l == UNSET || l == this_depth
                },
                move |cx, s, d, _| {
                    // Claim d for this level (idempotent for this round).
                    let fresh = lu.cas(cx.port(), d, UNSET, this_depth);
                    if !pull_sigma {
                        // Benign race (LigraClaimedLevel): once claimed this
                        // round, the level is immutable for the round, so a
                        // stale read can only miss the claim and skip the
                        // (idempotent-per-round) accumulation it guards.
                        let lvl = lu.read_racy(cx.port(), d, RacyTag::LigraClaimedLevel);
                        if lvl == this_depth {
                            // Accumulate path counts: sigma[d] += sigma[s].
                            // sigma[s] was finalized in the previous round.
                            let ss = sr.read(cx.port(), s);
                            su.amo(cx.port(), d, |x| *x += ss);
                        }
                    }
                    fresh
                },
            );
            if pull_sigma {
                // At-least-once mode: the push accumulation above would
                // double-add under subtree re-execution. Instead, with the
                // round's level claims settled, every newly-claimed vertex
                // pulls its path count from its parents — a write of a
                // recomputable value, idempotent under duplicates.
                let (gp, lp, sp, sw) =
                    (Arc::clone(&g2), Arc::clone(&l2), Arc::clone(&s2), Arc::clone(&s2));
                crate::ligra::for_each_vertex_by_degree(cx, &g2, grain, move |cx, v| {
                    if lp.read(cx.port(), v) != this_depth {
                        return;
                    }
                    let lo = gp.offset(cx, v);
                    let hi = gp.offset(cx, v + 1);
                    let mut acc = 0.0;
                    for i in lo..hi {
                        let u = gp.edge(cx, i);
                        cx.port().advance(3);
                        if lp.read(cx.port(), u) == this_depth - 1 {
                            acc += sp.read(cx.port(), u);
                        }
                    }
                    sw.write(cx.port(), v, acc);
                });
            }
            if nxt.count(cx) == 0 {
                break;
            }
            std::mem::swap(&mut cur, &mut nxt);
            nxt.par_clear(cx, grain.max(64));
        }
        let max_depth = depth;
        // Backward phase: accumulate dependencies level by level.
        for lev in (1..max_depth).rev() {
            let (gb, lb, sb, db) =
                (Arc::clone(&g2), Arc::clone(&l2), Arc::clone(&s2), Arc::clone(&d2));
            let gsplit = Arc::clone(&g2);
            crate::ligra::for_each_vertex_by_degree(cx, &gsplit, grain, move |cx, v| {
                if lb.read(cx.port(), v) != lev {
                    return;
                }
                let lo = gb.offset(cx, v);
                let hi = gb.offset(cx, v + 1);
                let sv = sb.read(cx.port(), v);
                let mut acc = 0.0;
                for i in lo..hi {
                    let w = gb.edge(cx, i);
                    cx.port().advance(3);
                    if lb.read(cx.port(), w) == lev + 1 {
                        let sw = sb.read(cx.port(), w);
                        let dw = db.read(cx.port(), w);
                        acc += sv / sw * (1.0 + dw);
                        cx.port().advance(6);
                    }
                }
                db.write(cx.port(), v, acc);
            });
        }
    });
    let verify = Box::new(move || {
        let adj = g.host_adjacency();
        let (want_sigma, want_delta) = host_bc(&adj, src);
        let got_sigma = sigma.snapshot();
        let got_delta = delta.snapshot();
        for v in 0..n {
            if (got_sigma[v] - want_sigma[v]).abs() > 1e-6 * want_sigma[v].max(1.0) {
                return Err(format!(
                    "ligra-bc: sigma[{v}] = {} expected {}",
                    got_sigma[v], want_sigma[v]
                ));
            }
            if (got_delta[v] - want_delta[v]).abs() > 1e-6 * want_delta[v].abs().max(1.0) {
                return Err(format!(
                    "ligra-bc: delta[{v}] = {} expected {}",
                    got_delta[v], want_delta[v]
                ));
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: None }
}

/// Serial Brandes reference: returns (sigma, delta) from `src`.
fn host_bc(adj: &[Vec<usize>], src: usize) -> (Vec<f64>, Vec<f64>) {
    let n = adj.len();
    let mut dist = vec![u64::MAX; n];
    let mut sigma = vec![0.0; n];
    let mut order = Vec::new();
    dist[src] = 0;
    sigma[src] = 1.0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in &adj[v] {
            if dist[u] == u64::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
            if dist[u] == dist[v] + 1 {
                sigma[u] += sigma[v];
            }
        }
    }
    let mut delta = vec![0.0; n];
    for &v in order.iter().rev() {
        if v == src {
            continue;
        }
        for &u in &adj[v] {
            if dist[u] == dist[v] + 1 {
                delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
            }
        }
    }
    (sigma, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn bc_matches_brandes_reference() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWb), (RuntimeKind::Dts, Protocol::GpuWt)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }
}
