//! `ligra-bfs`: breadth-first search with a parent array and
//! compare-and-swap claiming, the canonical Ligra kernel.

use std::sync::Arc;

use bigtiny_core::TaskCx;
use bigtiny_engine::{AddrSpace, RacyTag, ShVec};

use crate::graph::Graph;
use crate::ligra::{edge_map, VertexSubset};
use crate::registry::{AppSize, Prepared};

const UNVISITED: u64 = u64::MAX;

/// Instantiates `ligra-bfs` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (4096, 8),
        AppSize::Large => (16384, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0xbf5));
    let n = g.num_vertices();
    let src = g.first_nonisolated();

    let parent = Arc::new(ShVec::new(space, n, UNVISITED));
    parent.host_write(src, src as u64);
    let cur = Arc::new(VertexSubset::new(space, n));
    let nxt = Arc::new(VertexSubset::new(space, n));
    cur.host_insert(src);

    let (g2, p2, c2, x2) =
        (Arc::clone(&g), Arc::clone(&parent), Arc::clone(&cur), Arc::clone(&nxt));
    let root: crate::RootFn = Box::new(move |cx| {
        run_bfs(cx, &g2, &p2, c2, x2, grain);
    });
    let verify = Box::new(move || {
        let adj = g.host_adjacency();
        let want = super::host_bfs(&adj, src);
        let parents = parent.snapshot();
        for v in 0..n {
            let reached = parents[v] != UNVISITED;
            if reached != (want[v] != u64::MAX) {
                return Err(format!("ligra-bfs: vertex {v} reachability mismatch"));
            }
            if reached && v != src {
                let p = parents[v] as usize;
                if want[p] + 1 != want[v] {
                    return Err(format!(
                        "ligra-bfs: parent of {v} is {p} at depth {} but v is at depth {}",
                        want[p], want[v]
                    ));
                }
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: None }
}

/// The round loop, also used by the granularity-sweep harness.
pub fn run_bfs(
    cx: &mut TaskCx<'_>,
    g: &Arc<Graph>,
    parent: &Arc<ShVec<u64>>,
    mut cur: Arc<VertexSubset>,
    mut nxt: Arc<VertexSubset>,
    grain: usize,
) {
    loop {
        let (pc, pu) = (Arc::clone(parent), Arc::clone(parent));
        edge_map(
            cx,
            g,
            &cur,
            &nxt,
            grain,
            // cond: unvisited. Benign race (LigraCondProbe): same-round CAS
            // winners may already have claimed the vertex, which the CAS
            // below detects anyway.
            move |cx, d| pc.read_racy(cx.port(), d, RacyTag::LigraCondProbe) == UNVISITED,
            // update: claim the vertex.
            move |cx, s, d, _| pu.cas(cx.port(), d, UNVISITED, s as u64),
        );
        if nxt.count(cx) == 0 {
            break;
        }
        std::mem::swap(&mut cur, &mut nxt);
        nxt.par_clear(cx, grain.max(64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn bfs_parent_tree_is_a_valid_bfs_tree() {
        for (kind, proto) in [
            (RuntimeKind::Baseline, Protocol::Mesi),
            (RuntimeKind::Hcc, Protocol::GpuWb),
            (RuntimeKind::Dts, Protocol::DeNovo),
        ] {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }
}
