//! `ligra-radii`: graph radius estimation by K simultaneous BFS traversals
//! encoded in per-vertex bit masks (Ligra's multiple-BFS Radii), with
//! atomic OR to merge visitation masks.

use std::sync::Arc;

use bigtiny_engine::{AddrSpace, ShVec, XorShift64};

use crate::graph::Graph;
use crate::ligra::{edge_map, VertexSubset};
use crate::registry::{AppSize, Prepared};

/// Instantiates `ligra-radii` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (2048, 8),
        AppSize::Large => (8192, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0x4ad11));
    let n = g.num_vertices();

    // K sample sources (deterministic), one bit each.
    let k = 64.min(n);
    let mut rng = XorShift64::new(0x50);
    let mut sources: Vec<usize> = Vec::new();
    while sources.len() < k {
        let v = rng.next_below(n as u64) as usize;
        if !sources.contains(&v) {
            sources.push(v);
        }
    }

    // Ligra's two-array scheme: reads go to `visited` (stable across the
    // round), atomic ORs accumulate into `next_visited`, and a vertex-map
    // copies the frontier's masks over after the round barrier. This keeps
    // the rounds synchronous, so radii are exact BFS distances.
    let visited = Arc::new(ShVec::new(space, n, 0u64));
    let next_visited = Arc::new(ShVec::new(space, n, 0u64));
    let radii = Arc::new(ShVec::new(space, n, 0u64));
    let cur = Arc::new(VertexSubset::new(space, n));
    let nxt = Arc::new(VertexSubset::new(space, n));
    for (bit, &s) in sources.iter().enumerate() {
        visited.host_write(s, visited.host_read(s) | (1 << bit));
        next_visited.host_write(s, visited.host_read(s));
        cur.host_insert(s);
    }

    let (g2, v2, nv2, r2) =
        (Arc::clone(&g), Arc::clone(&visited), Arc::clone(&next_visited), Arc::clone(&radii));
    let sources2 = sources.clone();
    let root: crate::RootFn = Box::new(move |cx| {
        let mut cur = cur;
        let mut nxt = nxt;
        let mut round = 0u64;
        loop {
            round += 1;
            let (vr, nvu) = (Arc::clone(&v2), Arc::clone(&nv2));
            edge_map(
                cx,
                &g2,
                &cur,
                &nxt,
                grain,
                |_, _| true,
                // OR the source's stable mask into the destination's
                // next-round mask.
                move |cx, s, d, _| {
                    let ms = vr.read(cx.port(), s);
                    nvu.amo(cx.port(), d, |m| {
                        if *m | ms != *m {
                            *m |= ms;
                            true
                        } else {
                            false
                        }
                    })
                },
            );
            if nxt.count(cx) == 0 {
                break;
            }
            // Commit the round: copy updated masks and stamp radii.
            {
                let (vu, nvr, ru) = (Arc::clone(&v2), Arc::clone(&nv2), Arc::clone(&r2));
                crate::ligra::vertex_map(cx, &nxt, grain, move |cx, v| {
                    let m = nvr.read(cx.port(), v);
                    vu.write(cx.port(), v, m);
                    ru.write(cx.port(), v, round);
                });
            }
            std::mem::swap(&mut cur, &mut nxt);
            nxt.par_clear(cx, grain.max(64));
        }
    });
    let verify = Box::new(move || {
        // Reference: run the same K-BFS serially; radii estimate per vertex
        // is the max BFS distance from any sampled source that reaches it.
        let adj = g.host_adjacency();
        let mut want = vec![0u64; n];
        for &s in &sources2 {
            let d = super::host_bfs(&adj, s);
            for v in 0..n {
                if d[v] != u64::MAX {
                    want[v] = want[v].max(d[v]);
                }
            }
        }
        let got = radii.snapshot();
        for v in 0..n {
            if got[v] != want[v] {
                return Err(format!("ligra-radii: radius[{v}] = {} expected {}", got[v], want[v]));
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn radii_match_serial_multi_bfs() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWb), (RuntimeKind::Dts, Protocol::DeNovo)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }
}
