//! `ligra-cc`: connected components by label propagation — every vertex
//! starts with its own id and repeatedly adopts the minimum label in its
//! neighbourhood (Ligra's Components with atomic write-min).

use std::sync::Arc;

use bigtiny_engine::{AddrSpace, RacyTag, ShVec};

use crate::graph::Graph;
use crate::ligra::{edge_map, VertexSubset};
use crate::registry::{fingerprint_words, AppSize, Prepared};

/// Instantiates `ligra-cc` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (3072, 8),
        AppSize::Large => (12288, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0xcc));
    let n = g.num_vertices();

    let ids = Arc::new(ShVec::from_vec(space, (0..n as u64).collect()));
    let cur = Arc::new(VertexSubset::new(space, n));
    let nxt = Arc::new(VertexSubset::new(space, n));
    for v in 0..n {
        cur.host_insert(v);
    }

    let (g2, i2) = (Arc::clone(&g), Arc::clone(&ids));
    let i3 = Arc::clone(&ids);
    let root: crate::RootFn = Box::new(move |cx| {
        let mut cur = cur;
        let mut nxt = nxt;
        loop {
            let (ir, iu) = (Arc::clone(&i2), Arc::clone(&i2));
            edge_map(
                cx,
                &g2,
                &cur,
                &nxt,
                grain,
                |_, _| true,
                // Propagate the smaller label. Benign race
                // (LigraMonotoneSrc): labels only decrease, so a stale read
                // propagates an older (larger) label and a later round
                // repairs; the atomic write-min decides.
                move |cx, s, d, _| {
                    let ls = ir.read_racy(cx.port(), s, RacyTag::LigraMonotoneSrc);
                    cx.port().advance(1);
                    iu.amo(cx.port(), d, |x| {
                        if ls < *x {
                            *x = ls;
                            true
                        } else {
                            false
                        }
                    })
                },
            );
            if nxt.count(cx) == 0 {
                break;
            }
            std::mem::swap(&mut cur, &mut nxt);
            nxt.par_clear(cx, grain.max(64));
        }
    });
    let verify = Box::new(move || {
        let adj = g.host_adjacency();
        let got = ids.snapshot();
        let want = host_components(&adj);
        // Same partition: labels equal iff reference roots equal; and each
        // label must be the minimum vertex id of its component.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            for u in 0..n {
                if (got[v] == got[u]) != (want[v] == want[u]) {
                    return Err(format!("ligra-cc: partition differs at ({v}, {u})"));
                }
            }
            if got[v] != want[v] as u64 {
                return Err(format!(
                    "ligra-cc: label of {v} is {} expected min-id {}",
                    got[v], want[v]
                ));
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: Some(Box::new(move || fingerprint_words(i3.snapshot()))) }
}

/// Serial reference: min vertex id per component via union-find.
fn host_components(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    for (v, nv) in adj.iter().enumerate() {
        for &u in nv {
            let (rv, ru) = (find(&mut parent, v), find(&mut parent, u));
            if rv != ru {
                parent[rv.max(ru)] = rv.min(ru);
            }
        }
    }
    let mut min_id = vec![usize::MAX; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        min_id[r] = min_id[r].min(v);
    }
    (0..n).map(|v| min_id[find(&mut parent, v)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn labels_are_component_minima() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWb), (RuntimeKind::Dts, Protocol::GpuWt)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }
}
