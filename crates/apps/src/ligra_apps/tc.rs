//! `ligra-tc`: triangle counting by ranked adjacency-list intersection —
//! the kernel the paper uses for its task-granularity study (Figure 4).

use std::sync::Arc;

use bigtiny_core::TaskCx;
use bigtiny_engine::{AddrSpace, ShScalar, ShVec};

use crate::graph::Graph;
use crate::registry::{fingerprint_words, AppSize, Prepared};

/// Instantiates `ligra-tc` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (2048, 8),
        AppSize::Large => (8192, 8),
    };
    let grain = if grain == 0 { 64 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0x7c));
    let count = Arc::new(ShScalar::new(space, 0u64));
    // Crash-tolerant slots: vertex-range leaves land their count keyed by
    // the range's first vertex, heavy-vertex edge leaves by the slice's
    // first edge slot. Both leaf families partition their index space, so
    // the keys are unique and re-execution rewrites the same value.
    let slots = Arc::new(TcSlots {
        by_vertex: ShVec::new(space, g.num_vertices(), 0u64),
        by_edge: ShVec::new(space, g.num_edges(), 0u64),
    });

    let (g2, c2, sl2) = (Arc::clone(&g), Arc::clone(&count), Arc::clone(&slots));
    let (c3, sl3) = (Arc::clone(&count), Arc::clone(&slots));
    let root: crate::RootFn = Box::new(move |cx| {
        run_tc(cx, &g2, &c2, &sl2, grain);
    });
    let verify = Box::new(move || {
        let want = host_triangles(&g.host_adjacency());
        let got = count.host_read()
            + slots.by_vertex.snapshot().iter().sum::<u64>()
            + slots.by_edge.snapshot().iter().sum::<u64>();
        if got == want {
            Ok(())
        } else {
            Err(format!("ligra-tc: counted {got} triangles, expected {want}"))
        }
    });
    let fingerprint = Box::new(move || {
        fingerprint_words(
            std::iter::once(c3.host_read())
                .chain(sl3.by_vertex.snapshot())
                .chain(sl3.by_edge.snapshot()),
        )
    });
    Prepared { root, verify, fingerprint: Some(fingerprint) }
}

/// Crash-tolerant leaf-count slots for `run_tc_with_slots`.
pub struct TcSlots {
    /// Vertex-range leaf counts, keyed by the range's first vertex.
    pub by_vertex: ShVec<u64>,
    /// Heavy-vertex edge-slice counts, keyed by the slice's first edge.
    pub by_edge: ShVec<u64>,
}

/// Counts triangles; `grain` is the number of edge slots (intersection
/// units) per leaf task — the paper's Figure 4 granularity knob ("the
/// number of triangles processed by each task" in spirit). Leaves publish
/// into `count` by AMO accumulation, or — when re-execution is possible
/// (crash plan armed or a multiplicity deque policy) — into `slots` with
/// idempotent per-leaf writes (re-executed leaves rewrite the same
/// values), so the total is `count` plus the slot sums.
///
/// Like the Ligra `edge_map`, the vertex range splits by degree sum and a
/// heavy vertex's own edge list splits recursively, so rMAT hubs do not
/// serialize the count.
pub fn run_tc(
    cx: &mut TaskCx<'_>,
    g: &Arc<Graph>,
    count: &Arc<ShScalar<u64>>,
    slots: &Arc<TcSlots>,
    grain: usize,
) {
    tc_split(cx, g, count, slots, 0, g.num_vertices(), grain.max(1));
}

/// Publishes one leaf's count: an idempotent slot write when the task may
/// re-execute, the plain accumulate otherwise.
fn publish(cx: &mut TaskCx<'_>, count: &ShScalar<u64>, slot: (&ShVec<u64>, usize), local: u64) {
    if local == 0 {
        return;
    }
    if cx.reexec_possible() {
        slot.0.write(cx.port(), slot.1, local);
    } else {
        count.amo(cx.port(), |c| *c += local);
    }
}

fn tc_split(
    cx: &mut TaskCx<'_>,
    g: &Arc<Graph>,
    count: &Arc<ShScalar<u64>>,
    slots: &Arc<TcSlots>,
    lo: usize,
    hi: usize,
    grain: usize,
) {
    if lo >= hi {
        return;
    }
    let e_lo = g.offset(cx, lo);
    let e_hi = g.offset(cx, hi);
    if hi - lo == 1 {
        if e_hi - e_lo > 2 * grain {
            tc_split_edges(cx, g, count, slots, lo, e_lo, e_hi, grain);
        } else {
            let local = triangles_at(cx, g, lo);
            publish(cx, count, (&slots.by_vertex, lo), local);
        }
        return;
    }
    if e_hi - e_lo <= grain {
        let mut local = 0u64;
        for v in lo..hi {
            local += triangles_at(cx, g, v);
        }
        publish(cx, count, (&slots.by_vertex, lo), local);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let (g1, c1, s1) = (Arc::clone(g), Arc::clone(count), Arc::clone(slots));
    let (g2, c2, s2) = (Arc::clone(g), Arc::clone(count), Arc::clone(slots));
    cx.set_pending(2);
    cx.spawn(move |cx| tc_split(cx, &g1, &c1, &s1, lo, mid, grain));
    cx.spawn(move |cx| tc_split(cx, &g2, &c2, &s2, mid, hi, grain));
    cx.wait();
}

/// Splits the intersection work of one heavy vertex over its edge slots.
#[allow(clippy::too_many_arguments)]
fn tc_split_edges(
    cx: &mut TaskCx<'_>,
    g: &Arc<Graph>,
    count: &Arc<ShScalar<u64>>,
    slots: &Arc<TcSlots>,
    v: usize,
    e0: usize,
    e1: usize,
    grain: usize,
) {
    if e1 - e0 <= grain {
        let hi_v = g.offset(cx, v + 1);
        let mut local = 0u64;
        for i in e0..e1 {
            local += intersect_one(cx, g, v, i, hi_v);
        }
        publish(cx, count, (&slots.by_edge, e0), local);
        return;
    }
    let mid = e0 + (e1 - e0) / 2;
    let (g1, c1, s1) = (Arc::clone(g), Arc::clone(count), Arc::clone(slots));
    let (g2, c2, s2) = (Arc::clone(g), Arc::clone(count), Arc::clone(slots));
    cx.set_pending(2);
    cx.spawn(move |cx| tc_split_edges(cx, &g1, &c1, &s1, v, e0, mid, grain));
    cx.spawn(move |cx| tc_split_edges(cx, &g2, &c2, &s2, v, mid, e1, grain));
    cx.wait();
}

/// Counts triangles `v < u < w` where `u, w` are neighbours of `v` and of
/// each other, by merge-intersecting the ranked adjacency lists.
fn triangles_at(cx: &mut TaskCx<'_>, g: &Graph, v: usize) -> u64 {
    let lo_v = g.offset(cx, v);
    let hi_v = g.offset(cx, v + 1);
    let mut total = 0u64;
    for i in lo_v..hi_v {
        total += intersect_one(cx, g, v, i, hi_v);
    }
    total
}

/// The intersection unit for edge slot `i` of vertex `v`: counts common
/// neighbours `w > u` of `v` and `u = edges[i]`.
fn intersect_one(cx: &mut TaskCx<'_>, g: &Graph, v: usize, i: usize, hi_v: usize) -> u64 {
    let u = g.edge(cx, i);
    cx.port().advance(3);
    if u <= v {
        return 0;
    }
    let lo_u = g.offset(cx, u);
    let hi_u = g.offset(cx, u + 1);
    let mut total = 0u64;
    let (mut a, mut b) = (i + 1, lo_u);
    while a < hi_v && b < hi_u {
        let x = g.edge(cx, a);
        let y = g.edge(cx, b);
        cx.port().advance(4);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                if x > u {
                    total += 1;
                }
                a += 1;
                b += 1;
            }
        }
    }
    total
}

/// Serial reference count.
pub fn host_triangles(adj: &[Vec<usize>]) -> u64 {
    let mut total = 0u64;
    for (v, nv) in adj.iter().enumerate() {
        for &u in nv {
            if u <= v {
                continue;
            }
            // Count common neighbours w > u.
            let mut a = nv.iter().filter(|&&w| w > u).peekable();
            let mut b = adj[u].iter().filter(|&&w| w > u).peekable();
            while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        total += 1;
                        a.next();
                        b.next();
                    }
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn triangle_count_matches_reference() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWt), (RuntimeKind::Dts, Protocol::GpuWb)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 4);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }

    #[test]
    fn known_small_graphs() {
        let mut space = AddrSpace::new();
        // K4 has 4 triangles.
        let k4 =
            Graph::from_edge_list(&mut space, 4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(host_triangles(&k4.host_adjacency()), 4);
        // A 4-cycle has none.
        let c4 = Graph::from_edge_list(&mut space, 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(host_triangles(&c4.host_adjacency()), 0);
    }
}
