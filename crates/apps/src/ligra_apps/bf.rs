//! `ligra-bf`: single-source shortest paths with the frontier-based
//! Bellman-Ford of the Ligra paper — relaxations race benignly through an
//! atomic write-min, and a vertex re-enters the frontier when its distance
//! improves.

use std::sync::Arc;

use bigtiny_engine::{AddrSpace, RacyTag, ShVec};

use crate::graph::Graph;
use crate::ligra::{edge_map, VertexSubset};
use crate::registry::{fingerprint_words, AppSize, Prepared};

const INF: u64 = u64::MAX / 4;

/// Instantiates `ligra-bf` on a weighted rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (2048, 8),
        AppSize::Large => (8192, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0xbe11));
    let n = g.num_vertices();
    let src = g.first_nonisolated();

    let dist = Arc::new(ShVec::new(space, n, INF));
    dist.host_write(src, 0);
    let cur = Arc::new(VertexSubset::new(space, n));
    let nxt = Arc::new(VertexSubset::new(space, n));
    cur.host_insert(src);

    let (g2, d2) = (Arc::clone(&g), Arc::clone(&dist));
    let d3 = Arc::clone(&dist);
    let root: crate::RootFn = Box::new(move |cx| {
        let mut cur = cur;
        let mut nxt = nxt;
        // Bellman-Ford terminates in < n rounds on non-negative weights.
        for _round in 0..g2.num_vertices() {
            let (gr, dr, du) = (Arc::clone(&g2), Arc::clone(&d2), Arc::clone(&d2));
            edge_map(
                cx,
                &g2,
                &cur,
                &nxt,
                grain,
                |_, _| true,
                // Relax: dist[d] = min(dist[d], dist[s] + w). Benign race
                // (LigraMonotoneSrc): dist[s] only decreases, so a stale
                // read relaxes with an older (larger) distance that a later
                // round repairs.
                move |cx, s, d, eidx| {
                    let ds = dr.read_racy(cx.port(), s, RacyTag::LigraMonotoneSrc);
                    let w = gr.weight(cx, eidx);
                    let nd = ds.saturating_add(w);
                    cx.port().advance(2);
                    du.amo(cx.port(), d, |x| {
                        if nd < *x {
                            *x = nd;
                            true
                        } else {
                            false
                        }
                    })
                },
            );
            if nxt.count(cx) == 0 {
                break;
            }
            std::mem::swap(&mut cur, &mut nxt);
            nxt.par_clear(cx, grain.max(64));
        }
    });
    let verify = Box::new(move || {
        let adj = g.host_adjacency();
        let w = g.host_weights();
        let want = host_sssp(&adj, &w, src);
        let got = dist.snapshot();
        for v in 0..n {
            if got[v] != want[v] {
                return Err(format!("ligra-bf: dist[{v}] = {} expected {}", got[v], want[v]));
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: Some(Box::new(move || fingerprint_words(d3.snapshot()))) }
}

/// Serial Dijkstra reference.
fn host_sssp(adj: &[Vec<usize>], w: &[Vec<u64>], src: usize) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; adj.len()];
    dist[src] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u64, src))]);
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (i, &u) in adj[v].iter().enumerate() {
            let nd = d + w[v][i];
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn shortest_paths_match_dijkstra() {
        for (kind, proto) in [
            (RuntimeKind::Baseline, Protocol::Mesi),
            (RuntimeKind::Hcc, Protocol::DeNovo),
            (RuntimeKind::Dts, Protocol::GpuWb),
        ] {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }
}
