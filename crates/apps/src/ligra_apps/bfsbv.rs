//! `ligra-bfsbv`: breadth-first search with a bit-vector visited set —
//! the bit-packed variant the paper evaluates alongside plain BFS. Visited
//! state is one bit per vertex, claimed with an AMO on the containing word.

use std::sync::Arc;

use bigtiny_core::TaskCx;
use bigtiny_engine::{AddrSpace, RacyTag, ShVec};

use crate::graph::Graph;
use crate::ligra::{edge_map, VertexSubset};
use crate::registry::{AppSize, Prepared};

/// Instantiates `ligra-bfsbv` on an rMAT graph.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let (n, ef) = match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (3072, 8),
        AppSize::Large => (12288, 8),
    };
    let grain = if grain == 0 { 256 } else { grain };
    let g = Arc::new(Graph::rmat(space, n, ef, 0xb17));
    let n = g.num_vertices();
    let src = g.first_nonisolated();

    let words = n.div_ceil(64);
    let visited = Arc::new(ShVec::new(space, words, 0u64));
    visited.host_write(src / 64, 1u64 << (src % 64));
    let cur = Arc::new(VertexSubset::new(space, n));
    let nxt = Arc::new(VertexSubset::new(space, n));
    cur.host_insert(src);

    let (g2, v2) = (Arc::clone(&g), Arc::clone(&visited));
    let root: crate::RootFn = Box::new(move |cx| {
        let mut cur = cur;
        let mut nxt = nxt;
        loop {
            let (vc, vu) = (Arc::clone(&v2), Arc::clone(&v2));
            edge_map(
                cx,
                &g2,
                &cur,
                &nxt,
                grain,
                // cond: bit not yet set. Benign race (LigraCondProbe): a
                // stale word only admits a loser the AMO below rejects.
                move |cx, d| {
                    vc.read_racy(cx.port(), d / 64, RacyTag::LigraCondProbe) & (1 << (d % 64)) == 0
                },
                // update: claim the bit atomically.
                move |cx, _s, d, _| {
                    let mask = 1u64 << (d % 64);
                    vu.amo(cx.port(), d / 64, |w| {
                        if *w & mask == 0 {
                            *w |= mask;
                            true
                        } else {
                            false
                        }
                    })
                },
            );
            if nxt.count(cx) == 0 {
                break;
            }
            std::mem::swap(&mut cur, &mut nxt);
            nxt.par_clear(cx, grain.max(64));
        }
    });
    let verify = Box::new(move || {
        let adj = g.host_adjacency();
        let want = super::host_bfs(&adj, src);
        let bits = visited.snapshot();
        for v in 0..n {
            let got = bits[v / 64] & (1 << (v % 64)) != 0;
            let expect = want[v] != u64::MAX;
            if got != expect {
                return Err(format!("ligra-bfsbv: vertex {v} visited={got}, expected {expect}"));
            }
        }
        Ok(())
    });
    Prepared { root, verify, fingerprint: None }
}

/// Exposes the visited-bit claim for tests.
pub fn claim_bit(cx: &mut TaskCx<'_>, visited: &ShVec<u64>, v: usize) -> bool {
    let mask = 1u64 << (v % 64);
    visited.amo(cx.port(), v / 64, |w| {
        if *w & mask == 0 {
            *w |= mask;
            true
        } else {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn bfsbv_visits_exactly_the_reachable_set() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWt), (RuntimeKind::Dts, Protocol::GpuWb)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 8);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }

    #[test]
    fn claim_bit_is_exactly_once() {
        let s = sys(Protocol::GpuWb);
        let mut space = AddrSpace::new();
        let visited = Arc::new(ShVec::new(&mut space, 2, 0u64));
        let v2 = Arc::clone(&visited);
        run_task_parallel(&s, &RuntimeConfig::new(RuntimeKind::Dts), &mut space, move |cx| {
            assert!(claim_bit(cx, &v2, 70));
            assert!(!claim_bit(cx, &v2, 70), "second claim fails");
            assert!(claim_bit(cx, &v2, 71), "neighbouring bit independent");
        });
        assert_eq!(visited.host_read(1), 0b1100_0000);
    }
}
