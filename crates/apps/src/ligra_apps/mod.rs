//! The eight Ligra kernels of the paper's evaluation, on rMAT graphs.

pub mod bc;
pub mod bf;
pub mod bfs;
pub mod bfsbv;
pub mod cc;
pub mod mis;
pub mod radii;
pub mod tc;

use crate::registry::AppSize;

/// Default graph scale per input size: (vertices, edge factor).
#[allow(dead_code)]
pub(crate) fn graph_scale(size: AppSize) -> (usize, usize) {
    match size {
        AppSize::Test => (64, 4),
        AppSize::Eval => (4096, 8),
        AppSize::Large => (16384, 8),
    }
}

/// Serial BFS distances from `src` over a host adjacency list
/// (`u64::MAX` = unreachable). Shared by several verifiers.
pub(crate) fn host_bfs(adj: &[Vec<usize>], src: usize) -> Vec<u64> {
    let mut dist = vec![u64::MAX; adj.len()];
    dist[src] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v] {
            if dist[u] == u64::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}
