//! Graph inputs: CSR representation in simulated memory and the rMAT
//! generator used for the paper's `rMat_*` datasets.

use std::sync::Arc;

use bigtiny_core::TaskCx;
use bigtiny_engine::{AddrSpace, ShVec, XorShift64};

/// An undirected (symmetrized) graph in compressed-sparse-row form, living
/// in simulated memory.
///
/// `offsets` has `n + 1` entries; the neighbours of vertex `v` are
/// `edges[offsets[v]..offsets[v+1]]`, sorted ascending. `weights[i]` is the
/// weight of `edges[i]` (used by Bellman-Ford).
#[derive(Debug)]
pub struct Graph {
    n: usize,
    m: usize,
    /// CSR row offsets (simulated).
    pub offsets: ShVec<u64>,
    /// CSR adjacency (simulated).
    pub edges: ShVec<u64>,
    /// Per-edge weights (simulated), aligned with `edges`.
    pub weights: ShVec<u64>,
}

impl Graph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edge slots (twice the undirected edge count).
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Builds a graph in `space` from an edge list (symmetrized, deduped,
    /// self-loops removed). Weights are deterministic per edge.
    pub fn from_edge_list(space: &mut AddrSpace, n: usize, list: &[(u32, u32)]) -> Graph {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(list.len() * 2);
        for &(a, b) in list {
            assert!((a as usize) < n && (b as usize) < n, "edge endpoint out of range");
            if a == b {
                continue;
            }
            pairs.push((a, b));
            pairs.push((b, a));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = vec![0u64; n + 1];
        for &(a, _) in &pairs {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges: Vec<u64> = pairs.iter().map(|&(_, b)| b as u64).collect();
        // Deterministic symmetric weights in 1..=32.
        let weights: Vec<u64> = pairs
            .iter()
            .map(|&(a, b)| {
                let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                let mut r =
                    XorShift64::new(lo.wrapping_mul(0x9e37_79b9) ^ hi.wrapping_add(0x7f4a_7c15));
                r.next_below(32) + 1
            })
            .collect();

        let m = edges.len();
        Graph {
            n,
            m,
            offsets: ShVec::from_vec(space, offsets),
            edges: ShVec::from_vec(space, edges),
            weights: ShVec::from_vec(space, weights),
        }
    }

    /// Generates an rMAT graph (the paper's `rMat_*` inputs) with `n`
    /// vertices (rounded up to a power of two) and about `edge_factor * n`
    /// undirected edges, deterministically from `seed`.
    ///
    /// Uses the Graph500 partition probabilities (0.57, 0.19, 0.19, 0.05).
    pub fn rmat(space: &mut AddrSpace, n: usize, edge_factor: usize, seed: u64) -> Graph {
        let n = n.next_power_of_two().max(2);
        let levels = n.trailing_zeros();
        let mut rng = XorShift64::new(seed);
        let target = n * edge_factor;
        let mut list = Vec::with_capacity(target);
        for _ in 0..target {
            let (mut x, mut y) = (0usize, 0usize);
            for _ in 0..levels {
                let p = rng.next_f64();
                let (dx, dy) = if p < 0.57 {
                    (0, 0)
                } else if p < 0.76 {
                    (0, 1)
                } else if p < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                x = 2 * x + dx;
                y = 2 * y + dy;
            }
            list.push((x as u32, y as u32));
        }
        Self::from_edge_list(space, n, &list)
    }

    /// Simulated read of `offsets[v]`.
    pub fn offset(&self, cx: &mut TaskCx<'_>, v: usize) -> usize {
        self.offsets.read(cx.port(), v) as usize
    }

    /// Simulated read of the degree of `v` (two offset loads).
    pub fn degree(&self, cx: &mut TaskCx<'_>, v: usize) -> usize {
        let lo = self.offsets.read(cx.port(), v);
        let hi = self.offsets.read(cx.port(), v + 1);
        (hi - lo) as usize
    }

    /// Simulated read of the `i`-th edge slot.
    pub fn edge(&self, cx: &mut TaskCx<'_>, i: usize) -> usize {
        self.edges.read(cx.port(), i) as usize
    }

    /// Simulated read of the `i`-th edge weight.
    pub fn weight(&self, cx: &mut TaskCx<'_>, i: usize) -> u64 {
        self.weights.read(cx.port(), i)
    }

    /// Host-side adjacency snapshot for serial reference computations.
    pub fn host_adjacency(&self) -> Vec<Vec<usize>> {
        let offsets = self.offsets.snapshot();
        let edges = self.edges.snapshot();
        (0..self.n)
            .map(|v| (offsets[v]..offsets[v + 1]).map(|i| edges[i as usize] as usize).collect())
            .collect()
    }

    /// Host-side weights keyed like `host_adjacency`.
    pub fn host_weights(&self) -> Vec<Vec<u64>> {
        let offsets = self.offsets.snapshot();
        let weights = self.weights.snapshot();
        (0..self.n)
            .map(|v| (offsets[v]..offsets[v + 1]).map(|i| weights[i as usize]).collect())
            .collect()
    }

    /// A vertex with nonzero degree (host-side), used as a traversal source.
    pub fn first_nonisolated(&self) -> usize {
        let offsets = self.offsets.snapshot();
        (0..self.n).find(|v| offsets[v + 1] > offsets[*v]).unwrap_or(0)
    }
}

/// Shares a graph between task closures.
pub type SharedGraph = Arc<Graph>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_is_symmetrized_and_deduped() {
        let mut space = AddrSpace::new();
        let g = Graph::from_edge_list(&mut space, 4, &[(0, 1), (1, 0), (0, 1), (2, 3), (3, 3)]);
        let adj = g.host_adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
        assert_eq!(adj[2], vec![3]);
        assert_eq!(adj[3], vec![2], "self-loop dropped, symmetric");
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn weights_are_symmetric_and_positive() {
        let mut space = AddrSpace::new();
        let g = Graph::rmat(&mut space, 64, 4, 7);
        let adj = g.host_adjacency();
        let w = g.host_weights();
        for v in 0..g.num_vertices() {
            for (i, &u) in adj[v].iter().enumerate() {
                assert!(w[v][i] >= 1 && w[v][i] <= 32);
                // Find reverse edge weight.
                let j = adj[u].iter().position(|&x| x == v).expect("symmetric");
                assert_eq!(w[v][i], w[u][j], "weight({v},{u}) symmetric");
            }
        }
    }

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let mut s1 = AddrSpace::new();
        let g1 = Graph::rmat(&mut s1, 256, 8, 42);
        let mut s2 = AddrSpace::new();
        let g2 = Graph::rmat(&mut s2, 256, 8, 42);
        assert_eq!(g1.host_adjacency(), g2.host_adjacency());
        // rMAT is skewed: max degree far above mean.
        let adj = g1.host_adjacency();
        let max_deg = adj.iter().map(|a| a.len()).max().unwrap();
        let mean = g1.num_edges() as f64 / g1.num_vertices() as f64;
        assert!(max_deg as f64 > 3.0 * mean, "max {max_deg} vs mean {mean}");
    }

    #[test]
    fn offsets_are_consistent() {
        let mut space = AddrSpace::new();
        let g = Graph::rmat(&mut space, 128, 4, 1);
        let offsets = g.offsets.snapshot();
        assert_eq!(offsets.len(), g.num_vertices() + 1);
        assert_eq!(*offsets.last().unwrap() as usize, g.num_edges());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let mut space = AddrSpace::new();
        Graph::from_edge_list(&mut space, 2, &[(0, 5)]);
    }
}
