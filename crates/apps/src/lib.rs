#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The 13 dynamic task-parallel application kernels of the big.TINY
//! evaluation (Table III of the paper), ported to the simulated
//! work-stealing runtime:
//!
//! * **Cilk-5 kernels** (recursive spawn-and-sync): `cilk5-cs` (parallel
//!   mergesort), `cilk5-lu` (blocked LU decomposition), `cilk5-mm` (blocked
//!   matrix multiply), `cilk5-mt` (matrix transpose), `cilk5-nq` (n-queens).
//! * **Ligra kernels** (loop-level parallelism with fine-grained
//!   synchronization): `ligra-bc`, `ligra-bf`, `ligra-bfs`, `ligra-bfsbv`,
//!   `ligra-cc`, `ligra-mis`, `ligra-radii`, `ligra-tc`, built on the
//!   [`ligra`] `edge_map`/`vertex_map` layer over rMAT graphs.
//!
//! Every kernel allocates its data in simulated memory
//! ([`bigtiny_engine::ShVec`]), runs as a task graph on the runtime, and
//! ships a serial host-side reference against which the simulated result is
//! verified.

pub mod cilk5;
pub mod graph;
pub mod ligra;
pub mod ligra_apps;
mod registry;

pub use registry::{
    all_apps, app_by_name, fingerprint_words, AppSize, AppSpec, Method, Prepared, RootFn,
};

#[cfg(test)]
mod test_support {
    use bigtiny_engine::{Protocol, SystemConfig};
    use bigtiny_mesh::{MeshConfig, Topology};

    /// An 8-core mixed system used across the app test suites.
    pub fn sys(proto: Protocol) -> SystemConfig {
        SystemConfig::big_tiny(
            "apps-test",
            MeshConfig::with_topology(Topology::new(3, 3)),
            1,
            7,
            proto,
        )
    }
}
