//! The application registry: a uniform interface the benchmark harness uses
//! to instantiate, run, and verify every kernel of Table III.

use bigtiny_core::TaskCx;
use bigtiny_engine::AddrSpace;

/// A boxed root task body.
pub type RootFn = Box<dyn for<'a, 'b> FnOnce(&'a mut TaskCx<'b>) + Send>;

/// A prepared application instance: data is allocated in simulated memory,
/// `root` runs it, `verify` checks the result against a serial reference.
pub struct Prepared {
    /// The root task body.
    pub root: RootFn,
    /// Post-run functional verification.
    pub verify: Box<dyn FnOnce() -> Result<(), String> + Send>,
    /// Post-run fingerprint of the kernel's output memory, for the
    /// schedule explorer's invariance checks. `Some` only for kernels
    /// whose output is a schedule-deterministic function of the input
    /// (integer results, or pure data movement); kernels with
    /// legitimately multi-valued outputs (BFS parent trees, MIS sets) or
    /// schedule-sensitive float accumulation orders stay `None` and are
    /// judged by `verify` alone.
    pub fingerprint: Option<Box<dyn Fn() -> u64 + Send>>,
}

/// FNV-1a-style fold of a word stream, for [`Prepared::fingerprint`]
/// closures (same `fold_u64` the sequencer's op hash uses, so fingerprints
/// are pinned by the workspace's one hash implementation).
pub fn fingerprint_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = bigtiny_engine::hash::FNV_OFFSET;
    for w in words {
        h = bigtiny_engine::hash::fold_u64(h, w);
    }
    h
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Prepared { .. }")
    }
}

/// Parallelization method, as tabulated in Table III ("PM").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Recursive spawn-and-sync (`ss` in the paper).
    SpawnSync,
    /// Loop-level `parallel_for` (`pf` in the paper).
    ParallelFor,
}

impl Method {
    /// The paper's two-letter code.
    pub fn code(self) -> &'static str {
        match self {
            Method::SpawnSync => "ss",
            Method::ParallelFor => "pf",
        }
    }
}

/// Input scale for a kernel.
///
/// The paper's inputs (hundreds of millions of instructions) are scaled down
/// for the token-sequenced simulator, preserving the logical-parallelism
/// regime (Section V-A's weak-scaling argument). `Test` is for unit tests,
/// `Eval` for the Table III / Figures 5-8 harness, `Large` for the Table V
/// 256-core runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppSize {
    /// Tiny inputs for fast unit tests.
    Test,
    /// The main evaluation inputs.
    Eval,
    /// Scaled-up inputs for the 256-core experiments.
    Large,
}

/// A registered application kernel.
pub struct AppSpec {
    /// Paper name, e.g. `cilk5-cs` or `ligra-bfs`.
    pub name: &'static str,
    /// Parallelization method (Table III "PM").
    pub method: Method,
    /// Instantiates the kernel at the given size with the given task
    /// granularity (`0` = the kernel's tuned default, Table III "GS").
    pub prepare: fn(&mut AddrSpace, AppSize, usize) -> Prepared,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec").field("name", &self.name).field("method", &self.method).finish()
    }
}

impl AppSpec {
    /// Instantiates with the kernel's default granularity.
    pub fn prepare_default(&self, space: &mut AddrSpace, size: AppSize) -> Prepared {
        (self.prepare)(space, size, 0)
    }
}

/// All 13 kernels, in the paper's Table III order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "cilk5-cs",
            method: Method::SpawnSync,
            prepare: crate::cilk5::sort::prepare,
        },
        AppSpec { name: "cilk5-lu", method: Method::SpawnSync, prepare: crate::cilk5::lu::prepare },
        AppSpec {
            name: "cilk5-mm",
            method: Method::SpawnSync,
            prepare: crate::cilk5::matmul::prepare,
        },
        AppSpec {
            name: "cilk5-mt",
            method: Method::SpawnSync,
            prepare: crate::cilk5::transpose::prepare,
        },
        AppSpec {
            name: "cilk5-nq",
            method: Method::ParallelFor,
            prepare: crate::cilk5::nqueens::prepare,
        },
        AppSpec {
            name: "ligra-bc",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::bc::prepare,
        },
        AppSpec {
            name: "ligra-bf",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::bf::prepare,
        },
        AppSpec {
            name: "ligra-bfs",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::bfs::prepare,
        },
        AppSpec {
            name: "ligra-bfsbv",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::bfsbv::prepare,
        },
        AppSpec {
            name: "ligra-cc",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::cc::prepare,
        },
        AppSpec {
            name: "ligra-mis",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::mis::prepare,
        },
        AppSpec {
            name: "ligra-radii",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::radii::prepare,
        },
        AppSpec {
            name: "ligra-tc",
            method: Method::ParallelFor,
            prepare: crate::ligra_apps::tc::prepare,
        },
    ]
}

/// Looks up a kernel by its paper name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_apps_in_paper_order() {
        let apps = all_apps();
        assert_eq!(apps.len(), 13);
        assert_eq!(apps[0].name, "cilk5-cs");
        assert_eq!(apps[12].name, "ligra-tc");
        // Five Cilk-5 + eight Ligra.
        assert_eq!(apps.iter().filter(|a| a.name.starts_with("cilk5")).count(), 5);
        assert_eq!(apps.iter().filter(|a| a.name.starts_with("ligra")).count(), 8);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("ligra-tc").is_some());
        assert!(app_by_name("nope").is_none());
        assert_eq!(app_by_name("cilk5-mm").unwrap().method.code(), "ss");
        assert_eq!(app_by_name("ligra-bfs").unwrap().method.code(), "pf");
    }
}
