//! A Ligra-style graph-processing layer (Shun & Blelloch, PPoPP'13) on top
//! of the simulated work-stealing runtime.
//!
//! The paper ports eight Ligra kernels to its runtime using loop-level
//! parallelism (`parallel_for`) and fine-grained synchronization
//! (compare-and-swap). This module provides the two Ligra primitives those
//! kernels need — `edge_map` and `vertex_map` over vertex subsets — in the
//! dense (flags-array) form the evaluation uses, plus Ligra's hybrid
//! sparse/dense traversal ([`edge_map_auto`]) that walks small frontiers'
//! member lists instead of scanning every vertex. Leaf tasks publish their
//! additions with a single AMO, so round loops can test frontier emptiness
//! with one load.

use std::sync::Arc;

use bigtiny_core::{parallel_for, TaskCx};
use bigtiny_engine::{AddrSpace, RacyTag, ShScalar, ShVec};

use crate::graph::SharedGraph;

/// A vertex subset: one word-sized flag per vertex plus a member count, and
/// an optional **sparse member list** filled by `edge_map` so that small
/// frontiers can be traversed without scanning every vertex (Ligra's
/// sparse/dense duality).
#[derive(Debug)]
pub struct VertexSubset {
    flags: ShVec<u64>,
    count: ShScalar<u64>,
    /// Sparse member list; `count` doubles as its fill cursor. Valid only
    /// when every insertion also appended here (the `edge_map` paths do).
    members: ShVec<u64>,
}

impl VertexSubset {
    /// An empty subset over `n` vertices.
    pub fn new(space: &mut AddrSpace, n: usize) -> Self {
        VertexSubset {
            flags: ShVec::new(space, n, 0),
            count: ShScalar::new(space, 0),
            members: ShVec::new(space, n, 0),
        }
    }

    /// Host-side insertion (setup: initial frontiers).
    pub fn host_insert(&self, v: usize) {
        if self.flags.host_read(v) == 0 {
            self.flags.host_write(v, 1);
            let c = self.count.host_read();
            self.members.host_write(c as usize, v as u64);
            self.count.host_write(c + 1);
        }
    }

    /// Simulated read of sparse member `i` (valid for `i < count`).
    pub fn member(&self, cx: &mut TaskCx<'_>, i: usize) -> usize {
        self.members.read(cx.port(), i) as usize
    }

    /// Host-side member count.
    pub fn host_count(&self) -> u64 {
        self.count.host_read()
    }

    /// Host-side membership list (for verification).
    pub fn host_members(&self) -> Vec<usize> {
        self.flags.snapshot().iter().enumerate().filter(|(_, f)| **f != 0).map(|(v, _)| v).collect()
    }

    /// Simulated membership test.
    pub fn contains(&self, cx: &mut TaskCx<'_>, v: usize) -> bool {
        self.flags.read(cx.port(), v) != 0
    }

    /// Membership test tolerating same-round insertions by other tasks (the
    /// dedup check inside `edge_map` races benignly with concurrent
    /// inserts).
    // Benign race (LigraDedupFlag): flags only go 0 -> 1 within a round; a
    // stale 0 at worst duplicates work that insert() makes idempotent.
    pub fn contains_racy(&self, cx: &mut TaskCx<'_>, v: usize) -> bool {
        self.flags.read_racy(cx.port(), v, RacyTag::LigraDedupFlag) != 0
    }

    /// Simulated insertion (benign write-write races allowed, as in Ligra).
    // Benign race (LigraDedupFlag): when several update calls succeed for
    // the same destination in one round (e.g. Radii's bit-mask OR), each
    // winner stores the same value 1; flags only go 0 -> 1 within a round.
    pub fn insert(&self, cx: &mut TaskCx<'_>, v: usize) {
        self.flags.write_racy(cx.port(), v, 1, RacyTag::LigraDedupFlag);
    }

    /// Simulated count read (one load; the count is reduced per leaf task
    /// during `edge_map`).
    pub fn count(&self, cx: &mut TaskCx<'_>) -> u64 {
        self.count.read(cx.port())
    }

    /// Clears the subset with a parallel loop (Ligra reuses dense arrays the
    /// same way) and zeroes the count.
    pub fn par_clear(self: &Arc<Self>, cx: &mut TaskCx<'_>, grain: usize) {
        let me = Arc::clone(self);
        let n = self.flags.len();
        parallel_for(cx, 0..n, grain.max(64), move |cx, r| {
            for v in r {
                if me.flags.read(cx.port(), v) != 0 {
                    me.flags.write(cx.port(), v, 0);
                }
            }
        });
        self.count.write(cx.port(), 0);
    }

    fn len(&self) -> usize {
        self.flags.len()
    }
}

/// Applies `update(cx, src, dst, edge_index)` over every edge leaving the
/// `frontier`; when it returns `true`, `dst` joins `next`. `cond(cx, dst)`
/// gates destinations before `update` (Ligra's `cond`). Each leaf task adds
/// its local count of newly-added vertices to `next`'s count with a single
/// AMO.
///
/// `grain` is the number of *edges* per leaf task — the paper's task-
/// granularity knob for the Ligra kernels. Like Ligra's edge-balanced
/// dense traversal, the vertex range is split by edge count, and the edge
/// lists of high-degree vertices are themselves split, so rMAT hubs do not
/// serialize the round.
pub fn edge_map<U, C>(
    cx: &mut TaskCx<'_>,
    graph: &SharedGraph,
    frontier: &Arc<VertexSubset>,
    next: &Arc<VertexSubset>,
    grain: usize,
    cond: C,
    update: U,
) where
    U: Fn(&mut TaskCx<'_>, usize, usize, usize) -> bool + Send + Sync + 'static,
    C: Fn(&mut TaskCx<'_>, usize) -> bool + Send + Sync + 'static,
{
    let ctx = Arc::new(EmCtx {
        g: Arc::clone(graph),
        frontier: Arc::clone(frontier),
        next: Arc::clone(next),
        cond,
        update,
        grain: grain.max(1),
        sparse_out: false,
    });
    em_split_vertices(cx, &ctx, 0, graph.num_vertices());
}

/// Ligra's hybrid traversal: like [`edge_map`], but the output subset's
/// sparse member list is maintained (exactly-once CAS insertion plus a
/// per-leaf batched append), and the *input* frontier is iterated sparsely
/// — walking only its member list — when it is small relative to the graph.
/// Small BFS-style frontiers then cost `O(|F| + deg(F))` instead of `O(n)`.
pub fn edge_map_auto<U, C>(
    cx: &mut TaskCx<'_>,
    graph: &SharedGraph,
    frontier: &Arc<VertexSubset>,
    next: &Arc<VertexSubset>,
    grain: usize,
    cond: C,
    update: U,
) where
    U: Fn(&mut TaskCx<'_>, usize, usize, usize) -> bool + Send + Sync + 'static,
    C: Fn(&mut TaskCx<'_>, usize) -> bool + Send + Sync + 'static,
{
    let ctx = Arc::new(EmCtx {
        g: Arc::clone(graph),
        frontier: Arc::clone(frontier),
        next: Arc::clone(next),
        cond,
        update,
        grain: grain.max(1),
        sparse_out: true,
    });
    let n = graph.num_vertices();
    let count = frontier.count(cx) as usize;
    // Ligra's density heuristic (a simplified |F| < n/20 test).
    if count > 0 && count <= n / 20 {
        em_split_members(cx, &ctx, 0, count);
    } else {
        em_split_vertices(cx, &ctx, 0, n);
    }
}

struct EmCtx<U, C> {
    g: SharedGraph,
    frontier: Arc<VertexSubset>,
    next: Arc<VertexSubset>,
    cond: C,
    update: U,
    grain: usize,
    /// Maintain `next`'s sparse member list (exactly-once CAS insertion).
    sparse_out: bool,
}

impl<U, C> EmCtx<U, C>
where
    U: Fn(&mut TaskCx<'_>, usize, usize, usize) -> bool + Send + Sync + 'static,
    C: Fn(&mut TaskCx<'_>, usize) -> bool + Send + Sync + 'static,
{
    /// Processes edge slots `e0..e1` of frontier vertex `src`, recording
    /// vertices this task added into `batch` (sparse output) or counting
    /// them (dense output).
    fn process_edges(
        &self,
        cx: &mut TaskCx<'_>,
        src: usize,
        e0: usize,
        e1: usize,
        batch: &mut LeafBatch,
    ) {
        for i in e0..e1 {
            let dst = self.g.edge(cx, i);
            cx.port().advance(3); // loop + branch overhead
            if (self.cond)(cx, dst) && (self.update)(cx, src, dst, i) {
                if self.sparse_out {
                    // Exactly-once membership via CAS on the flag.
                    if self.next.flags.cas(cx.port(), dst, 0, 1) {
                        batch.new_members.push(dst as u64);
                    }
                } else {
                    if !self.next.contains_racy(cx, dst) {
                        self.next.insert(cx, dst);
                    }
                    batch.added += 1;
                }
            }
        }
    }

    /// Publishes a leaf task's additions: one AMO reserves member-list
    /// space (and bumps the count), then the members are scattered.
    fn flush_batch(&self, cx: &mut TaskCx<'_>, batch: LeafBatch) {
        if self.sparse_out {
            if batch.new_members.is_empty() {
                return;
            }
            let k = batch.new_members.len() as u64;
            let base = self.next.count.amo(cx.port(), |c| {
                let b = *c;
                *c += k;
                b
            }) as usize;
            for (j, v) in batch.new_members.into_iter().enumerate() {
                self.next.members.write(cx.port(), base + j, v);
            }
        } else if batch.added > 0 {
            self.next.count.amo(cx.port(), |c| *c += batch.added);
        }
    }
}

/// Per-leaf-task accumulation before the single published AMO.
#[derive(Default)]
struct LeafBatch {
    added: u64,
    new_members: Vec<u64>,
}

/// Splits the vertex range `lo..hi` by total edge count.
fn em_split_vertices<U, C>(cx: &mut TaskCx<'_>, ctx: &Arc<EmCtx<U, C>>, lo: usize, hi: usize)
where
    U: Fn(&mut TaskCx<'_>, usize, usize, usize) -> bool + Send + Sync + 'static,
    C: Fn(&mut TaskCx<'_>, usize) -> bool + Send + Sync + 'static,
{
    if lo >= hi {
        return;
    }
    let e_lo = ctx.g.offset(cx, lo);
    let e_hi = ctx.g.offset(cx, hi);
    if hi - lo == 1 {
        // Single vertex: parallelize within a heavy edge list.
        let v = lo;
        if !ctx.frontier.contains(cx, v) {
            return;
        }
        if e_hi - e_lo > 2 * ctx.grain {
            em_split_edges(cx, ctx, v, e_lo, e_hi);
        } else {
            let mut batch = LeafBatch::default();
            ctx.process_edges(cx, v, e_lo, e_hi, &mut batch);
            ctx.flush_batch(cx, batch);
        }
        return;
    }
    if e_hi - e_lo <= ctx.grain {
        // Leaf: scan the vertex range.
        let mut batch = LeafBatch::default();
        for v in lo..hi {
            if !ctx.frontier.contains(cx, v) {
                continue;
            }
            let a = ctx.g.offset(cx, v);
            let b = ctx.g.offset(cx, v + 1);
            ctx.process_edges(cx, v, a, b, &mut batch);
        }
        ctx.flush_batch(cx, batch);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let (c1, c2) = (Arc::clone(ctx), Arc::clone(ctx));
    cx.set_pending(2);
    cx.spawn(move |cx| em_split_vertices(cx, &c1, lo, mid));
    cx.spawn(move |cx| em_split_vertices(cx, &c2, mid, hi));
    cx.wait();
}

/// Splits the edge range of one high-degree frontier vertex.
fn em_split_edges<U, C>(cx: &mut TaskCx<'_>, ctx: &Arc<EmCtx<U, C>>, v: usize, e0: usize, e1: usize)
where
    U: Fn(&mut TaskCx<'_>, usize, usize, usize) -> bool + Send + Sync + 'static,
    C: Fn(&mut TaskCx<'_>, usize) -> bool + Send + Sync + 'static,
{
    if e1 - e0 <= ctx.grain {
        let mut batch = LeafBatch::default();
        ctx.process_edges(cx, v, e0, e1, &mut batch);
        ctx.flush_batch(cx, batch);
        return;
    }
    let mid = e0 + (e1 - e0) / 2;
    let (c1, c2) = (Arc::clone(ctx), Arc::clone(ctx));
    cx.set_pending(2);
    cx.spawn(move |cx| em_split_edges(cx, &c1, v, e0, mid));
    cx.spawn(move |cx| em_split_edges(cx, &c2, v, mid, e1));
    cx.wait();
}

/// Sparse traversal: splits the frontier's member-list index range
/// `lo..hi`, processing each member's full edge list at the leaves (heavy
/// members split their own edge range).
fn em_split_members<U, C>(cx: &mut TaskCx<'_>, ctx: &Arc<EmCtx<U, C>>, lo: usize, hi: usize)
where
    U: Fn(&mut TaskCx<'_>, usize, usize, usize) -> bool + Send + Sync + 'static,
    C: Fn(&mut TaskCx<'_>, usize) -> bool + Send + Sync + 'static,
{
    if lo >= hi {
        return;
    }
    // Budget roughly `grain` edges per leaf assuming average degrees; a
    // heavy member still splits its own edge range below.
    let members_per_leaf = (ctx.grain / 8).max(1);
    if hi - lo <= members_per_leaf {
        let mut batch = LeafBatch::default();
        for i in lo..hi {
            let v = ctx.frontier.member(cx, i);
            let a = ctx.g.offset(cx, v);
            let b = ctx.g.offset(cx, v + 1);
            if b - a > 2 * ctx.grain {
                ctx.flush_batch(cx, std::mem::take(&mut batch));
                em_split_edges(cx, ctx, v, a, b);
            } else {
                ctx.process_edges(cx, v, a, b, &mut batch);
            }
        }
        ctx.flush_batch(cx, batch);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let (c1, c2) = (Arc::clone(ctx), Arc::clone(ctx));
    cx.set_pending(2);
    cx.spawn(move |cx| em_split_members(cx, &c1, lo, mid));
    cx.spawn(move |cx| em_split_members(cx, &c2, mid, hi));
    cx.wait();
}

/// Applies `f` to every member of `subset` in parallel.
pub fn vertex_map<F>(cx: &mut TaskCx<'_>, subset: &Arc<VertexSubset>, grain: usize, f: F)
where
    F: Fn(&mut TaskCx<'_>, usize) + Send + Sync + 'static,
{
    let s = Arc::clone(subset);
    parallel_for(cx, 0..subset.len(), grain, move |cx, r| {
        for v in r {
            if s.contains(cx, v) {
                f(cx, v);
            }
        }
    });
}

/// Applies `f` to every vertex, splitting the range by *degree* so that
/// kernels whose per-vertex work scales with degree (BC's backward sweep,
/// MIS's neighbour scans) are not serialized by rMAT hubs. `grain` is in
/// edge slots.
pub fn for_each_vertex_by_degree<F>(cx: &mut TaskCx<'_>, graph: &SharedGraph, grain: usize, f: F)
where
    F: Fn(&mut TaskCx<'_>, usize) + Send + Sync + 'static,
{
    let f = Arc::new(f);
    deg_split(cx, graph, &f, 0, graph.num_vertices(), grain.max(1));
}

fn deg_split<F>(
    cx: &mut TaskCx<'_>,
    g: &SharedGraph,
    f: &Arc<F>,
    lo: usize,
    hi: usize,
    grain: usize,
) where
    F: Fn(&mut TaskCx<'_>, usize) + Send + Sync + 'static,
{
    if lo >= hi {
        return;
    }
    let e_lo = g.offset(cx, lo);
    let e_hi = g.offset(cx, hi);
    if hi - lo == 1 || e_hi - e_lo <= grain {
        for v in lo..hi {
            f(cx, v);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let (g1, f1) = (Arc::clone(g), Arc::clone(f));
    let (g2, f2) = (Arc::clone(g), Arc::clone(f));
    cx.set_pending(2);
    cx.spawn(move |cx| deg_split(cx, &g1, &f1, lo, mid, grain));
    cx.spawn(move |cx| deg_split(cx, &g2, &f2, mid, hi, grain));
    cx.wait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::{Protocol, SystemConfig};
    use bigtiny_mesh::{MeshConfig, Topology};

    fn sys() -> SystemConfig {
        SystemConfig::big_tiny(
            "t8",
            MeshConfig::with_topology(Topology::new(3, 3)),
            1,
            7,
            Protocol::GpuWb,
        )
    }

    /// One dense edge_map round from a singleton frontier = neighbourhood.
    #[test]
    fn edge_map_expands_one_hop() {
        let s = sys();
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut space = AddrSpace::new();
        let g = Arc::new(Graph::from_edge_list(&mut space, 6, &[(0, 1), (0, 2), (2, 3), (4, 5)]));
        let frontier = Arc::new(VertexSubset::new(&mut space, 6));
        let next = Arc::new(VertexSubset::new(&mut space, 6));
        frontier.host_insert(0);
        let (g2, f2, n2) = (Arc::clone(&g), Arc::clone(&frontier), Arc::clone(&next));
        let run = run_task_parallel(&s, &cfg, &mut space, move |cx| {
            edge_map(cx, &g2, &f2, &n2, 2, |_, _| true, |_, _, _, _| true);
        });
        assert_eq!(next.host_members(), vec![1, 2]);
        assert_eq!(next.host_count(), 2);
        assert_eq!(run.report.stale_reads, 0);
    }

    /// cond gates destinations; duplicate additions counted once in flags
    /// but may count multiply in `count` only when update returns true for
    /// multiple incoming edges and the app allows it (here cond dedups).
    #[test]
    fn edge_map_cond_filters() {
        let s = sys();
        let cfg = RuntimeConfig::new(RuntimeKind::Hcc);
        let mut space = AddrSpace::new();
        // Triangle 0-1-2 plus pendant 3.
        let g = Arc::new(Graph::from_edge_list(&mut space, 4, &[(0, 1), (1, 2), (0, 2), (2, 3)]));
        let frontier = Arc::new(VertexSubset::new(&mut space, 4));
        let next = Arc::new(VertexSubset::new(&mut space, 4));
        frontier.host_insert(0);
        frontier.host_insert(1);
        let visited = Arc::new(ShVec::new(&mut space, 4, 0u64));
        visited.host_write(0, 1);
        visited.host_write(1, 1);
        let (g2, f2, n2, v2) =
            (Arc::clone(&g), Arc::clone(&frontier), Arc::clone(&next), Arc::clone(&visited));
        run_task_parallel(&s, &cfg, &mut space, move |cx| {
            let vc = Arc::clone(&v2);
            let vu = Arc::clone(&v2);
            edge_map(
                cx,
                &g2,
                &f2,
                &n2,
                1,
                move |cx, d| vc.read(cx.port(), d) == 0,
                move |cx, _s, d, _| vu.cas(cx.port(), d, 0, 1),
            );
        });
        assert_eq!(next.host_members(), vec![2], "only unvisited vertex 2 joins");
        assert_eq!(next.host_count(), 1, "CAS ensures a single add");
    }

    #[test]
    fn vertex_map_touches_members_only() {
        let s = sys();
        let cfg = RuntimeConfig::new(RuntimeKind::Baseline);
        let s = SystemConfig {
            cores: s
                .cores
                .iter()
                .map(|c| {
                    let mut c = *c;
                    c.mem.protocol = Protocol::Mesi;
                    c
                })
                .collect(),
            ..s
        };
        let mut space = AddrSpace::new();
        let subset = Arc::new(VertexSubset::new(&mut space, 10));
        for v in [1, 3, 5] {
            subset.host_insert(v);
        }
        let touched = Arc::new(ShVec::new(&mut space, 10, 0u64));
        let (s2, t2) = (Arc::clone(&subset), Arc::clone(&touched));
        run_task_parallel(&s, &cfg, &mut space, move |cx| {
            let t = Arc::clone(&t2);
            vertex_map(cx, &s2, 2, move |cx, v| t.write(cx.port(), v, 1));
        });
        let snap = touched.snapshot();
        for (v, val) in snap.iter().enumerate() {
            assert_eq!(*val == 1, [1, 3, 5].contains(&v), "vertex {v}");
        }
    }

    /// edge_map_auto: sparse-output member lists match the flag sets, and a
    /// multi-round BFS through the auto path computes correct reachability.
    #[test]
    fn edge_map_auto_sparse_bfs_matches_dense() {
        let s = sys();
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut space = AddrSpace::new();
        let g = Arc::new(Graph::rmat(&mut space, 128, 4, 0x5a5));
        let n = g.num_vertices();
        let src = g.first_nonisolated();
        let visited = Arc::new(ShVec::new(&mut space, n, 0u64));
        visited.host_write(src, 1);
        let cur = Arc::new(VertexSubset::new(&mut space, n));
        let nxt = Arc::new(VertexSubset::new(&mut space, n));
        cur.host_insert(src);
        let (g2, v2, c2, x2) =
            (Arc::clone(&g), Arc::clone(&visited), Arc::clone(&cur), Arc::clone(&nxt));
        let run = run_task_parallel(&s, &cfg, &mut space, move |cx| {
            let mut cur = c2;
            let mut nxt = x2;
            loop {
                let (vc, vu) = (Arc::clone(&v2), Arc::clone(&v2));
                edge_map_auto(
                    cx,
                    &g2,
                    &cur,
                    &nxt,
                    16,
                    // Benign race (LigraCondProbe): a stale `visited` flag
                    // only lets the CAS below decide the winner.
                    move |cx, d| vc.read_racy(cx.port(), d, RacyTag::LigraCondProbe) == 0,
                    move |cx, _s, d, _| vu.cas(cx.port(), d, 0, 1),
                );
                if nxt.count(cx) == 0 {
                    break;
                }
                // Sparse output invariant: the member list names exactly the
                // flagged vertices.
                let mut listed: Vec<usize> = (0..nxt.host_count() as usize)
                    .map(|i| nxt.members.host_read(i) as usize)
                    .collect();
                listed.sort_unstable();
                assert_eq!(listed, nxt.host_members(), "member list = flag set");
                std::mem::swap(&mut cur, &mut nxt);
                nxt.par_clear(cx, 64);
            }
        });
        // Reachability equals serial BFS.
        let adj = g.host_adjacency();
        let mut want = vec![0u64; n];
        let mut q = std::collections::VecDeque::from([src]);
        want[src] = 1;
        while let Some(v) = q.pop_front() {
            for &u in &adj[v] {
                if want[u] == 0 {
                    want[u] = 1;
                    q.push_back(u);
                }
            }
        }
        assert_eq!(visited.snapshot(), want);
        assert_eq!(run.report.stale_reads, 0);
    }

    /// For a tiny frontier on a large graph, the auto (sparse) path does far
    /// less work than the dense scan.
    #[test]
    fn sparse_iteration_is_cheaper_for_small_frontiers() {
        let run_once = |auto: bool| -> u64 {
            let s = sys();
            let cfg = RuntimeConfig::new(RuntimeKind::Hcc);
            let mut space = AddrSpace::new();
            let g = Arc::new(Graph::rmat(&mut space, 512, 4, 0x11));
            let n = g.num_vertices();
            let frontier = Arc::new(VertexSubset::new(&mut space, n));
            let next = Arc::new(VertexSubset::new(&mut space, n));
            frontier.host_insert(g.first_nonisolated());
            let (g2, f2, n2) = (Arc::clone(&g), Arc::clone(&frontier), Arc::clone(&next));
            let run = run_task_parallel(&s, &cfg, &mut space, move |cx| {
                if auto {
                    edge_map_auto(cx, &g2, &f2, &n2, 16, |_, _| true, |_, _, _, _| true);
                } else {
                    edge_map(cx, &g2, &f2, &n2, 16, |_, _| true, |_, _, _, _| true);
                }
            });
            run.report.total_instructions()
        };
        let dense = run_once(false);
        let sparse = run_once(true);
        assert!(sparse * 3 < dense, "sparse {sparse} insts should be well under dense {dense}");
    }

    #[test]
    fn par_clear_empties_subset() {
        let s = sys();
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut space = AddrSpace::new();
        let subset = Arc::new(VertexSubset::new(&mut space, 100));
        for v in 0..50 {
            subset.host_insert(v);
        }
        let s2 = Arc::clone(&subset);
        run_task_parallel(&s, &cfg, &mut space, move |cx| {
            s2.par_clear(cx, 16);
        });
        assert_eq!(subset.host_count(), 0);
        assert!(subset.host_members().is_empty());
    }
}
