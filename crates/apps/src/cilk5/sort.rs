//! `cilk5-cs`: parallel mergesort (the paper's `cilksort` port), with
//! recursive spawn-and-sync splitting and a divide-and-conquer parallel
//! merge.

use std::sync::Arc;

use bigtiny_core::{parallel_invoke, TaskCx};
use bigtiny_engine::{AddrSpace, ShVec, XorShift64};

use crate::registry::{fingerprint_words, AppSize, Prepared};

/// Instantiates `cilk5-cs`: sort `n` random 64-bit keys.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let n = match size {
        AppSize::Test => 256,
        AppSize::Eval => 32768,
        AppSize::Large => 65536,
    };
    let grain = if grain == 0 { 128 } else { grain };

    let mut rng = XorShift64::new(0xc5_c5);
    let input: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 16).collect();
    let mut expected = input.clone();
    expected.sort_unstable();

    let a = Arc::new(ShVec::from_vec(space, input));
    let b = Arc::new(ShVec::new(space, n, 0u64));

    let a2 = Arc::clone(&a);
    let a3 = Arc::clone(&a);
    let root: crate::RootFn = Box::new(move |cx| {
        msort(cx, &a2, &b, 0, n, false, grain);
    });
    let verify = Box::new(move || {
        let got = a.snapshot();
        if got == expected {
            Ok(())
        } else {
            Err("cilk5-cs: output not sorted or keys lost".to_owned())
        }
    });
    Prepared { root, verify, fingerprint: Some(Box::new(move || fingerprint_words(a3.snapshot()))) }
}

/// Sorts `a[0..n]` in place with the parallel mergesort (library entry
/// point used by tests and examples; `b` is scratch of the same length).
pub fn sort_in_place(cx: &mut TaskCx<'_>, a: &Arc<ShVec<u64>>, b: &Arc<ShVec<u64>>, n: usize) {
    msort(cx, a, b, 0, n, false, 16);
}

/// Sorts the contents of `a[lo..hi]`; the sorted run ends up in
/// `(if to_b { b } else { a })[lo..hi]`.
fn msort(
    cx: &mut TaskCx<'_>,
    a: &Arc<ShVec<u64>>,
    b: &Arc<ShVec<u64>>,
    lo: usize,
    hi: usize,
    to_b: bool,
    grain: usize,
) {
    let len = hi - lo;
    if len <= grain.max(4) {
        serial_sort_leaf(cx, a, b, lo, hi, to_b);
        return;
    }
    let mid = lo + len / 2;
    // Children sort into the opposite array; the merge brings the halves
    // into the requested destination.
    let (al, bl) = (Arc::clone(a), Arc::clone(b));
    let (ar, br) = (Arc::clone(a), Arc::clone(b));
    let child_to_b = !to_b;
    parallel_invoke(
        cx,
        move |cx| msort(cx, &al, &bl, lo, mid, child_to_b, grain),
        move |cx| msort(cx, &ar, &br, mid, hi, child_to_b, grain),
    );
    let (src, dst) = if child_to_b { (b, a) } else { (a, b) };
    pmerge(cx, src, dst, (lo, mid), (mid, hi), lo, grain);
    debug_assert_eq!(to_b, std::ptr::eq(Arc::as_ptr(dst), Arc::as_ptr(b)));
}

fn serial_sort_leaf(
    cx: &mut TaskCx<'_>,
    a: &Arc<ShVec<u64>>,
    b: &Arc<ShVec<u64>>,
    lo: usize,
    hi: usize,
    to_b: bool,
) {
    let len = hi - lo;
    let mut local: Vec<u64> = (lo..hi).map(|i| a.read(cx.port(), i)).collect();
    local.sort_unstable();
    // Comparison/exchange work of an O(n log n) leaf sort.
    let logn = usize::BITS - len.leading_zeros();
    cx.port().advance(4 * (len as u64) * logn as u64);
    let dst = if to_b { b } else { a };
    for (k, v) in local.into_iter().enumerate() {
        dst.write(cx.port(), lo + k, v);
    }
}

/// Divide-and-conquer merge of `src[r1]` and `src[r2]` into `dst[d..]`.
fn pmerge(
    cx: &mut TaskCx<'_>,
    src: &Arc<ShVec<u64>>,
    dst: &Arc<ShVec<u64>>,
    r1: (usize, usize),
    r2: (usize, usize),
    d: usize,
    grain: usize,
) {
    let (l1, h1) = r1;
    let (l2, h2) = r2;
    let total = (h1 - l1) + (h2 - l2);
    if total <= grain.max(8) {
        serial_merge(cx, src, dst, r1, r2, d);
        return;
    }
    // Split the larger run at its midpoint and binary-search the other.
    let ((l1, h1), (l2, h2)) =
        if h1 - l1 >= h2 - l2 { ((l1, h1), (l2, h2)) } else { ((l2, h2), (l1, h1)) };
    let m1 = (l1 + h1) / 2;
    let pivot = src.read(cx.port(), m1);
    let m2 = lower_bound(cx, src, l2, h2, pivot);
    let d2 = d + (m1 - l1) + (m2 - l2);

    let (sl, dl) = (Arc::clone(src), Arc::clone(dst));
    let (sr, dr) = (Arc::clone(src), Arc::clone(dst));
    cx.set_pending(2);
    cx.spawn(move |cx| pmerge(cx, &sl, &dl, (l1, m1), (l2, m2), d, grain));
    cx.spawn(move |cx| pmerge(cx, &sr, &dr, (m1, h1), (m2, h2), d2, grain));
    cx.wait();
}

fn serial_merge(
    cx: &mut TaskCx<'_>,
    src: &Arc<ShVec<u64>>,
    dst: &Arc<ShVec<u64>>,
    (mut i, h1): (usize, usize),
    (mut j, h2): (usize, usize),
    mut d: usize,
) {
    while i < h1 && j < h2 {
        let x = src.read(cx.port(), i);
        let y = src.read(cx.port(), j);
        cx.port().advance(3);
        if x <= y {
            dst.write(cx.port(), d, x);
            i += 1;
        } else {
            dst.write(cx.port(), d, y);
            j += 1;
        }
        d += 1;
    }
    while i < h1 {
        let x = src.read(cx.port(), i);
        dst.write(cx.port(), d, x);
        i += 1;
        d += 1;
    }
    while j < h2 {
        let y = src.read(cx.port(), j);
        dst.write(cx.port(), d, y);
        j += 1;
        d += 1;
    }
}

fn lower_bound(
    cx: &mut TaskCx<'_>,
    src: &Arc<ShVec<u64>>,
    mut lo: usize,
    mut hi: usize,
    key: u64,
) -> usize {
    while lo < hi {
        let mid = (lo + hi) / 2;
        let v = src.read(cx.port(), mid);
        cx.port().advance(3);
        if v < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn sorts_on_every_runtime_kind() {
        for (kind, proto) in [
            (RuntimeKind::Baseline, Protocol::Mesi),
            (RuntimeKind::Hcc, Protocol::GpuWb),
            (RuntimeKind::Dts, Protocol::DeNovo),
        ] {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 16);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
            assert!(run.stats.tasks_executed > 8, "{kind:?} split into tasks");
        }
    }

    #[test]
    fn granularity_changes_task_count_not_result() {
        let s = sys(Protocol::GpuWb);
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut tasks = Vec::new();
        for grain in [16, 128] {
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, grain);
            let run = run_task_parallel(&s, &cfg, &mut space, prepared.root);
            (prepared.verify)().expect("sorted");
            tasks.push(run.stats.tasks_executed);
        }
        assert!(tasks[0] > tasks[1], "finer grain, more tasks: {tasks:?}");
    }
}
