//! Shared helpers for the dense-matrix Cilk-5 kernels: a simulated
//! row-major matrix view and the recursive blocked multiply-accumulate used
//! by both `cilk5-mm` and `cilk5-lu`'s Schur-complement update.

use std::sync::Arc;

use bigtiny_core::TaskCx;
use bigtiny_engine::{AddrSpace, ShVec, XorShift64};

/// A square row-major `f64` matrix in simulated memory.
#[derive(Debug)]
pub struct Matrix {
    data: ShVec<f64>,
    n: usize,
}

impl Matrix {
    /// Allocates an `n`×`n` zero matrix.
    pub fn zero(space: &mut AddrSpace, n: usize) -> Self {
        Matrix { data: ShVec::new(space, n * n, 0.0), n }
    }

    /// Allocates an `n`×`n` matrix with deterministic entries in `[-1, 1]`,
    /// plus `diag_boost` added on the diagonal (diagonal dominance keeps
    /// pivot-free LU stable).
    pub fn random(space: &mut AddrSpace, n: usize, seed: u64, diag_boost: f64) -> Self {
        let mut rng = XorShift64::new(seed);
        let mut v = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                let x = rng.next_f64() * 2.0 - 1.0;
                v.push(if r == c { x + diag_boost } else { x });
            }
        }
        Matrix { data: ShVec::from_vec(space, v), n }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Simulated element load.
    pub fn get(&self, cx: &mut TaskCx<'_>, r: usize, c: usize) -> f64 {
        self.data.read(cx.port(), r * self.n + c)
    }

    /// Simulated element store.
    pub fn set(&self, cx: &mut TaskCx<'_>, r: usize, c: usize, v: f64) {
        self.data.write(cx.port(), r * self.n + c, v)
    }

    /// Host-side snapshot as rows.
    pub fn snapshot(&self) -> Vec<Vec<f64>> {
        let flat = self.data.snapshot();
        (0..self.n).map(|r| flat[r * self.n..(r + 1) * self.n].to_vec()).collect()
    }

    /// Host-side write (setup).
    pub fn host_set(&self, r: usize, c: usize, v: f64) {
        self.data.host_write(r * self.n + c, v)
    }
}

/// Recursive blocked `C[rc] += sign * A[ra] * B[rb]` over `s`×`s`
/// submatrices, splitting into quadrants with two parallel rounds of four
/// products (the Cilk-5 `matmul` structure). `(ra, ca)` etc. are the
/// top-left corners of the operand submatrices.
#[allow(clippy::too_many_arguments)]
pub fn matmul_acc(
    cx: &mut TaskCx<'_>,
    a: &Arc<Matrix>,
    b: &Arc<Matrix>,
    c: &Arc<Matrix>,
    (ra, ca): (usize, usize),
    (rb, cb): (usize, usize),
    (rc, cc): (usize, usize),
    s: usize,
    block: usize,
    sign: f64,
) {
    if s <= block {
        serial_matmul_acc(cx, a, b, c, (ra, ca), (rb, cb), (rc, cc), s, sign);
        return;
    }
    let h = s / 2;
    // Round 1: Cij += Ai0 * B0j for the four quadrants, in parallel.
    for k in [0, 1] {
        cx.set_pending(4);
        for (qi, qj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let (a2, b2, c2) = (Arc::clone(a), Arc::clone(b), Arc::clone(c));
            let corners =
                ((ra + qi * h, ca + k * h), (rb + k * h, cb + qj * h), (rc + qi * h, cc + qj * h));
            cx.spawn(move |cx| {
                matmul_acc(cx, &a2, &b2, &c2, corners.0, corners.1, corners.2, h, block, sign);
            });
        }
        // The k=1 products read the same C quadrants: barrier between rounds.
        cx.wait();
    }
}

#[allow(clippy::too_many_arguments)]
fn serial_matmul_acc(
    cx: &mut TaskCx<'_>,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
    (ra, ca): (usize, usize),
    (rb, cb): (usize, usize),
    (rc, cc): (usize, usize),
    s: usize,
    sign: f64,
) {
    for i in 0..s {
        for j in 0..s {
            let mut acc = c.get(cx, rc + i, cc + j);
            for k in 0..s {
                let x = a.get(cx, ra + i, ca + k);
                let y = b.get(cx, rb + k, cb + j);
                acc += sign * x * y;
                cx.port().advance(2); // fma + loop
            }
            c.set(cx, rc + i, cc + j, acc);
        }
    }
}

/// Host-side reference multiply: `A * B`.
pub fn host_matmul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut c = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            for j in 0..n {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

/// Maximum absolute elementwise difference.
pub fn max_abs_diff(x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
    x.iter()
        .zip(y)
        .flat_map(|(rx, ry)| rx.iter().zip(ry).map(|(a, b)| (a - b).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn blocked_matmul_matches_host_reference() {
        let s = sys(Protocol::GpuWb);
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut space = AddrSpace::new();
        let n = 16;
        let a = Arc::new(Matrix::random(&mut space, n, 1, 0.0));
        let b = Arc::new(Matrix::random(&mut space, n, 2, 0.0));
        let c = Arc::new(Matrix::zero(&mut space, n));
        let (a2, b2, c2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&c));
        let run = run_task_parallel(&s, &cfg, &mut space, move |cx| {
            matmul_acc(cx, &a2, &b2, &c2, (0, 0), (0, 0), (0, 0), n, 4, 1.0);
        });
        let want = host_matmul(&a.snapshot(), &b.snapshot());
        assert!(max_abs_diff(&c.snapshot(), &want) < 1e-9);
        assert_eq!(run.report.stale_reads, 0);
    }

    #[test]
    fn negative_sign_subtracts() {
        let s = sys(Protocol::DeNovo);
        let cfg = RuntimeConfig::new(RuntimeKind::Hcc);
        let mut space = AddrSpace::new();
        let n = 8;
        let a = Arc::new(Matrix::random(&mut space, n, 3, 0.0));
        let b = Arc::new(Matrix::random(&mut space, n, 4, 0.0));
        let c = Arc::new(Matrix::random(&mut space, n, 5, 0.0));
        let before = c.snapshot();
        let (a2, b2, c2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&c));
        run_task_parallel(&s, &cfg, &mut space, move |cx| {
            matmul_acc(cx, &a2, &b2, &c2, (0, 0), (0, 0), (0, 0), n, 4, -1.0);
        });
        let prod = host_matmul(&a.snapshot(), &b.snapshot());
        let want: Vec<Vec<f64>> = before
            .iter()
            .zip(&prod)
            .map(|(r0, rp)| r0.iter().zip(rp).map(|(x, p)| x - p).collect())
            .collect();
        assert!(max_abs_diff(&c.snapshot(), &want) < 1e-9);
    }
}
