//! `cilk5-lu`: recursive blocked LU decomposition without pivoting (the
//! input is made diagonally dominant, as in the Cilk-5 benchmark).
//!
//! The classic Cilk recursion: factor A00; solve the L and U panels in
//! parallel; update the Schur complement A11 -= A10*A01 with the blocked
//! parallel multiply; recurse on A11.

use std::sync::Arc;

use bigtiny_core::{parallel_invoke, TaskCx};
use bigtiny_engine::AddrSpace;

use crate::cilk5::dense::{host_matmul, matmul_acc, max_abs_diff, Matrix};
use crate::registry::{AppSize, Prepared};

/// Instantiates `cilk5-lu`: factor an `n`×`n` diagonally dominant matrix.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let n = match size {
        AppSize::Test => 16,
        AppSize::Eval => 96,
        AppSize::Large => 160,
    };
    let block = if grain == 0 { 8 } else { grain.next_power_of_two().min(n) };

    let m = Arc::new(Matrix::random(space, n, 0x1_u64, n as f64));
    let original = m.snapshot();

    let m2 = Arc::clone(&m);
    let root: crate::RootFn = Box::new(move |cx| {
        lu(cx, &m2, 0, n, block);
    });
    let verify = Box::new(move || {
        let f = m.snapshot();
        // Rebuild L (unit lower) and U from the packed factorization.
        let mut l = vec![vec![0.0; n]; n];
        let mut u = vec![vec![0.0; n]; n];
        for r in 0..n {
            l[r][r] = 1.0;
            for c in 0..n {
                if c < r {
                    l[r][c] = f[r][c];
                } else {
                    u[r][c] = f[r][c];
                }
            }
        }
        let lu = host_matmul(&l, &u);
        let err = max_abs_diff(&lu, &original);
        let scale = n as f64;
        if err < 1e-8 * scale {
            Ok(())
        } else {
            Err(format!("cilk5-lu: |LU - A| = {err}"))
        }
    });
    Prepared { root, verify, fingerprint: None }
}

/// In-place LU of the `s`×`s` submatrix whose top-left corner is `(o, o)`.
fn lu(cx: &mut TaskCx<'_>, m: &Arc<Matrix>, o: usize, s: usize, block: usize) {
    if s <= block {
        serial_lu(cx, m, o, s);
        return;
    }
    let h = s / 2;
    lu(cx, m, o, h, block);
    // Panel solves are independent of each other.
    let (ml, mu) = (Arc::clone(m), Arc::clone(m));
    parallel_invoke(
        cx,
        move |cx| lower_solve(cx, &ml, (o, o), (o, o + h), h, block),
        move |cx| upper_solve(cx, &mu, (o, o), (o + h, o), h, block),
    );
    // Schur complement: A11 -= A10 * A01.
    matmul_acc(cx, m, m, m, (o + h, o), (o, o + h), (o + h, o + h), h, block, -1.0);
    lu(cx, m, o + h, h, block);
}

fn serial_lu(cx: &mut TaskCx<'_>, m: &Matrix, o: usize, s: usize) {
    for k in 0..s {
        let pivot = m.get(cx, o + k, o + k);
        for i in k + 1..s {
            let lik = m.get(cx, o + i, o + k) / pivot;
            cx.port().advance(8); // divide
            m.set(cx, o + i, o + k, lik);
            for j in k + 1..s {
                let akj = m.get(cx, o + k, o + j);
                let aij = m.get(cx, o + i, o + j);
                cx.port().advance(2);
                m.set(cx, o + i, o + j, aij - lik * akj);
            }
        }
    }
}

/// Solves `L * X = B` in place (B becomes X), where `L` is the unit-lower
/// part of the `s`×`s` submatrix at `l0` and `B` is at `b0`.
fn lower_solve(
    cx: &mut TaskCx<'_>,
    m: &Arc<Matrix>,
    l0: (usize, usize),
    b0: (usize, usize),
    s: usize,
    block: usize,
) {
    if s <= block {
        serial_lower_solve(cx, m, l0, b0, s);
        return;
    }
    let h = s / 2;
    // The two column halves of B are independent.
    let (m1, m2) = (Arc::clone(m), Arc::clone(m));
    let run_half = move |cx: &mut TaskCx<'_>, m: &Arc<Matrix>, bc: usize| {
        // B = [B0; B1] (rows): L00 X0 = B0; B1 -= L10 X0; L11 X1 = B1.
        lower_solve(cx, m, l0, (b0.0, bc), h, block);
        matmul_acc(cx, m, m, m, (l0.0 + h, l0.1), (b0.0, bc), (b0.0 + h, bc), h, block, -1.0);
        lower_solve(cx, m, (l0.0 + h, l0.1 + h), (b0.0 + h, bc), h, block);
    };
    let bc1 = b0.1 + h;
    parallel_invoke(
        cx,
        move |cx| run_half(cx, &m1, b0.1),
        move |cx| {
            // Same recursion on the right column half.
            lower_solve(cx, &m2, l0, (b0.0, bc1), h, block);
            matmul_acc(
                cx,
                &m2,
                &m2,
                &m2,
                (l0.0 + h, l0.1),
                (b0.0, bc1),
                (b0.0 + h, bc1),
                h,
                block,
                -1.0,
            );
            lower_solve(cx, &m2, (l0.0 + h, l0.1 + h), (b0.0 + h, bc1), h, block);
        },
    );
}

fn serial_lower_solve(
    cx: &mut TaskCx<'_>,
    m: &Matrix,
    l0: (usize, usize),
    b0: (usize, usize),
    s: usize,
) {
    for j in 0..s {
        for i in 0..s {
            let mut acc = m.get(cx, b0.0 + i, b0.1 + j);
            for k in 0..i {
                let lik = m.get(cx, l0.0 + i, l0.1 + k);
                let xkj = m.get(cx, b0.0 + k, b0.1 + j);
                acc -= lik * xkj;
                cx.port().advance(2);
            }
            m.set(cx, b0.0 + i, b0.1 + j, acc);
        }
    }
}

/// Solves `X * U = B` in place, where `U` is the upper part of the `s`×`s`
/// submatrix at `u0` and `B` is at `b0`.
fn upper_solve(
    cx: &mut TaskCx<'_>,
    m: &Arc<Matrix>,
    u0: (usize, usize),
    b0: (usize, usize),
    s: usize,
    block: usize,
) {
    if s <= block {
        serial_upper_solve(cx, m, u0, b0, s);
        return;
    }
    let h = s / 2;
    // The two row halves of B are independent.
    let (m1, m2) = (Arc::clone(m), Arc::clone(m));
    let br1 = b0.0 + h;
    parallel_invoke(
        cx,
        move |cx| {
            // B = [B0 B1] (cols): X0 U00 = B0; B1 -= X0 U01; X1 U11 = B1.
            upper_solve(cx, &m1, u0, b0, h, block);
            matmul_acc(cx, &m1, &m1, &m1, b0, (u0.0, u0.1 + h), (b0.0, b0.1 + h), h, block, -1.0);
            upper_solve(cx, &m1, (u0.0 + h, u0.1 + h), (b0.0, b0.1 + h), h, block);
        },
        move |cx| {
            upper_solve(cx, &m2, u0, (br1, b0.1), h, block);
            matmul_acc(
                cx,
                &m2,
                &m2,
                &m2,
                (br1, b0.1),
                (u0.0, u0.1 + h),
                (br1, b0.1 + h),
                h,
                block,
                -1.0,
            );
            upper_solve(cx, &m2, (u0.0 + h, u0.1 + h), (br1, b0.1 + h), h, block);
        },
    );
}

fn serial_upper_solve(
    cx: &mut TaskCx<'_>,
    m: &Matrix,
    u0: (usize, usize),
    b0: (usize, usize),
    s: usize,
) {
    for i in 0..s {
        for j in 0..s {
            let mut acc = m.get(cx, b0.0 + i, b0.1 + j);
            for k in 0..j {
                let xik = m.get(cx, b0.0 + i, b0.1 + k);
                let ukj = m.get(cx, u0.0 + k, u0.1 + j);
                acc -= xik * ukj;
                cx.port().advance(2);
            }
            let ujj = m.get(cx, u0.0 + j, u0.1 + j);
            cx.port().advance(8); // divide
            m.set(cx, b0.0 + i, b0.1 + j, acc / ujj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn lu_factors_correctly_on_hcc_and_dts() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWt), (RuntimeKind::Dts, Protocol::GpuWb)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 4);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }

    #[test]
    fn serial_block_equals_recursive() {
        // Whole-matrix serial base vs recursive must agree.
        let s = sys(Protocol::Mesi);
        let results: Vec<Vec<Vec<f64>>> = [16usize, 4]
            .into_iter()
            .map(|block| {
                let mut space = AddrSpace::new();
                let m = Arc::new(Matrix::random(&mut space, 16, 0x1, 16.0));
                let m2 = Arc::clone(&m);
                run_task_parallel(
                    &s,
                    &RuntimeConfig::new(RuntimeKind::Baseline),
                    &mut space,
                    move |cx| lu(cx, &m2, 0, 16, block),
                );
                m.snapshot()
            })
            .collect();
        assert!(max_abs_diff(&results[0], &results[1]) < 1e-9);
    }
}
