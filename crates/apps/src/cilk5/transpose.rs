//! `cilk5-mt`: cache-oblivious recursive matrix transpose (out of place).

use std::sync::Arc;

use bigtiny_core::{parallel_invoke, TaskCx};
use bigtiny_engine::AddrSpace;

use crate::cilk5::dense::Matrix;
use crate::registry::{fingerprint_words, AppSize, Prepared};

/// Instantiates `cilk5-mt`: `B = A^T` for an `n`×`n` matrix.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let n = match size {
        AppSize::Test => 24,
        AppSize::Eval => 96,
        AppSize::Large => 192,
    };
    let leaf = if grain == 0 { 8 } else { grain };

    let a = Arc::new(Matrix::random(space, n, 0x7a, 0.0));
    let b = Arc::new(Matrix::zero(space, n));

    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let b3 = Arc::clone(&b);
    let root: crate::RootFn = Box::new(move |cx| {
        transpose(cx, &a2, &b2, 0, 0, n, n, leaf);
    });
    let verify = Box::new(move || {
        let sa = a.snapshot();
        let sb = b.snapshot();
        for r in 0..n {
            for c in 0..n {
                if sb[c][r] != sa[r][c] {
                    return Err(format!("cilk5-mt: B[{c}][{r}] != A[{r}][{c}]"));
                }
            }
        }
        Ok(())
    });
    // Pure data movement: every output bit is a copy of an input bit, so
    // the fingerprint is schedule-deterministic despite the f64 payload.
    let fingerprint =
        Box::new(move || fingerprint_words(b3.snapshot().into_iter().flatten().map(f64::to_bits)));
    Prepared { root, verify, fingerprint: Some(fingerprint) }
}

/// Transposes the `rows`×`cols` block of `a` at `(r0, c0)` into `b`,
/// splitting the longer dimension until blocks fit the leaf size.
#[allow(clippy::too_many_arguments)]
fn transpose(
    cx: &mut TaskCx<'_>,
    a: &Arc<Matrix>,
    b: &Arc<Matrix>,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    leaf: usize,
) {
    if rows <= leaf && cols <= leaf {
        for r in r0..r0 + rows {
            for c in c0..c0 + cols {
                let v = a.get(cx, r, c);
                cx.port().advance(2);
                b.set(cx, c, r, v);
            }
        }
        return;
    }
    let (a1, b1) = (Arc::clone(a), Arc::clone(b));
    if rows >= cols {
        let h = rows / 2;
        parallel_invoke(cx, move |cx| transpose(cx, &a1, &b1, r0, c0, h, cols, leaf), {
            let (a2, b2) = (Arc::clone(a), Arc::clone(b));
            move |cx| transpose(cx, &a2, &b2, r0 + h, c0, rows - h, cols, leaf)
        });
    } else {
        let h = cols / 2;
        parallel_invoke(cx, move |cx| transpose(cx, &a1, &b1, r0, c0, rows, h, leaf), {
            let (a2, b2) = (Arc::clone(a), Arc::clone(b));
            move |cx| transpose(cx, &a2, &b2, r0, c0 + h, rows, cols - h, leaf)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn transpose_correct_across_runtimes() {
        for (kind, proto) in
            [(RuntimeKind::Hcc, Protocol::GpuWb), (RuntimeKind::Dts, Protocol::GpuWt)]
        {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 4);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
        }
    }

    #[test]
    fn non_square_blocks_handled() {
        // 24 is not a power of two: the split recursion must cover ragged
        // halves exactly.
        let s = sys(Protocol::DeNovo);
        let mut space = AddrSpace::new();
        let prepared = prepare(&mut space, AppSize::Test, 5);
        run_task_parallel(&s, &RuntimeConfig::new(RuntimeKind::Hcc), &mut space, prepared.root);
        (prepared.verify)().expect("exact transpose");
    }
}
