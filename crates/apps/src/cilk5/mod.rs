//! The five Cilk-5 kernels of the paper's evaluation, parallelized with
//! recursive spawn-and-sync (plus `parallel_for` for n-queens, matching
//! Table III's "PM" column).

pub mod dense;
pub mod lu;
pub mod matmul;
pub mod nqueens;
pub mod sort;
pub mod transpose;
