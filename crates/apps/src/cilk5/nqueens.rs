//! `cilk5-nq`: count all n-queens placements by backtracking.
//!
//! Matching Table III, the kernel is parallelized with `parallel_for` over
//! board prefixes (GS = prefixes per task): the root enumerates every valid
//! placement of the first `PREFIX_ROWS` queens, and leaf tasks complete the
//! search serially, accumulating solution counts with one AMO per task.

use std::sync::Arc;

use bigtiny_core::{parallel_for, TaskCx};
use bigtiny_engine::{AddrSpace, ShScalar, ShVec};

use crate::registry::{fingerprint_words, AppSize, Prepared};

/// Rows expanded by the root to form the parallel work list.
const PREFIX_ROWS: usize = 3;

/// Known solution counts for verification.
fn known_solutions(n: usize) -> u64 {
    match n {
        1 => 1,
        2 | 3 => 0,
        4 => 2,
        5 => 10,
        6 => 4,
        7 => 40,
        8 => 92,
        9 => 352,
        10 => 724,
        11 => 2680,
        _ => panic!("no reference count recorded for n = {n}"),
    }
}

/// Instantiates `cilk5-nq` for the size-dependent board.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let n = match size {
        AppSize::Test => 7,
        AppSize::Eval => 9,
        AppSize::Large => 10,
    };
    let grain = if grain == 0 { 3 } else { grain };

    let count = Arc::new(ShScalar::new(space, 0u64));
    // Crash-tolerant side-effect slots: one per leaf range, keyed by the
    // range start (leaf ranges partition the prefix list, so starts are
    // unique). n^3 bounds the number of PREFIX_ROWS-deep prefixes.
    let slots = Arc::new(ShVec::new(space, n * n * n, 0u64));
    let c2 = Arc::clone(&count);
    let sl2 = Arc::clone(&slots);
    let (c3, sl3) = (Arc::clone(&count), Arc::clone(&slots));
    let root: crate::RootFn = Box::new(move |cx| {
        // Enumerate valid prefixes of the first PREFIX_ROWS rows.
        let mut prefixes: Vec<Vec<u8>> = vec![Vec::new()];
        for _ in 0..PREFIX_ROWS.min(n) {
            let mut next = Vec::new();
            for p in &prefixes {
                for col in 0..n as u8 {
                    cx.port().advance(4);
                    if safe(p, col) {
                        let mut q = p.clone();
                        q.push(col);
                        next.push(q);
                    }
                }
            }
            prefixes = next;
        }
        let prefixes = Arc::new(prefixes);
        let total = prefixes.len();
        let count = Arc::clone(&c2);
        let slots = Arc::clone(&sl2);
        parallel_for(cx, 0..total, grain, move |cx, r| {
            let start = r.start;
            let mut local = 0u64;
            for i in r {
                local += serial_search(cx, prefixes[i].clone(), n);
            }
            if local > 0 {
                // Under a crash plan a re-executed subtree may run this
                // leaf twice: land the count in the leaf's own slot (same
                // value every time) instead of accumulating.
                if cx.reexec_possible() {
                    slots.write(cx.port(), start, local);
                } else {
                    count.amo(cx.port(), |c| *c += local);
                }
            }
        });
    });
    let verify = Box::new(move || {
        // Exactly one of the two sinks is populated per run.
        let got = count.host_read() + slots.snapshot().iter().sum::<u64>();
        let want = known_solutions(n);
        if got == want {
            Ok(())
        } else {
            Err(format!("cilk5-nq: counted {got} solutions for n={n}, expected {want}"))
        }
    });
    let fingerprint =
        Box::new(move || fingerprint_words(std::iter::once(c3.host_read()).chain(sl3.snapshot())));
    Prepared { root, verify, fingerprint: Some(fingerprint) }
}

fn safe(rows: &[u8], col: u8) -> bool {
    for (dr, &c) in rows.iter().rev().enumerate() {
        let d = (dr + 1) as i16;
        let diff = (c as i16 - col as i16).abs();
        if diff == 0 || diff == d {
            return false;
        }
    }
    true
}

fn serial_search(cx: &mut TaskCx<'_>, mut rows: Vec<u8>, n: usize) -> u64 {
    fn go(cx: &mut TaskCx<'_>, rows: &mut Vec<u8>, n: usize) -> u64 {
        if rows.len() == n {
            return 1;
        }
        let mut total = 0;
        for col in 0..n as u8 {
            // Placement test: ~1 instruction per earlier row.
            cx.port().advance(2 + rows.len() as u64);
            if safe(rows, col) {
                rows.push(col);
                total += go(cx, rows, n);
                rows.pop();
            }
        }
        total
    }
    go(cx, &mut rows, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn counts_match_known_values() {
        let s = sys(Protocol::GpuWb);
        let mut space = AddrSpace::new();
        let prepared = prepare(&mut space, AppSize::Test, 2);
        run_task_parallel(&s, &RuntimeConfig::new(RuntimeKind::Dts), &mut space, prepared.root);
        (prepared.verify)().expect("n-queens count");
    }
}
