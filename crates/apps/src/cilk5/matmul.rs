//! `cilk5-mm`: blocked divide-and-conquer matrix multiplication.

use std::sync::Arc;

use bigtiny_engine::AddrSpace;

use crate::cilk5::dense::{host_matmul, matmul_acc, max_abs_diff, Matrix};
use crate::registry::{AppSize, Prepared};

/// Instantiates `cilk5-mm`: `C = A * B` for `n`×`n` matrices.
pub fn prepare(space: &mut AddrSpace, size: AppSize, grain: usize) -> Prepared {
    let n: usize = match size {
        AppSize::Test => 16,
        AppSize::Eval => 96,
        AppSize::Large => 192,
    };
    let n = n.next_power_of_two();
    let block = if grain == 0 { 8 } else { grain.next_power_of_two().min(n) };

    let a = Arc::new(Matrix::random(space, n, 0xaa, 0.0));
    let b = Arc::new(Matrix::random(space, n, 0xbb, 0.0));
    let c = Arc::new(Matrix::zero(space, n));

    let (a2, b2, c2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&c));
    let root: crate::RootFn = Box::new(move |cx| {
        matmul_acc(cx, &a2, &b2, &c2, (0, 0), (0, 0), (0, 0), n, block, 1.0);
    });
    let verify = Box::new(move || {
        let want = host_matmul(&a.snapshot(), &b.snapshot());
        let err = max_abs_diff(&c.snapshot(), &want);
        if err < 1e-9 * n as f64 {
            Ok(())
        } else {
            Err(format!("cilk5-mm: |C - A*B| = {err}"))
        }
    });
    Prepared { root, verify, fingerprint: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sys;
    use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::Protocol;

    #[test]
    fn mm_correct_across_runtimes() {
        for (kind, proto) in [
            (RuntimeKind::Baseline, Protocol::Mesi),
            (RuntimeKind::Hcc, Protocol::DeNovo),
            (RuntimeKind::Dts, Protocol::GpuWb),
        ] {
            let s = sys(proto);
            let mut space = AddrSpace::new();
            let prepared = prepare(&mut space, AppSize::Test, 4);
            let run = run_task_parallel(&s, &RuntimeConfig::new(kind), &mut space, prepared.root);
            (prepared.verify)().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(run.report.stale_reads, 0, "{kind:?}");
            assert!(run.stats.steals > 0, "{kind:?}: work was distributed");
        }
    }
}
