//! Randomized-but-deterministic tests of the application substrates: graph
//! construction invariants and functional correctness of kernels.
//!
//! These were originally `proptest` properties; they are now driven by the
//! simulator's own seeded [`XorShift64`] so the workspace has no external
//! dependencies and every CI run explores exactly the same cases.

use std::sync::Arc;

use bigtiny_apps::graph::Graph;
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig, XorShift64};
use bigtiny_mesh::{MeshConfig, Topology};

fn sys() -> SystemConfig {
    SystemConfig::big_tiny(
        "prop",
        MeshConfig::with_topology(Topology::new(2, 2)),
        1,
        3,
        Protocol::GpuWb,
    )
}

fn random_edges(rng: &mut XorShift64, n: usize, max_edges: u64) -> Vec<(u32, u32)> {
    (0..rng.next_below(max_edges))
        .map(|_| (rng.next_below(n as u64) as u32, rng.next_below(n as u64) as u32))
        .collect()
}

/// Graphs built from arbitrary edge lists are symmetric, deduplicated,
/// self-loop free, and have consistent CSR offsets.
#[test]
fn graph_construction_invariants() {
    let mut rng = XorShift64::new(0x4150_5031);
    for _ in 0..32 {
        let n = 2 + rng.next_below(38) as usize;
        let edges = random_edges(&mut rng, n, 120);
        let mut space = AddrSpace::new();
        let g = Graph::from_edge_list(&mut space, n, &edges);
        let adj = g.host_adjacency();
        assert_eq!(adj.len(), n);
        for (v, nv) in adj.iter().enumerate() {
            // Sorted, unique, no self loops.
            assert!(nv.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(!nv.contains(&v), "no self loop at {v}");
            // Symmetry.
            for &u in nv {
                assert!(adj[u].contains(&v), "edge ({v}, {u}) symmetric");
            }
        }
        let total: usize = adj.iter().map(|a| a.len()).sum();
        assert_eq!(total, g.num_edges());
    }
}

/// rMAT generation is deterministic in its seed and respects the vertex
/// budget.
#[test]
fn rmat_deterministic() {
    let mut rng = XorShift64::new(0x4150_5032);
    for _ in 0..32 {
        let n = 4 + rng.next_below(124) as usize;
        let ef = 1 + rng.next_below(5) as usize;
        let seed = rng.next_u64();
        let mut s1 = AddrSpace::new();
        let g1 = Graph::rmat(&mut s1, n, ef, seed);
        let mut s2 = AddrSpace::new();
        let g2 = Graph::rmat(&mut s2, n, ef, seed);
        assert_eq!(g1.host_adjacency(), g2.host_adjacency());
        assert!(g1.num_vertices() >= n);
        assert!(g1.num_vertices() <= 2 * n.next_power_of_two());
    }
}

/// The simulated parallel mergesort sorts arbitrary inputs (checked by
/// running the whole machine, not just the algorithm).
#[test]
fn parallel_sort_sorts_anything() {
    let mut rng = XorShift64::new(0x4150_5033);
    for _ in 0..8 {
        let mut input: Vec<u64> = (0..1 + rng.next_below(119)).map(|_| rng.next_u64()).collect();
        let mut space = AddrSpace::new();
        let n = input.len();
        let a = Arc::new(ShVec::from_vec(&mut space, input.clone()));
        let b = Arc::new(ShVec::new(&mut space, n, 0u64));
        let a2 = Arc::clone(&a);
        let run = run_task_parallel(
            &sys(),
            &RuntimeConfig::new(RuntimeKind::Dts),
            &mut space,
            move |cx: &mut TaskCx<'_>| {
                bigtiny_apps::cilk5::sort::sort_in_place(cx, &a2, &b, n);
            },
        );
        input.sort_unstable();
        assert_eq!(a.snapshot(), input);
        assert_eq!(run.report.stale_reads, 0);
    }
}

/// Triangle counting by intersection equals a brute-force count on
/// arbitrary small graphs.
#[test]
fn triangle_count_equals_brute_force() {
    let mut rng = XorShift64::new(0x4150_5034);
    for _ in 0..32 {
        let n = 3 + rng.next_below(21) as usize;
        let edges = random_edges(&mut rng, n, 80);
        let mut space = AddrSpace::new();
        let g = Graph::from_edge_list(&mut space, n, &edges);
        let adj = g.host_adjacency();
        // Brute force over vertex triples.
        let mut brute = 0u64;
        for a in 0..n {
            for b in a + 1..n {
                if !adj[a].contains(&b) {
                    continue;
                }
                for c in b + 1..n {
                    if adj[a].contains(&c) && adj[b].contains(&c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(bigtiny_apps::ligra_apps::tc::host_triangles(&adj), brute);
    }
}
