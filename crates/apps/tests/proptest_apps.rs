//! Property tests of the application substrates: graph construction
//! invariants and functional correctness of kernels on arbitrary inputs.

use std::sync::Arc;

use proptest::prelude::*;

use bigtiny_apps::graph::Graph;
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

fn sys() -> SystemConfig {
    SystemConfig::big_tiny("prop", MeshConfig::with_topology(Topology::new(2, 2)), 1, 3, Protocol::GpuWb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Graphs built from arbitrary edge lists are symmetric, deduplicated,
    /// self-loop free, and have consistent CSR offsets.
    #[test]
    fn graph_construction_invariants(
        n in 2usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120))
    {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
        let mut space = AddrSpace::new();
        let g = Graph::from_edge_list(&mut space, n, &edges);
        let adj = g.host_adjacency();
        prop_assert_eq!(adj.len(), n);
        for (v, nv) in adj.iter().enumerate() {
            // Sorted, unique, no self loops.
            prop_assert!(nv.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            prop_assert!(!nv.contains(&v), "no self loop at {}", v);
            // Symmetry.
            for &u in nv {
                prop_assert!(adj[u].contains(&v), "edge ({}, {}) symmetric", v, u);
            }
        }
        let total: usize = adj.iter().map(|a| a.len()).sum();
        prop_assert_eq!(total, g.num_edges());
    }

    /// rMAT generation is deterministic in its seed and respects the vertex
    /// budget.
    #[test]
    fn rmat_deterministic(n in 4usize..128, ef in 1usize..6, seed in any::<u64>()) {
        let mut s1 = AddrSpace::new();
        let g1 = Graph::rmat(&mut s1, n, ef, seed);
        let mut s2 = AddrSpace::new();
        let g2 = Graph::rmat(&mut s2, n, ef, seed);
        prop_assert_eq!(g1.host_adjacency(), g2.host_adjacency());
        prop_assert!(g1.num_vertices() >= n);
        prop_assert!(g1.num_vertices() <= 2 * n.next_power_of_two());
    }

    /// The simulated parallel mergesort sorts arbitrary inputs (checked by
    /// running the whole machine, not just the algorithm).
    #[test]
    fn parallel_sort_sorts_anything(mut input in proptest::collection::vec(any::<u64>(), 1..120)) {
        let mut space = AddrSpace::new();
        let n = input.len();
        let a = Arc::new(ShVec::from_vec(&mut space, input.clone()));
        let b = Arc::new(ShVec::new(&mut space, n, 0u64));
        let a2 = Arc::clone(&a);
        let run = run_task_parallel(
            &sys(),
            &RuntimeConfig::new(RuntimeKind::Dts),
            &mut space,
            move |cx: &mut TaskCx<'_>| {
                bigtiny_apps::cilk5::sort::sort_in_place(cx, &a2, &b, n);
            },
        );
        input.sort_unstable();
        prop_assert_eq!(a.snapshot(), input);
        prop_assert_eq!(run.report.stale_reads, 0);
    }

    /// Triangle counting by intersection equals a brute-force count on
    /// arbitrary small graphs.
    #[test]
    fn triangle_count_equals_brute_force(
        n in 3usize..24,
        edges in proptest::collection::vec((0u32..24, 0u32..24), 0..80))
    {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
        let mut space = AddrSpace::new();
        let g = Graph::from_edge_list(&mut space, n, &edges);
        let adj = g.host_adjacency();
        // Brute force over vertex triples.
        let mut brute = 0u64;
        for a in 0..n {
            for b in a + 1..n {
                if !adj[a].contains(&b) {
                    continue;
                }
                for c in b + 1..n {
                    if adj[a].contains(&c) && adj[b].contains(&c) {
                        brute += 1;
                    }
                }
            }
        }
        prop_assert_eq!(bigtiny_apps::ligra_apps::tc::host_triangles(&adj), brute);
    }
}
