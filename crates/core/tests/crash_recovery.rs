//! End-to-end tests of fail-stop core crashes and self-healing recovery:
//! tiny cores die mid-run, survivors reclaim orphans, rescue mailboxes,
//! re-execute the tasks the dead cores were inside, and the program still
//! computes the right answer on every runtime variant. A watchdog is armed
//! in every test so a recovery bug fails with a diagnostic instead of
//! hanging the suite.

use std::sync::Arc;

use bigtiny_core::{
    parallel_invoke, run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx, TaskRun,
};
use bigtiny_engine::{AddrSpace, FaultPlan, Protocol, ShVec, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

fn sys(proto: Protocol, plan: FaultPlan) -> SystemConfig {
    SystemConfig::big_tiny("crash", MeshConfig::with_topology(Topology::new(4, 4)), 1, 15, proto)
        .with_faults(plan)
        .with_watchdog(2_000_000)
}

/// Slot-tree fib: every write lands a deterministic value in a private
/// slot, so re-executed subtrees are idempotent (the crash-tolerant
/// side-effect discipline).
fn fib(cx: &mut TaskCx<'_>, out: Arc<ShVec<u64>>, slot: usize, n: u64) {
    cx.port().advance(6);
    if n < 2 {
        out.write(cx.port(), slot, n);
        return;
    }
    let (a, b) = (Arc::clone(&out), Arc::clone(&out));
    let (sa, sb) = (2 * slot + 1, 2 * slot + 2);
    parallel_invoke(cx, move |cx| fib(cx, a, sa, n - 1), move |cx| fib(cx, b, sb, n - 2));
    let x = out.read(cx.port(), sa);
    let y = out.read(cx.port(), sb);
    out.write(cx.port(), slot, x + y);
}

fn run_fib(sys_cfg: &SystemConfig, rt: &RuntimeConfig, n: u64) -> (u64, TaskRun) {
    let mut space = AddrSpace::new();
    let out = Arc::new(ShVec::new(&mut space, 1 << (n + 1), 0u64));
    let o = Arc::clone(&out);
    let run = run_task_parallel(sys_cfg, rt, &mut space, move |cx| fib(cx, o, 0, n));
    (out.host_read(0), run)
}

fn serial_fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        serial_fib(n - 1) + serial_fib(n - 2)
    }
}

/// One tiny core fail-stops mid-run: every runtime variant survives it and
/// still computes the right answer, and at least one survivor observed the
/// death (quarantine).
#[test]
fn single_crash_survived_on_all_runtimes() {
    let cases = [
        (RuntimeKind::Baseline, Protocol::Mesi),
        (RuntimeKind::Hcc, Protocol::DeNovo),
        (RuntimeKind::Dts, Protocol::GpuWb),
    ];
    for (kind, proto) in cases {
        let cfg = sys(proto, FaultPlan::crash_one(7));
        let rt = RuntimeConfig::new(kind);
        let (got, run) = run_fib(&cfg, &rt, 14);
        assert_eq!(got, serial_fib(14), "{kind:?}: correct despite the crash");
        assert!(run.report.fault_counters.crashes >= 1, "{kind:?}: the core did crash");
        assert!(run.stats.quarantines >= 1, "{kind:?}: a survivor observed the death");
    }
}

/// Full recovery under an aggressive wall-clock watchdog window: a
/// quarantined dead core stays dark for the whole remainder of the run,
/// and that expected silence must never trip the wall-clock liveness
/// fallback — grants from the survivors are the liveness evidence. (The
/// deterministic budget stays armed too; a recovery livelock still fails
/// loudly instead of hanging.)
#[test]
fn quarantined_dead_core_never_trips_wall_clock_fallback() {
    let mut cfg = sys(Protocol::GpuWb, FaultPlan::crash_one(7));
    cfg.watchdog_wall_ms = 60;
    let rt = RuntimeConfig::new(RuntimeKind::Dts);
    let (got, run) = run_fib(&cfg, &rt, 15);
    assert_eq!(got, serial_fib(15), "correct despite crash + aggressive wall window");
    assert!(run.report.fault_counters.crashes >= 1);
    assert!(run.stats.quarantines >= 1);
}

/// A crash storm (three tiny cores at the same cycle) on DTS: the run
/// completes correctly and recovery actually exercised its machinery —
/// a task that died mid-execution was re-spawned with its join repaired.
#[test]
fn crash_storm_recovers_in_flight_work() {
    let cfg = sys(Protocol::GpuWb, FaultPlan::crash_storm(3));
    let rt = RuntimeConfig::new(RuntimeKind::Dts);
    let (got, run) = run_fib(&cfg, &rt, 15);
    assert_eq!(got, serial_fib(15));
    assert_eq!(run.report.fault_counters.crashes, 3, "all three doomed cores died");
    assert!(run.stats.reexecutions >= 1, "a mid-execution task was re-spawned");
    assert_eq!(
        run.stats.reexecutions, run.stats.joins_repaired,
        "every re-spawn inherits exactly one join obligation"
    );
    assert!(run.stats.quarantines >= 1);
}

/// Crashed cores with a revival schedule come back, rejoin scheduling, and
/// the run still completes correctly.
#[test]
fn revived_cores_rejoin() {
    let cfg = sys(Protocol::GpuWb, FaultPlan::crash_revive(9));
    let rt = RuntimeConfig::new(RuntimeKind::Dts);
    let (got, run) = run_fib(&cfg, &rt, 15);
    assert_eq!(got, serial_fib(15));
    assert_eq!(run.report.fault_counters.crashes, 2);
    assert_eq!(run.stats.revivals, 2, "both crashed cores revived");
}

/// Crash recovery is deterministic: identical configurations (same fault
/// seed) produce bit-identical cycle counts, op-stream hashes, and
/// recovery counters.
#[test]
fn crash_runs_are_deterministic() {
    let rt = RuntimeConfig::new(RuntimeKind::Dts);
    let runs: Vec<(u64, TaskRun)> = (0..2)
        .map(|_| run_fib(&sys(Protocol::GpuWb, FaultPlan::crash_storm(11)), &rt, 14))
        .collect();
    assert_eq!(runs[0].0, runs[1].0);
    assert_eq!(runs[0].1.report.core_cycles, runs[1].1.report.core_cycles);
    assert_eq!(runs[0].1.report.seq_op_hash, runs[1].1.report.seq_op_hash);
    assert_eq!(runs[0].1.stats, runs[1].1.stats);
}

/// Without a crash dimension, an armed (transient-only) fault plan takes
/// none of the crash paths: no crashes, no recovery counters.
#[test]
fn transient_plans_never_crash() {
    let cfg = sys(Protocol::GpuWb, FaultPlan::hostile(5));
    let rt = RuntimeConfig::new(RuntimeKind::Dts);
    let (got, run) = run_fib(&cfg, &rt, 12);
    assert_eq!(got, serial_fib(12));
    assert_eq!(run.report.fault_counters.crashes, 0);
    assert_eq!(run.stats.quarantines, 0);
    assert_eq!(run.stats.reexecutions, 0);
    assert_eq!(run.stats.revivals, 0);
}
