//! Behavioural tests of the three work-stealing runtime variants across the
//! four coherence protocols: functional correctness, DAG-consistency (zero
//! stale reads), the paper's Figure 3 no-op table, the Section IV-B/IV-C
//! optimization effects, and determinism.

use std::sync::Arc;

use bigtiny_core::{
    parallel_for, parallel_invoke, run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx, TaskRun,
};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

fn sys(big: usize, tiny: usize, proto: Protocol) -> SystemConfig {
    SystemConfig::big_tiny("test", MeshConfig::with_topology(Topology::new(4, 4)), big, tiny, proto)
}

fn fib(cx: &mut TaskCx<'_>, out: Arc<ShVec<u64>>, slot: usize, n: u64) {
    cx.port().advance(6);
    if n < 2 {
        out.write(cx.port(), slot, n);
        return;
    }
    let (a, b) = (Arc::clone(&out), Arc::clone(&out));
    let (sa, sb) = (2 * slot + 1, 2 * slot + 2);
    parallel_invoke(cx, move |cx| fib(cx, a, sa, n - 1), move |cx| fib(cx, b, sb, n - 2));
    let x = out.read(cx.port(), sa);
    let y = out.read(cx.port(), sb);
    out.write(cx.port(), slot, x + y);
}

fn run_fib(sys_cfg: &SystemConfig, rt: &RuntimeConfig, n: u64) -> (u64, TaskRun) {
    let mut space = AddrSpace::new();
    // Slot tree indexed like a binary heap needs 2^(n+1) slots for fib(n).
    let out = Arc::new(ShVec::new(&mut space, 1 << (n + 1), 0u64));
    let o = Arc::clone(&out);
    let run = run_task_parallel(sys_cfg, rt, &mut space, move |cx| fib(cx, o, 0, n));
    (out.host_read(0), run)
}

fn serial_fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        serial_fib(n - 1) + serial_fib(n - 2)
    }
}

/// Every (runtime, protocol) pairing the paper evaluates computes the right
/// answer with zero stale reads.
#[test]
fn fib_correct_on_all_configurations() {
    let cases = [
        (RuntimeKind::Baseline, Protocol::Mesi),
        (RuntimeKind::Hcc, Protocol::DeNovo),
        (RuntimeKind::Hcc, Protocol::GpuWt),
        (RuntimeKind::Hcc, Protocol::GpuWb),
        (RuntimeKind::Dts, Protocol::DeNovo),
        (RuntimeKind::Dts, Protocol::GpuWt),
        (RuntimeKind::Dts, Protocol::GpuWb),
    ];
    for (kind, proto) in cases {
        let s = sys(2, 6, proto);
        let cfg = RuntimeConfig::new(kind);
        let (result, run) = run_fib(&s, &cfg, 10);
        assert_eq!(result, serial_fib(10), "{kind:?}/{proto:?}");
        assert_eq!(run.report.stale_reads, 0, "{kind:?}/{proto:?} must be DAG-consistent");
        assert!(run.stats.tasks_executed >= 2 * serial_fib(10), "{kind:?}/{proto:?} task count");
    }
}

/// The work-stealing runtime actually steals, and DTS steals via the ULI
/// network instead of shared-memory deque access.
#[test]
fn steals_happen_and_dts_uses_uli() {
    let s = sys(1, 7, Protocol::GpuWb);

    let hcc = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Hcc), 11).1;
    assert!(hcc.stats.steals > 0, "HCC runtime must steal");
    assert_eq!(hcc.report.uli.messages, 0, "HCC never touches the ULI network");

    let dts = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Dts), 11).1;
    assert!(dts.stats.steals > 0, "DTS runtime must steal");
    assert!(dts.report.uli.messages >= 2 * dts.stats.steals, "each steal is a ULI round trip");
}

/// Figure 3 caption: cache_flush is a no-op on MESI/DeNovo/GPU-WT;
/// cache_invalidate is a no-op on MESI. Observed through the mem-stats.
#[test]
fn noop_table_observed_in_counters() {
    for (proto, expect_inv, expect_flush) in [
        (Protocol::DeNovo, true, false),
        (Protocol::GpuWt, true, false),
        (Protocol::GpuWb, true, true),
    ] {
        let s = sys(1, 7, proto);
        let run = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Hcc), 10).1;
        let tiny: Vec<usize> = (1..8).collect();
        let stats = run.report.mem_stats_over(&tiny);
        assert_eq!(stats.lines_invalidated > 0, expect_inv, "{proto:?} invalidations");
        assert_eq!(stats.lines_flushed > 0, expect_flush, "{proto:?} flushes");
    }
    // MESI: both no-ops.
    let s = sys(1, 7, Protocol::Mesi);
    let run = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Baseline), 10).1;
    let tiny: Vec<usize> = (1..8).collect();
    let stats = run.report.mem_stats_over(&tiny);
    assert_eq!(stats.lines_invalidated, 0);
    assert_eq!(stats.lines_flushed, 0);
}

/// Section IV / Table IV: DTS reduces invalidations (and flushes on GPU-WB)
/// dramatically relative to the HCC runtime on the same protocol.
#[test]
fn dts_reduces_invalidations_and_flushes() {
    // Steal-heavy fib: DTS still invalidates/flushes strictly less (the
    // paper's ligra-bf/bfsbv/tc regime, where reductions are modest).
    for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
        let s = sys(1, 7, proto);
        let tiny: Vec<usize> = (1..8).collect();
        let hcc = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Hcc), 13).1;
        let dts = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Dts), 13).1;
        let hcc_inv = hcc.report.mem_stats_over(&tiny).lines_invalidated;
        let dts_inv = dts.report.mem_stats_over(&tiny).lines_invalidated;
        assert!(
            dts_inv < hcc_inv,
            "{proto:?}: DTS invalidations {dts_inv} not below HCC {hcc_inv}"
        );
        if proto == Protocol::GpuWb {
            let hcc_fls = hcc.report.mem_stats_over(&tiny).lines_flushed;
            let dts_fls = dts.report.mem_stats_over(&tiny).lines_flushed;
            assert!(
                (dts_fls as f64) < 0.5 * hcc_fls as f64,
                "GPU-WB: DTS flushes {dts_fls} not well below HCC {hcc_fls}"
            );
        }
    }

    // Steal-light coarse parallel_for: the common case, with the paper's
    // >90%-class reductions (Table IV).
    let run_pf = |kind: RuntimeKind| -> TaskRun {
        let s = sys(1, 7, Protocol::GpuWb);
        let cfg = RuntimeConfig::new(kind);
        let mut space = AddrSpace::new();
        let data = Arc::new(ShVec::new(&mut space, 4096, 0u64));
        let d = Arc::clone(&data);
        run_task_parallel(&s, &cfg, &mut space, move |cx| {
            let d2 = Arc::clone(&d);
            parallel_for(cx, 0..4096, 64, move |cx, r| {
                for i in r {
                    let v = d2.read(cx.port(), i);
                    d2.write(cx.port(), i, v + 1);
                    cx.port().advance(8);
                }
            });
        })
    };
    // Counting *operations*: DTS structurally eliminates the per-deque-
    // access invalidate/flush pairs, so its op counts must collapse. (The
    // paper's Table IV line-count reductions emerge at full scale and are
    // checked by the table4 harness.)
    let tiny: Vec<usize> = (1..8).collect();
    let hcc = run_pf(RuntimeKind::Hcc);
    let dts = run_pf(RuntimeKind::Dts);
    let (hi, di) = (
        hcc.report.mem_stats_over(&tiny).invalidate_ops,
        dts.report.mem_stats_over(&tiny).invalidate_ops,
    );
    assert!(
        (di as f64) < 0.5 * hi as f64,
        "coarse parallel_for: DTS invalidate ops {di} vs HCC {hi} should drop by >50%"
    );
    let (hf, df) =
        (hcc.report.mem_stats_over(&tiny).flush_ops, dts.report.mem_stats_over(&tiny).flush_ops);
    assert!(
        (df as f64) < 0.5 * hf as f64,
        "coarse parallel_for: DTS flush ops {df} vs HCC {hf} should drop by >50%"
    );
}

/// The deliberately-broken runtime (coherence ops omitted) is caught by the
/// staleness checker — the failure mode the paper's protocol prevents.
#[test]
fn omitting_coherence_ops_is_detected() {
    let s = sys(1, 7, Protocol::GpuWb);
    let mut cfg = RuntimeConfig::new(RuntimeKind::Hcc);
    cfg.skip_coherence_ops = true;
    let (result, run) = run_fib(&s, &cfg, 10);
    // Functional result is still right (the simulator's functional layer is
    // sequentially consistent) but real hardware would have read stale data:
    assert_eq!(result, serial_fib(10));
    assert!(run.report.stale_reads > 0, "checker must flag the missing invalidate/flush");
}

/// Work/span profiling: work is stable across schedules, span <= work,
/// and parallelism is plausible for fib.
#[test]
fn workspan_profile_is_sane() {
    let s = sys(1, 7, Protocol::GpuWb);
    let a = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Dts), 11).1;
    let ws = a.stats.workspan;
    assert!(ws.work > 0 && ws.span > 0);
    assert!(ws.span <= ws.work);
    assert!(ws.parallelism() > 4.0, "fib(11) has ample logical parallelism: {}", ws.parallelism());
    assert!(ws.instructions_per_task() > 1.0);

    // Work is a property of the program, not the schedule: a different
    // machine/schedule must report the same work and span.
    let s2 = sys(2, 2, Protocol::GpuWb);
    let b = run_fib(&s2, &RuntimeConfig::new(RuntimeKind::Dts), 11).1;
    assert_eq!(b.stats.workspan.work, ws.work, "work is schedule-invariant");
    assert_eq!(b.stats.workspan.span, ws.span, "span is schedule-invariant");
}

/// Identical configuration => identical simulation, cycle for cycle.
#[test]
fn end_to_end_determinism() {
    for kind in [RuntimeKind::Baseline, RuntimeKind::Hcc, RuntimeKind::Dts] {
        let proto = if kind == RuntimeKind::Baseline { Protocol::Mesi } else { Protocol::GpuWb };
        let s = sys(1, 7, proto);
        let cfg = RuntimeConfig::new(kind);
        let a = run_fib(&s, &cfg, 10).1;
        let b = run_fib(&s, &cfg, 10).1;
        assert_eq!(a.report.completion_cycles, b.report.completion_cycles, "{kind:?}");
        assert_eq!(a.report.core_cycles, b.report.core_cycles, "{kind:?}");
        assert_eq!(a.stats.steals, b.stats.steals, "{kind:?}");
        assert_eq!(a.report.total_traffic_bytes(), b.report.total_traffic_bytes(), "{kind:?}");
    }
}

/// Different seeds change victim selection (and thus schedules) without
/// changing results.
#[test]
fn seeds_change_schedule_not_result() {
    let cfg = RuntimeConfig::new(RuntimeKind::Dts);
    let s1 = sys(1, 7, Protocol::GpuWb);
    let s2 = s1.clone().with_seed(999);
    let (r1, a) = run_fib(&s1, &cfg, 10);
    let (r2, b) = run_fib(&s2, &cfg, 10);
    assert_eq!(r1, r2);
    assert_ne!(
        (a.report.completion_cycles, a.stats.steals),
        (b.report.completion_cycles, b.stats.steals),
        "different seed should perturb the schedule"
    );
}

/// A parallel_for with per-element writes is DAG-consistent on every
/// combination and covers the range exactly once (no lost or repeated work
/// under stealing).
#[test]
fn parallel_for_exactly_once_under_stealing() {
    for (kind, proto) in [
        (RuntimeKind::Baseline, Protocol::Mesi),
        (RuntimeKind::Hcc, Protocol::DeNovo),
        (RuntimeKind::Dts, Protocol::GpuWt),
    ] {
        let s = sys(1, 7, proto);
        let cfg = RuntimeConfig::new(kind);
        let mut space = AddrSpace::new();
        let n = 500;
        let marks = Arc::new(ShVec::new(&mut space, n, 0u64));
        let m = Arc::clone(&marks);
        let run = run_task_parallel(&s, &cfg, &mut space, move |cx| {
            let m2 = Arc::clone(&m);
            parallel_for(cx, 0..n, 4, move |cx, r| {
                for i in r {
                    let v = m2.read(cx.port(), i);
                    m2.write(cx.port(), i, v + 1);
                }
            });
        });
        assert!(marks.snapshot().iter().all(|v| *v == 1), "{kind:?}/{proto:?}");
        assert_eq!(run.report.stale_reads, 0, "{kind:?}/{proto:?}");
        assert!(run.stats.steals > 0, "{kind:?}/{proto:?} must have load-balanced");
    }
}

/// Single-core execution degenerates gracefully (no stealing possible).
#[test]
fn single_core_runs_everything_inline() {
    let s = SystemConfig::o3(1);
    let cfg = RuntimeConfig::new(RuntimeKind::Baseline);
    let (result, run) = run_fib(&s, &cfg, 8);
    assert_eq!(result, serial_fib(8));
    assert_eq!(run.stats.steals, 0);
}

/// The ablation that disables the has_stolen_child optimization still runs
/// correctly, with more AMOs.
#[test]
fn dts_without_hsc_optimization_uses_more_amos() {
    let s = sys(1, 7, Protocol::GpuWb);
    let on = RuntimeConfig::new(RuntimeKind::Dts);
    let mut off = RuntimeConfig::new(RuntimeKind::Dts);
    off.dts_has_stolen_child_opt = false;

    let tiny: Vec<usize> = (0..8).collect();
    let (r_on, run_on) = run_fib(&s, &on, 10);
    let (r_off, run_off) = run_fib(&s, &off, 10);
    assert_eq!(r_on, r_off);
    let amos_on = run_on.report.mem_stats_over(&tiny).amos;
    let amos_off = run_off.report.mem_stats_over(&tiny).amos;
    assert!(amos_off > amos_on, "conservative DTS must issue more AMOs: {amos_off} vs {amos_on}");
}

/// All victim-selection policies produce correct results; nearest-first
/// keeps ULI steal traffic more local (fewer mean hops) than random.
#[test]
fn victim_policies_correct_and_nearest_is_local() {
    use bigtiny_core::VictimPolicy;
    let s = sys(1, 15, Protocol::GpuWb);
    let mut runs = Vec::new();
    for policy in [VictimPolicy::Random, VictimPolicy::RoundRobin, VictimPolicy::NearestFirst] {
        let mut cfg = RuntimeConfig::new(RuntimeKind::Dts);
        cfg.victim_policy = policy;
        let (result, run) = run_fib(&s, &cfg, 12);
        assert_eq!(result, serial_fib(12), "{policy:?}");
        assert_eq!(run.report.stale_reads, 0, "{policy:?}");
        runs.push((policy, run));
    }
    let hops = |p: bigtiny_core::VictimPolicy| {
        runs.iter().find(|(q, _)| *q == p).unwrap().1.report.uli.mean_hops
    };
    assert!(
        hops(VictimPolicy::NearestFirst) < hops(VictimPolicy::Random),
        "nearest-first mean hops {} vs random {}",
        hops(VictimPolicy::NearestFirst),
        hops(VictimPolicy::Random)
    );
}

mod misuse {
    use super::*;

    fn run_root(f: impl FnOnce(&mut TaskCx<'_>) + Send + 'static) {
        let s = sys(1, 3, Protocol::GpuWb);
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut space = AddrSpace::new();
        run_task_parallel(&s, &cfg, &mut space, f);
    }

    /// spawn() without set_pending is a programming error, caught eagerly.
    #[test]
    #[should_panic(expected = "without a set_pending")]
    fn spawn_without_budget_panics() {
        run_root(|cx| {
            cx.spawn(|_| {});
        });
    }

    /// Announcing more children than are spawned would deadlock the wait;
    /// caught at the wait() call.
    #[test]
    #[should_panic(expected = "never spawned")]
    fn underspawned_budget_panics_at_wait() {
        run_root(|cx| {
            cx.set_pending(3);
            cx.spawn(|_| {});
            cx.wait();
        });
    }

    /// Spawning more children than announced is caught at the extra spawn.
    #[test]
    #[should_panic(expected = "without a set_pending")]
    fn overspawned_budget_panics() {
        run_root(|cx| {
            cx.set_pending(1);
            cx.spawn(|_| {});
            cx.spawn(|_| {});
        });
    }

    /// set_pending with children still outstanding is rejected.
    #[test]
    #[should_panic(expected = "children still outstanding")]
    fn set_pending_twice_without_spawning_panics() {
        run_root(|cx| {
            cx.set_pending(1);
            cx.set_pending(1);
        });
    }

    /// Panics inside task bodies propagate out of the simulation with the
    /// original message.
    #[test]
    #[should_panic(expected = "task body exploded")]
    fn task_panic_propagates() {
        run_root(|cx| {
            cx.set_pending(1);
            cx.spawn(|_| panic!("task body exploded"));
            cx.wait();
        });
    }
}

/// The Chase-Lev lock-free deque variant of the Baseline runtime is
/// functionally equivalent to the lock-based one, and eliminates most
/// deque-lock atomics.
#[test]
fn chase_lev_baseline_correct_and_cheaper_on_atomics() {
    use bigtiny_core::DequeKind;
    let s = sys(1, 7, Protocol::Mesi);
    let locked = RuntimeConfig::new(RuntimeKind::Baseline);
    let mut cl = RuntimeConfig::new(RuntimeKind::Baseline);
    cl.deque_kind = DequeKind::ChaseLev;

    let (ra, a) = run_fib(&s, &locked, 12);
    let (rb, b) = run_fib(&s, &cl, 12);
    assert_eq!(ra, rb);
    assert_eq!(ra, serial_fib(12));
    let all: Vec<usize> = (0..8).collect();
    let amos_locked = a.report.mem_stats_over(&all).amos;
    let amos_cl = b.report.mem_stats_over(&all).amos;
    assert!(
        amos_cl < amos_locked,
        "Chase-Lev must issue fewer atomics: {amos_cl} vs {amos_locked}"
    );
}

/// Steal telemetry is collected on every run (it is pure host-side
/// bookkeeping), is consistent with the coarse runtime counters, and DTS
/// runs populate the ULI round-trip histogram.
#[test]
fn steal_telemetry_matches_counters() {
    use bigtiny_core::TaskEventKind;
    let s = sys(1, 7, Protocol::GpuWb);
    for kind in [RuntimeKind::Baseline, RuntimeKind::Hcc, RuntimeKind::Dts] {
        let run = run_fib(&s, &RuntimeConfig::new(kind), 12).1;
        let tel = &run.telemetry;
        assert_eq!(tel.per_victim.len(), 8, "one victim slot per core");
        assert_eq!(
            tel.total_attempts(),
            run.stats.steal_attempts,
            "{kind:?}: per-victim attempts must sum to the coarse counter"
        );
        assert_eq!(
            tel.total_hits(),
            run.stats.steals,
            "{kind:?}: per-victim hits must sum to the coarse counter"
        );
        // Without faults every attempt resolves at most once; the only
        // unresolved ones are DTS steals abandoned because the program
        // completed while the thief awaited its response (at most one per
        // worker).
        let resolved = tel.total_hits() + tel.total_misses();
        assert!(resolved <= tel.total_attempts(), "{kind:?}");
        assert!(tel.total_attempts() - resolved <= 8, "{kind:?}");
        assert!(tel.joins > 0, "{kind:?}: fib joins many times");
        // A worker never steals from itself.
        for (v, c) in tel.per_victim.iter().enumerate() {
            assert!(c.hits <= c.attempts, "victim {v}");
        }
        if kind == RuntimeKind::Dts {
            assert!(tel.uli_rtt.count() > 0, "DTS steals round-trip over ULI");
            assert!(tel.uli_rtt.mean() > 0.0);
            assert!(tel.hsc_elisions > 0, "fib elides on never-stolen parents");
        } else {
            assert_eq!(tel.uli_rtt.count(), 0, "{kind:?} never uses ULI");
        }
        // Task events are off by default.
        assert!(run.task_events.is_empty());
    }

    // With recording on, lifecycle events are present, balanced, and sorted.
    let mut cfg = RuntimeConfig::new(RuntimeKind::Dts);
    cfg.record_task_events = true;
    let (val, run) = run_fib(&s, &cfg, 12);
    assert_eq!(val, serial_fib(12));
    let evs = &run.task_events;
    assert!(!evs.is_empty());
    let count = |k: fn(&TaskEventKind) -> bool| evs.iter().filter(|e| k(&e.kind)).count();
    let begins = count(|k| matches!(k, TaskEventKind::ExecBegin));
    let ends = count(|k| matches!(k, TaskEventKind::ExecEnd));
    let spawns = count(|k| matches!(k, TaskEventKind::Spawn { .. }));
    assert_eq!(begins, ends, "every started task finishes");
    assert_eq!(spawns as u64, run.stats.spawns + 1, "spawn events cover children plus the root");
    assert_eq!(
        count(|k| matches!(k, TaskEventKind::Stolen { .. })) as u64,
        run.stats.steals,
        "one Stolen event per successful steal"
    );
    assert!(evs.windows(2).all(|w| (w[0].cycle, w[0].core) <= (w[1].cycle, w[1].core)));
    // Recording events must not change simulated results.
    let base = run_fib(&s, &RuntimeConfig::new(RuntimeKind::Dts), 12).1;
    assert_eq!(base.report.completion_cycles, run.report.completion_cycles);
    assert_eq!(base.report.seq_op_hash, run.report.seq_op_hash);
}
