//! Property test: the simulated work-stealing deque behaves exactly like a
//! reference double-ended queue for any sequence of owner/thief operations.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;

use bigtiny_core::{SimDeque, TaskId};
use bigtiny_engine::{run_system, AddrSpace, SystemConfig, Worker};

#[derive(Clone, Copy, Debug)]
enum DqOp {
    PushTail(u32),
    PopTail,
    PopHead,
}

fn op_strategy() -> impl Strategy<Value = DqOp> {
    prop_oneof![
        (0u32..10_000).prop_map(DqOp::PushTail),
        Just(DqOp::PopTail),
        Just(DqOp::PopHead),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn deque_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..32)
    {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, capacity));
        let d = Arc::clone(&dq);
        let results: Arc<std::sync::Mutex<Vec<Option<Option<u32>>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let r2 = Arc::clone(&results);
        let ops2 = ops.clone();

        let config = SystemConfig::o3(1);
        let workers: Vec<Worker> = vec![Box::new(move |port| {
            for op in ops2 {
                let outcome = match op {
                    DqOp::PushTail(v) => {
                        let ok = d.push_tail(port, TaskId(v));
                        if ok { None } else { Some(None) } // encode "full"
                    }
                    DqOp::PopTail => Some(d.pop_tail(port).map(|t| t.0)),
                    DqOp::PopHead => Some(d.pop_head(port).map(|t| t.0)),
                };
                r2.lock().unwrap().push(outcome);
            }
            port.set_done();
        })];
        run_system(&config, workers);

        // Replay against the reference model.
        let mut model: VecDeque<u32> = VecDeque::new();
        let got = results.lock().unwrap();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DqOp::PushTail(v) => {
                    if model.len() < capacity {
                        model.push_back(*v);
                        prop_assert_eq!(got[i], None, "push {} accepted", i);
                    } else {
                        prop_assert_eq!(got[i], Some(None), "push {} rejected when full", i);
                    }
                }
                DqOp::PopTail => {
                    prop_assert_eq!(got[i], Some(model.pop_back()), "pop_tail {}", i);
                }
                DqOp::PopHead => {
                    prop_assert_eq!(got[i], Some(model.pop_front()), "pop_head {}", i);
                }
            }
        }
        prop_assert_eq!(dq.host_len(), model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Chase-Lev operations obey the same reference-deque semantics as
    /// the lock-based ones for any single-threaded op sequence.
    #[test]
    fn chase_lev_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..32)
    {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, capacity));
        let d = Arc::clone(&dq);
        let results: Arc<std::sync::Mutex<Vec<Option<Option<u32>>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let r2 = Arc::clone(&results);
        let ops2 = ops.clone();

        let config = SystemConfig::o3(1);
        let workers: Vec<Worker> = vec![Box::new(move |port| {
            for op in ops2 {
                let outcome = match op {
                    DqOp::PushTail(v) => {
                        let ok = d.cl_push_tail(port, TaskId(v));
                        if ok { None } else { Some(None) }
                    }
                    DqOp::PopTail => Some(d.cl_pop_tail(port).map(|t| t.0)),
                    DqOp::PopHead => Some(d.cl_steal(port).map(|t| t.0)),
                };
                r2.lock().unwrap().push(outcome);
            }
            port.set_done();
        })];
        run_system(&config, workers);

        let mut model: VecDeque<u32> = VecDeque::new();
        let got = results.lock().unwrap();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DqOp::PushTail(v) => {
                    if model.len() < capacity {
                        model.push_back(*v);
                        prop_assert_eq!(got[i], None, "cl push {} accepted", i);
                    } else {
                        prop_assert_eq!(got[i], Some(None), "cl push {} rejected when full", i);
                    }
                }
                DqOp::PopTail => {
                    prop_assert_eq!(got[i], Some(model.pop_back()), "cl pop_tail {}", i);
                }
                DqOp::PopHead => {
                    prop_assert_eq!(got[i], Some(model.pop_front()), "cl steal {}", i);
                }
            }
        }
        prop_assert_eq!(dq.host_len(), model.len());
    }
}
