//! Randomized-but-deterministic test: the simulated work-stealing deque
//! behaves exactly like a reference double-ended queue for any sequence of
//! owner/thief operations.
//!
//! These were originally `proptest` properties; they are now driven by the
//! simulator's own seeded [`XorShift64`] so the workspace has no external
//! dependencies and every CI run explores exactly the same cases.

use std::collections::VecDeque;
use std::sync::Arc;

use bigtiny_core::{SimDeque, TaskId};
use bigtiny_engine::{run_system, AddrSpace, SystemConfig, Worker, XorShift64};

#[derive(Clone, Copy, Debug)]
enum DqOp {
    PushTail(u32),
    PopTail,
    PopHead,
}

fn random_ops(rng: &mut XorShift64) -> (Vec<DqOp>, usize) {
    let capacity = 1 + rng.next_below(31) as usize;
    let len = 1 + rng.next_below(119);
    let ops = (0..len)
        .map(|_| match rng.next_below(3) {
            0 => DqOp::PushTail(rng.next_below(10_000) as u32),
            1 => DqOp::PopTail,
            _ => DqOp::PopHead,
        })
        .collect();
    (ops, capacity)
}

/// Runs `ops` against the simulated deque on one core; `chase_lev` selects
/// the lock-free entry points. Returns the observed outcomes:
/// `None` = push accepted, `Some(x)` = pop result (or rejected push).
fn run_deque(
    ops: &[DqOp],
    capacity: usize,
    chase_lev: bool,
) -> (Arc<SimDeque>, Vec<Option<Option<u32>>>) {
    let mut space = AddrSpace::new();
    let dq = Arc::new(SimDeque::new(&mut space, capacity));
    let d = Arc::clone(&dq);
    let results: Arc<std::sync::Mutex<Vec<Option<Option<u32>>>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    let ops2 = ops.to_vec();

    let config = SystemConfig::o3(1);
    let workers: Vec<Worker> = vec![Box::new(move |port| {
        for op in ops2 {
            let outcome = match op {
                DqOp::PushTail(v) => {
                    let ok = if chase_lev {
                        d.cl_push_tail(port, TaskId(v))
                    } else {
                        d.push_tail(port, TaskId(v))
                    };
                    if ok {
                        None
                    } else {
                        Some(None)
                    } // encode "full"
                }
                DqOp::PopTail => Some(
                    if chase_lev { d.cl_pop_tail(port) } else { d.pop_tail(port) }.map(|t| t.0),
                ),
                DqOp::PopHead => {
                    Some(if chase_lev { d.cl_steal(port) } else { d.pop_head(port) }.map(|t| t.0))
                }
            };
            r2.lock().unwrap().push(outcome);
        }
        port.set_done();
    })];
    run_system(&config, workers);
    let got = results.lock().unwrap().clone();
    (dq, got)
}

/// Replays `ops` against a host `VecDeque` and checks each observed outcome.
fn check_against_model(
    ops: &[DqOp],
    capacity: usize,
    got: &[Option<Option<u32>>],
    final_len: usize,
) {
    let mut model: VecDeque<u32> = VecDeque::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            DqOp::PushTail(v) => {
                if model.len() < capacity {
                    model.push_back(*v);
                    assert_eq!(got[i], None, "push {i} accepted");
                } else {
                    assert_eq!(got[i], Some(None), "push {i} rejected when full");
                }
            }
            DqOp::PopTail => assert_eq!(got[i], Some(model.pop_back()), "pop_tail {i}"),
            DqOp::PopHead => assert_eq!(got[i], Some(model.pop_front()), "pop_head {i}"),
        }
    }
    assert_eq!(final_len, model.len());
}

#[test]
fn deque_matches_reference_model() {
    let mut rng = XorShift64::new(0x4445_5155_0001);
    for _ in 0..48 {
        let (ops, capacity) = random_ops(&mut rng);
        let (dq, got) = run_deque(&ops, capacity, false);
        check_against_model(&ops, capacity, &got, dq.host_len());
    }
}

/// The Chase-Lev operations obey the same reference-deque semantics as the
/// lock-based ones for any single-threaded op sequence.
#[test]
fn chase_lev_matches_reference_model() {
    let mut rng = XorShift64::new(0x4445_5155_0002);
    for _ in 0..48 {
        let (ops, capacity) = random_ops(&mut rng);
        let (dq, got) = run_deque(&ops, capacity, true);
        check_against_model(&ops, capacity, &got, dq.host_len());
    }
}
