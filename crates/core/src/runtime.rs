//! The work-stealing runtime: the paper's core contribution.
//!
//! Three variants of `spawn`/`wait`, transcribed from Figure 3:
//!
//! * [`RuntimeKind::Baseline`] — Figure 3(a): per-deque locks only, for
//!   hardware-based cache coherence.
//! * [`RuntimeKind::Hcc`] — Figure 3(b): a `cache_invalidate` after every
//!   deque lock acquire and a `cache_flush` before every release; `rc` read
//!   with an AMO; an unconditional invalidate when leaving `wait`; stolen
//!   tasks bracketed by invalidate/flush.
//! * [`RuntimeKind::Dts`] — Figure 3(c): direct task stealing over
//!   user-level interrupts. Deques become private (no locks, no
//!   invalidate/flush on local access — just `uli_disable`/`uli_enable`);
//!   the victim steals on behalf of the thief inside the ULI handler; the
//!   `has_stolen_child` flag elides AMOs, flushes, and invalidates entirely
//!   when no child of a task was ever stolen.
//!
//! # Fail-stop crashes and self-healing recovery
//!
//! When the armed fault plan includes a crash dimension
//! (`FaultPlan::crash_armed()`), crash-eligible tiny cores can fail-stop
//! mid-run. A crash is polled only at scheduler safe points (top of a
//! scheduling step, spawn entry) where no simulated or host lock is held;
//! it marks the core's ULI unit dead in sequenced order and unwinds the
//! worker to `run_task_parallel`, which either retires the core's
//! sequencer token (permanent crash) or parks it in a sequenced dormant
//! loop until its scheduled revival. Survivors observe the death through
//! a `Dead` steal reply or a periodic sequenced `dead_mask` scan, race a
//! sequenced claim word (first grant wins, so recovery is deterministic),
//! and the winner then: discards the dead core's deque (every entry
//! descends from a task frozen on its execution stack), rescues unclaimed
//! mailbox tasks (they belong to live families), and re-spawns the bottom
//! task of the frozen stack from its recorded body factory — the
//! replacement inherits the original's parent and join obligation, so no
//! join counter is left short. Recovery gives at-least-once execution:
//! subtrees can run twice, which is why re-execution-tolerant
//! applications gate their side effects on [`TaskCx::reexec_possible`]
//! (idempotent slot writes instead of read-modify-write accumulation) —
//! the same gate fires under the multiplicity deque policies, whose
//! double claims re-run a completed task as an audited duplicate.

use std::collections::VecDeque;
use std::sync::Arc;

use bigtiny_engine::sync::RwLock;

use bigtiny_engine::{
    run_system, AddrSpace, CorePort, FlightKind, RacyTag, RunReport, SyncNote, SystemConfig,
    TimeCategory, UliMessage, UliOutcome, Worker, WATCHDOG_MSG,
};

use crate::deque::SimDeque;
use crate::task::{field, RespawnFn, TaskBody, TaskId, TaskRecord, WorkSpan};
use crate::telemetry::{StealTelemetry, TaskEvent, TaskEventKind};

/// Panic payload used to unwind a fail-stopped worker's stack down to the
/// catch in `run_task_parallel`. Private to the runtime: any other payload
/// crossing that catch is re-raised untouched.
struct CrashToken;

/// Which of the paper's three runtime implementations to use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuntimeKind {
    /// Figure 3(a): for hardware-based cache coherence.
    Baseline,
    /// Figure 3(b): for heterogeneous cache coherence.
    Hcc,
    /// Figure 3(c): direct task stealing via user-level interrupts.
    Dts,
}

impl RuntimeKind {
    /// Short label used in configuration names (`base`, `hcc`, `dts`).
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Baseline => "base",
            RuntimeKind::Hcc => "hcc",
            RuntimeKind::Dts => "dts",
        }
    }
}

/// Which deque policy the Baseline (hardware-coherence) runtime uses. The
/// paper's pseudocode uses per-deque locks; Chase-Lev is the classic
/// lock-free alternative it cites; the two multiplicity policies trade
/// exactly-once execution for an owner fast path with *no* atomics at all
/// (Castañeda & Piña's fence-free work stealing with multiplicity, and
/// idempotent work stealing à la Michael et al.).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DequeKind {
    /// Lock-protected deque (Figure 3(a)).
    Locked,
    /// Chase-Lev lock-free deque (owner pops race thieves with a CAS only
    /// on the last element). Only meaningful under hardware coherence.
    ChaseLev,
    /// Fence-free LIFO owner pop with multiplicity: the owner's claim is a
    /// plain `tail` store — no AMO even on the last element. A thief's CAS
    /// landing in the owner's pop window double-claims that last task; the
    /// owner then re-executes it as an audited duplicate (at-most-twice,
    /// verified by the checker's `Multiplicity` audit mode). Requires an
    /// idempotent kernel. Only meaningful under hardware coherence.
    FenceFree,
    /// Idempotent work stealing: the owner takes FIFO from the *same* end
    /// thieves steal from, publishing its `head` advance with a plain racy
    /// store instead of a CAS. A stale owner view double-claims stolen
    /// slots (re-executed as audited duplicates); duplicates are more
    /// frequent than under [`DequeKind::FenceFree`] because owner and
    /// thieves contend on every slot, not just the last. Requires an
    /// idempotent kernel. Only meaningful under hardware coherence.
    Idempotent,
}

impl DequeKind {
    /// Whether this policy may execute a task more than once (at most
    /// twice): relaxes the checker expectation from exactly-once to the
    /// `Multiplicity` audit mode and requires an idempotent kernel.
    pub fn multiplicity(self) -> bool {
        matches!(self, DequeKind::FenceFree | DequeKind::Idempotent)
    }

    /// Stable label used in setup names and metrics documents.
    pub fn label(self) -> &'static str {
        match self {
            DequeKind::Locked => "locked",
            DequeKind::ChaseLev => "chase-lev",
            DequeKind::FenceFree => "fence-free",
            DequeKind::Idempotent => "idempotent",
        }
    }
}

/// How a thief picks its victim.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VictimPolicy {
    /// Uniformly random among the other workers (the paper's
    /// `choose_victim`; the classic work-stealing choice).
    Random,
    /// Cycle through the other workers in id order.
    RoundRobin,
    /// Prefer mesh-nearest victims, walking outward on failures — an
    /// extension exploiting big.TINY's physical locality (steal latency and
    /// ULI hops grow with distance).
    NearestFirst,
}

/// A seeded sync-discipline bug, for exercising the DRF conformance
/// checker (`bigtiny-checker`). The mutation drops or corrupts exactly one
/// protocol-relevant operation; the functional result of the run is still
/// correct (host state is updated under the engine's global token), but on
/// real hardware the mutated schedule could observe stale data — which is
/// precisely what the checker must flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mutation {
    /// What to break.
    pub kind: MutationKind,
    /// Worker (core id) whose operation is mutated.
    pub core: usize,
    /// Which occurrence on that core to hit (0 = first), counted per
    /// mutation kind in program order. Ignored by the `HscStuck*` kinds,
    /// which corrupt every `has_stolen_child` read on the core.
    pub nth: u64,
}

/// The kinds of seeded sync-discipline bugs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// Skip one `cache_flush` (Figure 3's release-side writeback).
    DropFlush,
    /// Skip one `cache_invalidate` (Figure 3's acquire-side self-invalidate).
    DropInvalidate,
    /// Every `has_stolen_child` read returns `false`: the DTS runtime elides
    /// AMOs and invalidates even for joins whose children *were* stolen.
    /// This is the dangerous direction of a stuck-at fault on the flag.
    HscStuckFalse,
    /// Every `has_stolen_child` read returns `true`: the elision never
    /// fires. Slower, but conservative — the checker must stay clean.
    HscStuckTrue,
    /// Force one task to execute twice: after the `nth` clean local pop on
    /// the target core, the popped task is re-executed as an audited
    /// duplicate. Only meaningful under a multiplicity deque policy
    /// ([`DequeKind::multiplicity`]); unlike the coherence mutations this
    /// does not seed a *bug* — it seeds the duplicate the policy's
    /// at-most-twice contract permits, so the DPOR sweep can prove the
    /// checker battery and kernel verify stay clean with duplicates
    /// present under every schedule.
    DupTask,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Which Figure 3 variant to run.
    pub kind: RuntimeKind,
    /// Capacity of each worker's deque.
    pub deque_capacity: usize,
    /// Idle back-off after a failed steal, in cycles.
    pub steal_backoff_cycles: u64,
    /// Maximum back-off as a multiple of `steal_backoff_cycles` (the
    /// exponential back-off cap).
    pub steal_backoff_max_factor: u64,
    /// Victim-selection policy.
    pub victim_policy: VictimPolicy,
    /// Deque implementation for the Baseline runtime.
    pub deque_kind: DequeKind,
    /// Ablation: make the DTS victim hand out the *newest* task (deque tail)
    /// instead of the oldest (head). The paper's pseudocode pops the tail in
    /// the handler; classic work stealing takes the head. Default: head.
    pub dts_steal_from_tail: bool,
    /// Ablation: disable the `has_stolen_child` optimization in DTS
    /// (Section IV-C), falling back to conservative AMOs + invalidate.
    pub dts_has_stolen_child_opt: bool,
    /// Deliberately omit all `cache_invalidate`/`cache_flush` operations.
    /// This produces a runtime that is *incorrect on real hardware*; it
    /// exists to demonstrate that the staleness checker catches the bugs the
    /// paper's protocol prevents. Never enable outside tests/ablations.
    pub skip_coherence_ops: bool,
    /// Hardened DTS only (active when a fault plan is armed): cycles a thief
    /// waits for a ULI steal response before declaring it lost. Must exceed
    /// the worst-case request + handler + response latency or healthy steals
    /// are misclassified as timeouts.
    pub uli_response_timeout_cycles: u64,
    /// Hardened DTS only: consecutive failed ULI steal attempts (NACKs,
    /// empty victims, timeouts) before a thief gives up on direct task
    /// stealing for one round and steals through shared memory instead.
    pub uli_giveup_attempts: u64,
    /// Seeded sync-discipline bug for checker tests (see [`Mutation`]).
    /// `None` (the default) adds no code to any hot path.
    pub mutation: Option<Mutation>,
    /// Record per-task lifecycle events ([`TaskEvent`]) for trace export.
    /// Host-side only: recording reads clocks the simulation already
    /// computed and never charges a cycle, so it cannot perturb simulated
    /// results; `false` (the default) allocates no buffers at all.
    pub record_task_events: bool,
    /// Externally shared [`RuntimeStats`]: when set, the runtime counts
    /// into this handle instead of a private one, so a heartbeat sink can
    /// read live spawn/steal/recovery counters mid-run. Host-side only and
    /// out-of-band (reads race worker updates); the final
    /// [`TaskRun::stats`] is unaffected. `None` (the default) changes
    /// nothing.
    pub live_stats: Option<Arc<RwLock<RuntimeStats>>>,
}

impl RuntimeConfig {
    /// The configuration used for a given runtime kind with paper defaults.
    pub fn new(kind: RuntimeKind) -> Self {
        RuntimeConfig {
            kind,
            deque_capacity: 1 << 14,
            steal_backoff_cycles: 24,
            steal_backoff_max_factor: 32,
            victim_policy: VictimPolicy::Random,
            deque_kind: DequeKind::Locked,
            dts_steal_from_tail: false,
            dts_has_stolen_child_opt: true,
            skip_coherence_ops: false,
            uli_response_timeout_cycles: 4096,
            uli_giveup_attempts: 4,
            mutation: None,
            record_task_events: false,
            live_stats: None,
        }
    }
}

/// Counters maintained by the runtime during a run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct RuntimeStats {
    /// Tasks spawned.
    pub spawns: u64,
    /// Tasks executed (spawned tasks + the root).
    pub tasks_executed: u64,
    /// Steal attempts (lock-and-look or ULI request sent).
    pub steal_attempts: u64,
    /// Successful steals.
    pub steals: u64,
    /// ULI steal requests that were NACKed (DTS only).
    pub steal_nacks: u64,
    /// ULI steal responses that never arrived within the hardened-mode
    /// timeout (only possible under an armed fault plan).
    pub uli_timeouts: u64,
    /// Steals performed through the shared-memory fallback path after the
    /// DTS runtime gave up on ULI for a round (hardened mode only).
    pub fallback_steals: u64,
    /// Steal attempts that the fault plan forced to miss before any deque
    /// or ULI traffic.
    pub forced_steal_misses: u64,
    /// Crash recovery: unstarted tasks discarded from fail-stopped cores'
    /// deques (their subtrees are recreated by re-execution).
    pub orphans_reclaimed: u64,
    /// Crash recovery: stolen tasks rescued from fail-stopped thieves'
    /// mailboxes and requeued on the recovering core.
    pub mailbox_rescues: u64,
    /// Crash recovery: tasks re-spawned because their executor fail-stopped
    /// mid-body (at-least-once re-executions).
    pub reexecutions: u64,
    /// Crash recovery: join counters repaired by a re-spawned task
    /// inheriting the dead original's pending decrement.
    pub joins_repaired: u64,
    /// Crash recovery: victim-quarantine events (a worker removing a dead
    /// core from its victim set, or doubling an existing quarantine's
    /// re-probe backoff).
    pub quarantines: u64,
    /// Crash recovery: cores that came back from a fail-stop and rejoined
    /// scheduling.
    pub revivals: u64,
    /// Multiplicity policies: tasks re-executed as duplicates after a
    /// double claim (owner and thief both won the slot), plus any seeded
    /// by [`MutationKind::DupTask`]. Always 0 for exactly-once policies.
    pub duplicate_executions: u64,
    /// Work/span profile of the task graph.
    pub workspan: WorkSpan,
}

/// The result of one simulated task-parallel run.
#[derive(Clone, Debug)]
pub struct TaskRun {
    /// Engine-level measurements (cycles, caches, traffic, ULI).
    pub report: RunReport,
    /// Runtime-level measurements (tasks, steals, work/span).
    pub stats: RuntimeStats,
    /// Scheduler telemetry: per-victim steal outcomes, ULI round-trip
    /// latency histogram, `has_stolen_child` elisions, joins.
    pub telemetry: StealTelemetry,
    /// Task lifecycle events in `(cycle, core)` order; empty unless
    /// [`RuntimeConfig::record_task_events`] was set.
    pub task_events: Vec<TaskEvent>,
}

/// Functional state shared by all workers.
pub(crate) struct RtShared {
    cfg: RuntimeConfig,
    deques: Vec<SimDeque>,
    tasks: RwLock<Vec<TaskRecord>>,
    mailboxes: Vec<Mailbox>,
    counters: Arc<RwLock<RuntimeStats>>,
    stack_bases: Vec<u64>,
    stack_bytes: u64,
    /// Instructions consumed by the ULI handler on each worker since that
    /// worker's last profiling mark; excluded from user-work attribution so
    /// the work/span profile stays schedule-invariant.
    handler_insts: Vec<RwLock<u64>>,
    /// Per-worker victim preference order (nearest mesh neighbours first),
    /// used by [`VictimPolicy::NearestFirst`] and `RoundRobin`.
    victim_order: Vec<Vec<usize>>,
    /// Per-worker occurrence counters for the armed [`Mutation`] (bumped
    /// only while a mutation targets that worker's coherence ops, so the
    /// un-mutated hot path never touches them).
    mut_counters: Vec<RwLock<u64>>,
    /// Steal telemetry (always collected — pure host-side counters).
    tel: RwLock<StealTelemetry>,
    /// Per-worker task-event buffers; `None` unless
    /// [`RuntimeConfig::record_task_events`]. Per-worker so each buffer's
    /// order is that worker's deterministic program order — a single
    /// shared vector would interleave by host scheduling.
    task_events: Option<Vec<RwLock<Vec<TaskEvent>>>>,
    // Crash-recovery state: allocated/used only when the fault plan can
    // fail-stop cores, so crash support adds nothing — not even simulated
    // address-space layout changes — to other runs.
    /// Host-side per-worker stacks of currently-executing task ids. A
    /// crash unwind skips the pops, freezing the snapshot recovery reads.
    exec_stacks: Vec<RwLock<Vec<u32>>>,
    /// Per-core recovery claim words (simulated address + host state); the
    /// first worker to win the sequenced AMO on a dead core's claim owns
    /// its recovery.
    claims: Vec<Claim>,
    /// Dedicated arena for respawned task records. Separate from worker
    /// stacks: the winner's `stack_top` is save/restored by frame exit, so
    /// carving respawn records from it would alias live allocations.
    respawn_base: u64,
    respawn_bytes: u64,
    respawn_cursor_addr: bigtiny_coherence::Addr,
    respawn_cursor: RwLock<u64>,
}

/// One core's recovery claim.
struct Claim {
    addr: bigtiny_coherence::Addr,
    owner: RwLock<Option<usize>>,
    /// Set by the claim winner once recovery finished; a revivable core
    /// stays dormant until then so its fresh work cannot be mistaken for
    /// pre-crash orphans.
    done: RwLock<bool>,
}

/// A thief's steal mailbox. Functionally a queue rather than a single word:
/// under fault injection a thief can time out on a steal request whose
/// victim nevertheless services it later, so a second victim's task may be
/// delivered while the first still sits unclaimed. ULI responses and mailbox
/// pushes happen in the same (token-ordered) handler executions, so queue
/// order always matches response order.
struct Mailbox {
    addr: bigtiny_coherence::Addr,
    value: RwLock<VecDeque<u64>>,
    /// Set (inside the same sequenced AMO that drains the queue) when
    /// crash recovery reclaims this mailbox: a victim handler whose push
    /// sequences after the seal keeps its task instead of stranding it.
    /// Cleared if the owner revives.
    sealed: RwLock<bool>,
}

impl RtShared {
    fn new(
        cfg: RuntimeConfig,
        space: &mut AddrSpace,
        workers: usize,
        topology: bigtiny_mesh::Topology,
        crash_armed: bool,
    ) -> Self {
        let deques = (0..workers).map(|_| SimDeque::new(space, cfg.deque_capacity)).collect();
        let mailboxes = (0..workers)
            .map(|_| Mailbox {
                addr: space.reserve_lines(64),
                value: RwLock::new(VecDeque::new()),
                sealed: RwLock::new(false),
            })
            .collect();
        // Crash-only allocations come last and only when armed, so the
        // simulated address layout of every other run is untouched.
        let (claims, respawn_cursor_addr, respawn_base, respawn_bytes) = if crash_armed {
            let claims = (0..workers)
                .map(|_| Claim {
                    addr: space.reserve_lines(64),
                    owner: RwLock::new(None),
                    done: RwLock::new(false),
                })
                .collect();
            let cursor = space.reserve_lines(64);
            let bytes = 1u64 << 18;
            let base = space.reserve_lines(bytes).0;
            (claims, cursor, base, bytes)
        } else {
            (Vec::new(), bigtiny_coherence::Addr(0), 0, 0)
        };
        let stack_bytes = 1 << 20;
        let stack_bases = (0..workers).map(|_| space.reserve_lines(stack_bytes).0).collect();
        let victim_order = (0..workers)
            .map(|w| {
                let me = topology.core_tile(w);
                let mut order: Vec<usize> = (0..workers).filter(|v| *v != w).collect();
                order.sort_by_key(|v| (me.hops_to(topology.core_tile(*v)), *v));
                order
            })
            .collect();
        let task_events =
            cfg.record_task_events.then(|| (0..workers).map(|_| RwLock::new(Vec::new())).collect());
        let counters = cfg
            .live_stats
            .clone()
            .unwrap_or_else(|| Arc::new(RwLock::new(RuntimeStats::default())));
        RtShared {
            cfg,
            deques,
            tasks: RwLock::new(Vec::new()),
            mailboxes,
            counters,
            stack_bases,
            stack_bytes,
            handler_insts: (0..workers).map(|_| RwLock::new(0)).collect(),
            victim_order,
            mut_counters: (0..workers).map(|_| RwLock::new(0)).collect(),
            tel: RwLock::new(StealTelemetry::new(workers)),
            task_events,
            exec_stacks: (0..workers).map(|_| RwLock::new(Vec::new())).collect(),
            claims,
            respawn_base,
            respawn_bytes,
            respawn_cursor_addr,
            respawn_cursor: RwLock::new(0),
        }
    }

    /// True exactly when this call is the armed mutation's target (the
    /// `nth` occurrence of `kind` on worker `wid`, in program order).
    fn mutation_hits(&self, kind: MutationKind, wid: usize) -> bool {
        let Some(m) = self.cfg.mutation else { return false };
        if m.kind != kind || m.core != wid {
            return false;
        }
        let mut c = self.mut_counters[wid].write();
        let n = *c;
        *c += 1;
        n == m.nth
    }

    /// Figure 3's `cache_invalidate`, with the ablation and mutation hooks.
    /// All runtime-issued invalidates route through here so both the
    /// `skip_coherence_ops` ablation and a seeded [`MutationKind::DropInvalidate`]
    /// cover every site, including the victim-side steal handler.
    fn cache_invalidate(&self, port: &mut CorePort, wid: usize) {
        if self.cfg.skip_coherence_ops || self.mutation_hits(MutationKind::DropInvalidate, wid) {
            return;
        }
        port.invalidate_cache();
    }

    /// Figure 3's `cache_flush`; see [`RtShared::cache_invalidate`].
    fn cache_flush(&self, port: &mut CorePort, wid: usize) {
        if self.cfg.skip_coherence_ops || self.mutation_hits(MutationKind::DropFlush, wid) {
            return;
        }
        port.flush_cache();
    }

    fn parent_of(&self, t: TaskId) -> Option<TaskId> {
        self.tasks.read()[t.0 as usize].parent
    }

    fn rc_addr(&self, t: TaskId) -> bigtiny_coherence::Addr {
        self.tasks.read()[t.0 as usize].rc_addr()
    }

    fn hsc_addr(&self, t: TaskId) -> bigtiny_coherence::Addr {
        self.tasks.read()[t.0 as usize].hsc_addr()
    }

    /// The DTS victim-side steal handler (Figure 3(c) lines 47-53), invoked
    /// by the engine when a ULI arrives at this worker.
    fn handle_steal_request(&self, port: &mut CorePort, wid: usize, thief: usize) {
        let insts_at_entry = port.instructions();
        // Handler prologue: a handful of instructions to read the message.
        port.advance(4);
        let take = |dq: &SimDeque, port: &mut CorePort| {
            if self.cfg.dts_steal_from_tail {
                dq.pop_tail(port)
            } else {
                dq.pop_head(port)
            }
        };
        let task = if port.faults_active() {
            // Hardened mode: fallback thieves may touch this deque through
            // shared memory, so the handler takes the lock and brackets the
            // access HCC-style (see `TaskCx::fallback_steal`).
            let dq = &self.deques[wid];
            dq.lock(port);
            self.cache_invalidate(port, wid);
            let t = take(dq, port);
            self.cache_flush(port, wid);
            dq.unlock(port);
            t
        } else {
            take(&self.deques[wid], port)
        };
        if let Some(t) = task {
            // Mark the parent before exposing the task (line 50):
            // has_stolen_child is a plain store, since the parent lives on
            // this very core.
            if let Some(p) = self.parent_of(t) {
                let addr = self.hsc_addr(p);
                port.store_words(addr, 1, || {
                    self.tasks.write()[p.0 as usize].has_stolen_child = true;
                });
                port.annotate_sync(SyncNote::HscSet { task: p.0 });
            }
            // write_stolen_task (line 51): the task pointer goes through the
            // thief's mailbox in shared memory. The seal check shares the
            // push's sequenced critical section: it either lands before
            // recovery's drain-and-seal (and is rescued) or bounces here.
            let mb = &self.mailboxes[thief];
            let mut bounced = false;
            port.store_words(mb.addr, 1, || {
                if *mb.sealed.read() {
                    bounced = true;
                } else {
                    mb.value.write().push_back(t.to_payload());
                }
            });
            if bounced {
                // The thief fail-stopped and its mailbox was already
                // reclaimed: keep the task (one slot is free — we just
                // popped it) and answer "empty".
                let dq = &self.deques[wid];
                dq.lock(port);
                self.cache_invalidate(port, wid);
                assert!(dq.push_tail(port, t), "bounced steal no longer fits its own deque");
                self.cache_flush(port, wid);
                dq.unlock(port);
                port.uli_send_response(thief, 0);
            } else {
                // cache_flush (line 52): make the task and everything this
                // worker produced visible to the thief.
                self.cache_flush(port, wid);
                self.counters.write().steals += 1;
                port.uli_send_response(thief, 1);
            }
        } else {
            port.uli_send_response(thief, 0);
        }
        *self.handler_insts[wid].write() += port.instructions() - insts_at_entry;
    }
}

/// The per-worker execution context handed to every task body.
///
/// `TaskCx` is both the scheduler state of one worker and the TBB-like API
/// surface of the paper's Section III-A: [`TaskCx::spawn`] and
/// [`TaskCx::wait`], with [`crate::parallel_for`] and
/// [`crate::parallel_invoke`] layered on top.
pub struct TaskCx<'a> {
    port: &'a mut CorePort,
    rt: Arc<RtShared>,
    wid: usize,
    stack_top: u64,
    inst_mark: u64,
    current: Option<TaskId>,
    backoff: u64,
    victim_cursor: usize,
    /// Consecutive failed ULI steal attempts (hardened DTS only); reaching
    /// `RuntimeConfig::uli_giveup_attempts` triggers one shared-memory
    /// fallback steal, after which the count restarts.
    uli_fail_streak: u64,
    /// Whether the fault plan can fail-stop cores (cached from the port).
    /// Every crash/recovery hook below no-ops when false.
    crash_armed: bool,
    /// Scheduling-step counter driving the periodic sequenced dead-core
    /// scan (every 64th step).
    tick: u64,
    /// Cores this worker currently believes dead (from `Dead` replies or
    /// `dead_mask` scans); a core leaving the set on a later scan is how
    /// revival is observed. A growable bitset, so discovery works for
    /// every core of a >64-core system.
    known_dead: bigtiny_mesh::CoreSet,
    /// Cores whose recovery claim this worker already raced (win or lose),
    /// so each death costs at most one claim AMO per worker.
    claim_tried: bigtiny_mesh::CoreSet,
    /// Number of currently-quarantined victims (fast path: victim
    /// selection is untouched while zero).
    quarantined_count: usize,
    /// Per-victim quarantine state.
    health: Vec<VictimHealth>,
}

/// One victim's quarantine state, local to a thief.
#[derive(Clone, Copy, Default)]
struct VictimHealth {
    quarantined: bool,
    /// Local cycle at which the thief will probe the victim again.
    reprobe_at: u64,
    /// Current re-probe backoff, doubled on every failed probe.
    backoff: u64,
}

impl std::fmt::Debug for TaskCx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCx").field("worker", &self.wid).field("current", &self.current).finish()
    }
}

impl<'a> TaskCx<'a> {
    fn new(port: &'a mut CorePort, rt: Arc<RtShared>, wid: usize) -> Self {
        let stack_top = rt.stack_bases[wid];
        let backoff = rt.cfg.steal_backoff_cycles;
        let crash_armed = port.crash_armed();
        let health = vec![VictimHealth::default(); rt.deques.len()];
        TaskCx {
            port,
            rt,
            wid,
            stack_top,
            inst_mark: 0,
            current: None,
            backoff,
            victim_cursor: 0,
            uli_fail_streak: 0,
            crash_armed,
            tick: 0,
            known_dead: bigtiny_mesh::CoreSet::new(),
            claim_tried: bigtiny_mesh::CoreSet::new(),
            quarantined_count: 0,
            health,
        }
    }

    /// Whether the `has_stolen_child` elision is in force. Under an armed
    /// fault plan it is disabled: fallback steals bypass the victim-side
    /// handler that maintains the flag, so hardened DTS always uses the
    /// conservative AMO + unconditional-invalidate protocol.
    fn dts_hsc_opt(&self) -> bool {
        self.rt.cfg.dts_has_stolen_child_opt && !self.port.faults_active()
    }

    /// Whether a multiplicity deque policy is active (Baseline runtime
    /// only; the HCC/DTS paths always use the locked deque protocol).
    fn multiplicity(&self) -> bool {
        self.rt.cfg.kind == RuntimeKind::Baseline && self.rt.cfg.deque_kind.multiplicity()
    }

    /// True when a task body may execute more than once: a fail-stop
    /// crash plan is armed (recovery re-runs the subtree a dead core was
    /// executing, at-least-once) or a multiplicity deque policy is active
    /// (a double-claimed task re-runs as an audited duplicate,
    /// at-most-twice). Re-execution-tolerant applications gate their side
    /// effects on this (idempotent slot writes instead of
    /// read-modify-write accumulation).
    pub fn reexec_possible(&self) -> bool {
        self.crash_armed || self.multiplicity()
    }

    /// The simulated core this worker runs on.
    pub fn worker_id(&self) -> usize {
        self.wid
    }

    /// Total number of workers.
    pub fn num_workers(&self) -> usize {
        self.rt.deques.len()
    }

    /// Access to the simulated core, for application data accesses.
    pub fn port(&mut self) -> &mut CorePort {
        self.port
    }

    // ------------------------------------------------------------------
    // Profiling
    // ------------------------------------------------------------------

    /// Attributes instructions executed since the last mark to the current
    /// task's serial work and path.
    fn tally_user(&mut self) {
        let now = self.port.instructions();
        let handler = std::mem::take(&mut *self.rt.handler_insts[self.wid].write());
        let delta = (now - self.inst_mark).saturating_sub(handler);
        self.inst_mark = now;
        if delta == 0 {
            return;
        }
        if let Some(cur) = self.current {
            let mut tasks = self.rt.tasks.write();
            let prof = &mut tasks[cur.0 as usize].profile;
            prof.serial_work += delta;
            prof.path += delta;
        }
    }

    /// Resets the mark so runtime-internal instructions are not attributed
    /// to user work.
    fn remark(&mut self) {
        self.inst_mark = self.port.instructions();
        *self.rt.handler_insts[self.wid].write() = 0;
    }

    // ------------------------------------------------------------------
    // Coherence helpers (no-ops in the deliberately-broken ablation;
    // individual calls droppable by a seeded checker mutation)
    // ------------------------------------------------------------------

    fn cache_invalidate(&mut self) {
        self.rt.cache_invalidate(self.port, self.wid);
    }

    fn cache_flush(&mut self) {
        self.rt.cache_flush(self.port, self.wid);
    }

    // ------------------------------------------------------------------
    // Telemetry (host-side only: no sequenced operations, no cycle
    // charges — see `crate::telemetry`)
    // ------------------------------------------------------------------

    /// Records one task lifecycle event when event recording is on. Also
    /// closes/reopens the port's open attribution span (a no-op unless
    /// attribution is armed) so every recorded event cycle is a span
    /// boundary — the critical-path replay can then walk spans and events
    /// in lockstep without ever splitting a span.
    fn record_event(&mut self, task: u32, kind: TaskEventKind) {
        self.port.attr_mark();
        // Mirror the lifecycle event onto the core's always-on flight
        // recorder (same zero-overhead discipline; the ring is port-local).
        self.port.flight_note(match kind {
            TaskEventKind::Spawn { .. } => FlightKind::TaskSpawn { task },
            TaskEventKind::ExecBegin => FlightKind::TaskBegin { task },
            TaskEventKind::ExecEnd => FlightKind::TaskEnd { task },
            TaskEventKind::Stolen { .. } => FlightKind::TaskStolen { task },
            TaskEventKind::Join => FlightKind::TaskJoin { task },
            TaskEventKind::Respawn { .. } => FlightKind::TaskRespawn { task },
            TaskEventKind::Discarded => FlightKind::TaskDiscarded { task },
            TaskEventKind::Duplicate { .. } => FlightKind::TaskDuplicate { task },
        });
        if let Some(bufs) = &self.rt.task_events {
            let cycle = self.port.now();
            bufs[self.wid].write().push(TaskEvent { cycle, core: self.wid, task, kind });
        }
    }

    /// Counts one steal attempt against `vid`.
    fn tel_attempt(&mut self, vid: usize) {
        self.port.flight_note(FlightKind::StealAttempt { victim: vid });
        self.rt.tel.write().per_victim[vid].attempts += 1;
    }

    /// Counts one successful steal from `vid`.
    fn tel_hit(&mut self, vid: usize) {
        self.port.flight_note(FlightKind::StealHit { victim: vid });
        self.rt.tel.write().per_victim[vid].hits += 1;
    }

    /// Counts one failed steal against `vid` (empty victim, NACK, timeout,
    /// or fault-forced miss).
    fn tel_miss(&mut self, vid: usize) {
        self.rt.tel.write().per_victim[vid].misses += 1;
    }

    // ------------------------------------------------------------------
    // Task allocation and field access
    // ------------------------------------------------------------------

    fn alloc_task(&mut self, body: Box<dyn TaskBody>, respawn: Option<RespawnFn>) -> TaskId {
        // Task records live on the spawning worker's simulated stack, like
        // the stack-allocated task objects of the paper's Figure 2.
        let base = self.rt.stack_bases[self.wid];
        assert!(
            self.stack_top + field::SIZE <= base + self.rt.stack_bytes,
            "simulated task stack overflow on worker {}",
            self.wid
        );
        let addr = bigtiny_coherence::Addr(self.stack_top);
        self.stack_top += field::SIZE;

        let parent = self.current;
        let id = {
            let mut tasks = self.rt.tasks.write();
            let id = TaskId(tasks.len() as u32);
            let mut rec = TaskRecord::new(body, parent, addr);
            rec.respawn = respawn;
            if let Some(p) = parent {
                rec.profile.spawn_path = tasks[p.0 as usize].profile.path;
            }
            tasks.push(rec);
            id
        };
        // Constructing the task object: descriptor + parent pointer stores.
        self.port.store_words(addr.offset(field::DESC), 2, || ());
        self.port.store_words(addr.offset(field::PARENT), 1, || ());
        self.record_event(id.0, TaskEventKind::Spawn { parent: parent.map(|p| p.0) });
        id
    }

    /// A plain `rc` read that tolerates staleness: on real hardware the
    /// cached value can only be *older* (larger) than the true count, which
    /// at worst costs an extra wait-loop iteration (Figure 3(c) line 8).
    /// Benign race: the join-counter spin. Remote decrements arrive by AMO
    /// (releases); the terminal read that observes zero synchronizes with
    /// them, so the checker treats [`RacyTag::RcWaitLoop`] loads as acquire
    /// reads of the counter's sync clock.
    fn read_rc_plain_racy(&mut self, t: TaskId) -> u64 {
        let addr = self.rt.rc_addr(t);
        self.port
            .load_words_racy(addr, 1, RacyTag::RcWaitLoop, || self.rt.tasks.read()[t.0 as usize].rc)
    }

    fn read_rc_amo(&mut self, t: TaskId) -> u64 {
        // The paper's `amo_or(p->rc, 0)`: an atomic read.
        let addr = self.rt.rc_addr(t);
        self.port.amo_word(addr, || self.rt.tasks.read()[t.0 as usize].rc)
    }

    /// Announces that the current task will spawn `n` children before its
    /// next [`TaskCx::wait`] — the paper's `this->reference_count = n`
    /// (Figure 2 line 16) / TBB's `set_ref_count`.
    ///
    /// Setting the count *before* any child is published is what makes a
    /// plain store safe: no thief can be decrementing yet.
    ///
    /// # Panics
    ///
    /// Panics if called outside a task, with children still outstanding, or
    /// with a previous `set_pending` budget not fully spawned.
    pub fn set_pending(&mut self, n: u64) {
        self.tally_user();
        let t = self.current.expect("set_pending() must be called from within a task");
        {
            let mut tasks = self.rt.tasks.write();
            let rec = &mut tasks[t.0 as usize];
            assert_eq!(rec.rc, 0, "set_pending() with children still outstanding");
            assert_eq!(rec.pending_budget, 0, "set_pending() before spawning the previous batch");
            rec.rc = n;
            rec.pending_budget = n;
        }
        // One plain store, as in Figure 2.
        let addr = self.rt.rc_addr(t);
        self.port.store_words(addr, 1, || ());
        self.port.advance(1);
        self.remark();
    }

    fn dec_rc_amo(&mut self, t: TaskId) {
        let addr = self.rt.rc_addr(t);
        self.port.amo_word(addr, || {
            let mut tasks = self.rt.tasks.write();
            let rc = &mut tasks[t.0 as usize].rc;
            debug_assert!(*rc > 0, "reference count underflow");
            *rc -= 1;
        });
    }

    fn dec_rc_plain(&mut self, t: TaskId) {
        let addr = self.rt.rc_addr(t);
        self.port.load(addr);
        self.port.store_words(addr, 1, || {
            let mut tasks = self.rt.tasks.write();
            let rc = &mut tasks[t.0 as usize].rc;
            debug_assert!(*rc > 0, "reference count underflow");
            *rc -= 1;
        });
    }

    fn read_hsc(&mut self, t: TaskId) -> bool {
        let addr = self.rt.hsc_addr(t);
        let v =
            self.port.load_words(addr, 1, || self.rt.tasks.read()[t.0 as usize].has_stolen_child);
        // Seeded stuck-at fault on the flag (checker test fixture): the
        // load still happens (same timing, same event stream shape); only
        // the value the runtime acts on is corrupted.
        match self.rt.cfg.mutation {
            Some(m) if m.core == self.wid && m.kind == MutationKind::HscStuckFalse => false,
            Some(m) if m.core == self.wid && m.kind == MutationKind::HscStuckTrue => true,
            _ => v,
        }
    }

    // ------------------------------------------------------------------
    // spawn — Figure 3, top half
    // ------------------------------------------------------------------

    /// Spawns `body` as a child of the current task (`task::spawn`).
    ///
    /// The number of children must have been announced with
    /// [`TaskCx::set_pending`] first, mirroring the paper's Figure 2.
    ///
    /// Bodies must be `Clone` so that, when a crash plan is armed, a
    /// factory can re-create the body if the core executing the task
    /// fail-stops (the clone is only taken in that mode).
    ///
    /// # Panics
    ///
    /// Panics if called outside a task body or without a `set_pending`
    /// budget.
    pub fn spawn(&mut self, body: impl FnOnce(&mut TaskCx<'_>) + Clone + Send + 'static) {
        self.maybe_crash();
        self.tally_user();
        let parent = self.current.expect("spawn() must be called from within a task");
        {
            let mut tasks = self.rt.tasks.write();
            let rec = &mut tasks[parent.0 as usize];
            assert!(rec.pending_budget > 0, "spawn() without a set_pending() budget");
            rec.pending_budget -= 1;
        }
        // Multiplicity policies also need the factory: a double-claimed
        // task's duplicate re-runs a fresh copy of the body.
        let respawn: Option<RespawnFn> = if self.crash_armed || self.multiplicity() {
            let b = body.clone();
            let f: Box<dyn FnMut() -> Box<dyn TaskBody> + Send> =
                Box::new(move || Box::new(b.clone()));
            Some(Arc::new(std::sync::Mutex::new(f)))
        } else {
            None
        };
        let child = self.alloc_task(Box::new(body), respawn);
        self.rt.counters.write().spawns += 1;
        // A few instructions of call overhead.
        self.port.advance(6);

        let enqueued = match self.rt.cfg.kind {
            RuntimeKind::Baseline => {
                let dq = &self.rt.deques[self.wid];
                match self.rt.cfg.deque_kind {
                    DequeKind::Locked => {
                        dq.lock(self.port);
                        let ok = dq.push_tail(self.port, child);
                        dq.unlock(self.port);
                        ok
                    }
                    DequeKind::ChaseLev => dq.cl_push_tail(self.port, child),
                    DequeKind::FenceFree | DequeKind::Idempotent => {
                        dq.mp_push_tail(self.port, child)
                    }
                }
            }
            RuntimeKind::Hcc => {
                let rt = Arc::clone(&self.rt);
                let dq = &rt.deques[self.wid];
                dq.lock(self.port);
                self.cache_invalidate();
                let ok = dq.push_tail(self.port, child);
                self.cache_flush();
                dq.unlock(self.port);
                ok
            }
            RuntimeKind::Dts => {
                self.port.uli_disable();
                let ok = if self.port.faults_active() {
                    // Hardened mode: the deque is no longer private (see
                    // `fallback_steal`), so guard it HCC-style.
                    let rt = Arc::clone(&self.rt);
                    let dq = &rt.deques[self.wid];
                    dq.lock(self.port);
                    self.cache_invalidate();
                    let ok = dq.push_tail(self.port, child);
                    self.cache_flush();
                    dq.unlock(self.port);
                    ok
                } else {
                    self.rt.deques[self.wid].push_tail(self.port, child)
                };
                self.port.uli_enable();
                ok
            }
        };
        if !enqueued {
            // Deque full: degenerate to immediate execution (depth-first),
            // which preserves semantics.
            self.execute_task(child);
            self.complete_task(child);
        }
        self.remark();
    }

    // ------------------------------------------------------------------
    // wait — Figure 3, bottom half
    // ------------------------------------------------------------------

    /// Waits until every child spawned by the current task has completed
    /// (`task::wait`), scheduling other tasks meanwhile.
    ///
    /// # Panics
    ///
    /// Panics if called outside a task body.
    pub fn wait(&mut self) {
        self.tally_user();
        let p = self.current.expect("wait() must be called from within a task");
        {
            let budget = self.rt.tasks.read()[p.0 as usize].pending_budget;
            assert_eq!(budget, 0, "wait() with {budget} announced children never spawned");
        }
        match self.rt.cfg.kind {
            RuntimeKind::Baseline => {
                // Benign race (RcWaitLoop): Figure 3(a)'s plain spin on the
                // join counter, safe under hardware coherence; see
                // `read_rc_plain_racy`.
                while self.read_rc_plain_racy(p) > 0 {
                    self.step_baseline();
                }
            }
            RuntimeKind::Hcc => {
                while self.read_rc_amo(p) > 0 {
                    self.step_hcc();
                }
                // Figure 3(b) line 40: children may have been stolen and
                // produced data elsewhere.
                self.cache_invalidate();
            }
            RuntimeKind::Dts => {
                let mut rc = if self.dts_hsc_opt() {
                    self.read_rc_plain_racy(p)
                } else {
                    self.read_rc_amo(p)
                };
                while rc > 0 {
                    self.step_dts();
                    rc = if self.dts_hsc_opt() {
                        // Lines 37-40: AMO only when a child was stolen. The
                        // plain read tolerates staleness (it can only be an
                        // older, larger count; the next iteration corrects).
                        if self.read_hsc(p) {
                            self.read_rc_amo(p)
                        } else {
                            self.read_rc_plain_racy(p)
                        }
                    } else {
                        self.read_rc_amo(p)
                    };
                }
                // Lines 43-44: invalidate only if a child was stolen.
                if !self.dts_hsc_opt() || self.read_hsc(p) {
                    self.cache_invalidate();
                } else {
                    self.port.annotate_sync(SyncNote::HscElide { task: p.0 });
                    self.rt.tel.write().hsc_elisions += 1;
                }
            }
        }
        // Merge completed children into the parent's critical path.
        {
            let mut tasks = self.rt.tasks.write();
            let prof = &mut tasks[p.0 as usize].profile;
            prof.path = prof.path.max(prof.candidate);
        }
        self.rt.tel.write().joins += 1;
        self.record_event(p.0, TaskEventKind::Join);
        self.remark();
    }

    // ------------------------------------------------------------------
    // Scheduling-loop steps (one iteration each)
    // ------------------------------------------------------------------

    fn execute_and_complete(&mut self, t: TaskId) {
        self.execute_task(t);
        self.complete_task(t);
    }

    /// Re-executes `orig` as an audited multiplicity duplicate: a fresh
    /// parentless record built from the original's body factory. The
    /// duplicate holds no join obligation — the claimant of the *original*
    /// decrements the parent's rc — so `complete_task` on it is a no-op,
    /// and only the at-most-twice contract (checker `Multiplicity` audit)
    /// makes the re-execution legal.
    fn execute_duplicate(&mut self, orig: TaskId) {
        let factory = self.rt.tasks.read()[orig.0 as usize]
            .respawn
            .clone()
            .expect("multiplicity deque task lacks a body factory");
        let body = {
            let mut f = factory.lock().unwrap_or_else(|e| e.into_inner());
            (*f)()
        };
        let base = self.rt.stack_bases[self.wid];
        assert!(
            self.stack_top + field::SIZE <= base + self.rt.stack_bytes,
            "simulated task stack overflow on worker {}",
            self.wid
        );
        let addr = bigtiny_coherence::Addr(self.stack_top);
        self.stack_top += field::SIZE;
        let id = {
            let mut tasks = self.rt.tasks.write();
            let id = TaskId(tasks.len() as u32);
            let mut rec = TaskRecord::new(body, None, addr);
            rec.respawn = Some(factory);
            rec.duplicate_of = Some(orig.0);
            tasks.push(rec);
            id
        };
        self.port.store_words(addr.offset(field::DESC), 2, || ());
        self.port.store_words(addr.offset(field::PARENT), 1, || ());
        self.record_event(id.0, TaskEventKind::Duplicate { of: orig.0 });
        self.rt.counters.write().duplicate_executions += 1;
        self.execute_and_complete(id);
    }

    fn step_baseline(&mut self) {
        self.hardened_tick();
        let dq = &self.rt.deques[self.wid];
        let (t, dup) = match self.rt.cfg.deque_kind {
            DequeKind::Locked => {
                dq.lock(self.port);
                let t = dq.pop_tail(self.port);
                dq.unlock(self.port);
                (t, false)
            }
            DequeKind::ChaseLev => (dq.cl_pop_tail(self.port), false),
            DequeKind::FenceFree => dq.ff_pop_tail(self.port),
            DequeKind::Idempotent => dq.idem_take_head(self.port),
        };
        if let Some(t) = t {
            if dup {
                // A thief also won this slot and runs the primary copy;
                // re-execute it here as an audited duplicate.
                self.execute_duplicate(t);
            } else {
                self.execute_and_complete(t);
                if self.multiplicity() && self.rt.mutation_hits(MutationKind::DupTask, self.wid) {
                    self.execute_duplicate(t);
                }
            }
            return;
        }
        let vid = self.choose_victim();
        self.rt.counters.write().steal_attempts += 1;
        self.tel_attempt(vid);
        if self.forced_miss(vid) {
            return;
        }
        let vdq = &self.rt.deques[vid];
        let t = match self.rt.cfg.deque_kind {
            DequeKind::Locked => {
                vdq.lock(self.port);
                let t = vdq.pop_head(self.port);
                vdq.unlock(self.port);
                t
            }
            DequeKind::ChaseLev => vdq.cl_steal(self.port),
            DequeKind::FenceFree | DequeKind::Idempotent => vdq.mp_steal(self.port),
        };
        if let Some(t) = t {
            self.rt.counters.write().steals += 1;
            self.tel_hit(vid);
            self.record_event(t.0, TaskEventKind::Stolen { from: vid });
            self.steal_succeeded();
            self.execute_and_complete(t);
        } else {
            self.tel_miss(vid);
            self.requarantine_if_dead(vid);
            self.steal_failed();
        }
    }

    fn step_hcc(&mut self) {
        self.hardened_tick();
        let rt = Arc::clone(&self.rt);
        let dq = &rt.deques[self.wid];
        dq.lock(self.port);
        self.cache_invalidate();
        let t = dq.pop_tail(self.port);
        self.cache_flush();
        dq.unlock(self.port);
        if let Some(t) = t {
            self.execute_and_complete(t);
            return;
        }
        let vid = self.choose_victim();
        self.rt.counters.write().steal_attempts += 1;
        self.tel_attempt(vid);
        if self.forced_miss(vid) {
            return;
        }
        let vdq = &rt.deques[vid];
        vdq.lock(self.port);
        self.cache_invalidate();
        let t = vdq.pop_head(self.port);
        self.cache_flush();
        vdq.unlock(self.port);
        if let Some(t) = t {
            self.rt.counters.write().steals += 1;
            self.tel_hit(vid);
            self.record_event(t.0, TaskEventKind::Stolen { from: vid });
            self.steal_succeeded();
            // Figure 3(b) lines 33-35: the stolen task's parent ran
            // elsewhere; bracket execution with invalidate/flush.
            self.cache_invalidate();
            self.execute_task(t);
            self.cache_flush();
            self.complete_task_stolen(t);
        } else {
            self.tel_miss(vid);
            self.requarantine_if_dead(vid);
            self.steal_failed();
        }
    }

    fn step_dts(&mut self) {
        self.hardened_tick();
        let hardened = self.port.faults_active();
        // Under faults, a response to a steal request this worker timed out
        // on can arrive arbitrarily late; its task is already queued in our
        // mailbox and would be lost if never claimed. Drain before anything
        // else.
        if hardened {
            if let Some(m) = self.port.uli_poll_response() {
                if m.payload == 1 {
                    self.claim_stolen_task(m.from);
                } else {
                    self.tel_miss(m.from);
                    self.uli_fail_streak += 1;
                    self.steal_failed();
                }
                return;
            }
        }
        // Local pop: deque is private, just mask ULIs (lines 11-13). In
        // hardened mode fallback thieves also touch this deque through
        // shared memory, so the owner locks and brackets HCC-style.
        self.port.uli_disable();
        let t = if hardened {
            let rt = Arc::clone(&self.rt);
            let dq = &rt.deques[self.wid];
            dq.lock(self.port);
            self.cache_invalidate();
            let t = dq.pop_tail(self.port);
            self.cache_flush();
            dq.unlock(self.port);
            t
        } else {
            self.rt.deques[self.wid].pop_tail(self.port)
        };
        self.port.uli_enable();
        if let Some(t) = t {
            self.execute_and_complete(t);
            return;
        }
        // Remote steal through the ULI network (lines 24-34).
        let vid = self.choose_victim();
        self.rt.counters.write().steal_attempts += 1;
        self.tel_attempt(vid);
        if self.forced_miss(vid) {
            self.uli_fail_streak += 1;
            return;
        }
        if hardened && self.uli_fail_streak >= self.rt.cfg.uli_giveup_attempts {
            // Give up on ULI for one round and steal through shared memory.
            self.uli_fail_streak = 0;
            self.fallback_steal(vid);
            return;
        }
        enum Resp {
            Got(UliMessage),
            Done,
            TimedOut,
        }
        // Round-trip start: the simulated time at which the request leaves
        // (a pure clock read — telemetry must not charge cycles).
        let rtt_start = self.port.now();
        match self.port.uli_send_request(vid, self.wid as u64) {
            UliOutcome::Sent => {
                // The unit accepted the request, so the victim is alive:
                // a re-probe of a quarantined core succeeded.
                self.unquarantine(vid);
                // Wait for the response, servicing incoming steal requests
                // to avoid mutual-steal deadlock. Without faults a response
                // is guaranteed; hardened mode bounds the wait because the
                // request may have been dropped in flight.
                let deadline = self.port.now() + self.rt.cfg.uli_response_timeout_cycles;
                let resp = loop {
                    if let Some(m) = self.port.uli_poll_response() {
                        break Resp::Got(m);
                    }
                    self.port.uli_poll();
                    if self.is_done() {
                        break Resp::Done;
                    }
                    if hardened && self.port.now() >= deadline {
                        break Resp::TimedOut;
                    }
                    self.port.wait_cycles(8, TimeCategory::UliWait);
                };
                if let Resp::Got(_) = &resp {
                    self.rt.tel.write().uli_rtt.record(self.port.now() - rtt_start);
                }
                match resp {
                    Resp::Got(m) if m.payload == 1 => self.claim_stolen_task(m.from),
                    Resp::Got(m) => {
                        // Victim was empty.
                        self.tel_miss(m.from);
                        self.uli_fail_streak += 1;
                        self.steal_failed();
                    }
                    Resp::TimedOut => {
                        // The request (or its response) was lost or badly
                        // delayed; back off and try elsewhere. If it was
                        // merely delayed, the eventual response is handled
                        // by the drain at the top of this function.
                        self.rt.counters.write().uli_timeouts += 1;
                        self.tel_miss(vid);
                        self.uli_fail_streak += 1;
                        self.steal_failed();
                    }
                    Resp::Done => {} // program finished while waiting
                }
            }
            UliOutcome::Nack { .. } => {
                self.rt.counters.write().steal_nacks += 1;
                self.tel_miss(vid);
                self.uli_fail_streak += 1;
                self.steal_failed();
            }
            UliOutcome::Dead { .. } => {
                // The victim fail-stopped: quarantine it (with backoff
                // re-probe so a revived core rejoins the victim set) and
                // volunteer for its recovery.
                self.tel_miss(vid);
                self.uli_fail_streak += 1;
                self.known_dead.insert(vid);
                self.quarantine(vid);
                self.try_recover(vid);
                self.steal_failed();
            }
        }
    }

    /// Claims a task the victim `from` handed over through this worker's
    /// mailbox (from a fresh or late ULI response with payload 1),
    /// executes it, and decrements its parent.
    fn claim_stolen_task(&mut self, from: usize) {
        // Invalidate (line 30), then read the mailbox fresh.
        self.cache_invalidate();
        let mb = &self.rt.mailboxes[self.wid];
        let raw = self.port.load_words(mb.addr, 1, || {
            mb.value.write().pop_front().unwrap_or(TaskId::NONE_PAYLOAD)
        });
        let t = TaskId::from_payload(raw).expect("victim promised a task");
        self.uli_fail_streak = 0;
        self.tel_hit(from);
        self.record_event(t.0, TaskEventKind::Stolen { from });
        self.steal_succeeded();
        self.port.mark_progress();
        self.execute_task(t);
        self.cache_flush(); // line 32
        self.complete_task_stolen(t); // line 33: amo_sub
    }

    /// Degraded shared-memory steal for hardened DTS: lock the victim's
    /// deque and take its head, bracketed with invalidate/flush exactly like
    /// the HCC runtime. Functionally safe under any fault plan because every
    /// DTS deque access (owner, handler, fallback thief) takes the lock
    /// while a plan is armed, and hardened mode always runs the conservative
    /// AMO + unconditional-invalidate completion protocol (see
    /// [`TaskCx::dts_hsc_opt`]), so no `has_stolen_child` bookkeeping is
    /// required on this path.
    fn fallback_steal(&mut self, vid: usize) {
        self.rt.counters.write().fallback_steals += 1;
        let rt = Arc::clone(&self.rt);
        let vdq = &rt.deques[vid];
        vdq.lock(self.port);
        self.cache_invalidate();
        let t = vdq.pop_head(self.port);
        self.cache_flush();
        vdq.unlock(self.port);
        if let Some(t) = t {
            self.rt.counters.write().steals += 1;
            self.tel_hit(vid);
            self.record_event(t.0, TaskEventKind::Stolen { from: vid });
            self.steal_succeeded();
            self.port.mark_progress();
            self.cache_invalidate();
            self.execute_task(t);
            self.cache_flush();
            self.complete_task_stolen(t);
        } else {
            self.tel_miss(vid);
            self.requarantine_if_dead(vid);
            self.steal_failed();
        }
    }

    /// Consults the fault plan's forced-miss hook; on a forced miss the
    /// steal attempt against `vid` is abandoned before any deque or ULI
    /// traffic.
    fn forced_miss(&mut self, vid: usize) -> bool {
        if self.port.fault_steal_miss() {
            self.rt.counters.write().forced_steal_misses += 1;
            self.tel_miss(vid);
            self.steal_failed();
            true
        } else {
            false
        }
    }

    /// Exponential back-off after a failed steal (reset on success), which
    /// keeps idle thieves from saturating victims' deque locks / ULI units.
    fn steal_failed(&mut self) {
        self.port.idle(self.backoff);
        // Saturating: `cycles * max_factor` is a configuration product that
        // can exceed u64::MAX (the chaos fuzzer found the debug-mode
        // overflow); the cap is "effectively unbounded" past saturation.
        self.backoff = self.backoff.saturating_mul(2).min(
            self.rt.cfg.steal_backoff_cycles.saturating_mul(self.rt.cfg.steal_backoff_max_factor),
        );
        // NearestFirst walks outward on failure.
        self.victim_cursor += 1;
    }

    fn steal_succeeded(&mut self) {
        self.backoff = self.rt.cfg.steal_backoff_cycles;
        self.victim_cursor = 0;
    }

    fn choose_victim(&mut self) -> usize {
        let n = self.num_workers();
        debug_assert!(n > 1, "cannot steal in a single-worker system");
        if self.quarantined_count > 0 {
            if let Some(v) = self.choose_live_victim(n) {
                return v;
            }
        }
        match self.rt.cfg.victim_policy {
            VictimPolicy::Random => {
                let mut v = self.port.rng_below(n as u64 - 1) as usize;
                if v >= self.wid {
                    v += 1;
                }
                v
            }
            VictimPolicy::RoundRobin => {
                let order = &self.rt.victim_order[self.wid];
                let v = order[self.victim_cursor % order.len()];
                self.victim_cursor += 1;
                v
            }
            VictimPolicy::NearestFirst => {
                let order = &self.rt.victim_order[self.wid];
                order[self.victim_cursor % order.len()]
            }
        }
    }

    /// Victim selection while quarantines are active: skip quarantined
    /// victims whose re-probe time has not arrived. Falls back to the
    /// normal policy (`None`) when no victim is currently eligible.
    fn choose_live_victim(&mut self, n: usize) -> Option<usize> {
        let now = self.port.now();
        let eligible = |h: &VictimHealth| !h.quarantined || now >= h.reprobe_at;
        match self.rt.cfg.victim_policy {
            VictimPolicy::Random => {
                let cands: Vec<usize> =
                    (0..n).filter(|v| *v != self.wid && eligible(&self.health[*v])).collect();
                if cands.is_empty() {
                    None
                } else {
                    Some(cands[self.port.rng_below(cands.len() as u64) as usize])
                }
            }
            VictimPolicy::RoundRobin => {
                let order = &self.rt.victim_order[self.wid];
                for _ in 0..order.len() {
                    let v = order[self.victim_cursor % order.len()];
                    self.victim_cursor += 1;
                    if eligible(&self.health[v]) {
                        return Some(v);
                    }
                }
                None
            }
            VictimPolicy::NearestFirst => {
                let order = &self.rt.victim_order[self.wid];
                (0..order.len())
                    .map(|i| order[(self.victim_cursor + i) % order.len()])
                    .find(|v| eligible(&self.health[*v]))
            }
        }
    }

    // ------------------------------------------------------------------
    // Fail-stop crashes and recovery (all no-ops unless the fault plan's
    // crash dimension is armed — see the module docs)
    // ------------------------------------------------------------------

    /// Safe-point crash poll: if this core's scheduled fail-stop cycle has
    /// passed, mark its ULI unit dead (a sequenced op — all future steal
    /// requests get `Dead` replies) and unwind to `run_task_parallel`. No
    /// simulated or host lock is held at any poll site.
    fn maybe_crash(&mut self) {
        if self.crash_armed && self.port.crash_pending() {
            self.port.crash_now();
            std::panic::panic_any(CrashToken);
        }
    }

    /// Per-scheduling-step crash hook: poll for this core's own crash,
    /// and every 64th step scan the sequenced dead mask for other cores'
    /// deaths (the only discovery path for the Baseline/Hcc runtimes, and
    /// the join-counter-timeout backstop for DTS).
    fn hardened_tick(&mut self) {
        if !self.crash_armed {
            return;
        }
        self.maybe_crash();
        self.tick = self.tick.wrapping_add(1);
        if self.tick.is_multiple_of(64) {
            self.observe_dead();
        }
    }

    /// Reads the sequenced dead set and reconciles it with this worker's
    /// view: newly-dead cores are quarantined and their recovery raced;
    /// cores that left the set (revived) are unquarantined.
    fn observe_dead(&mut self) {
        let mask = self.port.dead_mask();
        let fresh = mask.difference(&self.known_dead);
        let revived = self.known_dead.difference(&mask);
        self.known_dead = mask;
        for d in fresh.iter() {
            if d < self.health.len() && d != self.wid {
                self.quarantine(d);
                self.try_recover(d);
            }
        }
        for d in revived.iter() {
            if d < self.health.len() {
                self.unquarantine(d);
            }
        }
    }

    /// Removes `d` from this worker's victim set, or doubles the re-probe
    /// backoff if it already was removed (a probe just failed again).
    fn quarantine(&mut self, d: usize) {
        let base = self.rt.cfg.steal_backoff_cycles.max(1).saturating_mul(16);
        let h = &mut self.health[d];
        if h.quarantined {
            h.backoff = h.backoff.saturating_mul(2).min(1 << 16);
        } else {
            h.quarantined = true;
            h.backoff = base;
            self.quarantined_count += 1;
        }
        h.reprobe_at = self.port.now() + h.backoff;
        self.rt.counters.write().quarantines += 1;
    }

    /// Returns `d` to this worker's victim set (it revived, or a probe
    /// succeeded).
    fn unquarantine(&mut self, d: usize) {
        let h = &mut self.health[d];
        if h.quarantined {
            h.quarantined = false;
            self.quarantined_count -= 1;
        }
    }

    /// Doubles the re-probe backoff after a failed steal against a
    /// quarantined victim — the Baseline/Hcc equivalent of a `Dead` reply
    /// re-arming the quarantine.
    fn requarantine_if_dead(&mut self, vid: usize) {
        if self.crash_armed && self.health[vid].quarantined {
            self.quarantine(vid);
        }
    }

    /// Races the recovery claim for dead core `d` (at most once per worker
    /// per death); the sequenced AMO makes the winner the first claimant
    /// in grant order, so recovery is deterministic.
    fn try_recover(&mut self, d: usize) {
        if d >= self.rt.claims.len() || self.claim_tried.contains(d) {
            return;
        }
        self.claim_tried.insert(d);
        let rt = Arc::clone(&self.rt);
        let claim = &rt.claims[d];
        let won = self.port.amo_word(claim.addr, || {
            let mut o = claim.owner.write();
            if o.is_none() {
                *o = Some(self.wid);
                1
            } else {
                0
            }
        });
        if won == 1 {
            self.recover_core(d);
        }
    }

    /// Recovers dead core `d`: reclaim its deque orphans, rescue its
    /// unclaimed mailbox tasks, re-spawn the task it died inside, then
    /// publish completion (a revivable core stays dormant until then).
    fn recover_core(&mut self, d: usize) {
        let rt = Arc::clone(&self.rt);

        // (1) Orphan reclamation. Every task parked in the dead core's
        // deque was spawned by a task frozen on its execution stack (a
        // spawner cannot leave the stack before its children join), so the
        // bottom respawn in step (3) recreates all of them: discard.
        let dq = &rt.deques[d];
        let mut orphans = 0u64;
        if self.rt.cfg.kind == RuntimeKind::Baseline && self.rt.cfg.deque_kind != DequeKind::Locked
        {
            loop {
                let t = match self.rt.cfg.deque_kind {
                    DequeKind::ChaseLev => dq.cl_steal(self.port),
                    DequeKind::FenceFree | DequeKind::Idempotent => dq.mp_steal(self.port),
                    DequeKind::Locked => unreachable!(),
                };
                let Some(t) = t else { break };
                self.record_event(t.0, TaskEventKind::Discarded);
                orphans += 1;
            }
        } else {
            dq.lock(self.port);
            self.cache_invalidate();
            while let Some(t) = dq.pop_head(self.port) {
                self.record_event(t.0, TaskEventKind::Discarded);
                orphans += 1;
            }
            self.cache_flush();
            dq.unlock(self.port);
        }
        if orphans > 0 {
            self.rt.counters.write().orphans_reclaimed += orphans;
        }

        // (2) Mailbox rescue. Tasks victims handed to the dead thief that
        // it never claimed belong to *live* families — requeue them here.
        // Drain-and-seal is one sequenced AMO, so a concurrent victim
        // handler either lands before it (rescued) or bounces and keeps
        // its task.
        let mb = &rt.mailboxes[d];
        let mut rescued: Vec<TaskId> = Vec::new();
        self.port.amo_word(mb.addr, || {
            let mut q = mb.value.write();
            *mb.sealed.write() = true;
            while let Some(p) = q.pop_front() {
                if let Some(t) = TaskId::from_payload(p) {
                    rescued.push(t);
                }
            }
            rescued.len() as u64
        });
        if !rescued.is_empty() {
            self.rt.counters.write().mailbox_rescues += rescued.len() as u64;
        }
        for t in rescued {
            self.enqueue_recovered(t);
        }

        // (3) Re-execute the task the core died inside.
        self.respawn_bottom(d);

        *rt.claims[d].done.write() = true;
        self.port.mark_progress();
    }

    /// Re-spawns the bottom task of dead core `d`'s frozen execution
    /// stack. The bottom task always has a remote parent (a non-empty
    /// stack bottom arrives by steal, rescue, or respawn), so the
    /// replacement — which inherits that parent and its un-decremented
    /// join count — repairs the join the dead original left short. Tasks
    /// higher on the frozen stack are descendants of the bottom and are
    /// recreated by its re-execution.
    fn respawn_bottom(&mut self, d: usize) {
        let bottom = {
            let mut st = self.rt.exec_stacks[d].write();
            let b = st.first().copied();
            st.clear();
            b
        };
        let Some(b) = bottom else { return };
        let (parent, factory) = {
            let tasks = self.rt.tasks.read();
            let rec = &tasks[b as usize];
            (rec.parent, rec.respawn.clone())
        };
        // Core 0 is never crash-eligible, so the dead task is never the
        // root: it came through `spawn`, which records a factory whenever
        // crashes are armed.
        let factory = factory.expect("crashed task lacks a respawn factory");
        let body = {
            let mut f = factory.lock().unwrap_or_else(|e| e.into_inner());
            (*f)()
        };
        let addr = self.alloc_respawn_slot();
        let id = {
            let mut tasks = self.rt.tasks.write();
            let id = TaskId(tasks.len() as u32);
            let mut rec = TaskRecord::new(body, parent, addr);
            rec.respawn = Some(factory);
            if let Some(p) = parent {
                rec.profile.spawn_path = tasks[p.0 as usize].profile.path;
            }
            tasks.push(rec);
            id
        };
        self.port.store_words(addr.offset(field::DESC), 2, || ());
        self.port.store_words(addr.offset(field::PARENT), 1, || ());
        self.record_event(id.0, TaskEventKind::Respawn { of: b });
        {
            let mut c = self.rt.counters.write();
            c.reexecutions += 1;
            c.joins_repaired += 1;
        }
        self.enqueue_recovered(id);
    }

    /// Allocates one record-sized slot in the respawn arena through a
    /// sequenced AMO cursor (winners for different dead cores can race).
    fn alloc_respawn_slot(&mut self) -> bigtiny_coherence::Addr {
        let rt = Arc::clone(&self.rt);
        let slot = self.port.amo_word(rt.respawn_cursor_addr, || {
            let mut c = rt.respawn_cursor.write();
            let s = *c;
            *c += 1;
            s
        });
        assert!((slot + 1) * field::SIZE <= rt.respawn_bytes, "respawn arena exhausted");
        bigtiny_coherence::Addr(rt.respawn_base + slot * field::SIZE)
    }

    /// Queues a rescued or re-spawned task on this worker's own deque
    /// (falling back to immediate execution if full). Recovered tasks
    /// always have remote parents, so the inline path completes with an
    /// AMO like a stolen task.
    fn enqueue_recovered(&mut self, t: TaskId) {
        let rt = Arc::clone(&self.rt);
        let dq = &rt.deques[self.wid];
        let dts = self.rt.cfg.kind == RuntimeKind::Dts;
        if dts {
            self.port.uli_disable();
        }
        let ok = match self.rt.cfg.kind {
            RuntimeKind::Baseline => match self.rt.cfg.deque_kind {
                DequeKind::Locked => {
                    dq.lock(self.port);
                    let ok = dq.push_tail(self.port, t);
                    dq.unlock(self.port);
                    ok
                }
                DequeKind::ChaseLev => dq.cl_push_tail(self.port, t),
                DequeKind::FenceFree | DequeKind::Idempotent => dq.mp_push_tail(self.port, t),
            },
            RuntimeKind::Hcc | RuntimeKind::Dts => {
                dq.lock(self.port);
                self.cache_invalidate();
                let ok = dq.push_tail(self.port, t);
                self.cache_flush();
                dq.unlock(self.port);
                ok
            }
        };
        if dts {
            self.port.uli_enable();
        }
        if !ok {
            self.cache_invalidate();
            self.execute_task(t);
            self.cache_flush();
            self.complete_task_stolen(t);
        }
    }

    /// Host-side check the dormant revival loop polls: has this core's
    /// recovery finished?
    fn recovery_done(&self) -> bool {
        *self.rt.claims[self.wid].done.read()
    }

    /// Rejoins scheduling after a revival: clear the state the crash
    /// unwind left behind, unseal the mailbox, and mark the ULI unit
    /// alive again (sequenced, so thieves' next probes see it). The stack
    /// region below the frozen `stack_top` is leaked — in-flight
    /// decrements against dead task records may still touch it.
    fn rejoin_after_revival(&mut self) {
        self.current = None;
        self.uli_fail_streak = 0;
        self.backoff = self.rt.cfg.steal_backoff_cycles;
        self.rt.exec_stacks[self.wid].write().clear();
        *self.rt.mailboxes[self.wid].sealed.write() = false;
        self.port.revive_now();
        self.rt.counters.write().revivals += 1;
    }

    // ------------------------------------------------------------------
    // Task execution and completion
    // ------------------------------------------------------------------

    fn execute_task(&mut self, t: TaskId) {
        // Task execution is real forward progress: let the liveness
        // watchdog know (free when no watchdog is armed).
        self.port.mark_progress();
        // Attribute everything from dispatch to the post-body profile fold
        // to this task (save/restore nests across inlined child execution).
        let saved_attr = self.port.attr_switch(Some(t.0));
        // Dispatch: read the task descriptor and call through it.
        let desc = self.rt.tasks.read()[t.0 as usize].desc_addr();
        self.port.load_words(desc, 2, || ());
        self.port.advance(4);

        let body = self.rt.tasks.write()[t.0 as usize]
            .body
            .take()
            .expect("task executed twice")
            .into_inner();
        self.rt.counters.write().tasks_executed += 1;

        let saved_current = self.current.replace(t);
        let saved_stack = self.stack_top;
        if self.crash_armed {
            // Crash bookkeeping: an unwind skips the pop below, freezing
            // this worker's execution stack for recovery to read.
            self.rt.exec_stacks[self.wid].write().push(t.0);
        }
        self.record_event(t.0, TaskEventKind::ExecBegin);
        self.remark();
        body.run(self);
        self.tally_user();
        self.record_event(t.0, TaskEventKind::ExecEnd);
        if self.crash_armed {
            let popped = self.rt.exec_stacks[self.wid].write().pop();
            debug_assert_eq!(popped, Some(t.0));
        }
        self.stack_top = saved_stack;
        self.current = saved_current;
        self.port.attr_switch(saved_attr);

        // Fold this task's completed span into its parent's candidate path,
        // and count its serial work.
        let (span, serial, parent, spawn_path, is_dup) = {
            let tasks = self.rt.tasks.read();
            let rec = &tasks[t.0 as usize];
            (
                rec.profile.span(),
                rec.profile.serial_work,
                rec.parent,
                rec.profile.spawn_path,
                rec.duplicate_of.is_some(),
            )
        };
        {
            let mut counters = self.rt.counters.write();
            counters.workspan.work += serial;
            counters.workspan.tasks += 1;
        }
        match parent {
            Some(p) => {
                let mut tasks = self.rt.tasks.write();
                let pp = &mut tasks[p.0 as usize].profile;
                pp.candidate = pp.candidate.max(spawn_path + span);
            }
            None if is_dup => {
                // A multiplicity duplicate is parentless but is *not* the
                // root; it must not overwrite the program span.
            }
            None => {
                // Root task: its span is the program span.
                self.rt.counters.write().workspan.span = span;
            }
        }
        self.remark();
    }

    /// Completion of a locally-executed task.
    fn complete_task(&mut self, t: TaskId) {
        let parent = self.rt.parent_of(t);
        let Some(p) = parent else { return };
        match self.rt.cfg.kind {
            RuntimeKind::Baseline | RuntimeKind::Hcc => self.dec_rc_amo(p),
            RuntimeKind::Dts => {
                if self.dts_hsc_opt() {
                    // Figure 3(c) lines 17-20, with ULIs masked across the
                    // check-and-decrement: a steal handler running between
                    // the `has_stolen_child` read and a plain decrement
                    // could otherwise lose an update to `rc` on real
                    // hardware (the parent lives on this core, so masking
                    // this core's ULIs is sufficient).
                    self.port.uli_disable();
                    if self.read_hsc(p) {
                        self.dec_rc_amo(p);
                    } else {
                        self.port.annotate_sync(SyncNote::HscElide { task: p.0 });
                        self.rt.tel.write().hsc_elisions += 1;
                        self.dec_rc_plain(p);
                    }
                    self.port.uli_enable();
                } else {
                    self.dec_rc_amo(p);
                }
            }
        }
    }

    /// Completion of a stolen task: always an AMO (the parent is remote).
    fn complete_task_stolen(&mut self, t: TaskId) {
        if let Some(p) = self.rt.parent_of(t) {
            self.dec_rc_amo(p);
        }
    }

    fn is_done(&mut self) -> bool {
        self.port.is_done()
    }

    /// The outer scheduling loop for workers that do not run the program's
    /// main thread: keep executing and stealing until the program finishes.
    fn schedule_loop(&mut self) {
        while !self.is_done() {
            match self.rt.cfg.kind {
                RuntimeKind::Baseline => self.step_baseline(),
                RuntimeKind::Hcc => self.step_hcc(),
                RuntimeKind::Dts => self.step_dts(),
            }
        }
    }
}

/// Runs `root` as the root task of a task-parallel program on the simulated
/// system `sys` with runtime `cfg`, using `space` for the runtime's
/// simulated allocations (pass the same space used for application data).
///
/// Core 0 executes the root task (and schedules work while waiting inside
/// it); every other core runs the scheduling loop until the root completes.
///
/// # Panics
///
/// Re-raises panics from task bodies; panics on internal invariant
/// violations (reference-count underflow, double execution).
pub fn run_task_parallel(
    sys: &SystemConfig,
    cfg: &RuntimeConfig,
    space: &mut AddrSpace,
    root: impl FnOnce(&mut TaskCx<'_>) + Send + 'static,
) -> TaskRun {
    let n = sys.num_cores();
    assert!(n >= 1);
    let crash_armed = sys.faults.crash_armed();
    let rt = Arc::new(RtShared::new(cfg.clone(), space, n, sys.topology(), crash_armed));
    let dts = cfg.kind == RuntimeKind::Dts;

    let mut workers: Vec<Worker> = Vec::with_capacity(n);
    {
        let rt = Arc::clone(&rt);
        workers.push(Box::new(move |port: &mut CorePort| {
            // Attribute core 0's whole timeline — first cycle through
            // `set_done` — to the root task (id 0). With nothing charged
            // after `set_done`, core 0's final clock equals the completion
            // time exactly, which is what makes the profiler's measured-Tp
            // bounds (`ceil(T1/P) <= Tp <= T1`) exact rather than
            // approximate. No-op unless `sys.attr` is armed.
            port.attr_switch(Some(0));
            if dts {
                let h = Arc::clone(&rt);
                port.set_uli_handler(Box::new(move |p, msg| {
                    h.handle_steal_request(p, 0, msg.from)
                }));
                port.uli_enable();
            }
            let mut cx = TaskCx::new(port, Arc::clone(&rt), 0);
            // No respawn factory: core 0 is never crash-eligible.
            let root_id = cx.alloc_task(Box::new(root), None);
            cx.remark();
            cx.execute_task(root_id);
            if dts {
                cx.port.uli_disable();
            }
            cx.port.set_done();
        }));
    }
    for wid in 1..n {
        let rt = Arc::clone(&rt);
        workers.push(Box::new(move |port: &mut CorePort| {
            if dts {
                let h = Arc::clone(&rt);
                port.set_uli_handler(Box::new(move |p, msg| {
                    h.handle_steal_request(p, wid, msg.from)
                }));
                port.uli_enable();
            }
            let mut cx = TaskCx::new(port, rt, wid);
            if !cx.crash_armed {
                cx.schedule_loop();
            } else {
                // A fail-stopping worker unwinds to here with `CrashToken`.
                // Permanent crash: return, retiring this core's sequencer
                // token so the grant rotation never waits on it again.
                // Revivable crash: dormant sequenced-idle loop (grants keep
                // flowing) until the scheduled revival cycle AND the
                // survivors' recovery of this core have both passed, then
                // rejoin with a fresh scheduling loop.
                while let Err(payload) =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cx.schedule_loop()))
                {
                    if !payload.is::<CrashToken>() {
                        std::panic::resume_unwind(payload);
                    }
                    let after = cx.port.revive_after();
                    if after == 0 {
                        return;
                    }
                    let revive_at = cx.port.now().saturating_add(after);
                    loop {
                        if cx.is_done() {
                            return;
                        }
                        if cx.port.now() >= revive_at && cx.recovery_done() {
                            break;
                        }
                        cx.port.idle(256);
                    }
                    cx.rejoin_after_revival();
                }
            }
            if dts {
                cx.port.uli_disable();
            }
        }));
    }

    // If the engine's liveness watchdog aborts the run, enrich its
    // diagnostic bundle with the runtime-level picture (deque depths and
    // unclaimed mailbox entries) before re-raising: by far the most common
    // cause of a hung run is work parked where no live worker looks.
    let report =
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_system(sys, workers))) {
            Ok(report) => report,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&'static str>().copied());
                match msg {
                    Some(m) if m.contains(WATCHDOG_MSG) => {
                        let mut out = String::from(m);
                        out.push_str("\nruntime state:\n");
                        for (w, dq) in rt.deques.iter().enumerate() {
                            let mb = rt.mailboxes[w].value.read().len();
                            out.push_str(&format!(
                                "  worker {w}: deque depth {}{}, {mb} unclaimed mailbox task(s)\n",
                                dq.host_len(),
                                if dq.host_locked() { " (locked)" } else { "" },
                            ));
                        }
                        let c = rt.counters.read();
                        out.push_str(&format!(
                            "  tasks: {} spawned, {} executed; steals: {} ok / {} attempts, \
                         {} nacks, {} timeouts, {} fallback\n",
                            c.spawns,
                            c.tasks_executed,
                            c.steals,
                            c.steal_attempts,
                            c.steal_nacks,
                            c.uli_timeouts,
                            c.fallback_steals,
                        ));
                        if sys.faults.crash_armed() {
                            out.push_str(&format!(
                                "  recovery: {} orphans discarded, {} mailbox rescues, \
                             {} re-executions, {} quarantines, {} revivals\n",
                                c.orphans_reclaimed,
                                c.mailbox_rescues,
                                c.reexecutions,
                                c.quarantines,
                                c.revivals,
                            ));
                        }
                        std::panic::panic_any(out)
                    }
                    _ => std::panic::resume_unwind(payload),
                }
            }
        };
    let stats = *rt.counters.read();
    let telemetry = rt.tel.read().clone();
    let task_events = match &rt.task_events {
        Some(bufs) => {
            // Concatenate the per-worker buffers (each in its worker's
            // deterministic program order) and stable-sort by (cycle,
            // core): ties keep per-core order, so the merged stream is
            // deterministic too.
            let mut evs: Vec<TaskEvent> =
                bufs.iter().flat_map(|b| b.read().iter().copied().collect::<Vec<_>>()).collect();
            evs.sort_by_key(|e| (e.cycle, e.core));
            evs
        }
        None => Vec::new(),
    };
    TaskRun { report, stats, telemetry, task_events }
}
