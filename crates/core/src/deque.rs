//! The per-worker task deque in simulated shared memory.
//!
//! The paper's runtimes use a lock-protected double-ended queue per worker
//! (Figure 3): the owner pushes and pops at the tail in LIFO order and
//! thieves steal from the head in FIFO order. The deque's lock word, head,
//! tail, and slot array all live at simulated addresses, so deque accesses
//! produce exactly the coherence behaviour the paper studies — lock AMOs,
//! line bouncing between thief and victim under MESI, and the
//! invalidate/flush pairs HCC adds around each access.

use bigtiny_engine::sync::RwLock;

use bigtiny_coherence::Addr;
use bigtiny_engine::{AddrSpace, CorePort, SyncNote, TimeCategory};

use crate::task::TaskId;

#[derive(Debug)]
struct DequeState {
    locked: bool,
    head: u64,
    tail: u64,
    slots: Vec<Option<TaskId>>,
}

/// A lock-based work-stealing deque in simulated memory.
///
/// The control words (`lock`, `head`, `tail`) share the deque's first cache
/// line — like the straightforward C++ struct the paper describes — and the
/// slot array follows, line-aligned.
#[derive(Debug)]
pub struct SimDeque {
    lock_addr: Addr,
    head_addr: Addr,
    tail_addr: Addr,
    slots_addr: Addr,
    capacity: u64,
    state: RwLock<DequeState>,
}

impl SimDeque {
    /// Allocates a deque with `capacity` slots in `space`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(space: &mut AddrSpace, capacity: usize) -> Self {
        assert!(capacity > 0, "deque capacity must be nonzero");
        let base = space.reserve_lines(64 + capacity as u64 * 8);
        SimDeque {
            lock_addr: base,
            head_addr: base.offset(8),
            tail_addr: base.offset(16),
            slots_addr: base.offset(64),
            capacity: capacity as u64,
            state: RwLock::new(DequeState {
                locked: false,
                head: 0,
                tail: 0,
                slots: vec![None; capacity],
            }),
        }
    }

    fn slot_addr(&self, index: u64) -> Addr {
        self.slots_addr.offset((index % self.capacity) * 8)
    }

    /// One attempt to acquire the deque lock (an AMO on the lock word).
    pub fn try_lock(&self, port: &mut CorePort) -> bool {
        let got = port.amo_word(self.lock_addr, || {
            let mut st = self.state.write();
            if st.locked {
                false
            } else {
                st.locked = true;
                true
            }
        });
        if got {
            port.annotate_sync(SyncNote::DequeAcquire { lock: self.lock_addr });
        }
        got
    }

    /// Acquires the deque lock, spinning with a small back-off.
    pub fn lock(&self, port: &mut CorePort) {
        while !self.try_lock(port) {
            port.wait_cycles(8, TimeCategory::Atomic);
        }
    }

    /// Releases the deque lock (a plain store: release on these systems is a
    /// store preceded by the caller's flush where required).
    pub fn unlock(&self, port: &mut CorePort) {
        // The note marks the *next* store to the lock word by this core as
        // the release store, so the checker gives it atomic-release (not
        // plain-store) semantics in the happens-before pass.
        port.annotate_sync(SyncNote::DequeRelease { lock: self.lock_addr });
        port.store_words(self.lock_addr, 1, || {
            let mut st = self.state.write();
            debug_assert!(st.locked, "unlock of an unlocked deque");
            st.locked = false;
        });
    }

    /// Pushes `task` at the tail (owner side). Returns `false` if full.
    pub fn push_tail(&self, port: &mut CorePort, task: TaskId) -> bool {
        // head (capacity check) + tail loads, slot + tail stores.
        port.load(self.head_addr);
        let (full, tail) = {
            let st = self.state.read();
            (st.tail - st.head >= self.capacity, st.tail)
        };
        port.load(self.tail_addr);
        if full {
            return false;
        }
        port.store_words(self.slot_addr(tail), 1, || {
            self.state.write().slots[(tail % self.capacity) as usize] = Some(task);
        });
        port.store_words(self.tail_addr, 1, || {
            self.state.write().tail += 1;
        });
        true
    }

    /// Pops from the tail in LIFO order (owner side).
    pub fn pop_tail(&self, port: &mut CorePort) -> Option<TaskId> {
        port.load(self.tail_addr);
        port.load(self.head_addr);
        let tail = {
            let st = self.state.read();
            if st.tail == st.head {
                return None;
            }
            st.tail - 1
        };
        let task = port.load_words(self.slot_addr(tail), 1, || {
            self.state.read().slots[(tail % self.capacity) as usize]
        });
        port.store_words(self.tail_addr, 1, || {
            self.state.write().tail = tail;
        });
        task
    }

    /// Pops from the head in FIFO order (thief side).
    pub fn pop_head(&self, port: &mut CorePort) -> Option<TaskId> {
        port.load(self.head_addr);
        port.load(self.tail_addr);
        let head = {
            let st = self.state.read();
            if st.tail == st.head {
                return None;
            }
            st.head
        };
        let task = port.load_words(self.slot_addr(head), 1, || {
            self.state.read().slots[(head % self.capacity) as usize]
        });
        port.store_words(self.head_addr, 1, || {
            self.state.write().head = head + 1;
        });
        task
    }

    // ------------------------------------------------------------------
    // Chase-Lev-style lock-free operations (Chase & Lev, SPAA'05) — the
    // classic alternative to the paper's lock-based deque, usable on
    // hardware-coherent systems. Owner pushes/pops without atomics except
    // for the single-element race; thieves steal with one CAS.
    // ------------------------------------------------------------------

    /// Lock-free owner push: slot store + tail store. Returns `false` when
    /// full.
    pub fn cl_push_tail(&self, port: &mut CorePort, task: TaskId) -> bool {
        port.load(self.tail_addr);
        port.load(self.head_addr);
        let (full, tail) = {
            let st = self.state.read();
            (st.tail - st.head >= self.capacity, st.tail)
        };
        if full {
            return false;
        }
        port.store_words(self.slot_addr(tail), 1, || {
            self.state.write().slots[(tail % self.capacity) as usize] = Some(task);
        });
        port.store_words(self.tail_addr, 1, || {
            self.state.write().tail += 1;
        });
        true
    }

    /// Lock-free owner pop: reserve the tail with a store; on the last
    /// element the owner races thieves with a CAS on `head`.
    ///
    /// The functional claim linearizes at the tail store (the algorithm's
    /// linearization point); the remaining accesses model the head read and
    /// the last-element CAS.
    pub fn cl_pop_tail(&self, port: &mut CorePort) -> Option<TaskId> {
        port.load(self.tail_addr);
        // Linearization: decrement tail and claim the slot atomically.
        let (task, was_last) = port.store_words(self.tail_addr, 1, || {
            let mut st = self.state.write();
            if st.tail == st.head {
                (None, false)
            } else {
                st.tail -= 1;
                let t = st.slots[(st.tail % self.capacity) as usize];
                (t, st.tail == st.head)
            }
        });
        port.load(self.head_addr);
        if task.is_some() {
            port.load(self.slot_addr(0)); // slot read (already claimed)
        }
        if was_last {
            // Fight a concurrent thief for the final element and reset the
            // deque to a canonical empty state (timing of the CAS + store).
            port.amo_word(self.head_addr, || ());
            port.store(self.tail_addr);
        }
        task
    }

    /// Lock-free thief steal: read head/tail, then CAS `head` forward. The
    /// functional claim linearizes at the CAS.
    pub fn cl_steal(&self, port: &mut CorePort) -> Option<TaskId> {
        port.load(self.head_addr);
        port.load(self.tail_addr);
        // Speculative slot read before the CAS, as in the real algorithm.
        // (Bind the index first: a lock guard must never live across a
        // sequenced operation.)
        let head_now = self.state.read().head;
        port.load(self.slot_addr(head_now));
        port.amo_word(self.head_addr, || {
            let mut st = self.state.write();
            if st.tail == st.head {
                None
            } else {
                let t = st.slots[(st.head % self.capacity) as usize];
                st.head += 1;
                t
            }
        })
    }

    /// Current length (host-side, for tests and assertions).
    pub fn host_len(&self) -> usize {
        let st = self.state.read();
        (st.tail - st.head) as usize
    }

    /// Whether the lock is held (host-side, for tests).
    pub fn host_locked(&self) -> bool {
        self.state.read().locked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigtiny_engine::{run_system, SystemConfig, Worker};
    use std::sync::Arc;

    fn on_one_core(f: impl FnOnce(&mut CorePort) + Send + 'static) {
        let config = SystemConfig::o3(1);
        let workers: Vec<Worker> = vec![Box::new(move |port| {
            f(port);
            port.set_done();
        })];
        run_system(&config, workers);
    }

    #[test]
    fn lifo_owner_fifo_thief() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 8));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for i in 0..4 {
                assert!(d.push_tail(port, TaskId(i)));
            }
            assert_eq!(d.host_len(), 4);
            // Owner pops newest.
            assert_eq!(d.pop_tail(port), Some(TaskId(3)));
            // Thief steals oldest.
            assert_eq!(d.pop_head(port), Some(TaskId(0)));
            assert_eq!(d.pop_head(port), Some(TaskId(1)));
            assert_eq!(d.pop_tail(port), Some(TaskId(2)));
            assert_eq!(d.pop_tail(port), None);
            assert_eq!(d.pop_head(port), None);
        });
    }

    #[test]
    fn capacity_limit_reports_full() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 2));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.push_tail(port, TaskId(0)));
            assert!(d.push_tail(port, TaskId(1)));
            assert!(!d.push_tail(port, TaskId(2)), "full deque rejects");
            d.pop_head(port);
            assert!(d.push_tail(port, TaskId(2)), "wraps around after pop");
        });
    }

    #[test]
    fn lock_is_exclusive() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 4));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.try_lock(port));
            assert!(d.host_locked());
            assert!(!d.try_lock(port), "second acquire fails");
            d.unlock(port);
            assert!(!d.host_locked());
            d.lock(port);
            assert!(d.host_locked());
            d.unlock(port);
        });
    }

    #[test]
    fn chase_lev_lifo_fifo_semantics() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 8));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for i in 0..4 {
                assert!(d.cl_push_tail(port, TaskId(i)));
            }
            assert_eq!(d.cl_pop_tail(port), Some(TaskId(3)), "owner pops newest");
            assert_eq!(d.cl_steal(port), Some(TaskId(0)), "thief steals oldest");
            assert_eq!(d.cl_pop_tail(port), Some(TaskId(2)));
            assert_eq!(d.cl_steal(port), Some(TaskId(1)));
            assert_eq!(d.cl_pop_tail(port), None);
            assert_eq!(d.cl_steal(port), None);
            assert_eq!(d.host_len(), 0);
        });
    }

    #[test]
    fn chase_lev_last_element_race_path() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 4));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            d.cl_push_tail(port, TaskId(9));
            // Single element: the owner takes it through the CAS path and
            // the deque is consistent afterwards.
            assert_eq!(d.cl_pop_tail(port), Some(TaskId(9)));
            assert_eq!(d.host_len(), 0);
            assert!(d.cl_push_tail(port, TaskId(10)), "reusable after the race path");
            assert_eq!(d.cl_steal(port), Some(TaskId(10)));
        });
    }

    #[test]
    fn chase_lev_interoperates_with_ring_capacity() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 2));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.cl_push_tail(port, TaskId(0)));
            assert!(d.cl_push_tail(port, TaskId(1)));
            assert!(!d.cl_push_tail(port, TaskId(2)), "full");
            d.cl_steal(port);
            assert!(d.cl_push_tail(port, TaskId(2)));
        });
    }

    #[test]
    fn ring_wraps_many_times() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 3));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for round in 0..10u32 {
                d.push_tail(port, TaskId(round));
                assert_eq!(d.pop_head(port), Some(TaskId(round)));
            }
            assert_eq!(d.host_len(), 0);
        });
    }
}
