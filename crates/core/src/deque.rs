//! The per-worker task deque in simulated shared memory.
//!
//! The paper's runtimes use a lock-protected double-ended queue per worker
//! (Figure 3): the owner pushes and pops at the tail in LIFO order and
//! thieves steal from the head in FIFO order. The deque's lock word, head,
//! tail, and slot array all live at simulated addresses, so deque accesses
//! produce exactly the coherence behaviour the paper studies — lock AMOs,
//! line bouncing between thief and victim under MESI, and the
//! invalidate/flush pairs HCC adds around each access.

use bigtiny_engine::sync::RwLock;

use bigtiny_coherence::Addr;
use bigtiny_engine::{AddrSpace, CorePort, FlightKind, RacyTag, SyncNote, TimeCategory};

use crate::task::TaskId;

#[derive(Debug)]
struct DequeState {
    locked: bool,
    head: u64,
    tail: u64,
    slots: Vec<Option<TaskId>>,
}

/// A lock-based work-stealing deque in simulated memory.
///
/// The control words (`lock`, `head`, `tail`) share the deque's first cache
/// line — like the straightforward C++ struct the paper describes — and the
/// slot array follows, line-aligned.
#[derive(Debug)]
pub struct SimDeque {
    lock_addr: Addr,
    head_addr: Addr,
    tail_addr: Addr,
    slots_addr: Addr,
    capacity: u64,
    state: RwLock<DequeState>,
}

impl SimDeque {
    /// Allocates a deque with `capacity` slots in `space`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(space: &mut AddrSpace, capacity: usize) -> Self {
        assert!(capacity > 0, "deque capacity must be nonzero");
        let base = space.reserve_lines(64 + capacity as u64 * 8);
        SimDeque {
            lock_addr: base,
            head_addr: base.offset(8),
            tail_addr: base.offset(16),
            slots_addr: base.offset(64),
            capacity: capacity as u64,
            state: RwLock::new(DequeState {
                locked: false,
                head: 0,
                tail: 0,
                slots: vec![None; capacity],
            }),
        }
    }

    fn slot_addr(&self, index: u64) -> Addr {
        self.slots_addr.offset((index % self.capacity) * 8)
    }

    /// One attempt to acquire the deque lock (an AMO on the lock word).
    pub fn try_lock(&self, port: &mut CorePort) -> bool {
        let got = port.amo_word(self.lock_addr, || {
            let mut st = self.state.write();
            if st.locked {
                false
            } else {
                st.locked = true;
                true
            }
        });
        if got {
            port.annotate_sync(SyncNote::DequeAcquire { lock: self.lock_addr });
        }
        got
    }

    /// Acquires the deque lock, spinning with a small back-off.
    pub fn lock(&self, port: &mut CorePort) {
        while !self.try_lock(port) {
            port.wait_cycles(8, TimeCategory::Atomic);
        }
    }

    /// Releases the deque lock (a plain store: release on these systems is a
    /// store preceded by the caller's flush where required).
    pub fn unlock(&self, port: &mut CorePort) {
        // The note marks the *next* store to the lock word by this core as
        // the release store, so the checker gives it atomic-release (not
        // plain-store) semantics in the happens-before pass.
        port.annotate_sync(SyncNote::DequeRelease { lock: self.lock_addr });
        port.store_words(self.lock_addr, 1, || {
            let mut st = self.state.write();
            debug_assert!(st.locked, "unlock of an unlocked deque");
            st.locked = false;
        });
    }

    /// Pushes `task` at the tail (owner side). Returns `false` if full.
    pub fn push_tail(&self, port: &mut CorePort, task: TaskId) -> bool {
        port.flight_note(FlightKind::DequePush);
        // head (capacity check) + tail loads, slot + tail stores.
        port.load(self.head_addr);
        let (full, tail) = {
            let st = self.state.read();
            (st.tail - st.head >= self.capacity, st.tail)
        };
        port.load(self.tail_addr);
        if full {
            return false;
        }
        port.store_words(self.slot_addr(tail), 1, || {
            self.state.write().slots[(tail % self.capacity) as usize] = Some(task);
        });
        port.store_words(self.tail_addr, 1, || {
            self.state.write().tail += 1;
        });
        true
    }

    /// Pops from the tail in LIFO order (owner side).
    pub fn pop_tail(&self, port: &mut CorePort) -> Option<TaskId> {
        port.flight_note(FlightKind::DequePop);
        port.load(self.tail_addr);
        port.load(self.head_addr);
        let tail = {
            let st = self.state.read();
            if st.tail == st.head {
                return None;
            }
            st.tail - 1
        };
        let task = port.load_words(self.slot_addr(tail), 1, || {
            self.state.read().slots[(tail % self.capacity) as usize]
        });
        port.store_words(self.tail_addr, 1, || {
            self.state.write().tail = tail;
        });
        task
    }

    /// Pops from the head in FIFO order (thief side).
    pub fn pop_head(&self, port: &mut CorePort) -> Option<TaskId> {
        port.flight_note(FlightKind::DequeSteal);
        port.load(self.head_addr);
        port.load(self.tail_addr);
        let head = {
            let st = self.state.read();
            if st.tail == st.head {
                return None;
            }
            st.head
        };
        let task = port.load_words(self.slot_addr(head), 1, || {
            self.state.read().slots[(head % self.capacity) as usize]
        });
        port.store_words(self.head_addr, 1, || {
            self.state.write().head = head + 1;
        });
        task
    }

    // ------------------------------------------------------------------
    // Chase-Lev-style lock-free operations (Chase & Lev, SPAA'05) — the
    // classic alternative to the paper's lock-based deque, usable on
    // hardware-coherent systems. Owner pushes/pops without atomics except
    // for the single-element race; thieves steal with one CAS.
    // ------------------------------------------------------------------

    /// Lock-free owner push: slot store + tail store. Returns `false` when
    /// full.
    pub fn cl_push_tail(&self, port: &mut CorePort, task: TaskId) -> bool {
        port.flight_note(FlightKind::DequePush);
        port.load(self.tail_addr);
        // The owner's capacity check peeks at the thief-owned `head`
        // without synchronization (audited racy): `head` is monotone, so a
        // stale value only over-estimates occupancy. The check binds at
        // this load's sequenced grant — sampling it off the host lock
        // between ops would make `full` depend on host thread timing.
        let (full, tail) = port.load_words_racy(self.head_addr, 1, RacyTag::DequeOwnerPeek, || {
            let st = self.state.read();
            (st.tail - st.head >= self.capacity, st.tail)
        });
        if full {
            return false;
        }
        port.store_words(self.slot_addr(tail), 1, || {
            self.state.write().slots[(tail % self.capacity) as usize] = Some(task);
        });
        // Release-publish: a thief's acquiring `tail` peek orders the
        // stolen task's descriptor reads after everything the owner wrote
        // before this push (the lock-free analog of the unlock store).
        port.store_words_racy(self.tail_addr, 1, RacyTag::DequeTailPublish, || {
            self.state.write().tail += 1;
        });
        true
    }

    /// Lock-free owner pop: reserve the tail with a store; on the last
    /// element the owner races thieves with a CAS on `head`.
    ///
    /// The functional claim linearizes at the tail store (the algorithm's
    /// linearization point); the remaining accesses model the head read and
    /// the last-element CAS.
    pub fn cl_pop_tail(&self, port: &mut CorePort) -> Option<TaskId> {
        port.flight_note(FlightKind::DequePop);
        port.load(self.tail_addr);
        // Linearization: decrement tail and claim the slot atomically.
        let (task, was_last) = port.store_words(self.tail_addr, 1, || {
            let mut st = self.state.write();
            if st.tail == st.head {
                (None, false)
            } else {
                st.tail -= 1;
                let t = st.slots[(st.tail % self.capacity) as usize];
                (t, st.tail == st.head)
            }
        });
        // Post-claim peek at the thief-owned `head` (audited racy: thieves
        // AMO it concurrently; the claim above already linearized).
        port.load_words_racy(self.head_addr, 1, RacyTag::DequeOwnerPeek, || ());
        if task.is_some() {
            port.load(self.slot_addr(0)); // slot read (already claimed)
        }
        if was_last {
            // Fight a concurrent thief for the final element and reset the
            // deque to a canonical empty state (timing of the CAS + store).
            port.amo_word(self.head_addr, || ());
            port.store(self.tail_addr);
        }
        task
    }

    /// Lock-free thief steal: read head/tail, then CAS `head` forward. The
    /// functional claim linearizes at the CAS.
    ///
    /// The pre-CAS reads are the thief's unsynchronized peeks (audited
    /// racy): a stale `tail` only costs a missed steal, and the
    /// speculative slot value is discarded unless the CAS validates it.
    /// The claim is validated against the *sequenced* reads — the CAS
    /// succeeds only if `head` still equals the peeked value and the
    /// peeked `tail` showed the slot occupied — exactly Chase-Lev's
    /// `CAS(head, h, h+1)` after `h < t`. Claiming from fresher host state
    /// would let the thief take a task pushed *after* its acquiring `tail`
    /// peek, breaking the descriptor happens-before edge.
    pub fn cl_steal(&self, port: &mut CorePort) -> Option<TaskId> {
        port.flight_note(FlightKind::DequeSteal);
        let head_now = port
            .load_words_racy(self.head_addr, 1, RacyTag::DequeThiefPeek, || self.state.read().head);
        let tail_now = port
            .load_words_racy(self.tail_addr, 1, RacyTag::DequeThiefPeek, || self.state.read().tail);
        port.load_words_racy(self.slot_addr(head_now), 1, RacyTag::DequeThiefPeek, || ());
        port.amo_word(self.head_addr, || {
            let mut st = self.state.write();
            // Three-way validation: `head` unmoved since the peek (the CAS
            // guard), the peeked `tail` showed the slot occupied (the
            // happens-before guard: the push publish predates the thief's
            // acquiring peek), and the deque is *still* non-empty (the
            // owner's claim linearized since the peek loses the race).
            if st.head != head_now || head_now >= tail_now || st.head >= st.tail {
                None
            } else {
                let t = st.slots[(st.head % self.capacity) as usize];
                st.head += 1;
                t
            }
        })
    }

    // ------------------------------------------------------------------
    // Multiplicity deques (Castañeda & Piña: fully read/write fence-free
    // work stealing with multiplicity; Michael et al.: idempotent work
    // stealing). The owner's fast path issues *no* AMO at all; the price
    // is that exactly-once relaxes to at-most-twice — a slot can be
    // claimed by both the owner and a thief, and the caller re-executes
    // the double-claimed task as an audited duplicate. The checker's
    // `Multiplicity` audit mode verifies the at-most-twice bound and the
    // kernel-idempotence requirement.
    // ------------------------------------------------------------------

    /// Fence-free owner push (both multiplicity policies): slot store +
    /// tail store, with only an audited racy peek at `head` for the
    /// capacity check. Returns `false` when full.
    pub fn mp_push_tail(&self, port: &mut CorePort, task: TaskId) -> bool {
        port.flight_note(FlightKind::DequePush);
        port.load(self.tail_addr);
        let (full, tail) = port.load_words_racy(self.head_addr, 1, RacyTag::DequeOwnerPeek, || {
            let st = self.state.read();
            (st.tail - st.head >= self.capacity, st.tail)
        });
        if full {
            return false;
        }
        port.store_words(self.slot_addr(tail), 1, || {
            self.state.write().slots[(tail % self.capacity) as usize] = Some(task);
        });
        // Release-publish, as in `cl_push_tail`: the multiplicity policies
        // drop the owner's claim-side fences, not the push-side ordering a
        // thief needs to read the stolen descriptor safely.
        port.store_words_racy(self.tail_addr, 1, RacyTag::DequeTailPublish, || {
            self.state.write().tail += 1;
        });
        true
    }

    /// Fence-free owner pop (LIFO): the claim is a plain `tail` store —
    /// no AMO even on the last element, unlike Chase-Lev. Returns
    /// `(task, duplicate)`: `duplicate` means a thief claimed the same
    /// slot concurrently, and the caller must run the task as an audited
    /// duplicate (the thief's copy is the primary). A double claim can
    /// only hit the *last* element: thieves never advance `head` past
    /// `tail`, so every earlier slot has a single claimant.
    pub fn ff_pop_tail(&self, port: &mut CorePort) -> (Option<TaskId>, bool) {
        port.flight_note(FlightKind::DequePop);
        port.load(self.tail_addr);
        // The owner's emptiness test uses the `head` it reads *here* — by
        // the time the claim below is granted, a thief's CAS may have
        // advanced `head` past it. That stale window is the multiplicity
        // mechanism: the owner still claims the slot, and the fresh `head`
        // at the claim decides whether the task was double-claimed
        // (duplicated) — it is never lost.
        let seen_head = port
            .load_words_racy(self.head_addr, 1, RacyTag::DequeOwnerPeek, || self.state.read().head);
        // Linearization: claim the tail slot with a plain store.
        port.store_words(self.tail_addr, 1, || {
            let mut st = self.state.write();
            if seen_head >= st.tail {
                (None, false)
            } else {
                st.tail -= 1;
                let idx = st.tail;
                let t = st.slots[(idx % self.capacity) as usize];
                let dup = idx < st.head;
                if dup {
                    // The thief also won the last element; reset to
                    // canonical empty so indices stay `head <= tail`.
                    st.tail = st.head;
                }
                (t, dup)
            }
        })
    }

    /// Idempotent-FIFO owner take: reads `head`, claims the slot it points
    /// at, and publishes the advance with a plain racy store — no AMO, no
    /// fence. Returns `(task, duplicate)`: `duplicate` means a thief's CAS
    /// claimed the same index inside the owner's read-to-store window. The
    /// store merges by `max`, so `head` stays monotone, each index is
    /// owner-claimed at most once (the next take re-reads a `head` past
    /// it), and every task executes at most twice.
    pub fn idem_take_head(&self, port: &mut CorePort) -> (Option<TaskId>, bool) {
        port.flight_note(FlightKind::DequeSteal);
        port.load(self.tail_addr);
        // The index the owner will claim binds *here*; a thief CAS granted
        // between this load and the store below claims the same index —
        // that is the multiplicity window.
        let seen_head = port
            .load_words_racy(self.head_addr, 1, RacyTag::DequeOwnerPeek, || self.state.read().head);
        port.load(self.slot_addr(seen_head));
        port.store_words_racy(self.head_addr, 1, RacyTag::DequeOwnerCommit, || {
            let mut st = self.state.write();
            let idx = seen_head;
            if idx >= st.tail {
                (None, false)
            } else {
                let t = st.slots[(idx % self.capacity) as usize];
                let dup = idx < st.head;
                st.head = st.head.max(idx + 1);
                (t, dup)
            }
        })
    }

    /// Multiplicity thief steal (both policies): peek `head`/`tail`/slot
    /// (audited racy), claim exactly at the `head` CAS. The thief is
    /// always the primary claimant — duplicates are only ever the owner's
    /// re-execution. As in [`SimDeque::cl_steal`], the CAS validates
    /// against the sequenced peeks so a claimed task's push-publish
    /// happens-before the thief's acquiring `tail` peek.
    pub fn mp_steal(&self, port: &mut CorePort) -> Option<TaskId> {
        port.flight_note(FlightKind::DequeSteal);
        let head_now = port
            .load_words_racy(self.head_addr, 1, RacyTag::DequeThiefPeek, || self.state.read().head);
        let tail_now = port
            .load_words_racy(self.tail_addr, 1, RacyTag::DequeThiefPeek, || self.state.read().tail);
        port.load_words_racy(self.slot_addr(head_now), 1, RacyTag::DequeThiefPeek, || ());
        port.amo_word(self.head_addr, || {
            let mut st = self.state.write();
            // Same three-way validation as `cl_steal`; the fresh
            // non-emptiness conjunct is what keeps the thief the *primary*
            // claimant — an owner claim that linearized since the peek
            // wins outright instead of creating a thief-side duplicate.
            if st.head != head_now || head_now >= tail_now || st.head >= st.tail {
                None
            } else {
                let t = st.slots[(st.head % self.capacity) as usize];
                st.head += 1;
                t
            }
        })
    }

    /// Current length (host-side, for tests and assertions).
    pub fn host_len(&self) -> usize {
        let st = self.state.read();
        (st.tail - st.head) as usize
    }

    /// Whether the lock is held (host-side, for tests).
    pub fn host_locked(&self) -> bool {
        self.state.read().locked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigtiny_engine::{run_system, SystemConfig, Worker};
    use std::sync::Arc;

    fn on_one_core(f: impl FnOnce(&mut CorePort) + Send + 'static) {
        let config = SystemConfig::o3(1);
        let workers: Vec<Worker> = vec![Box::new(move |port| {
            f(port);
            port.set_done();
        })];
        run_system(&config, workers);
    }

    #[test]
    fn lifo_owner_fifo_thief() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 8));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for i in 0..4 {
                assert!(d.push_tail(port, TaskId(i)));
            }
            assert_eq!(d.host_len(), 4);
            // Owner pops newest.
            assert_eq!(d.pop_tail(port), Some(TaskId(3)));
            // Thief steals oldest.
            assert_eq!(d.pop_head(port), Some(TaskId(0)));
            assert_eq!(d.pop_head(port), Some(TaskId(1)));
            assert_eq!(d.pop_tail(port), Some(TaskId(2)));
            assert_eq!(d.pop_tail(port), None);
            assert_eq!(d.pop_head(port), None);
        });
    }

    #[test]
    fn capacity_limit_reports_full() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 2));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.push_tail(port, TaskId(0)));
            assert!(d.push_tail(port, TaskId(1)));
            assert!(!d.push_tail(port, TaskId(2)), "full deque rejects");
            d.pop_head(port);
            assert!(d.push_tail(port, TaskId(2)), "wraps around after pop");
        });
    }

    #[test]
    fn lock_is_exclusive() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 4));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.try_lock(port));
            assert!(d.host_locked());
            assert!(!d.try_lock(port), "second acquire fails");
            d.unlock(port);
            assert!(!d.host_locked());
            d.lock(port);
            assert!(d.host_locked());
            d.unlock(port);
        });
    }

    #[test]
    fn chase_lev_lifo_fifo_semantics() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 8));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for i in 0..4 {
                assert!(d.cl_push_tail(port, TaskId(i)));
            }
            assert_eq!(d.cl_pop_tail(port), Some(TaskId(3)), "owner pops newest");
            assert_eq!(d.cl_steal(port), Some(TaskId(0)), "thief steals oldest");
            assert_eq!(d.cl_pop_tail(port), Some(TaskId(2)));
            assert_eq!(d.cl_steal(port), Some(TaskId(1)));
            assert_eq!(d.cl_pop_tail(port), None);
            assert_eq!(d.cl_steal(port), None);
            assert_eq!(d.host_len(), 0);
        });
    }

    #[test]
    fn chase_lev_last_element_race_path() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 4));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            d.cl_push_tail(port, TaskId(9));
            // Single element: the owner takes it through the CAS path and
            // the deque is consistent afterwards.
            assert_eq!(d.cl_pop_tail(port), Some(TaskId(9)));
            assert_eq!(d.host_len(), 0);
            assert!(d.cl_push_tail(port, TaskId(10)), "reusable after the race path");
            assert_eq!(d.cl_steal(port), Some(TaskId(10)));
        });
    }

    #[test]
    fn chase_lev_interoperates_with_ring_capacity() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 2));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.cl_push_tail(port, TaskId(0)));
            assert!(d.cl_push_tail(port, TaskId(1)));
            assert!(!d.cl_push_tail(port, TaskId(2)), "full");
            d.cl_steal(port);
            assert!(d.cl_push_tail(port, TaskId(2)));
        });
    }

    #[test]
    fn fence_free_lifo_fifo_semantics() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 8));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for i in 0..4 {
                assert!(d.mp_push_tail(port, TaskId(i)));
            }
            assert_eq!(d.ff_pop_tail(port), (Some(TaskId(3)), false), "owner pops newest");
            assert_eq!(d.mp_steal(port), Some(TaskId(0)), "thief steals oldest");
            assert_eq!(d.ff_pop_tail(port), (Some(TaskId(2)), false));
            assert_eq!(d.mp_steal(port), Some(TaskId(1)));
            assert_eq!(d.ff_pop_tail(port), (None, false));
            assert_eq!(d.mp_steal(port), None);
            assert_eq!(d.host_len(), 0);
        });
    }

    #[test]
    fn idempotent_fifo_semantics() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 8));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for i in 0..3 {
                assert!(d.mp_push_tail(port, TaskId(i)));
            }
            // Owner takes FIFO from the head, same end thieves steal from.
            assert_eq!(d.idem_take_head(port), (Some(TaskId(0)), false));
            assert_eq!(d.mp_steal(port), Some(TaskId(1)));
            // The owner's next take re-reads the post-steal head.
            assert_eq!(d.idem_take_head(port), (Some(TaskId(2)), false));
            assert_eq!(d.idem_take_head(port), (None, false));
            assert_eq!(d.host_len(), 0);
        });
    }

    #[test]
    fn multiplicity_capacity_check_reports_full() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 2));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            assert!(d.mp_push_tail(port, TaskId(0)));
            assert!(d.mp_push_tail(port, TaskId(1)));
            assert!(!d.mp_push_tail(port, TaskId(2)), "full");
            d.mp_steal(port);
            assert!(d.mp_push_tail(port, TaskId(2)), "wraps after a steal");
        });
    }

    /// Sweeps the thief's arrival time across the owner's pop window. In
    /// every interleaving the single task is claimed at least once and at
    /// most twice, the duplicate flag fires exactly when both sides won
    /// it, and the sweep must actually hit both a clean pop and the
    /// last-element double claim (the thief's CAS landing between the
    /// owner's `head` read and its `tail`-store claim).
    #[test]
    fn fence_free_double_claims_duplicate_never_lose() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (mut saw_dup, mut saw_clean_pop) = (false, false);
        for delay in 0..400u64 {
            let mut space = AddrSpace::new();
            let dq = Arc::new(SimDeque::new(&mut space, 4));
            let (owner, thief) = (Arc::clone(&dq), Arc::clone(&dq));
            let stolen = Arc::new(AtomicBool::new(false));
            let stolen_w = Arc::clone(&stolen);
            let owner_claim = Arc::new(std::sync::Mutex::new((None, false)));
            let owner_claim_w = Arc::clone(&owner_claim);
            let config = SystemConfig::o3(2);
            let workers: Vec<Worker> = vec![
                Box::new(move |port| {
                    owner.mp_push_tail(port, TaskId(7));
                    port.wait_cycles(320, TimeCategory::Idle);
                    *owner_claim_w.lock().unwrap() = owner.ff_pop_tail(port);
                    port.set_done();
                }),
                Box::new(move |port| {
                    port.wait_cycles(delay, TimeCategory::Idle);
                    if thief.mp_steal(port) == Some(TaskId(7)) {
                        stolen_w.store(true, Ordering::Relaxed);
                    }
                    port.set_done();
                }),
            ];
            run_system(&config, workers);
            let (task, dup) = *owner_claim.lock().unwrap();
            let thief_won = stolen.load(Ordering::Relaxed);
            let owner_won = task == Some(TaskId(7));
            assert!(owner_won || thief_won, "delay {delay}: the task was lost");
            assert_eq!(
                dup,
                owner_won && thief_won,
                "delay {delay}: duplicate flag must mean a double claim"
            );
            saw_dup |= dup;
            saw_clean_pop |= owner_won && !thief_won;
        }
        assert!(saw_dup, "the sweep never hit the double-claim window");
        assert!(saw_clean_pop, "the sweep never hit a clean owner pop");
    }

    /// Sweeps the thief's arrival across the idempotent owner's take
    /// window: a thief CAS granted between the owner's `head` read and its
    /// fence-free `head` store claims the same index, which the owner's
    /// store must report as a duplicate — never a loss, never a skip.
    #[test]
    fn idempotent_stale_window_double_claim_duplicates() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (mut saw_dup, mut saw_clean_take) = (false, false);
        for delay in 0..400u64 {
            let mut space = AddrSpace::new();
            let dq = Arc::new(SimDeque::new(&mut space, 4));
            let (owner, thief) = (Arc::clone(&dq), Arc::clone(&dq));
            let stolen = Arc::new(AtomicBool::new(false));
            let stolen_w = Arc::clone(&stolen);
            let owner_claim = Arc::new(std::sync::Mutex::new((None, false)));
            let owner_claim_w = Arc::clone(&owner_claim);
            let config = SystemConfig::o3(2);
            let workers: Vec<Worker> = vec![
                Box::new(move |port| {
                    owner.mp_push_tail(port, TaskId(7));
                    port.wait_cycles(320, TimeCategory::Idle);
                    *owner_claim_w.lock().unwrap() = owner.idem_take_head(port);
                    port.set_done();
                }),
                Box::new(move |port| {
                    port.wait_cycles(delay, TimeCategory::Idle);
                    if thief.mp_steal(port) == Some(TaskId(7)) {
                        stolen_w.store(true, Ordering::Relaxed);
                    }
                    port.set_done();
                }),
            ];
            run_system(&config, workers);
            let (task, dup) = *owner_claim.lock().unwrap();
            let thief_won = stolen.load(Ordering::Relaxed);
            let owner_won = task == Some(TaskId(7));
            assert!(owner_won || thief_won, "delay {delay}: the task was lost");
            assert_eq!(
                dup,
                owner_won && thief_won,
                "delay {delay}: duplicate flag must mean a double claim"
            );
            saw_dup |= dup;
            saw_clean_take |= owner_won && !thief_won;
        }
        assert!(saw_dup, "the sweep never hit the double-claim window");
        assert!(saw_clean_take, "the sweep never hit a clean owner take");
    }

    #[test]
    fn ring_wraps_many_times() {
        let mut space = AddrSpace::new();
        let dq = Arc::new(SimDeque::new(&mut space, 3));
        let d = Arc::clone(&dq);
        on_one_core(move |port| {
            for round in 0..10u32 {
                d.push_tail(port, TaskId(round));
                assert_eq!(d.pop_head(port), Some(TaskId(round)));
            }
            assert_eq!(d.host_len(), 0);
        });
    }
}
