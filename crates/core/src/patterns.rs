//! High-level parallel patterns on top of `spawn`/`wait`, mirroring the
//! paper's Figure 2: `parallel_invoke` for divide-and-conquer and
//! `parallel_for` for parallel loops.

use std::ops::Range;
use std::sync::Arc;

use crate::runtime::TaskCx;

/// Runs two closures as parallel tasks and waits for both
/// (`parallel_invoke` in Figure 2(b)). `Clone` is inherited from
/// [`TaskCx::spawn`]'s crash-recovery factory requirement.
pub fn parallel_invoke<A, B>(cx: &mut TaskCx<'_>, a: A, b: B)
where
    A: FnOnce(&mut TaskCx<'_>) + Clone + Send + 'static,
    B: FnOnce(&mut TaskCx<'_>) + Clone + Send + 'static,
{
    cx.set_pending(2);
    cx.spawn(a);
    cx.spawn(b);
    cx.wait();
}

/// Runs three closures as parallel tasks and waits for all of them.
pub fn parallel_invoke3<A, B, C>(cx: &mut TaskCx<'_>, a: A, b: B, c: C)
where
    A: FnOnce(&mut TaskCx<'_>) + Clone + Send + 'static,
    B: FnOnce(&mut TaskCx<'_>) + Clone + Send + 'static,
    C: FnOnce(&mut TaskCx<'_>) + Clone + Send + 'static,
{
    cx.set_pending(3);
    cx.spawn(a);
    cx.spawn(b);
    cx.spawn(c);
    cx.wait();
}

/// A parallel loop over `range` (`parallel_for` in Figure 2(c)).
///
/// The range is split recursively in halves until sub-ranges have at most
/// `grain` elements; each leaf invokes `body` with its sub-range. `grain` is
/// the paper's task-granularity knob (Section V-D / Figure 4).
///
/// # Panics
///
/// Panics if `grain` is zero.
pub fn parallel_for<F>(cx: &mut TaskCx<'_>, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(&mut TaskCx<'_>, Range<usize>) + Send + Sync + 'static,
{
    assert!(grain > 0, "grain must be positive");
    if range.is_empty() {
        return;
    }
    split(cx, range, grain, &Arc::new(body));
}

fn split<F>(cx: &mut TaskCx<'_>, range: Range<usize>, grain: usize, body: &Arc<F>)
where
    F: Fn(&mut TaskCx<'_>, Range<usize>) + Send + Sync + 'static,
{
    if range.len() <= grain {
        body(cx, range);
        return;
    }
    // Both halves are spawned as child tasks, TBB-style: each task performs
    // exactly one set_pending/spawn*/wait episode, so the reference count
    // is always set before any child of the batch becomes stealable.
    let mid = range.start + range.len() / 2;
    let left = range.start..mid;
    let right = mid..range.end;
    let (lbody, rbody) = (Arc::clone(body), Arc::clone(body));
    cx.set_pending(2);
    cx.spawn(move |cx| split(cx, left, grain, &lbody));
    cx.spawn(move |cx| split(cx, right, grain, &rbody));
    cx.wait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_task_parallel, RuntimeConfig, RuntimeKind};
    use bigtiny_engine::{AddrSpace, Protocol, ShScalar, ShVec, SystemConfig};

    fn small_sys(tiny: Protocol) -> SystemConfig {
        SystemConfig::big_tiny(
            "t8",
            bigtiny_mesh::MeshConfig::with_topology(bigtiny_mesh::Topology::new(3, 3)),
            1,
            7,
            tiny,
        )
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        for kind in [RuntimeKind::Baseline, RuntimeKind::Hcc, RuntimeKind::Dts] {
            let proto =
                if kind == RuntimeKind::Baseline { Protocol::Mesi } else { Protocol::GpuWb };
            let sys = small_sys(proto);
            let cfg = RuntimeConfig::new(kind);
            let mut space = AddrSpace::new();
            let n = 200;
            let marks = Arc::new(ShVec::new(&mut space, n, 0u64));
            let m = Arc::clone(&marks);
            let run = run_task_parallel(&sys, &cfg, &mut space, move |cx| {
                let m2 = Arc::clone(&m);
                parallel_for(cx, 0..n, 8, move |cx, r| {
                    for i in r {
                        let old = m2.read(cx.port(), i);
                        m2.write(cx.port(), i, old + 1);
                    }
                });
            });
            assert!(marks.snapshot().iter().all(|v| *v == 1), "{kind:?}: every index once");
            assert_eq!(run.report.stale_reads, 0, "{kind:?}: DAG-consistent");
            assert!(run.stats.tasks_executed > 10, "{kind:?}: split into tasks");
        }
    }

    #[test]
    fn parallel_invoke_runs_both_branches() {
        let sys = small_sys(Protocol::DeNovo);
        let cfg = RuntimeConfig::new(RuntimeKind::Hcc);
        let mut space = AddrSpace::new();
        let out = Arc::new(ShVec::new(&mut space, 2, 0u64));
        let o = Arc::clone(&out);
        run_task_parallel(&sys, &cfg, &mut space, move |cx| {
            let (a, b) = (Arc::clone(&o), Arc::clone(&o));
            parallel_invoke(
                cx,
                move |cx| a.write(cx.port(), 0, 11),
                move |cx| b.write(cx.port(), 1, 22),
            );
        });
        assert_eq!(out.snapshot(), vec![11, 22]);
    }

    #[test]
    fn nested_parallel_for() {
        let sys = small_sys(Protocol::GpuWt);
        let cfg = RuntimeConfig::new(RuntimeKind::Hcc);
        let mut space = AddrSpace::new();
        let n = 8;
        let grid = Arc::new(ShVec::new(&mut space, n * n, 0u64));
        let g = Arc::clone(&grid);
        let run = run_task_parallel(&sys, &cfg, &mut space, move |cx| {
            let g1 = Arc::clone(&g);
            parallel_for(cx, 0..n, 1, move |cx, rows| {
                for r in rows {
                    let g2 = Arc::clone(&g1);
                    parallel_for(cx, 0..n, 2, move |cx, cols| {
                        for c in cols {
                            g2.write(cx.port(), r * n + c, (r * n + c) as u64);
                        }
                    });
                }
            });
        });
        let want: Vec<u64> = (0..(n * n) as u64).collect();
        assert_eq!(grid.snapshot(), want);
        assert_eq!(run.report.stale_reads, 0);
    }

    #[test]
    fn grain_controls_task_count() {
        let sys = small_sys(Protocol::GpuWb);
        let cfg = RuntimeConfig::new(RuntimeKind::Dts);
        let mut counts = Vec::new();
        for grain in [1usize, 16, 64] {
            let mut space = AddrSpace::new();
            let cell = Arc::new(ShScalar::new(&mut space, 0u64));
            let c = Arc::clone(&cell);
            let run = run_task_parallel(&sys, &cfg, &mut space, move |cx| {
                parallel_for(cx, 0..64, grain, move |cx, r| {
                    for _ in r {
                        c.amo(cx.port(), |v| *v += 1);
                    }
                });
            });
            assert_eq!(cell.host_read(), 64);
            counts.push(run.stats.tasks_executed);
        }
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2],
            "finer grain => more tasks: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "grain must be positive")]
    fn zero_grain_panics() {
        let sys = small_sys(Protocol::Mesi);
        let cfg = RuntimeConfig::new(RuntimeKind::Baseline);
        let mut space = AddrSpace::new();
        run_task_parallel(&sys, &cfg, &mut space, move |cx| {
            parallel_for(cx, 0..10, 0, |_, _| {});
        });
    }
}
