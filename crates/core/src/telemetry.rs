//! Host-side scheduler telemetry: per-victim steal counters, ULI
//! round-trip latency histograms, `has_stolen_child` elision counts, and
//! (optionally) per-task lifecycle events for trace export.
//!
//! Everything in this module is pure host-side bookkeeping. Recording
//! never sequences an operation, never charges a cycle, and only reads
//! clocks the simulation already computed (`port.now()`), so telemetry is
//! bit-for-bit invisible to simulated results — the golden-trace pins in
//! `tests/tests/golden_trace.rs` hold it to that.

/// A fixed-bucket log2 latency histogram: bucket `i` counts values in
/// `[2^i, 2^(i+1))`, with bucket 0 covering `{0, 1}` and the last bucket
/// open-ended. The bucket layout is part of the metrics schema, so it
/// never changes with the data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Log2Histogram {
    buckets: [u64; Self::NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; Self::NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Log2Histogram {
    /// Number of buckets. 32 covers latencies up to `2^31` cycles before
    /// the open-ended last bucket — far beyond any simulated round trip.
    pub const NUM_BUCKETS: usize = 32;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a value lands in.
    fn bucket_of(v: u64) -> usize {
        if v < 2 {
            0
        } else {
            ((63 - v.leading_zeros()) as usize).min(Self::NUM_BUCKETS - 1)
        }
    }

    /// Records one value. The running sum saturates at `u64::MAX` rather
    /// than wrapping, so `mean` degrades gracefully (reads low) if a
    /// caller ever records astronomically large values.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Per-bucket counts, in bucket order.
    pub fn buckets(&self) -> &[u64; Self::NUM_BUCKETS] {
        &self.buckets
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1 << i
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values; 0.0 when empty (never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `p`-th percentile (`p` in `[0, 100]`) by rank-walking
    /// the buckets and interpolating linearly inside the target bucket
    /// (between its lower bound and its upper bound, clamped to the
    /// recorded maximum). Resolution is therefore the bucket width — exact
    /// for the bucket, approximate within it. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Self::bucket_lo(i);
                let hi =
                    if i + 1 < Self::NUM_BUCKETS { Self::bucket_lo(i + 1) - 1 } else { self.max };
                let hi = hi.min(self.max).max(lo);
                let frac = (rank - seen) as f64 / c as f64;
                // The f64 round-trip of a huge `hi - lo` can land above the
                // true width (f64 has 53 mantissa bits); clamp so `lo + off`
                // can never overflow past `hi`.
                let off = (((hi - lo) as f64 * frac).round() as u64).min(hi - lo);
                return lo + off;
            }
            seen += c;
        }
        self.max
    }

    /// Median estimate (see [`Log2Histogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th-percentile estimate (see [`Log2Histogram::percentile`]).
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th-percentile estimate (see [`Log2Histogram::percentile`]).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Steal-attempt outcomes against one victim, summed over all thieves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VictimCounters {
    /// Steal attempts directed at this victim (lock-and-look, or a ULI
    /// request issued / forced to miss before any traffic).
    pub attempts: u64,
    /// Attempts that came back with a task.
    pub hits: u64,
    /// Attempts that came back empty (including NACKs, timeouts, and
    /// fault-forced misses).
    pub misses: u64,
}

/// Scheduler telemetry for one run, collected host-side while the
/// simulation executes and reported through
/// [`TaskRun::telemetry`](crate::TaskRun).
///
/// Under an armed fault plan, a timed-out steal whose response arrives
/// late is counted as both a miss (at the timeout) and a hit (at the late
/// claim), so `hits + misses` can slightly exceed `attempts`. A DTS steal
/// abandoned because the program completed while the thief awaited its
/// response resolves as neither (at most one per worker). Without faults,
/// those completion-race attempts are the only imbalance.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StealTelemetry {
    /// Per-victim steal outcomes, indexed by victim core id.
    pub per_victim: Vec<VictimCounters>,
    /// ULI steal round-trip latency (request send to response receipt on
    /// the thief), DTS only.
    pub uli_rtt: Log2Histogram,
    /// `has_stolen_child` elisions: joins and completions that skipped the
    /// conservative AMO/invalidate protocol because no child was stolen
    /// (Section IV-C of the paper).
    pub hsc_elisions: u64,
    /// Completed `wait()` joins.
    pub joins: u64,
}

impl StealTelemetry {
    /// An empty telemetry record for `workers` cores.
    pub fn new(workers: usize) -> Self {
        StealTelemetry { per_victim: vec![VictimCounters::default(); workers], ..Self::default() }
    }

    /// Total steal attempts across victims.
    pub fn total_attempts(&self) -> u64 {
        self.per_victim.iter().map(|v| v.attempts).sum()
    }

    /// Total steal hits across victims.
    pub fn total_hits(&self) -> u64 {
        self.per_victim.iter().map(|v| v.hits).sum()
    }

    /// Total steal misses across victims.
    pub fn total_misses(&self) -> u64 {
        self.per_victim.iter().map(|v| v.misses).sum()
    }
}

/// One task lifecycle event, recorded only when
/// [`RuntimeConfig::record_task_events`](crate::RuntimeConfig) is set. The
/// trace exporter turns Spawn..ExecEnd into async task-lifetime spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskEvent {
    /// Simulated cycle on the recording core.
    pub cycle: u64,
    /// Core that recorded the event.
    pub core: usize,
    /// Task id the event concerns.
    pub task: u32,
    /// What happened.
    pub kind: TaskEventKind,
}

/// The task lifecycle points recorded as [`TaskEvent`]s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskEventKind {
    /// The task was created (`spawn`, or the root's allocation).
    Spawn {
        /// Task id of the spawning task, `None` only for the root.
        parent: Option<u32>,
    },
    /// A worker began executing the task body.
    ExecBegin,
    /// The task body returned.
    ExecEnd,
    /// A thief claimed the task from victim `from`.
    Stolen {
        /// Victim core the task was taken from.
        from: usize,
    },
    /// The task's `wait()` returned — all children joined.
    Join,
    /// Crash recovery re-created the task: this event's task id is the
    /// replacement, `of` is the task that was executing on the fail-stopped
    /// core. The replacement inherits `of`'s parent and join obligation.
    Respawn {
        /// Task id of the original that died mid-execution.
        of: u32,
    },
    /// Crash recovery discarded the task without executing it: it sat
    /// unstarted in a fail-stopped core's deque, and every such orphan is a
    /// descendant of a task frozen on that core's execution stack, so
    /// re-executing the stack bottom recreates it.
    Discarded,
    /// A multiplicity deque double-claimed the original task `of` (owner
    /// and thief both won its slot), and this fresh record re-executes the
    /// body. Unlike [`TaskEventKind::Respawn`], the original *also* runs
    /// to completion — legal only under a multiplicity policy with an
    /// idempotent kernel, which the checker's `Multiplicity` audit mode
    /// verifies.
    Duplicate {
        /// Task id of the original that was double-claimed.
        of: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_cover_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 0);
        assert_eq!(Log2Histogram::bucket_of(2), 1);
        assert_eq!(Log2Histogram::bucket_of(3), 1);
        assert_eq!(Log2Histogram::bucket_of(4), 2);
        assert_eq!(Log2Histogram::bucket_of(1023), 9);
        assert_eq!(Log2Histogram::bucket_of(1024), 10);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), Log2Histogram::NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_stats_track_records() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.mean(), 0.0, "empty histogram must not be NaN");
        h.record(4);
        h.record(8);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 12);
        assert_eq!(h.max(), 8);
        assert_eq!(h.mean(), 6.0);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[3], 1);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Log2Histogram::new();
        a.record(2);
        let mut b = Log2Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 102);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn bucket_bounds_are_schema_stable() {
        assert_eq!(Log2Histogram::bucket_lo(0), 0);
        assert_eq!(Log2Histogram::bucket_lo(1), 2);
        assert_eq!(Log2Histogram::bucket_lo(5), 32);
    }

    #[test]
    fn percentiles_empty_and_single() {
        let h = Log2Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        // `percentile` on an empty histogram is 0 for every `p`, including
        // the extremes and out-of-range values (which clamp): rank-walking
        // zero buckets must short-circuit, never divide by the zero count.
        for p in [0.0, 50.0, 100.0, -3.0, 250.0] {
            assert_eq!(h.percentile(p), 0, "empty histogram at p={p}");
        }
        // A single value is exact at every percentile: the interpolation
        // upper bound clamps to the recorded max.
        let mut h = Log2Histogram::new();
        h.record(100);
        assert_eq!(h.p50(), 100);
        assert_eq!(h.p90(), 100);
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max(), "{p50} {p90} {p99}");
        // Bucket-resolution accuracy: the true percentiles are 500/900/990,
        // so the estimates must land in the same power-of-two bucket.
        assert_eq!(Log2Histogram::bucket_of(p50), Log2Histogram::bucket_of(500));
        assert_eq!(Log2Histogram::bucket_of(p90), Log2Histogram::bucket_of(900));
        assert_eq!(Log2Histogram::bucket_of(p99), Log2Histogram::bucket_of(990));
    }

    #[test]
    fn percentiles_pick_heavy_tail() {
        // 99 fast values and one slow outlier: p50 stays in the fast
        // bucket, p99 crosses into the outlier's reach.
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(8);
        }
        h.record(100_000);
        assert!(h.p50() < 16, "{}", h.p50());
        assert!(h.percentile(100.0) == 100_000, "{}", h.percentile(100.0));
    }

    #[test]
    fn percentile_extreme_p_values_clamp() {
        let mut h = Log2Histogram::new();
        for v in [3, 5, 9] {
            h.record(v);
        }
        // p=0 clamps to the first recorded value's bucket floor; p=100 is
        // the max; out-of-range inputs clamp rather than misbehave.
        assert_eq!(h.percentile(0.0), h.percentile(-5.0));
        assert_eq!(h.percentile(100.0), 9);
        assert_eq!(h.percentile(250.0), 9);
        assert!(h.percentile(0.0) <= h.percentile(100.0));
    }

    #[test]
    fn percentile_bucket_zero_holds_both_zero_and_one() {
        // Bucket 0 covers {0, 1}: all-zeros must report 0, not 1.
        let mut h = Log2Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(100.0), 0);
        // A mix interpolates within the bucket but never exceeds the max.
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(1);
        assert!(h.p50() <= 1);
        assert_eq!(h.percentile(100.0), 1);
    }

    #[test]
    fn percentile_open_ended_last_bucket_does_not_overflow() {
        // The last bucket is open-ended (everything >= 2^31 lands there);
        // interpolation against a near-u64::MAX max must clamp instead of
        // wrapping to a tiny value.
        let mut h = Log2Histogram::new();
        h.record(1u64 << 31);
        h.record(u64::MAX);
        let p99 = h.p99();
        assert!(p99 >= 1u64 << 31, "interpolated percentile wrapped: {p99}");
        assert_eq!(h.percentile(100.0), u64::MAX);
        // All-max histogram: estimates stay inside [bucket floor, max]
        // (bucket resolution means p50 interpolates mid-bucket, but it must
        // never wrap past the max).
        let mut h = Log2Histogram::new();
        for _ in 0..4 {
            h.record(u64::MAX);
        }
        assert!(h.p50() >= 1u64 << 31);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }

    #[test]
    fn telemetry_totals_sum_victims() {
        let mut t = StealTelemetry::new(3);
        t.per_victim[1].attempts = 5;
        t.per_victim[1].hits = 3;
        t.per_victim[2].attempts = 2;
        t.per_victim[2].misses = 2;
        assert_eq!(t.total_attempts(), 7);
        assert_eq!(t.total_hits(), 3);
        assert_eq!(t.total_misses(), 2);
    }
}
