//! A native (host-thread) work-stealing pool with the same help-first,
//! LIFO-local / FIFO-steal discipline as the simulated runtime.
//!
//! The paper validates its baseline runtime by comparing against Intel TBB
//! and Cilk Plus natively (Section V-B). This module plays that role for the
//! reproduction: the timing benches compare `NativePool` against serial
//! execution and a naive thread-per-task scheme on real hardware.
//!
//! The deques are plain `Mutex<VecDeque>`s rather than lock-free Chase-Lev
//! structures: the workspace is deliberately dependency-free, and for the
//! task granularities the benches use, lock overhead is not the bottleneck.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bigtiny_engine::sync::{Condvar, Mutex};

/// A task submitted to the native pool.
pub type NativeTask = Box<dyn FnOnce(&NativeCtx<'_>) + Send + 'static>;

struct PoolShared {
    /// Global submission queue (roots go here).
    injector: Mutex<VecDeque<NativeTask>>,
    /// Per-worker deques: owner pushes/pops at the back, thieves steal from
    /// the front.
    deques: Vec<Mutex<VecDeque<NativeTask>>>,
    pending: AtomicU64,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// Context passed to every native task, used to spawn more tasks.
pub struct NativeCtx<'a> {
    shared: &'a PoolShared,
    me: usize,
}

impl NativeCtx<'_> {
    /// Spawns a child task onto this worker's deque.
    pub fn spawn(&self, f: impl FnOnce(&NativeCtx<'_>) + Send + 'static) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.deques[self.me].lock().push_back(Box::new(f));
        self.shared.idle_cv.notify_one();
    }
}

/// A fixed-size native work-stealing thread pool.
///
/// Tasks are `'static` closures; completion of *all* outstanding tasks is
/// awaited by [`NativePool::run`]. Results flow through shared state the
/// caller provides (e.g. atomics), exactly like the simulated applications.
pub struct NativePool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NativePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativePool").field("threads", &self.handles.len()).finish()
    }
}

impl NativePool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("native-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn native worker")
            })
            .collect();
        NativePool { shared, handles }
    }

    /// Runs `root` and blocks until it and every task it transitively
    /// spawned have completed.
    pub fn run(&self, root: impl FnOnce(&NativeCtx<'_>) + Send + 'static) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.injector.lock().push_back(Box::new(root));
        self.shared.idle_cv.notify_all();
        // Wait for quiescence.
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            self.shared.idle_cv.wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for NativePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.idle_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn find_task(shared: &PoolShared, me: usize) -> Option<NativeTask> {
    // Own deque first (LIFO), then the injector, then steal round-robin
    // from peers (FIFO).
    if let Some(t) = shared.deques[me].lock().pop_back() {
        return Some(t);
    }
    if let Some(t) = shared.injector.lock().pop_front() {
        return Some(t);
    }
    let n = shared.deques.len();
    for k in 1..n {
        let v = (me + k) % n;
        if let Some(t) = shared.deques[v].lock().pop_front() {
            return Some(t);
        }
    }
    None
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        if let Some(task) = find_task(shared, me) {
            let cx = NativeCtx { shared, me };
            task(&cx);
            if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                shared.idle_cv.notify_all();
            }
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut guard = shared.idle_lock.lock();
        if shared.pending.load(Ordering::SeqCst) != 0 || shared.shutdown.load(Ordering::SeqCst) {
            continue;
        }
        shared.idle_cv.wait_for(&mut guard, std::time::Duration::from_millis(1));
    }
}

/// Counts `fib(n)` leaf tasks on the pool (the native analogue of the
/// paper's `cilk5` microbenchmark style): returns `fib(n)`.
pub fn native_fib(pool: &NativePool, n: u64) -> u64 {
    let acc = Arc::new(AtomicU64::new(0));
    let a = Arc::clone(&acc);
    pool.run(move |cx| fib_task(cx, a, n));
    acc.load(Ordering::SeqCst)
}

fn fib_task(cx: &NativeCtx<'_>, acc: Arc<AtomicU64>, n: u64) {
    if n < 2 {
        acc.fetch_add(n, Ordering::Relaxed);
        return;
    }
    let a = Arc::clone(&acc);
    cx.spawn(move |cx| fib_task(cx, a, n - 1));
    fib_task(cx, acc, n - 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_on_pool_matches_serial() {
        fn serial_fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                serial_fib(n - 1) + serial_fib(n - 2)
            }
        }
        let pool = NativePool::new(4);
        for n in [0, 1, 5, 10, 16] {
            assert_eq!(native_fib(&pool, n), serial_fib(n), "fib({n})");
        }
    }

    #[test]
    fn many_roots_sequentially() {
        let pool = NativePool::new(2);
        for _ in 0..20 {
            let acc = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&acc);
            pool.run(move |cx| {
                for _ in 0..16 {
                    let a2 = Arc::clone(&a);
                    cx.spawn(move |_| {
                        a2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(acc.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let pool = NativePool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }
}
