//! The task model: task records, reference counts, and the work/span
//! profiler.
//!
//! Mirrors the paper's Section III-A programming model: a task is a unit of
//! computation with a reference count tracking unfinished children, a parent
//! pointer, and (for DTS) a `has_stolen_child` flag. Task records live in a
//! functional slab paired with simulated addresses so that every runtime
//! access to `rc`, `has_stolen_child`, or the task descriptor produces the
//! modelled memory traffic.

use bigtiny_coherence::Addr;

use crate::TaskCx;

/// A task body: the analogue of overriding `task::execute()` in the paper's
/// TBB-like API. Implemented for all `FnOnce(&mut TaskCx)` closures.
pub trait TaskBody: Send {
    /// Runs the task. Spawning and waiting go through the context.
    fn run(self: Box<Self>, cx: &mut TaskCx<'_>);
}

impl<F> TaskBody for F
where
    F: FnOnce(&mut TaskCx<'_>) + Send,
{
    fn run(self: Box<Self>, cx: &mut TaskCx<'_>) {
        (*self)(cx)
    }
}

/// Index of a task record in the runtime's slab.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Sentinel encoding for "no task" in single-word mailboxes.
    pub const NONE_PAYLOAD: u64 = u64::MAX;

    /// Encodes the id as a mailbox payload word.
    pub fn to_payload(self) -> u64 {
        self.0 as u64
    }

    /// Decodes a mailbox payload word.
    pub fn from_payload(p: u64) -> Option<TaskId> {
        if p == Self::NONE_PAYLOAD {
            None
        } else {
            Some(TaskId(p as u32))
        }
    }
}

/// Byte offsets of the simulated fields of a task record.
pub mod field {
    /// Reference count (word 0).
    pub const RC: u64 = 0;
    /// `has_stolen_child` flag (word 1).
    pub const HAS_STOLEN_CHILD: u64 = 8;
    /// Parent pointer (word 2).
    pub const PARENT: u64 = 16;
    /// Start of the user descriptor (captured state).
    pub const DESC: u64 = 24;
    /// Total simulated footprint of a task record.
    pub const SIZE: u64 = 64;
}

/// A cell that is `Sync` because it only ever hands out its contents by
/// move through an exclusive reference. Lets task bodies be plain `Send`
/// closures while the task slab stays shareable across worker threads.
pub struct SyncCell<T>(T);

// SAFETY: the inner value is only reachable through `&mut SyncCell` /
// owned access (`into_inner`), so shared references never touch `T`.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        SyncCell(value)
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::fmt::Debug for SyncCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SyncCell(..)")
    }
}

/// A factory that re-creates a task's body for crash recovery. Shared
/// (`Arc`) so a respawned task can itself be respawned if its executor
/// later fail-stops too; the `Mutex` keeps the factory `Sync` without
/// demanding `Sync` closures from applications.
pub type RespawnFn = std::sync::Arc<std::sync::Mutex<Box<dyn FnMut() -> Box<dyn TaskBody> + Send>>>;

/// One task's functional state.
pub struct TaskRecord {
    /// The body, present until the task is dispatched.
    pub body: Option<SyncCell<Box<dyn TaskBody>>>,
    /// Re-creates the body after a core crash. `None` unless a crash plan
    /// is armed (the factory costs a clone of the closure's captures) or
    /// for the root task (core 0 is never crash-eligible).
    pub respawn: Option<RespawnFn>,
    /// Parent task, if any.
    pub parent: Option<TaskId>,
    /// Unfinished children (the paper's `reference_count`).
    pub rc: u64,
    /// Children announced by `set_pending` but not yet spawned. `spawn`
    /// requires a positive budget: the reference count must be set *before*
    /// children become stealable (Figure 2 line 16), or a thief's decrement
    /// could race with the parent's update on real hardware.
    pub pending_budget: u64,
    /// Set by the DTS victim handler before handing a child to a thief.
    pub has_stolen_child: bool,
    /// For a multiplicity duplicate: the task id of the original whose
    /// claim this record re-executes. Duplicates have no parent (they hold
    /// no join obligation — the original's claimant decrements the rc), so
    /// this is the only link back to the task they double.
    pub duplicate_of: Option<u32>,
    /// Base simulated address of this record.
    pub sim_addr: Addr,
    /// Work/span bookkeeping.
    pub profile: TaskProfile,
}

impl std::fmt::Debug for TaskRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRecord")
            .field("parent", &self.parent)
            .field("rc", &self.rc)
            .field("has_stolen_child", &self.has_stolen_child)
            .field("sim_addr", &self.sim_addr)
            .finish_non_exhaustive()
    }
}

impl TaskRecord {
    /// Creates a record for `body` at `sim_addr`.
    pub fn new(body: Box<dyn TaskBody>, parent: Option<TaskId>, sim_addr: Addr) -> Self {
        TaskRecord {
            body: Some(SyncCell::new(body)),
            respawn: None,
            parent,
            rc: 0,
            pending_budget: 0,
            has_stolen_child: false,
            duplicate_of: None,
            sim_addr,
            profile: TaskProfile::default(),
        }
    }

    /// Simulated address of the reference count.
    pub fn rc_addr(&self) -> Addr {
        self.sim_addr.offset(field::RC)
    }

    /// Simulated address of the `has_stolen_child` flag.
    pub fn hsc_addr(&self) -> Addr {
        self.sim_addr.offset(field::HAS_STOLEN_CHILD)
    }

    /// Simulated address of the descriptor words.
    pub fn desc_addr(&self) -> Addr {
        self.sim_addr.offset(field::DESC)
    }
}

/// Cilkview-style work/span bookkeeping for one task (Section V-D: the
/// Work, Span, and Parallelism columns of Table III).
///
/// `path` is the length, in instructions, of the longest chain through this
/// task's subgraph that ends at the task's current execution point; it
/// accumulates the task's own serial instructions and, at each `wait`,
/// merges the longest completed child chain (`candidate`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TaskProfile {
    /// Longest instruction chain ending at the current point of this task.
    pub path: u64,
    /// Max over completed children of `spawn_path + child_span`.
    pub candidate: u64,
    /// Parent's `path` at the moment this task was spawned.
    pub spawn_path: u64,
    /// This task's serial instructions (excluding children).
    pub serial_work: u64,
}

impl TaskProfile {
    /// The task's span once it has completed.
    pub fn span(&self) -> u64 {
        self.path.max(self.candidate)
    }
}

/// Aggregated work/span numbers for a whole run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct WorkSpan {
    /// Total user instructions across all tasks.
    pub work: u64,
    /// Critical-path length in instructions.
    pub span: u64,
    /// Number of tasks executed.
    pub tasks: u64,
}

impl WorkSpan {
    /// Logical parallelism (work / span).
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            self.work as f64 / self.span as f64
        }
    }

    /// Average instructions per task (the paper's IPT column).
    pub fn instructions_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.work as f64 / self.tasks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trip() {
        assert_eq!(TaskId::from_payload(TaskId(7).to_payload()), Some(TaskId(7)));
        assert_eq!(TaskId::from_payload(TaskId::NONE_PAYLOAD), None);
    }

    #[test]
    fn record_field_addresses() {
        let r = TaskRecord::new(Box::new(|_: &mut TaskCx<'_>| {}), None, Addr(0x1000));
        assert_eq!(r.rc_addr(), Addr(0x1000));
        assert_eq!(r.hsc_addr(), Addr(0x1008));
        assert_eq!(r.desc_addr(), Addr(0x1018));
    }

    #[test]
    fn workspan_ratios() {
        let ws = WorkSpan { work: 1000, span: 100, tasks: 10 };
        assert!((ws.parallelism() - 10.0).abs() < 1e-12);
        assert!((ws.instructions_per_task() - 100.0).abs() < 1e-12);
        let empty = WorkSpan::default();
        assert_eq!(empty.parallelism(), 0.0);
        assert_eq!(empty.instructions_per_task(), 0.0);
    }

    #[test]
    fn profile_span_takes_max_of_path_and_candidate() {
        let p = TaskProfile { path: 50, candidate: 80, spawn_path: 0, serial_work: 50 };
        assert_eq!(p.span(), 80);
    }
}
