#![warn(missing_docs)]

//! A TBB/Cilk-like work-stealing runtime for heterogeneous cache-coherent
//! systems — the Rust reproduction of the core contribution of
//! *"Efficiently Supporting Dynamic Task Parallelism on Heterogeneous
//! Cache-Coherent Systems"* (ISCA 2020).
//!
//! The runtime runs *inside the simulator*: every deque access, reference
//! count update, lock, `cache_invalidate`/`cache_flush`, and user-level
//! interrupt is a simulated operation with modelled latency and coherence
//! behaviour. Three variants are provided, transcribed from the paper's
//! Figure 3:
//!
//! * [`RuntimeKind::Baseline`] for hardware-based coherence,
//! * [`RuntimeKind::Hcc`] with the extra invalidate/flush protocol for
//!   software-centric coherence, and
//! * [`RuntimeKind::Dts`] — **direct task stealing** over user-level
//!   interrupts, with the `has_stolen_child` optimizations of Section IV.
//!
//! Applications use the TBB-like API of Figure 2: [`TaskCx::spawn`] /
//! [`TaskCx::wait`], or the patterns [`parallel_invoke`] and
//! [`parallel_for`].
//!
//! # Example: parallel Fibonacci (Figure 2 of the paper)
//!
//! ```
//! use bigtiny_core::{parallel_invoke, run_task_parallel, RuntimeConfig, RuntimeKind, TaskCx};
//! use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig};
//! use std::sync::Arc;
//!
//! fn fib(cx: &mut TaskCx<'_>, out: Arc<ShVec<u64>>, slot: usize, n: u64) {
//!     cx.port().advance(4);
//!     if n < 2 {
//!         out.write(cx.port(), slot, n);
//!         return;
//!     }
//!     // Two fresh result slots for the children (x, y in the paper).
//!     let (a, b) = (Arc::clone(&out), Arc::clone(&out));
//!     let (sa, sb) = (2 * slot + 1, 2 * slot + 2);
//!     parallel_invoke(
//!         cx,
//!         move |cx| fib(cx, a, sa, n - 1),
//!         move |cx| fib(cx, b, sb, n - 2),
//!     );
//!     let x = out.read(cx.port(), sa);
//!     let y = out.read(cx.port(), sb);
//!     out.write(cx.port(), slot, x + y);
//! }
//!
//! let sys = SystemConfig::big_tiny(
//!     "demo",
//!     bigtiny_mesh::MeshConfig::with_topology(bigtiny_mesh::Topology::new(2, 2)),
//!     1, 3, Protocol::GpuWb);
//! let cfg = RuntimeConfig::new(RuntimeKind::Dts);
//! let mut space = AddrSpace::new();
//! let out = Arc::new(ShVec::new(&mut space, 1 << 8, 0u64));
//! let o = Arc::clone(&out);
//! let run = run_task_parallel(&sys, &cfg, &mut space, move |cx| fib(cx, o, 0, 7));
//! assert_eq!(out.host_read(0), 13);
//! assert_eq!(run.report.stale_reads, 0);
//! ```

mod deque;
mod native;
mod patterns;
mod runtime;
mod task;
mod telemetry;

pub use deque::SimDeque;
pub use native::{native_fib, NativeCtx, NativePool, NativeTask};
pub use patterns::{parallel_for, parallel_invoke, parallel_invoke3};
pub use runtime::{
    run_task_parallel, DequeKind, Mutation, MutationKind, RuntimeConfig, RuntimeKind, RuntimeStats,
    TaskCx, TaskRun, VictimPolicy,
};
pub use task::{TaskBody, TaskId, TaskProfile, TaskRecord, WorkSpan};
pub use telemetry::{Log2Histogram, StealTelemetry, TaskEvent, TaskEventKind, VictimCounters};
