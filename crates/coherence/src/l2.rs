//! Shared banked L2 cache with an embedded directory, plus the DRAM model.
//!
//! The L2 is the integration point for heterogeneous coherence, in the style
//! of Spandex: every request type of the four L1 protocols (GetS, GetM/GetO,
//! write-through words, bulk write-backs, at-L2 atomics) is served here. The
//! directory is embedded in the L2 with a precise sharer list for MESI L1s
//! (Table II) and an owner pointer that can name either a MESI core holding
//! the line in E/M or a DeNovo core that registered ownership.

use crate::addr::LineAddr;

/// A set of core ids, used for the precise MESI sharer list.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreSet {
    words: [u64; 4],
}

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet { words: [0; 4] };

    /// Maximum representable core id + 1.
    pub const CAPACITY: usize = 256;

    /// Inserts `core`.
    pub fn insert(&mut self, core: usize) {
        assert!(core < Self::CAPACITY);
        self.words[core / 64] |= 1 << (core % 64);
    }

    /// Removes `core`.
    pub fn remove(&mut self, core: usize) {
        assert!(core < Self::CAPACITY);
        self.words[core / 64] &= !(1 << (core % 64));
    }

    /// Whether `core` is present.
    pub fn contains(&self, core: usize) -> bool {
        core < Self::CAPACITY && self.words[core / 64] & (1 << (core % 64)) != 0
    }

    /// Number of cores in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates over members in ascending order by bit-scanning the
    /// backing words (cost scales with membership, not capacity — sharer
    /// sets are consulted on every store under the write-through
    /// protocols, so an empty set must cost four word loads, not 256
    /// `contains` probes).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// Removes and returns all members.
    pub fn drain(&mut self) -> Vec<usize> {
        let members: Vec<usize> = self.iter().collect();
        *self = CoreSet::EMPTY;
        members
    }
}

/// One L2-resident line with its embedded directory state.
#[derive(Clone, Debug)]
pub struct L2Line {
    /// The line address.
    pub line: LineAddr,
    /// Dirty with respect to DRAM.
    pub dirty: bool,
    /// MESI cores holding the line in S (precise sharer list).
    pub sharers: CoreSet,
    /// Core holding the line in MESI E/M or with DeNovo ownership.
    pub owner: Option<usize>,
    lru: u64,
}

impl L2Line {
    /// Whether any private cache holds coherence state for this line.
    pub fn has_directory_state(&self) -> bool {
        self.owner.is_some() || !self.sharers.is_empty()
    }
}

/// Result of an L2 line allocation.
#[derive(Debug, Default)]
pub struct L2Eviction {
    /// Displaced line, if any (its directory state must be recalled by the
    /// caller before reuse).
    pub victim: Option<L2Line>,
}

/// The banked, shared, set-associative L2 with embedded directory and
/// per-bank service queues.
#[derive(Clone, Debug)]
pub struct L2Cache {
    banks: usize,
    sets_per_bank: usize,
    ways: usize,
    lines: Vec<Option<L2Line>>,
    bank_busy_until: Vec<u64>,
    lru_clock: u64,
    access_latency: u64,
    occupancy: u64,
}

impl L2Cache {
    /// Creates an L2 with `banks` banks of `bank_bytes` each, `ways`-way
    /// associative, 64-byte lines. Defaults to the paper's 6-cycle access
    /// latency class and 2-cycle bank occupancy.
    pub fn new(banks: usize, bank_bytes: usize, ways: usize) -> Self {
        assert!(banks > 0 && ways > 0);
        let lines_per_bank = bank_bytes / crate::addr::LINE_BYTES as usize;
        assert!(lines_per_bank > 0 && lines_per_bank.is_multiple_of(ways), "invalid L2 geometry");
        let sets_per_bank = lines_per_bank / ways;
        L2Cache {
            banks,
            sets_per_bank,
            ways,
            lines: vec![None; lines_per_bank * banks],
            bank_busy_until: vec![0; banks],
            lru_clock: 0,
            access_latency: 6,
            occupancy: 2,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Home bank of `line`.
    pub fn home_bank(&self, line: LineAddr) -> usize {
        line.home_bank(self.banks)
    }

    /// Charges one bank access arriving at `arrival`: returns the cycle at
    /// which the bank has produced its result, accounting for queueing.
    pub fn access(&mut self, bank: usize, arrival: u64) -> u64 {
        let start = arrival.max(self.bank_busy_until[bank]);
        self.bank_busy_until[bank] = start + self.occupancy;
        start + self.access_latency
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let bank = self.home_bank(line);
        let set = ((line.0 / self.banks as u64) % self.sets_per_bank as u64) as usize;
        let base = bank * self.sets_per_bank * self.ways + set * self.ways;
        base..base + self.ways
    }

    /// Looks up `line` without updating LRU.
    pub fn peek(&self, line: LineAddr) -> Option<&L2Line> {
        self.lines[self.set_range(line)].iter().flatten().find(|e| e.line == line)
    }

    /// Looks up `line` mutably, marking it most-recently-used.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut L2Line> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(line);
        #[allow(clippy::manual_inspect)]
        self.lines[range].iter_mut().flatten().find(|e| e.line == line).map(|e| {
            e.lru = clock;
            e
        })
    }

    /// Allocates `line`, evicting if necessary. Victims without directory
    /// state are preferred; the returned victim's state (dirty data, sharers)
    /// must be handled by the caller.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident.
    pub fn insert(&mut self, line: LineAddr) -> (L2Eviction, &mut L2Line) {
        assert!(self.peek(line).is_none(), "L2 line {line} already resident");
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(line);

        let slot = {
            let set = &self.lines[range.clone()];
            if let Some(i) = set.iter().position(|e| e.is_none()) {
                range.start + i
            } else {
                // Prefer LRU among lines without directory state.
                let pick = set
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.as_ref().is_some_and(|l| !l.has_directory_state()))
                    .min_by_key(|(_, e)| e.as_ref().map(|l| l.lru).unwrap_or(u64::MAX))
                    .map(|(i, _)| i)
                    .or_else(|| {
                        set.iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.as_ref().map(|l| l.lru).unwrap_or(u64::MAX))
                            .map(|(i, _)| i)
                    })
                    .expect("nonempty set");
                range.start + pick
            }
        };
        let victim = self.lines[slot].take();
        self.lines[slot] =
            Some(L2Line { line, dirty: false, sharers: CoreSet::EMPTY, owner: None, lru: clock });
        (L2Eviction { victim }, self.lines[slot].as_mut().expect("just inserted"))
    }

    /// Number of resident lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().flatten().count()
    }
}

/// The DRAM controllers: fixed access latency plus a bandwidth model in
/// which each controller transfers a bounded number of bytes per cycle
/// (Table II: 16 GB/s aggregate across the chip's controllers).
#[derive(Clone, Debug)]
pub struct Dram {
    ctrl_busy_until: Vec<u64>,
    access_latency: u64,
    cycles_per_line: u64,
}

impl Dram {
    /// Creates `controllers` DRAM controllers. `cycles_per_line` is the
    /// occupancy of a 64-byte transfer at one controller (the paper's
    /// 16 GB/s over 8 controllers at 1 GHz gives 2 B/cycle/controller, i.e.
    /// 32 cycles per line).
    pub fn new(controllers: usize, access_latency: u64, cycles_per_line: u64) -> Self {
        assert!(controllers > 0);
        Dram { ctrl_busy_until: vec![0; controllers], access_latency, cycles_per_line }
    }

    /// The paper's 64-core memory system: 8 controllers, 16 GB/s total.
    pub fn paper_64_core() -> Self {
        Dram::new(8, 60, 32)
    }

    /// Charges a line transfer at controller `ctrl` arriving at `arrival`;
    /// returns the completion cycle.
    pub fn access(&mut self, ctrl: usize, arrival: u64) -> u64 {
        let start = arrival.max(self.ctrl_busy_until[ctrl]);
        self.ctrl_busy_until[ctrl] = start + self.cycles_per_line;
        start + self.access_latency + self.cycles_per_line
    }

    /// Number of controllers.
    pub fn controllers(&self) -> usize {
        self.ctrl_busy_until.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_set_basics() {
        let mut s = CoreSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 4);
        assert!(s.contains(64) && !s.contains(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
        s.remove(63);
        assert_eq!(s.len(), 3);
        let drained = s.drain();
        assert_eq!(drained, vec![0, 64, 255]);
        assert!(s.is_empty());
    }

    #[test]
    fn l2_lookup_and_banking() {
        let mut l2 = L2Cache::new(8, 512 * 1024, 8);
        assert_eq!(l2.banks(), 8);
        assert_eq!(l2.home_bank(LineAddr(13)), 5);
        let (ev, e) = l2.insert(LineAddr(13));
        assert!(ev.victim.is_none());
        e.dirty = true;
        assert!(l2.lookup(LineAddr(13)).expect("resident").dirty);
    }

    #[test]
    fn l2_bank_queueing_serializes() {
        let mut l2 = L2Cache::new(8, 512 * 1024, 8);
        let t1 = l2.access(0, 100);
        let t2 = l2.access(0, 100);
        assert_eq!(t1, 106);
        assert_eq!(t2, 108, "second access queues behind 2-cycle occupancy");
        let t3 = l2.access(1, 100);
        assert_eq!(t3, 106, "different bank does not queue");
    }

    #[test]
    fn l2_eviction_prefers_lines_without_directory_state() {
        // Tiny L2: 1 bank, 2 ways, 2 sets.
        let mut l2 = L2Cache::new(1, 4 * 64, 2);
        // Lines 0 and 2 map to set 0.
        let (_, a) = l2.insert(LineAddr(0));
        a.sharers.insert(3); // a has directory state
        l2.insert(LineAddr(2));
        // Inserting line 4 (set 0) must evict line 2 despite line 0 being LRU.
        let (ev, _) = l2.insert(LineAddr(4));
        assert_eq!(ev.victim.expect("evicts").line, LineAddr(2));
        assert!(l2.peek(LineAddr(0)).is_some());
    }

    #[test]
    fn l2_evicts_directory_lines_when_forced() {
        let mut l2 = L2Cache::new(1, 4 * 64, 2);
        let (_, a) = l2.insert(LineAddr(0));
        a.owner = Some(1);
        let (_, b) = l2.insert(LineAddr(2));
        b.sharers.insert(2);
        let (ev, _) = l2.insert(LineAddr(4));
        let v = ev.victim.expect("must still evict");
        assert!(v.has_directory_state());
    }

    #[test]
    fn dram_bandwidth_queues_transfers() {
        let mut d = Dram::new(2, 60, 32);
        let t1 = d.access(0, 0);
        let t2 = d.access(0, 0);
        assert_eq!(t1, 92);
        assert_eq!(t2, 60 + 64, "second transfer waits for the first's occupancy");
        assert_eq!(d.access(1, 0), 92, "other controller independent");
    }
}
