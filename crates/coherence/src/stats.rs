//! Per-core memory-system counters used by the paper's Figures 6/7 and
//! Table IV.

use std::ops::AddAssign;

/// Counters for one core's private-cache activity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreMemStats {
    /// Demand loads issued.
    pub loads: u64,
    /// Loads that hit in the L1.
    pub load_hits: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Stores that hit in the L1 (for write-allocate protocols).
    pub store_hits: u64,
    /// Atomic memory operations issued.
    pub amos: u64,
    /// `cache_invalidate` (bulk self-invalidation) operations executed.
    pub invalidate_ops: u64,
    /// `cache_flush` (bulk write-back) operations executed.
    pub flush_ops: u64,
    /// Cache lines invalidated by bulk self-invalidations.
    pub lines_invalidated: u64,
    /// Cache lines written back by bulk flushes.
    pub lines_flushed: u64,
    /// Words written back by bulk flushes.
    pub words_flushed: u64,
    /// Loads that would have returned stale data on real hardware
    /// (diagnostic; must be zero for a correct runtime).
    pub stale_reads: u64,
}

impl CoreMemStats {
    /// L1 data-cache hit rate over loads and stores, in `[0, 1]`.
    /// Returns 1.0 when no accesses were made.
    pub fn l1d_hit_rate(&self) -> f64 {
        let acc = self.loads + self.stores;
        if acc == 0 {
            1.0
        } else {
            (self.load_hits + self.store_hits) as f64 / acc as f64
        }
    }

    /// All `(label, count)` pairs in declaration order — the stable
    /// iteration surface the metrics exporter keys its schema on.
    pub fn pairs(&self) -> [(&'static str, u64); 11] {
        [
            ("loads", self.loads),
            ("load_hits", self.load_hits),
            ("stores", self.stores),
            ("store_hits", self.store_hits),
            ("amos", self.amos),
            ("invalidate_ops", self.invalidate_ops),
            ("flush_ops", self.flush_ops),
            ("lines_invalidated", self.lines_invalidated),
            ("lines_flushed", self.lines_flushed),
            ("words_flushed", self.words_flushed),
            ("stale_reads", self.stale_reads),
        ]
    }
}

impl AddAssign for CoreMemStats {
    fn add_assign(&mut self, rhs: CoreMemStats) {
        self.loads += rhs.loads;
        self.load_hits += rhs.load_hits;
        self.stores += rhs.stores;
        self.store_hits += rhs.store_hits;
        self.amos += rhs.amos;
        self.invalidate_ops += rhs.invalidate_ops;
        self.flush_ops += rhs.flush_ops;
        self.lines_invalidated += rhs.lines_invalidated;
        self.lines_flushed += rhs.lines_flushed;
        self.words_flushed += rhs.words_flushed;
        self.stale_reads += rhs.stale_reads;
    }
}

/// Sums a set of per-core stats (e.g. all tiny cores, as in Figure 6).
pub fn aggregate<'a>(stats: impl IntoIterator<Item = &'a CoreMemStats>) -> CoreMemStats {
    let mut total = CoreMemStats::default();
    for s in stats {
        total += *s;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut s = CoreMemStats::default();
        assert_eq!(s.l1d_hit_rate(), 1.0);
        s.loads = 8;
        s.load_hits = 6;
        s.stores = 2;
        s.store_hits = 0;
        assert!((s.l1d_hit_rate() - 0.6).abs() < 1e-12);
    }

    /// Regression pin: a core that made no memory accesses must report a
    /// finite hit rate (1.0 by convention), never NaN from 0/0 — idle
    /// cores in big configurations hit this constantly.
    #[test]
    fn zero_access_hit_rate_is_finite() {
        let rate = CoreMemStats::default().l1d_hit_rate();
        assert!(rate.is_finite(), "0-access hit rate must not be NaN");
        assert_eq!(rate, 1.0);
        // Aggregating only idle cores keeps the guarantee.
        let agg = aggregate([&CoreMemStats::default(), &CoreMemStats::default()]);
        assert!(agg.l1d_hit_rate().is_finite());
    }

    #[test]
    fn pairs_cover_every_field() {
        let s = CoreMemStats { loads: 1, stale_reads: 9, ..Default::default() };
        let p = s.pairs();
        assert_eq!(p.len(), 11);
        assert_eq!(p[0], ("loads", 1));
        assert_eq!(p[10], ("stale_reads", 9));
    }

    #[test]
    fn aggregate_sums_fields() {
        let a = CoreMemStats { loads: 1, lines_flushed: 3, ..Default::default() };
        let b = CoreMemStats { loads: 2, stale_reads: 1, ..Default::default() };
        let t = aggregate([&a, &b]);
        assert_eq!(t.loads, 3);
        assert_eq!(t.lines_flushed, 3);
        assert_eq!(t.stale_reads, 1);
    }
}
