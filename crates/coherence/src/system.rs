//! The heterogeneous memory system: private L1s running per-core protocols,
//! integrated at a shared banked L2 with an embedded directory.
//!
//! This is the Spandex-style integration point of the paper (Section V-A):
//! the L2 serves MESI GetS/GetM, DeNovo ownership requests, GPU write-through
//! words, bulk write-backs, and at-L2 atomics, keeping MESI L1s coherent with
//! writer-initiated invalidations while software-centric L1s self-invalidate.
//!
//! # Timing model
//!
//! Every operation completes atomically in global event order (the engine
//! serializes cores by simulated time) and returns a latency in cycles:
//! network legs from the mesh model, bank service with queueing from the L2
//! model, DRAM latency/bandwidth from the DRAM model. L1 hits cost 1 cycle.
//!
//! # Functional data and the staleness checker
//!
//! Caches store protocol state only; functional values live in host memory
//! and are always up to date because the engine serializes operations. On
//! real hardware a missing `cache_invalidate`/`cache_flush` would return
//! stale data; the staleness checker detects exactly those situations by
//! versioning every word (a `latest` version bumped by every store, and a
//! `committed` version that tracks what the L2/owner can supply) and counts
//! [`CoreMemStats::stale_reads`]. A correct runtime exhibits zero stale
//! reads; tests exercise a deliberately broken runtime to show nonzero.

use std::collections::HashMap;

use bigtiny_mesh::{Mesh, MeshConfig, Tile, TrafficClass, TrafficStats};

use crate::addr::{Addr, LineAddr, WordMask, LINE_BYTES, WORDS_PER_LINE};
use crate::l1::{L1Cache, LineEntry, MesiState};
use crate::l2::{Dram, L2Cache};
use crate::protocol::Protocol;
use crate::stats::CoreMemStats;

/// Per-core cache configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreMemConfig {
    /// Coherence protocol of this core's private L1.
    pub protocol: Protocol,
    /// L1 data-cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
}

impl CoreMemConfig {
    /// The paper's big-core L1D: 64 KB, 2-way, MESI.
    pub fn big() -> Self {
        CoreMemConfig { protocol: Protocol::Mesi, l1_bytes: 64 * 1024, l1_ways: 2 }
    }

    /// The paper's tiny-core L1D: 4 KB, 2-way, running `protocol`.
    pub fn tiny(protocol: Protocol) -> Self {
        CoreMemConfig { protocol, l1_bytes: 4 * 1024, l1_ways: 2 }
    }
}

/// Whole-memory-system configuration.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Data OCN configuration (also fixes the topology / bank count).
    pub mesh: MeshConfig,
    /// One entry per core, in core-id order.
    pub cores: Vec<CoreMemConfig>,
    /// Capacity of each L2 bank in bytes (Table II: 512 KB per bank).
    pub l2_bank_bytes: usize,
    /// L2 associativity (Table II: 8-way).
    pub l2_ways: usize,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// DRAM occupancy of one 64-byte line transfer per controller.
    pub dram_cycles_per_line: u64,
    /// Enable the per-word staleness checker (small time/memory cost).
    pub track_staleness: bool,
}

impl MemConfig {
    /// A memory system shaped like the paper's 64-core system for the given
    /// per-core configs.
    pub fn paper(mesh: MeshConfig, cores: Vec<CoreMemConfig>) -> Self {
        MemConfig {
            mesh,
            cores,
            l2_bank_bytes: 512 * 1024,
            l2_ways: 8,
            dram_latency: 60,
            dram_cycles_per_line: 32,
            track_staleness: true,
        }
    }
}

/// What a line fetch wants from the L2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Intent {
    /// Read a copy (MESI GetS or software-centric refill).
    Read,
    /// MESI GetM: exclusive copy, invalidating all others.
    ReadExcl,
    /// DeNovo GetO: data plus registered ownership.
    Own,
}

/// The heterogeneous cache-coherent memory system.
#[derive(Debug)]
pub struct MemorySystem {
    protocols: Vec<Protocol>,
    l1s: Vec<L1Cache>,
    l2: L2Cache,
    dram: Dram,
    mesh: Mesh,
    stats: Vec<CoreMemStats>,

    track_staleness: bool,
    latest: VersionMap,
    committed: VersionMap,
}

/// Deterministic single-round multiply-xor hasher for the word-address
/// version maps. These maps sit on the per-access staleness-check path (one
/// probe per load hit, several per store) and are keyed by u64 word
/// addresses that are never attacker-controlled, so SipHash's DoS
/// resistance buys nothing here; they are also never iterated, so hash
/// order cannot leak into simulated behaviour.
#[derive(Clone, Copy, Default)]
struct WordHasher(u64);

impl std::hash::Hasher for WordHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let x = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = x ^ (x >> 32);
    }
}

type VersionMap = HashMap<u64, u64, std::hash::BuildHasherDefault<WordHasher>>;

impl MemorySystem {
    /// Builds the memory system for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is empty or exceeds the mesh capacity.
    pub fn new(config: &MemConfig) -> Self {
        let topo = config.mesh.topology;
        assert!(!config.cores.is_empty(), "need at least one core");
        assert!(config.cores.len() <= topo.num_tiles(), "more cores than mesh tiles");
        let l1s: Vec<L1Cache> =
            config.cores.iter().map(|c| L1Cache::new(c.protocol, c.l1_bytes, c.l1_ways)).collect();
        MemorySystem {
            protocols: config.cores.iter().map(|c| c.protocol).collect(),
            l1s,
            l2: L2Cache::new(topo.num_banks(), config.l2_bank_bytes, config.l2_ways),
            dram: Dram::new(topo.num_banks(), config.dram_latency, config.dram_cycles_per_line),
            mesh: Mesh::new(config.mesh),
            stats: vec![CoreMemStats::default(); config.cores.len()],
            track_staleness: config.track_staleness,
            latest: VersionMap::default(),
            committed: VersionMap::default(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.l1s.len()
    }

    /// Protocol of `core`'s L1.
    pub fn protocol(&self, core: usize) -> Protocol {
        self.protocols[core]
    }

    /// Per-core statistics.
    pub fn core_stats(&self, core: usize) -> &CoreMemStats {
        &self.stats[core]
    }

    /// All per-core statistics.
    pub fn all_stats(&self) -> &[CoreMemStats] {
        &self.stats
    }

    /// Data-OCN traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        self.mesh.stats()
    }

    /// Number of unidirectional OCN links (for utilization reporting).
    pub fn ocn_links(&self) -> u64 {
        self.mesh.links()
    }

    /// Total stale reads observed across all cores (0 for a correct runtime).
    pub fn total_stale_reads(&self) -> u64 {
        self.stats.iter().map(|s| s.stale_reads).sum()
    }

    /// Arms (or, with `None`, disarms) deterministic latency-spike fault
    /// injection on the data OCN. Zero-cost when disarmed.
    pub fn set_mesh_faults(&mut self, faults: Option<bigtiny_mesh::MeshFaults>) {
        self.mesh.set_faults(faults);
    }

    /// Latency spikes injected on the data OCN so far.
    pub fn mesh_fault_spikes(&self) -> u64 {
        self.mesh.fault_spikes()
    }

    /// Checks structural cache invariants that must hold on *every* path,
    /// including the degraded (fallback-steal, fault-injected) paths the
    /// runtime only takes under adversarial schedules:
    ///
    /// * every dirty word is valid (a cache never writes back garbage);
    /// * MESI lines are always whole-line valid, and dirty data only exists
    ///   in `Modified` state;
    /// * no line is resident twice in one L1.
    ///
    /// Returns a description of the first violation, if any. Chaos tests
    /// call this on the final state of every fault-injected run.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (core, l1) in self.l1s.iter().enumerate() {
            let proto = self.protocols[core];
            let mut seen = std::collections::HashSet::new();
            for e in l1.iter() {
                if !seen.insert(e.line) {
                    return Err(format!("core {core}: line {} resident twice", e.line));
                }
                for w in e.dirty.iter() {
                    if !e.valid.contains(w) {
                        return Err(format!(
                            "core {core}: line {} word {w} dirty but not valid",
                            e.line
                        ));
                    }
                }
                if proto == Protocol::Mesi {
                    if e.valid != crate::addr::WordMask::FULL {
                        return Err(format!("core {core}: MESI line {} partially valid", e.line));
                    }
                    if !e.dirty.is_empty() && e.mesi != crate::l1::MesiState::Modified {
                        return Err(format!(
                            "core {core}: MESI line {} dirty in state {:?}",
                            e.line, e.mesi
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn core_tile(&self, core: usize) -> Tile {
        self.mesh.topology().core_tile(core)
    }

    fn bank_tile(&self, bank: usize) -> Tile {
        self.mesh.topology().l2_bank_tile(bank)
    }

    // ------------------------------------------------------------------
    // Word version tracking (staleness checker)
    // ------------------------------------------------------------------

    fn bump_latest(&mut self, word: u64) {
        if self.track_staleness {
            *self.latest.entry(word).or_insert(0) += 1;
        }
    }

    fn commit_word(&mut self, word: u64) {
        if self.track_staleness {
            if let Some(v) = self.latest.get(&word) {
                self.committed.insert(word, *v);
            }
        }
    }

    fn commit_line_words(&mut self, line: LineAddr, mask: WordMask) {
        for i in mask.iter() {
            self.commit_word(line.word(i));
        }
    }

    fn latest_version(&self, word: u64) -> u64 {
        self.latest.get(&word).copied().unwrap_or(0)
    }

    fn committed_version(&self, word: u64) -> u64 {
        self.committed.get(&word).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // L2-side helpers
    // ------------------------------------------------------------------

    /// Invalidates every MESI sharer of `line` except `except`, charging
    /// parallel invalidation round trips from `bank`. Returns the time at
    /// which all acknowledgements have arrived.
    fn invalidate_sharers(&mut self, line: LineAddr, bank: usize, t: u64, except: usize) -> u64 {
        // CoreSet is a small Copy bitset: snapshot it instead of collecting
        // members into a Vec — this runs on every write-through store.
        let mut sharers = match self.l2.peek(line) {
            Some(e) => e.sharers,
            None => return t,
        };
        sharers.remove(except);
        if sharers.is_empty() {
            return t;
        }
        let bank_tile = self.bank_tile(bank);
        let mut done = t;
        for core in sharers.iter() {
            let tile = self.core_tile(core);
            let leg = self.mesh.send(bank_tile, tile, TrafficClass::CohReq, 0);
            let ack = self.mesh.send(tile, bank_tile, TrafficClass::CohResp, 0);
            done = done.max(t + leg + ack);
            self.l1s[core].remove(line);
        }
        let entry = self.l2.lookup(line).expect("sharers imply residency");
        for core in sharers.iter() {
            entry.sharers.remove(core);
        }
        done
    }

    /// Recalls the current owner of `line` (MESI E/M holder or DeNovo
    /// owner): fetches its dirty data into the L2 and optionally revokes the
    /// owner's copy. Returns the time at which fresh data is at the bank.
    fn recall_owner(&mut self, line: LineAddr, bank: usize, t: u64, revoke: bool) -> u64 {
        let owner = match self.l2.peek(line).and_then(|e| e.owner) {
            Some(o) => o,
            None => return t,
        };
        let bank_tile = self.bank_tile(bank);
        let owner_tile = self.core_tile(owner);
        let req = self.mesh.send(bank_tile, owner_tile, TrafficClass::CohReq, 0);

        let owner_proto = self.protocols[owner];
        // (bytes supplied, words committed, owner becomes a MESI sharer,
        //  owner pointer survives in the directory)
        let (payload, commit_mask, keep_as_sharer, keep_owner) = match self.l1s[owner].lookup(line)
        {
            Some(entry) => match owner_proto {
                Protocol::Mesi => {
                    let dirty = entry.mesi == MesiState::Modified;
                    if revoke {
                        self.l1s[owner].remove(line);
                    } else {
                        let entry = self.l1s[owner].lookup(line).expect("still resident");
                        entry.mesi = MesiState::Shared;
                    }
                    (
                        if dirty { LINE_BYTES } else { 0 },
                        if dirty { WordMask::FULL } else { WordMask::EMPTY },
                        !revoke,
                        false,
                    )
                }
                _ => {
                    // DeNovo owner: supply dirty words. On a read-forward
                    // (no revoke) the owner keeps ownership — DeNovo readers
                    // self-invalidate, so the directory must keep naming the
                    // owner to serve future readers fresh data.
                    let dirty = entry.dirty;
                    entry.dirty = WordMask::EMPTY;
                    if revoke {
                        let e = self.l1s[owner].lookup(line).expect("still resident");
                        e.owned = false;
                    }
                    (dirty.count() as u64 * 8, dirty, false, !revoke)
                }
            },
            // Owner lost the line silently (clean eviction already updated
            // the directory in the oracle model); nothing to fetch and the
            // stale owner pointer is dropped.
            None => (0, WordMask::EMPTY, false, false),
        };
        let resp = self.mesh.send(owner_tile, bank_tile, TrafficClass::CohResp, payload);
        self.commit_line_words(line, commit_mask);

        let entry = self.l2.lookup(line).expect("owned line is L2-resident");
        if payload > 0 {
            entry.dirty = true;
        }
        if !keep_owner {
            entry.owner = None;
        }
        if keep_as_sharer && owner_proto == Protocol::Mesi {
            entry.sharers.insert(owner);
        }
        t + req + resp
    }

    /// Ensures `line` is resident in the L2, fetching from DRAM on a miss
    /// (recalling and writing back any victim). Returns the data-ready time.
    fn ensure_l2_resident(&mut self, line: LineAddr, bank: usize, t: u64) -> u64 {
        if self.l2.peek(line).is_some() {
            return t;
        }
        let mut t = t;
        let (eviction, _) = self.l2.insert(line);
        if let Some(victim) = eviction.victim {
            let vline = victim.line;
            // Re-install directory state so the recall helpers can find it,
            // then recall through the normal paths.
            let vbank = self.l2.home_bank(vline);
            {
                // The victim was removed by insert(); we recall via its saved
                // directory state directly to avoid re-inserting.
                let bank_tile = self.bank_tile(vbank);
                for core in victim.sharers.iter() {
                    let tile = self.core_tile(core);
                    self.mesh.send(bank_tile, tile, TrafficClass::CohReq, 0);
                    self.mesh.send(tile, bank_tile, TrafficClass::CohResp, 0);
                    self.l1s[core].remove(vline);
                }
                let mut vdirty = victim.dirty;
                if let Some(owner) = victim.owner {
                    let tile = self.core_tile(owner);
                    self.mesh.send(bank_tile, tile, TrafficClass::CohReq, 0);
                    let payload = match self.l1s[owner].remove(vline) {
                        Some(e) if e.has_dirty_data() => {
                            let mask = if self.protocols[owner] == Protocol::Mesi {
                                WordMask::FULL
                            } else {
                                e.dirty
                            };
                            self.commit_line_words(vline, mask);
                            vdirty = true;
                            mask.count() as u64 * 8
                        }
                        _ => 0,
                    };
                    self.mesh.send(tile, bank_tile, TrafficClass::CohResp, payload);
                }
                if vdirty {
                    // Write the victim back to DRAM (off the critical path:
                    // traffic and occupancy are charged, latency is not).
                    let mc_tile = self.mesh.topology().mem_ctrl_tile(vbank);
                    self.mesh.send(bank_tile, mc_tile, TrafficClass::DramReq, LINE_BYTES);
                    self.dram.access(vbank, t);
                }
            }
        }
        // Demand fetch from DRAM.
        let bank_tile = self.bank_tile(bank);
        let mc_tile = self.mesh.topology().mem_ctrl_tile(bank);
        let req = self.mesh.send(bank_tile, mc_tile, TrafficClass::DramReq, 0);
        t = self.dram.access(bank, t + req);
        t += self.mesh.send(mc_tile, bank_tile, TrafficClass::DramResp, LINE_BYTES);
        t
    }

    /// The full L2-side fetch: request leg, bank service, residency, owner
    /// recall / sharer invalidation per `intent`, directory update, data
    /// response leg. Returns the completion time at the requesting core.
    fn fetch_line(&mut self, core: usize, line: LineAddr, now: u64, intent: Intent) -> u64 {
        let bank = self.l2.home_bank(line);
        let core_tile = self.core_tile(core);
        let bank_tile = self.bank_tile(bank);
        let req_leg = self.mesh.send(core_tile, bank_tile, TrafficClass::CpuReq, 0);
        let mut t = self.l2.access(bank, now + req_leg);
        t = self.ensure_l2_resident(line, bank, t);

        let requester_is_mesi = self.protocols[core] == Protocol::Mesi;
        match intent {
            Intent::Read => {
                // Fresh data comes from the owner if there is one. MESI
                // requesters force a revoke of software-centric owners to
                // preserve SWMR for hardware-coherent caches; MESI owners
                // are downgraded to sharers.
                let owner = self.l2.peek(line).and_then(|e| e.owner);
                if let Some(o) = owner {
                    let owner_is_mesi = self.protocols[o] == Protocol::Mesi;
                    let revoke = requester_is_mesi && !owner_is_mesi;
                    t = self.recall_owner(line, bank, t, revoke);
                }
            }
            Intent::ReadExcl | Intent::Own => {
                t = self.recall_owner(line, bank, t, true);
                t = self.invalidate_sharers(line, bank, t, core);
            }
        }

        // Directory update for the requester.
        {
            let entry = self.l2.lookup(line).expect("resident");
            match intent {
                Intent::Read if requester_is_mesi => {
                    if entry.sharers.is_empty() && entry.owner.is_none() {
                        // Exclusive grant.
                        entry.owner = Some(core);
                    } else {
                        entry.sharers.insert(core);
                    }
                }
                Intent::Read => {}
                Intent::ReadExcl | Intent::Own => {
                    entry.owner = Some(core);
                    entry.sharers = crate::l2::CoreSet::EMPTY;
                }
            }
        }

        t + self.mesh.send(bank_tile, core_tile, TrafficClass::DataResp, LINE_BYTES)
    }

    /// Fill versions for a line about to be installed: what the L2 can
    /// supply right now (committed versions).
    fn fill_versions(&self, line: LineAddr) -> [u64; WORDS_PER_LINE] {
        let mut v = [0; WORDS_PER_LINE];
        if self.track_staleness {
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = self.committed_version(line.word(i));
            }
        }
        v
    }

    /// Installs a fetched line into `core`'s L1 (merging with a partially
    /// valid resident entry), handling any eviction. Returns extra cycles.
    fn install_line(&mut self, core: usize, line: LineAddr, mesi: MesiState, owned: bool) -> u64 {
        let versions = self.fill_versions(line);
        if let Some(entry) = self.l1s[core].lookup(line) {
            // Merge: locally dirty words keep their own (newer) versions.
            let dirty = entry.dirty;
            entry.valid = WordMask::FULL;
            entry.mesi = mesi;
            entry.owned = entry.owned || owned;
            for (i, v) in versions.iter().enumerate() {
                if !dirty.contains(i) {
                    entry.fill_version[i] = *v;
                }
            }
            return 0;
        }
        let (eviction, entry) = self.l1s[core].insert(line);
        entry.valid = WordMask::FULL;
        entry.mesi = mesi;
        entry.owned = owned;
        entry.fill_version = versions;
        match eviction.victim {
            Some(v) => self.handle_l1_eviction(core, v),
            None => 0,
        }
    }

    /// Handles an L1 eviction: dirty data is written back (traffic + bank
    /// occupancy charged; the write-back is off the requester's critical
    /// path so only one cycle of latency is charged), and directory state is
    /// released. Clean-eviction directory downgrades use an oracle (zero
    /// traffic) to keep the MESI sharer list precise, a standard simulator
    /// simplification.
    fn handle_l1_eviction(&mut self, core: usize, victim: LineEntry) -> u64 {
        let line = victim.line;
        let bank = self.l2.home_bank(line);
        let proto = self.protocols[core];
        let dirty_payload = match proto {
            Protocol::Mesi => {
                if victim.mesi == MesiState::Modified {
                    LINE_BYTES
                } else {
                    0
                }
            }
            _ => victim.dirty.count() as u64 * 8,
        };
        // Release directory state.
        if let Some(entry) = self.l2.lookup(line) {
            if entry.owner == Some(core) {
                entry.owner = None;
            }
            entry.sharers.remove(core);
            if dirty_payload > 0 {
                entry.dirty = true;
            }
        }
        if dirty_payload > 0 {
            let core_tile = self.core_tile(core);
            let bank_tile = self.bank_tile(bank);
            self.mesh.send(core_tile, bank_tile, TrafficClass::WbReq, dirty_payload);
            let mask = if proto == Protocol::Mesi { WordMask::FULL } else { victim.dirty };
            self.commit_line_words(line, mask);
            // A dirty write-back from a no-ownership cache commits values a
            // hardware-coherent cache may still hold: keep MESI copies
            // coherent (traffic charged, off the critical path).
            if proto == Protocol::GpuWb || proto == Protocol::GpuWt {
                let t = 0;
                let t = self.recall_owner(line, bank, t, true);
                self.invalidate_sharers(line, bank, t, core);
            }
            1
        } else {
            0
        }
    }

    fn check_stale_read(&mut self, core: usize, addr: Addr) {
        if !self.track_staleness {
            return;
        }
        let line = addr.line();
        let w = addr.word_in_line();
        let latest = self.latest_version(addr.word());
        if latest == 0 {
            return;
        }
        if let Some(entry) = self.l1s[core].peek(line) {
            // Own dirty data and owned lines are fresh by construction.
            if entry.dirty.contains(w) || entry.owned || entry.mesi == MesiState::Modified {
                return;
            }
            if entry.fill_version[w] < latest {
                self.stats[core].stale_reads += 1;
                if std::env::var_os("BIGTINY_STALE_PANIC").is_some() {
                    panic!(
                        "stale HIT read: core {core} addr {addr} fill {} latest {latest}",
                        entry.fill_version[w]
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// A word load by `core` at simulated cycle `now`; returns its latency.
    pub fn load(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        self.load_with(core, addr, now, true)
    }

    /// A word load that tolerates stale data: identical timing and protocol
    /// behaviour, but exempt from the staleness checker. Used for the
    /// deliberate benign races of Ligra-style algorithms (monotone values
    /// repaired by a later round, with CAS deciding the winner).
    pub fn load_racy(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        self.load_with(core, addr, now, false)
    }

    fn load_with(&mut self, core: usize, addr: Addr, now: u64, check_stale: bool) -> u64 {
        self.stats[core].loads += 1;
        let proto = self.protocols[core];
        let line = addr.line();
        let w = addr.word_in_line();
        let hit = match self.l1s[core].lookup(line) {
            Some(e) if proto == Protocol::Mesi => {
                debug_assert!(e.valid == WordMask::FULL || !e.valid.is_empty());
                true
            }
            Some(e) => e.valid.contains(w),
            None => false,
        };
        if hit {
            self.stats[core].load_hits += 1;
            if check_stale {
                self.check_stale_read(core, addr);
            }
            return 1;
        }
        // A fetch from the L2 returns committed data; if an owner was
        // recalled the recall committed its words first, so the fill-version
        // snapshot below is taken after the fetch.
        let t = self.fetch_line(core, line, now, Intent::Read);
        let extra = self.install_line(core, line, MesiState::Shared, false);
        // MESI E-state: the directory granted exclusivity if we are owner.
        if proto == Protocol::Mesi {
            if self.l2.peek(line).and_then(|e| e.owner) == Some(core) {
                if let Some(entry) = self.l1s[core].lookup(line) {
                    entry.mesi = MesiState::Exclusive;
                }
            }
            // Stale-at-fetch cannot happen for MESI.
        } else if self.track_staleness && check_stale {
            // Reading a word whose latest version is not yet visible at the
            // L2 (an unflushed GPU-WB write elsewhere) is a stale read on
            // real hardware even though it misses.
            let latest = self.latest_version(addr.word());
            if latest > 0 && self.committed_version(addr.word()) < latest {
                self.stats[core].stale_reads += 1;
                if std::env::var_os("BIGTINY_STALE_PANIC").is_some() {
                    panic!(
                        "stale MISS read: core {core} addr {addr} committed {} latest {latest}",
                        self.committed_version(addr.word())
                    );
                }
            }
        }
        t - now + extra
    }

    /// A word store by `core`; returns its latency.
    pub fn store(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        self.stats[core].stores += 1;
        let proto = self.protocols[core];
        match proto {
            Protocol::Mesi => self.store_mesi(core, addr, now),
            Protocol::DeNovo => self.store_denovo(core, addr, now),
            Protocol::GpuWt => self.store_gpu_wt(core, addr, now),
            Protocol::GpuWb => self.store_gpu_wb(core, addr, now),
        }
    }

    fn store_mesi(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        let line = addr.line();
        let word = addr.word();
        let state = self.l1s[core].lookup(line).map(|e| e.mesi);
        let latency = match state {
            Some(MesiState::Modified) => {
                self.stats[core].store_hits += 1;
                1
            }
            Some(MesiState::Exclusive) => {
                self.stats[core].store_hits += 1;
                self.l1s[core].lookup(line).expect("resident").mesi = MesiState::Modified;
                1
            }
            Some(MesiState::Shared) => {
                // Upgrade: invalidate other sharers through the directory.
                self.stats[core].store_hits += 1;
                let bank = self.l2.home_bank(line);
                let core_tile = self.core_tile(core);
                let bank_tile = self.bank_tile(bank);
                let req = self.mesh.send(core_tile, bank_tile, TrafficClass::CpuReq, 0);
                let mut t = self.l2.access(bank, now + req);
                t = self.invalidate_sharers(line, bank, t, core);
                let entry = self.l2.lookup(line).expect("S-state line is resident");
                entry.sharers.remove(core);
                entry.owner = Some(core);
                t += self.mesh.send(bank_tile, core_tile, TrafficClass::DataResp, 0);
                self.l1s[core].lookup(line).expect("resident").mesi = MesiState::Modified;
                t - now
            }
            None => {
                let t = self.fetch_line(core, line, now, Intent::ReadExcl);
                let extra = self.install_line(core, line, MesiState::Modified, false);
                t - now + extra
            }
        };
        let next_v = self.latest_version(word) + 1;
        if let Some(entry) = self.l1s[core].lookup(line) {
            entry.fill_version[addr.word_in_line()] = next_v;
        }
        // MESI writes are immediately visible through the directory.
        self.bump_latest(word);
        self.commit_word(word);
        latency
    }

    fn store_denovo(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        let line = addr.line();
        let w = addr.word_in_line();
        let owned = self.l1s[core].lookup(line).is_some_and(|e| e.owned);
        let latency = if owned {
            self.stats[core].store_hits += 1;
            1
        } else {
            let t = self.fetch_line(core, line, now, Intent::Own);
            let extra = self.install_line(core, line, MesiState::Shared, true);
            t - now + extra
        };
        let next_v = self.latest_version(addr.word()) + 1;
        let entry = self.l1s[core].lookup(line).expect("resident after GetO");
        entry.dirty.insert(w);
        entry.valid.insert(w);
        entry.fill_version[w] = next_v;
        // Ownership makes the write visible on demand (L2 forwards to owner).
        self.bump_latest(addr.word());
        self.commit_word(addr.word());
        latency
    }

    fn store_gpu_wt(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        let line = addr.line();
        let w = addr.word_in_line();
        // Write-through, no write-allocate: update a resident copy, never refill.
        let next_v = self.latest_version(addr.word()) + 1;
        let mut hit = false;
        if let Some(entry) = self.l1s[core].lookup(line) {
            hit = entry.valid.contains(w);
            entry.valid.insert(w);
            entry.fill_version[w] = next_v;
        }
        if hit {
            self.stats[core].store_hits += 1;
        }
        let bank = self.l2.home_bank(line);
        let core_tile = self.core_tile(core);
        let bank_tile = self.bank_tile(bank);
        let leg = self.mesh.send(core_tile, bank_tile, TrafficClass::WbReq, 8);
        let mut t = self.l2.access(bank, now + leg);
        t = self.ensure_l2_resident(line, bank, t);
        t = self.recall_owner(line, bank, t, true);
        t = self.invalidate_sharers(line, bank, t, core);
        self.l2.lookup(line).expect("resident").dirty = true;
        self.bump_latest(addr.word());
        self.commit_word(addr.word());
        // Full write-through completion time; the engine's store buffer
        // decides how much of it stalls the core.
        t - now
    }

    fn store_gpu_wb(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        let line = addr.line();
        let w = addr.word_in_line();
        let _ = now;
        let next_v = self.latest_version(addr.word()) + 1;
        let extra = if let Some(entry) = self.l1s[core].lookup(line) {
            let hit = entry.valid.contains(w);
            entry.valid.insert(w);
            entry.dirty.insert(w);
            entry.fill_version[w] = next_v;
            if hit {
                self.stats[core].store_hits += 1;
            }
            0
        } else {
            // No-fetch write-allocate: install the line with only this word.
            let (eviction, entry) = self.l1s[core].insert(line);
            entry.valid = WordMask::single(w);
            entry.dirty = WordMask::single(w);
            entry.fill_version[w] = next_v;
            match eviction.victim {
                Some(v) => self.handle_l1_eviction(core, v),
                None => 0,
            }
        };
        // Visible only after a flush: bump latest, do NOT commit.
        self.bump_latest(addr.word());
        1 + extra
    }

    /// An atomic read-modify-write by `core`; returns its latency.
    ///
    /// MESI and DeNovo perform AMOs in the private L1 (they track ownership);
    /// GPU-WT and GPU-WB perform them at the shared L2 (Section II-A).
    pub fn amo(&mut self, core: usize, addr: Addr, now: u64) -> u64 {
        self.stats[core].amos += 1;
        let proto = self.protocols[core];
        if proto.amo_in_l1() {
            // Like a store that requires ownership, plus one ALU cycle.
            let hits_before = self.stats[core].store_hits;
            let lat = match proto {
                Protocol::Mesi => self.store_mesi(core, addr, now),
                Protocol::DeNovo => self.store_denovo(core, addr, now),
                _ => unreachable!(),
            };
            // AMOs are accounted separately from demand stores.
            self.stats[core].store_hits = hits_before;
            lat + 1
        } else {
            let line = addr.line();
            let bank = self.l2.home_bank(line);
            let core_tile = self.core_tile(core);
            let bank_tile = self.bank_tile(bank);
            let req = self.mesh.send(core_tile, bank_tile, TrafficClass::SyncReq, 8);
            let mut t = self.l2.access(bank, now + req);
            t = self.ensure_l2_resident(line, bank, t);
            t = self.recall_owner(line, bank, t, true);
            t = self.invalidate_sharers(line, bank, t, core);
            self.l2.lookup(line).expect("resident").dirty = true;
            // Our own cached copy of the word (if any) is now stale.
            let w = addr.word_in_line();
            if let Some(entry) = self.l1s[core].lookup(line) {
                entry.valid.remove(w);
                entry.dirty.remove(w);
            }
            self.bump_latest(addr.word());
            self.commit_word(addr.word());
            t += self.mesh.send(bank_tile, core_tile, TrafficClass::SyncResp, 8);
            t - now
        }
    }

    /// Bulk self-invalidation of clean data (`cache_invalidate`): flash-
    /// invalidates in one cycle. Returns `(latency, lines_invalidated)`.
    ///
    /// Per Table I / Figure 3: a no-op on MESI; DeNovo keeps owned lines;
    /// GPU-WB keeps dirty words; GPU-WT drops everything.
    pub fn invalidate_all(&mut self, core: usize, now: u64) -> (u64, u64) {
        let _ = now;
        let proto = self.protocols[core];
        if proto.invalidate_is_noop() {
            return (0, 0);
        }
        self.stats[core].invalidate_ops += 1;
        let dropped = match proto {
            Protocol::Mesi => unreachable!(),
            Protocol::DeNovo => self.l1s[core].retain_lines(|e| !e.owned),
            Protocol::GpuWt => self.l1s[core].retain_lines(|_| true),
            Protocol::GpuWb => {
                let mut count = 0;
                let full_drop = self.l1s[core].retain_lines(|e| {
                    if e.dirty.is_empty() {
                        true
                    } else {
                        if e.valid != e.dirty {
                            // Partially invalidated: stale clean words dropped.
                            e.valid = e.dirty;
                            count += 1;
                        }
                        false
                    }
                });
                full_drop + count
            }
        };
        self.stats[core].lines_invalidated += dropped;
        (1, dropped)
    }

    /// Bulk write-back of dirty data (`cache_flush`). Returns
    /// `(latency, lines_flushed)`.
    ///
    /// A no-op on MESI and DeNovo (ownership propagates dirty data); on
    /// GPU-WT it drains the store buffer; on GPU-WB it writes back every
    /// dirty word and waits for the acknowledgements.
    pub fn flush_all(&mut self, core: usize, now: u64) -> (u64, u64) {
        let proto = self.protocols[core];
        match proto {
            Protocol::Mesi | Protocol::DeNovo => (0, 0),
            Protocol::GpuWt => {
                // Write-throughs are already on their way to the L2; the
                // engine-level store buffer drains at the flush point.
                self.stats[core].flush_ops += 1;
                (1, 0)
            }
            Protocol::GpuWb => {
                self.stats[core].flush_ops += 1;
                let dirty_lines: Vec<(LineAddr, WordMask)> = self.l1s[core]
                    .iter()
                    .filter(|e| !e.dirty.is_empty())
                    .map(|e| (e.line, e.dirty))
                    .collect();
                if dirty_lines.is_empty() {
                    return (1, 0);
                }
                let core_tile = self.core_tile(core);
                let mut issue = now;
                let mut done = now;
                let n = dirty_lines.len() as u64;
                let mut words = 0u64;
                for (line, mask) in dirty_lines {
                    issue += 1; // one write-back issued per cycle
                    let bank = self.l2.home_bank(line);
                    let bank_tile = self.bank_tile(bank);
                    let leg = self.mesh.send(
                        core_tile,
                        bank_tile,
                        TrafficClass::WbReq,
                        mask.count() as u64 * 8,
                    );
                    let mut t = self.l2.access(bank, issue + leg);
                    t = self.ensure_l2_resident(line, bank, t);
                    // The flushed data supersedes any copy held by
                    // hardware-coherent caches: revoke a MESI owner and
                    // invalidate MESI sharers.
                    t = self.recall_owner(line, bank, t, true);
                    t = self.invalidate_sharers(line, bank, t, core);
                    self.l2.lookup(line).expect("resident").dirty = true;
                    self.commit_line_words(line, mask);
                    words += mask.count() as u64;
                    done = done.max(t);
                    let entry = self.l1s[core].lookup(line).expect("resident");
                    entry.dirty = WordMask::EMPTY;
                }
                self.stats[core].lines_flushed += n;
                self.stats[core].words_flushed += words;
                // Final acknowledgement leg back to the core.
                (done - now + 2, n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigtiny_mesh::Topology;

    /// A 4-core system: cores 0-1 MESI big, cores 2-3 `tiny_proto` tiny.
    fn system(tiny_proto: Protocol) -> MemorySystem {
        let mesh = MeshConfig::with_topology(Topology::new(2, 2));
        let cores = vec![
            CoreMemConfig::big(),
            CoreMemConfig::big(),
            CoreMemConfig::tiny(tiny_proto),
            CoreMemConfig::tiny(tiny_proto),
        ];
        MemorySystem::new(&MemConfig::paper(mesh, cores))
    }

    const A: Addr = Addr(0x10000);
    const B: Addr = Addr(0x20008);

    #[test]
    fn load_miss_then_hit_mesi() {
        let mut m = system(Protocol::Mesi);
        let miss = m.load(0, A, 0);
        assert!(miss > 10, "cold miss goes to DRAM: {miss}");
        let hit = m.load(0, A, miss);
        assert_eq!(hit, 1);
        assert_eq!(m.core_stats(0).loads, 2);
        assert_eq!(m.core_stats(0).load_hits, 1);
    }

    #[test]
    fn second_core_load_hits_l2_not_dram() {
        let mut m = system(Protocol::Mesi);
        let first = m.load(0, A, 0);
        let second = m.load(1, A, first);
        assert!(second < first, "L2 hit must be cheaper than DRAM fill: {second} vs {first}");
    }

    #[test]
    fn mesi_store_invalidates_sharers() {
        let mut m = system(Protocol::Mesi);
        m.load(0, A, 0);
        m.load(1, A, 100);
        // Core 1 writes: core 0's copy must be invalidated.
        m.store(1, A, 200);
        let before = m.core_stats(0).load_hits;
        m.load(0, A, 300);
        assert_eq!(m.core_stats(0).load_hits, before, "copy was invalidated, load must miss");
        assert!(m.traffic().messages(TrafficClass::CohReq) > 0);
        assert_eq!(m.total_stale_reads(), 0, "MESI never reads stale data");
    }

    #[test]
    fn mesi_exclusive_silent_upgrade() {
        let mut m = system(Protocol::Mesi);
        m.load(0, A, 0); // E state (no other sharers)
        let lat = m.store(0, A, 100);
        assert_eq!(lat, 1, "E->M upgrade is silent");
    }

    #[test]
    fn mesi_dirty_data_forwarded_to_reader() {
        let mut m = system(Protocol::Mesi);
        m.store(0, A, 0);
        let coh_before = m.traffic().messages(TrafficClass::CohResp);
        m.load(1, A, 1000);
        assert!(m.traffic().messages(TrafficClass::CohResp) > coh_before, "owner recall");
        assert_eq!(m.total_stale_reads(), 0);
    }

    #[test]
    fn denovo_invalidate_keeps_owned_lines() {
        let mut m = system(Protocol::DeNovo);
        m.store(2, A, 0); // acquires ownership
        m.load(2, B, 100); // clean line
        let (lat, dropped) = m.invalidate_all(2, 200);
        assert_eq!(lat, 1);
        assert_eq!(dropped, 1, "only the clean line drops");
        assert_eq!(m.load(2, A, 300), 1, "owned line still hits");
    }

    #[test]
    fn denovo_flush_is_noop() {
        let mut m = system(Protocol::DeNovo);
        m.store(2, A, 0);
        let (lat, flushed) = m.flush_all(2, 100);
        assert_eq!((lat, flushed), (0, 0));
    }

    #[test]
    fn denovo_ownership_forwards_dirty_data() {
        let mut m = system(Protocol::DeNovo);
        m.store(2, A, 0);
        // Another tiny core reads: data is recalled from the owner.
        let coh_before = m.traffic().messages(TrafficClass::CohResp);
        m.load(3, A, 1000);
        assert!(m.traffic().messages(TrafficClass::CohResp) > coh_before);
        assert_eq!(m.total_stale_reads(), 0);
    }

    #[test]
    fn denovo_stale_read_detected_without_invalidate() {
        let mut m = system(Protocol::DeNovo);
        m.load(3, A, 0); // core 3 caches a clean copy
        m.store(2, A, 100); // core 2 takes ownership and writes
        m.load(3, A, 200); // stale! core 3 skipped its invalidate
        assert_eq!(m.core_stats(3).stale_reads, 1);
        // After invalidation the read is fresh.
        m.invalidate_all(3, 300);
        m.load(3, A, 400);
        assert_eq!(m.core_stats(3).stale_reads, 1, "no new stale read");
    }

    #[test]
    fn gpu_wt_stores_write_through() {
        let mut m = system(Protocol::GpuWt);
        let lat = m.store(2, A, 0);
        assert!(lat > 1, "full write-through completion (engine buffers it): {lat}");
        assert_eq!(m.traffic().messages(TrafficClass::WbReq), 1);
        // No write-allocate: a subsequent load misses.
        let load = m.load(2, A, 100);
        assert!(load > 1);
        // Flush writes back nothing (writes already went through).
        let (_, flushed) = m.flush_all(2, 1000);
        assert_eq!(flushed, 0);
    }

    #[test]
    fn gpu_wb_flush_writes_dirty_words() {
        let mut m = system(Protocol::GpuWb);
        m.store(2, A, 0);
        m.store(2, A.offset(8), 1);
        m.store(2, B, 2);
        let (lat, flushed) = m.flush_all(2, 10);
        assert_eq!(flushed, 2, "two dirty lines");
        assert!(lat > 1);
        assert_eq!(m.core_stats(2).words_flushed, 3);
        // 2 wb messages with 16 and 8 byte payloads + headers.
        assert_eq!(m.traffic().bytes(TrafficClass::WbReq), 16 + 8 + 8 + 8);
        // Second flush has nothing to do.
        let (_, flushed2) = m.flush_all(2, 1000);
        assert_eq!(flushed2, 0);
    }

    #[test]
    fn gpu_wb_unflushed_data_is_stale_for_readers() {
        let mut m = system(Protocol::GpuWb);
        m.store(2, A, 0);
        // Reader misses but the write was never flushed: stale on real HW.
        m.load(3, A, 100);
        assert_eq!(m.core_stats(3).stale_reads, 1);
        // Now flush and invalidate: fresh.
        m.flush_all(2, 200);
        m.invalidate_all(3, 300);
        m.load(3, A, 400);
        assert_eq!(m.core_stats(3).stale_reads, 1);
    }

    #[test]
    fn gpu_wb_invalidate_keeps_dirty_words() {
        let mut m = system(Protocol::GpuWb);
        m.store(2, A, 0);
        m.load(2, B, 10);
        let (_, dropped) = m.invalidate_all(2, 100);
        assert_eq!(dropped, 1);
        assert_eq!(m.load(2, A, 200), 1, "dirty word survives invalidation");
    }

    #[test]
    fn gpu_amo_executes_at_l2() {
        let mut m = system(Protocol::GpuWb);
        let lat = m.amo(2, A, 0);
        assert!(lat > 5, "AMO pays a network+L2 round trip: {lat}");
        assert_eq!(m.traffic().messages(TrafficClass::SyncReq), 1);
        assert_eq!(m.traffic().messages(TrafficClass::SyncResp), 1);
        assert_eq!(m.core_stats(2).amos, 1);
    }

    #[test]
    fn mesi_amo_executes_in_l1() {
        let mut m = system(Protocol::Mesi);
        m.store(0, A, 0); // M state
        let lat = m.amo(0, A, 100);
        assert_eq!(lat, 2, "AMO on an M-state line is local: store(1) + op(1)");
        assert_eq!(m.traffic().messages(TrafficClass::SyncReq), 0);
    }

    #[test]
    fn wt_write_invalidates_mesi_sharers() {
        let mut m = system(Protocol::GpuWt);
        m.load(0, A, 0); // MESI big core caches the line
        m.store(2, A, 100); // tiny WT core writes through
        let hits_before = m.core_stats(0).load_hits;
        m.load(0, A, 2000);
        assert_eq!(m.core_stats(0).load_hits, hits_before, "MESI copy was invalidated");
        assert_eq!(m.total_stale_reads(), 0);
    }

    #[test]
    fn mesi_invalidate_and_flush_are_noops() {
        let mut m = system(Protocol::Mesi);
        m.store(0, A, 0);
        assert_eq!(m.invalidate_all(0, 10), (0, 0));
        assert_eq!(m.flush_all(0, 10), (0, 0));
        assert_eq!(m.load(0, A, 20), 1);
    }

    #[test]
    fn eviction_writes_back_dirty_mesi_line() {
        let mut m = system(Protocol::Mesi);
        // Fill one set beyond capacity with dirty lines. 64KB 2-way = 512
        // sets; lines k*512 map to set 0.
        let stride = 512 * 64;
        m.store(0, Addr(0), 0);
        m.store(0, Addr(stride), 100);
        let wb_before = m.traffic().messages(TrafficClass::WbReq);
        m.store(0, Addr(2 * stride), 200);
        assert!(
            m.traffic().messages(TrafficClass::WbReq) > wb_before,
            "dirty eviction writes back"
        );
    }

    #[test]
    fn tiny_cache_capacity_causes_more_misses_than_big() {
        let mut m = system(Protocol::Mesi);
        // Touch 8 KB: fits in the big core's 64 KB but not the tiny's 4 KB.
        let lines = 128;
        for i in 0..lines {
            m.load(0, Addr(i * 64), i * 10);
            m.load(2, Addr(0x100000 + i * 64), i * 10);
        }
        for i in 0..lines {
            m.load(0, Addr(i * 64), 100_000 + i * 10);
            m.load(2, Addr(0x100000 + i * 64), 100_000 + i * 10);
        }
        let big = m.core_stats(0);
        let tiny = m.core_stats(2);
        assert!(big.l1d_hit_rate() > tiny.l1d_hit_rate());
    }

    #[test]
    fn traffic_is_conserved_request_response() {
        let mut m = system(Protocol::Mesi);
        for i in 0..64 {
            m.load(0, Addr(i * 64), i);
        }
        let t = m.traffic();
        assert_eq!(t.messages(TrafficClass::CpuReq), t.messages(TrafficClass::DataResp));
        assert_eq!(t.messages(TrafficClass::DramReq), t.messages(TrafficClass::DramResp));
    }
}
