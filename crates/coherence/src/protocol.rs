//! The four coherence protocols of the paper and their Table-I taxonomy.

use std::fmt;

/// A private-cache coherence protocol.
///
/// The paper (Table I) classifies protocols along three axes: who initiates
/// stale invalidation, how dirty data propagates, and at what granularity
/// writes are performed. [`ProtocolTraits`] encodes that classification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// Hardware-based MESI with writer-initiated invalidation and a precise
    /// directory — what the paper's big cores (and the `big.TINY/MESI`
    /// configuration's tiny cores) use.
    Mesi,
    /// DeNovo (the DeNovoSync variant): reader-initiated self-invalidation
    /// with ownership-based dirty propagation.
    DeNovo,
    /// GPU-style write-through, no-write-allocate, no ownership.
    GpuWt,
    /// GPU-style write-back with per-word dirty masks, no ownership.
    GpuWb,
}

/// Who initiates invalidation of stale copies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StaleInvalidation {
    /// The writer invalidates every other copy before writing (MESI).
    Writer,
    /// Readers self-invalidate potentially stale data at acquire points.
    Reader,
}

/// How dirty data becomes visible to other caches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirtyPropagation {
    /// An owner is tracked and supplies data on demand, writing back lazily.
    OwnerWriteBack,
    /// No owner; every write goes straight through to the shared cache.
    NoOwnerWriteThrough,
    /// No owner; dirty data is written back in bulk at explicit flushes.
    NoOwnerWriteBack,
}

/// Unit size at which writes are performed and ownership is managed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WriteGranularity {
    /// Whole cache lines (MESI).
    Line,
    /// Individual words, with ownership managed per line (DeNovo).
    WordOrLine,
    /// Individual words only.
    Word,
}

/// The Table-I classification of a [`Protocol`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProtocolTraits {
    /// Who initiates invalidation.
    pub stale_invalidation: StaleInvalidation,
    /// How dirty data propagates.
    pub dirty_propagation: DirtyPropagation,
    /// Write granularity.
    pub write_granularity: WriteGranularity,
}

impl Protocol {
    /// All four protocols, in the paper's Table-I order.
    pub const ALL: [Protocol; 4] =
        [Protocol::Mesi, Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb];

    /// The Table-I classification of this protocol.
    pub fn traits(self) -> ProtocolTraits {
        match self {
            Protocol::Mesi => ProtocolTraits {
                stale_invalidation: StaleInvalidation::Writer,
                dirty_propagation: DirtyPropagation::OwnerWriteBack,
                write_granularity: WriteGranularity::Line,
            },
            Protocol::DeNovo => ProtocolTraits {
                stale_invalidation: StaleInvalidation::Reader,
                dirty_propagation: DirtyPropagation::OwnerWriteBack,
                write_granularity: WriteGranularity::WordOrLine,
            },
            Protocol::GpuWt => ProtocolTraits {
                stale_invalidation: StaleInvalidation::Reader,
                dirty_propagation: DirtyPropagation::NoOwnerWriteThrough,
                write_granularity: WriteGranularity::Word,
            },
            Protocol::GpuWb => ProtocolTraits {
                stale_invalidation: StaleInvalidation::Reader,
                dirty_propagation: DirtyPropagation::NoOwnerWriteBack,
                write_granularity: WriteGranularity::Word,
            },
        }
    }

    /// Whether `cache_invalidate` (self-invalidation of clean data) is a
    /// semantic no-op for this protocol. Only MESI, whose writer-initiated
    /// invalidations keep every copy fresh, can skip it (Section III-C).
    pub fn invalidate_is_noop(self) -> bool {
        self.traits().stale_invalidation == StaleInvalidation::Writer
    }

    /// Whether `cache_flush` (bulk write-back of dirty data) is a semantic
    /// no-op. True for everything except GPU-WB: MESI and DeNovo propagate
    /// via ownership, GPU-WT writes through immediately (it still drains its
    /// store buffer at a flush point).
    pub fn flush_is_noop(self) -> bool {
        self.traits().dirty_propagation != DirtyPropagation::NoOwnerWriteBack
    }

    /// Whether atomic memory operations execute in the private L1 (requires
    /// ownership tracking) rather than at the shared L2 (Section II-A).
    pub fn amo_in_l1(self) -> bool {
        self.traits().dirty_propagation == DirtyPropagation::OwnerWriteBack
    }

    /// Whether this protocol can hold a line in an owned/modified state that
    /// survives self-invalidation.
    pub fn has_ownership(self) -> bool {
        self.amo_in_l1()
    }

    /// Short configuration label used in reports (`mesi`, `dnv`, `gwt`, `gwb`).
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Mesi => "mesi",
            Protocol::DeNovo => "dnv",
            Protocol::GpuWt => "gwt",
            Protocol::GpuWb => "gwb",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protocol::Mesi => "MESI",
            Protocol::DeNovo => "DeNovo",
            Protocol::GpuWt => "GPU-WT",
            Protocol::GpuWb => "GPU-WB",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_classification() {
        // MESI: Writer / Owner WB / Line
        let m = Protocol::Mesi.traits();
        assert_eq!(m.stale_invalidation, StaleInvalidation::Writer);
        assert_eq!(m.dirty_propagation, DirtyPropagation::OwnerWriteBack);
        assert_eq!(m.write_granularity, WriteGranularity::Line);
        // DeNovo: Reader / Owner WB / Word-Line
        let d = Protocol::DeNovo.traits();
        assert_eq!(d.stale_invalidation, StaleInvalidation::Reader);
        assert_eq!(d.dirty_propagation, DirtyPropagation::OwnerWriteBack);
        assert_eq!(d.write_granularity, WriteGranularity::WordOrLine);
        // GPU-WT: Reader / No-owner WT / Word
        let wt = Protocol::GpuWt.traits();
        assert_eq!(wt.stale_invalidation, StaleInvalidation::Reader);
        assert_eq!(wt.dirty_propagation, DirtyPropagation::NoOwnerWriteThrough);
        assert_eq!(wt.write_granularity, WriteGranularity::Word);
        // GPU-WB: Reader / No-owner WB / Word
        let wb = Protocol::GpuWb.traits();
        assert_eq!(wb.stale_invalidation, StaleInvalidation::Reader);
        assert_eq!(wb.dirty_propagation, DirtyPropagation::NoOwnerWriteBack);
        assert_eq!(wb.write_granularity, WriteGranularity::Word);
    }

    #[test]
    fn runtime_noop_table_matches_figure_three_caption() {
        // cache_flush = no-op on MESI, DeNovo, and GPU-WT
        assert!(Protocol::Mesi.flush_is_noop());
        assert!(Protocol::DeNovo.flush_is_noop());
        assert!(Protocol::GpuWt.flush_is_noop());
        assert!(!Protocol::GpuWb.flush_is_noop());
        // cache_invalidate = no-op on MESI only
        assert!(Protocol::Mesi.invalidate_is_noop());
        assert!(!Protocol::DeNovo.invalidate_is_noop());
        assert!(!Protocol::GpuWt.invalidate_is_noop());
        assert!(!Protocol::GpuWb.invalidate_is_noop());
    }

    #[test]
    fn amo_placement() {
        assert!(Protocol::Mesi.amo_in_l1());
        assert!(Protocol::DeNovo.amo_in_l1());
        assert!(!Protocol::GpuWt.amo_in_l1());
        assert!(!Protocol::GpuWb.amo_in_l1());
    }

    #[test]
    fn labels_are_paper_abbreviations() {
        assert_eq!(Protocol::DeNovo.label(), "dnv");
        assert_eq!(Protocol::GpuWt.label(), "gwt");
        assert_eq!(Protocol::GpuWb.label(), "gwb");
        assert_eq!(Protocol::Mesi.to_string(), "MESI");
    }
}
