//! Simulated physical addresses and line/word arithmetic.
//!
//! All caches in the modelled system use 64-byte lines (Table II of the
//! paper) and the software-centric protocols manage validity and dirtiness
//! at 8-byte word granularity (Table I).

use std::fmt;

/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;
/// Bytes per word (the granularity of DeNovo/GPU-WT/GPU-WB writes).
pub const WORD_BYTES: u64 = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// A simulated physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Index of this address's word within its line (`0..8`).
    pub fn word_in_line(self) -> usize {
        ((self.0 % LINE_BYTES) / WORD_BYTES) as usize
    }

    /// The word-aligned global word index (used by the staleness checker).
    pub fn word(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// Byte offset `n` past this address.
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

/// A cache-line address (byte address divided by [`LINE_BYTES`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first byte of the line.
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// Home L2 bank of this line, with line-interleaved banking.
    pub fn home_bank(self, num_banks: usize) -> usize {
        (self.0 % num_banks as u64) as usize
    }

    /// The global word index of word `i` of this line.
    pub fn word(self, i: usize) -> u64 {
        debug_assert!(i < WORDS_PER_LINE);
        self.0 * WORDS_PER_LINE as u64 + i as u64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A bit mask over the eight words of a line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct WordMask(pub u8);

impl WordMask {
    /// No words.
    pub const EMPTY: WordMask = WordMask(0);
    /// All eight words.
    pub const FULL: WordMask = WordMask(0xff);

    /// Mask with only word `i` set.
    pub fn single(i: usize) -> WordMask {
        debug_assert!(i < WORDS_PER_LINE);
        WordMask(1 << i)
    }

    /// Whether word `i` is set.
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Set word `i`.
    pub fn insert(&mut self, i: usize) {
        self.0 |= 1 << i;
    }

    /// Clear word `i`.
    pub fn remove(&mut self, i: usize) {
        self.0 &= !(1 << i);
    }

    /// Number of words set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no words are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Indices of set words.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..WORDS_PER_LINE).filter(move |i| self.contains(*i))
    }
}

impl std::ops::BitOr for WordMask {
    type Output = WordMask;
    fn bitor(self, rhs: WordMask) -> WordMask {
        WordMask(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for WordMask {
    type Output = WordMask;
    fn bitand(self, rhs: WordMask) -> WordMask {
        WordMask(self.0 & rhs.0)
    }
}

impl std::ops::Not for WordMask {
    type Output = WordMask;
    fn not(self) -> WordMask {
        WordMask(!self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_word_extraction() {
        let a = Addr(0x1000 + 24);
        assert_eq!(a.line(), LineAddr(0x1000 / 64));
        assert_eq!(a.word_in_line(), 3);
        assert_eq!(a.word(), (0x1000 + 24) / 8);
    }

    #[test]
    fn line_base_round_trips() {
        let l = Addr(0x12345).line();
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().word_in_line(), 0);
    }

    #[test]
    fn home_bank_interleaves_lines() {
        assert_eq!(LineAddr(0).home_bank(8), 0);
        assert_eq!(LineAddr(7).home_bank(8), 7);
        assert_eq!(LineAddr(8).home_bank(8), 0);
        assert_eq!(LineAddr(13).home_bank(8), 5);
    }

    #[test]
    fn word_mask_ops() {
        let mut m = WordMask::EMPTY;
        assert!(m.is_empty());
        m.insert(0);
        m.insert(7);
        assert!(m.contains(0) && m.contains(7) && !m.contains(3));
        assert_eq!(m.count(), 2);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 7]);
        m.remove(0);
        assert_eq!(m, WordMask::single(7));
        assert_eq!(!WordMask::EMPTY, WordMask::FULL);
        assert_eq!(WordMask::single(1) | WordMask::single(2), WordMask(0b110));
        assert_eq!(WordMask::FULL & WordMask::single(4), WordMask::single(4));
    }

    #[test]
    fn adjacent_words_share_a_line() {
        let base = Addr(0x4000);
        for i in 0..8 {
            assert_eq!(base.offset(i * 8).line(), base.line());
            assert_eq!(base.offset(i * 8).word_in_line(), i as usize);
        }
        assert_ne!(base.offset(64).line(), base.line());
    }
}
