//! Private L1 data-cache tag/state model.
//!
//! The L1 stores no functional data (the simulator keeps functional values
//! in host memory, serialized by the engine's global event order); it tracks
//! exactly the state the protocols need: MESI line state, per-word valid and
//! dirty masks, DeNovo ownership, LRU, and per-word fill versions for the
//! staleness checker.

use crate::addr::{LineAddr, WordMask, WORDS_PER_LINE};
use crate::protocol::Protocol;

/// MESI stable states for lines in hardware-coherent caches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Shared: clean, possibly other copies exist.
    Shared,
    /// Exclusive: clean, only copy.
    Exclusive,
    /// Modified: dirty, only copy.
    Modified,
}

/// State of one resident cache line.
#[derive(Clone, Debug)]
pub struct LineEntry {
    /// The line's address (full tag; the model keeps whole line addresses).
    pub line: LineAddr,
    /// MESI state — meaningful only when the owning cache runs MESI.
    pub mesi: MesiState,
    /// Per-word valid bits (always [`WordMask::FULL`] under MESI).
    pub valid: WordMask,
    /// Per-word dirty bits.
    pub dirty: WordMask,
    /// DeNovo ownership: the line's writes are registered at the directory.
    pub owned: bool,
    /// Per-word version numbers observed at fill/write time (staleness check).
    pub fill_version: [u64; WORDS_PER_LINE],
    lru: u64,
}

impl LineEntry {
    fn new(line: LineAddr, lru: u64) -> Self {
        LineEntry {
            line,
            mesi: MesiState::Shared,
            valid: WordMask::EMPTY,
            dirty: WordMask::EMPTY,
            owned: false,
            fill_version: [0; WORDS_PER_LINE],
            lru,
        }
    }

    /// Whether the line holds unwritten-back data the cache must preserve.
    pub fn has_dirty_data(&self) -> bool {
        !self.dirty.is_empty() || self.mesi == MesiState::Modified
    }
}

/// What a line insertion displaced.
#[derive(Clone, Debug, Default)]
pub struct Eviction {
    /// The victim line, if a valid line had to be displaced.
    pub victim: Option<LineEntry>,
}

/// A set-associative L1 cache tag array.
#[derive(Clone, Debug)]
pub struct L1Cache {
    protocol: Protocol,
    sets: usize,
    ways: usize,
    lines: Vec<Option<LineEntry>>,
    lru_clock: u64,
}

impl L1Cache {
    /// Creates a cache of `size_bytes` capacity with `ways` ways and
    /// 64-byte lines running `protocol`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn new(protocol: Protocol, size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let lines_total = size_bytes / crate::addr::LINE_BYTES as usize;
        assert!(
            lines_total > 0 && lines_total.is_multiple_of(ways),
            "invalid cache geometry: {size_bytes} B / {ways} ways"
        );
        let sets = lines_total / ways;
        L1Cache { protocol, sets, ways, lines: vec![None; lines_total], lru_clock: 0 }
    }

    /// The protocol this cache runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.lines.len() * crate::addr::LINE_BYTES as usize
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.0 % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `line`, returning its entry without updating LRU.
    pub fn peek(&self, line: LineAddr) -> Option<&LineEntry> {
        self.lines[self.set_range(line)].iter().flatten().find(|e| e.line == line)
    }

    /// Looks up `line` mutably and marks it most-recently-used.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut LineEntry> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(line);
        #[allow(clippy::manual_inspect)]
        self.lines[range].iter_mut().flatten().find(|e| e.line == line).map(|e| {
            e.lru = clock;
            e
        })
    }

    /// Inserts `line` (which must not be resident), evicting the LRU way of
    /// its set if the set is full. Returns the eviction and a mutable
    /// reference to the fresh entry.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident.
    pub fn insert(&mut self, line: LineAddr) -> (Eviction, &mut LineEntry) {
        assert!(self.peek(line).is_none(), "line {line} already resident");
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(line);

        // Prefer an empty way; otherwise evict true LRU.
        let slot = {
            let set = &self.lines[range.clone()];
            match set.iter().position(|e| e.is_none()) {
                Some(i) => range.start + i,
                None => {
                    let (i, _) = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.as_ref().map(|l| l.lru).unwrap_or(0))
                        .expect("nonempty set");
                    range.start + i
                }
            }
        };
        let victim = self.lines[slot].take();
        self.lines[slot] = Some(LineEntry::new(line, clock));
        (Eviction { victim }, self.lines[slot].as_mut().expect("just inserted"))
    }

    /// Removes `line` if resident, returning its entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<LineEntry> {
        let range = self.set_range(line);
        for slot in range {
            if self.lines[slot].as_ref().is_some_and(|e| e.line == line) {
                return self.lines[slot].take();
            }
        }
        None
    }

    /// Iterates over resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &LineEntry> {
        self.lines.iter().flatten()
    }

    /// Iterates mutably over resident lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LineEntry> {
        self.lines.iter_mut().flatten()
    }

    /// Applies `f` to every resident line, removing lines for which `f`
    /// returns `true`. Returns the number of removed lines.
    pub fn retain_lines(&mut self, mut drop_if: impl FnMut(&mut LineEntry) -> bool) -> u64 {
        let mut removed = 0;
        for slot in &mut self.lines {
            if let Some(entry) = slot {
                if drop_if(entry) {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> L1Cache {
        // 4 KB, 2-way: the paper's tiny-core L1D. 32 sets.
        L1Cache::new(Protocol::GpuWb, 4096, 2)
    }

    #[test]
    fn geometry() {
        let c = cache();
        assert_eq!(c.sets(), 32);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity_bytes(), 4096);
    }

    #[test]
    fn insert_then_lookup() {
        let mut c = cache();
        let l = LineAddr(100);
        let (ev, e) = c.insert(l);
        assert!(ev.victim.is_none());
        e.valid = WordMask::FULL;
        assert!(c.lookup(l).is_some());
        assert!(c.peek(LineAddr(101)).is_none());
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = cache();
        // Three lines mapping to set 0 (multiples of 32) in a 2-way cache.
        let (a, b, d) = (LineAddr(0), LineAddr(32), LineAddr(64));
        c.insert(a);
        c.insert(b);
        c.lookup(a); // a is now MRU
        let (ev, _) = c.insert(d);
        assert_eq!(ev.victim.expect("must evict").line, b, "LRU line evicted");
        assert!(c.peek(a).is_some());
        assert!(c.peek(b).is_none());
    }

    #[test]
    fn remove_returns_entry() {
        let mut c = cache();
        let l = LineAddr(5);
        c.insert(l).1.dirty = WordMask::single(3);
        let e = c.remove(l).expect("resident");
        assert_eq!(e.dirty, WordMask::single(3));
        assert!(c.remove(l).is_none());
    }

    #[test]
    fn retain_lines_drops_matching() {
        let mut c = cache();
        c.insert(LineAddr(1)).1.dirty = WordMask::single(0);
        c.insert(LineAddr(2));
        c.insert(LineAddr(3));
        // Drop clean lines: the DeNovo/GPU self-invalidation pattern.
        let dropped = c.retain_lines(|e| e.dirty.is_empty());
        assert_eq!(dropped, 2);
        assert_eq!(c.resident_lines(), 1);
        assert!(c.peek(LineAddr(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c = cache();
        c.insert(LineAddr(9));
        c.insert(LineAddr(9));
    }

    #[test]
    fn dirty_detection_covers_mesi_and_masks() {
        let mut e = LineEntry::new(LineAddr(0), 0);
        assert!(!e.has_dirty_data());
        e.mesi = MesiState::Modified;
        assert!(e.has_dirty_data());
        e.mesi = MesiState::Shared;
        e.dirty = WordMask::single(2);
        assert!(e.has_dirty_data());
    }
}
