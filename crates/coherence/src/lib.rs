#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Heterogeneous cache-coherence memory system for the big.TINY simulator.
//!
//! This crate models the memory side of the ISCA 2020 paper *"Efficiently
//! Supporting Dynamic Task Parallelism on Heterogeneous Cache-Coherent
//! Systems"*: per-core private L1 caches that may each run one of four
//! coherence protocols — hardware-based [`Protocol::Mesi`] and the
//! software-centric [`Protocol::DeNovo`], [`Protocol::GpuWt`], and
//! [`Protocol::GpuWb`] — integrated Spandex-style at a shared, banked L2
//! with an embedded directory, in front of a bandwidth-limited DRAM model.
//!
//! The model is timing + protocol-state only: functional data lives with the
//! engine, which serializes all operations in simulated-time order. A
//! per-word **staleness checker** detects reads that would have returned
//! stale data on real hardware (e.g. a missing `cache_invalidate` in the
//! work-stealing runtime), making coherence bugs observable in tests.
//!
//! # Example
//!
//! ```
//! use bigtiny_coherence::{Addr, CoreMemConfig, MemConfig, MemorySystem, Protocol};
//! use bigtiny_mesh::MeshConfig;
//!
//! // Two MESI big cores and two DeNovo tiny cores on a 2x2 mesh.
//! let cfg = MemConfig::paper(
//!     MeshConfig::with_topology(bigtiny_mesh::Topology::new(2, 2)),
//!     vec![
//!         CoreMemConfig::big(),
//!         CoreMemConfig::big(),
//!         CoreMemConfig::tiny(Protocol::DeNovo),
//!         CoreMemConfig::tiny(Protocol::DeNovo),
//!     ],
//! );
//! let mut mem = MemorySystem::new(&cfg);
//! let miss = mem.load(0, Addr(0x1000), 0);
//! let hit = mem.load(0, Addr(0x1000), miss);
//! assert!(miss > hit);
//! ```

mod addr;
mod l1;
mod l2;
mod protocol;
mod stats;
mod system;

pub use addr::{Addr, LineAddr, WordMask, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use l1::{Eviction, L1Cache, LineEntry, MesiState};
pub use l2::{CoreSet, Dram, L2Cache, L2Eviction, L2Line};
pub use protocol::{
    DirtyPropagation, Protocol, ProtocolTraits, StaleInvalidation, WriteGranularity,
};
pub use stats::{aggregate, CoreMemStats};
pub use system::{CoreMemConfig, MemConfig, MemorySystem};
