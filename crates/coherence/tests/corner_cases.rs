//! Corner-case tests of the memory system: directory state across L1/L2
//! evictions, partial-line merges, and capacity behaviour.

use bigtiny_coherence::{Addr, CoreMemConfig, MemConfig, MemorySystem, Protocol};
use bigtiny_mesh::{MeshConfig, Topology, TrafficClass};

fn system(tiny: Protocol) -> MemorySystem {
    let cfg = MemConfig::paper(
        MeshConfig::with_topology(Topology::new(2, 2)),
        vec![
            CoreMemConfig::big(),
            CoreMemConfig::tiny(tiny),
            CoreMemConfig::tiny(tiny),
            CoreMemConfig::tiny(tiny),
        ],
    );
    MemorySystem::new(&cfg)
}

/// A tiny L2 forces evictions of lines with live directory state; the
/// recall keeps everything coherent (no stale reads afterwards).
#[test]
fn l2_eviction_recalls_sharers_and_owner() {
    let mut cfg = MemConfig::paper(
        MeshConfig::with_topology(Topology::new(2, 2)),
        vec![
            CoreMemConfig::big(),
            CoreMemConfig::tiny(Protocol::DeNovo),
            CoreMemConfig::tiny(Protocol::DeNovo),
            CoreMemConfig::tiny(Protocol::DeNovo),
        ],
    );
    // 1 KB L2 per bank, 2-way: tiny enough to thrash.
    cfg.l2_bank_bytes = 1024;
    cfg.l2_ways = 2;
    let mut m = MemorySystem::new(&cfg);

    // Big core caches a line; DeNovo core owns another; then sweep enough
    // lines through the L2 to evict both.
    m.load(0, Addr(0x10000), 0);
    m.store(1, Addr(0x20000), 10);
    let mut t = 100;
    for i in 0..256 {
        m.load(3, Addr(0x100000 + i * 64), t);
        t += 50;
    }
    // Fresh disciplined reads remain coherent.
    m.invalidate_all(2, t);
    m.load(2, Addr(0x20000), t + 1);
    m.load(0, Addr(0x10000), t + 2);
    assert_eq!(m.total_stale_reads(), 0);
    assert!(m.traffic().messages(TrafficClass::DramReq) > 0, "L2 thrash reached DRAM");
}

/// A DeNovo owned-dirty eviction writes back its dirty words and releases
/// ownership, so a later reader gets fresh data from the L2.
#[test]
fn denovo_owned_eviction_writes_back() {
    let mut m = system(Protocol::DeNovo);
    // Fill one L1 set (4 KB, 2-way, 32 sets: stride 32*64 = 2 KB).
    let stride = 32 * 64;
    m.store(1, Addr(0x40000), 0);
    m.store(1, Addr(0x40000 + stride), 10);
    let wb_before = m.traffic().bytes(TrafficClass::WbReq);
    m.store(1, Addr(0x40000 + 2 * stride), 20); // evicts the first line
    assert!(m.traffic().bytes(TrafficClass::WbReq) > wb_before, "dirty owned eviction writes back");
    // A reader that self-invalidates sees the evicted line's data fresh.
    m.invalidate_all(2, 100);
    m.load(2, Addr(0x40000), 101);
    assert_eq!(m.total_stale_reads(), 0);
}

/// GPU-WB partial lines merge correctly on a later fetch: locally dirty
/// words keep their freshness across a refill of the rest of the line.
#[test]
fn gpu_wb_partial_line_merge() {
    let mut m = system(Protocol::GpuWb);
    let base = Addr(0x50000);
    // Core 2 writes word 0 (no-fetch allocate: only word 0 valid).
    m.store(2, base, 0);
    // Reading word 3 of the same line misses and merges.
    let lat = m.load(2, base.offset(24), 10);
    assert!(lat > 1, "invalid word must fetch");
    // Word 0 is still our own dirty data: a hit and never stale.
    assert_eq!(m.load(2, base, 20), 1);
    assert_eq!(m.total_stale_reads(), 0);
    // Flush publishes exactly one dirty word.
    let (_, flushed) = m.flush_all(2, 30);
    assert_eq!(flushed, 1);
    assert_eq!(m.core_stats(2).words_flushed, 1);
}

/// MESI exclusive-state grant: a second load by the same core hits; a store
/// after an exclusive grant is silent; and a second core's load downgrades
/// the owner without DRAM traffic.
#[test]
fn mesi_exclusive_grant_and_downgrade() {
    let mut m = system(Protocol::Mesi);
    let a = Addr(0x60000);
    m.load(0, a, 0);
    assert_eq!(m.load(0, a, 100), 1);
    assert_eq!(m.store(0, a, 200), 1, "E->M is silent");
    let dram_before = m.traffic().messages(TrafficClass::DramReq);
    m.load(1, a, 300);
    assert_eq!(m.traffic().messages(TrafficClass::DramReq), dram_before, "owner forward, not DRAM");
    assert_eq!(m.total_stale_reads(), 0);
}

/// AMO ping-pong between MESI cores stays in private caches (no sync_req)
/// while GPU cores always pay the shared-cache round trip.
#[test]
fn amo_placement_traffic_signature() {
    let mut mesi = system(Protocol::Mesi);
    let a = Addr(0x70000);
    for i in 0..8u64 {
        mesi.amo((i % 4) as usize, a, i * 100);
    }
    assert_eq!(mesi.traffic().messages(TrafficClass::SyncReq), 0);
    assert!(mesi.traffic().messages(TrafficClass::CohReq) > 0, "ownership ping-pong");

    let mut gwb = system(Protocol::GpuWb);
    for i in 0..8u64 {
        gwb.amo(1 + (i % 3) as usize, a, i * 100);
    }
    assert_eq!(gwb.traffic().messages(TrafficClass::SyncReq), 8, "every AMO at the L2");
}
