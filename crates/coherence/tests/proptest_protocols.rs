//! Property-based tests of the coherence protocols: for *any* sequence of
//! memory operations, the disciplined-use invariants of the paper's
//! Section III must hold.

use proptest::prelude::*;

use bigtiny_coherence::{Addr, CoreMemConfig, MemConfig, MemorySystem, Protocol};
use bigtiny_mesh::{MeshConfig, Topology};

const CORES: usize = 4;

fn system(tiny: Protocol) -> MemorySystem {
    let cfg = MemConfig::paper(
        MeshConfig::with_topology(Topology::new(2, 2)),
        vec![
            CoreMemConfig::big(),
            CoreMemConfig::tiny(tiny),
            CoreMemConfig::tiny(tiny),
            CoreMemConfig::tiny(tiny),
        ],
    );
    MemorySystem::new(&cfg)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Load { core: usize, slot: u64 },
    Store { core: usize, slot: u64 },
    Amo { core: usize, slot: u64 },
    Invalidate { core: usize },
    Flush { core: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let core = 0..CORES;
    let slot = 0u64..48;
    prop_oneof![
        (core.clone(), slot.clone()).prop_map(|(core, slot)| Op::Load { core, slot }),
        (core.clone(), slot.clone()).prop_map(|(core, slot)| Op::Store { core, slot }),
        (core.clone(), slot.clone()).prop_map(|(core, slot)| Op::Amo { core, slot }),
        core.clone().prop_map(|core| Op::Invalidate { core }),
        core.prop_map(|core| Op::Flush { core }),
    ]
}

fn addr(slot: u64) -> Addr {
    Addr(0x10000 + slot * 8)
}

fn protocols() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Mesi),
        Just(Protocol::DeNovo),
        Just(Protocol::GpuWt),
        Just(Protocol::GpuWb),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In an all-MESI system, *no* access pattern can ever read stale data:
    /// writer-initiated invalidation needs no software discipline at all.
    #[test]
    fn all_mesi_never_stale(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut m = system(Protocol::Mesi);
        let mut t = 0u64;
        for op in ops {
            t += 10;
            match op {
                Op::Load { core, slot } => { m.load(core, addr(slot), t); }
                Op::Store { core, slot } => { m.store(core, addr(slot), t); }
                Op::Amo { core, slot } => { m.amo(core, addr(slot), t); }
                Op::Invalidate { core } => { m.invalidate_all(core, t); }
                Op::Flush { core } => { m.flush_all(core, t); }
            }
        }
        prop_assert_eq!(m.total_stale_reads(), 0);
    }

    /// In an HCC system, the hardware-coherent core stays fresh as long as
    /// the software-centric writers *flush after writing* — MESI readers
    /// need no self-invalidation of their own (the flush commit invalidates
    /// their copies through the directory).
    #[test]
    fn mesi_fresh_against_flushing_writers(
        seq in proptest::collection::vec((1..CORES, 0u64..32), 1..100),
        tiny in protocols())
    {
        let mut m = system(tiny);
        let mut t = 0u64;
        for (writer, slot) in seq {
            t += 20;
            m.store(writer, addr(slot), t);
            m.flush_all(writer, t + 2);
            m.load(0, addr(slot), t + 10); // core 0 is MESI; no invalidate needed
        }
        prop_assert_eq!(m.core_stats(0).stale_reads, 0, "core 0 is MESI");
    }

    /// Disciplined use — every writer flushes after writing, every reader
    /// self-invalidates before reading remote data — never reads stale, on
    /// any protocol. This is the DAG-consistency discipline of Section III.
    #[test]
    fn disciplined_use_is_never_stale(
        seq in proptest::collection::vec((0..CORES, 0u64..32, any::<bool>()), 1..100),
        tiny in protocols())
    {
        let mut m = system(tiny);
        let mut t = 0u64;
        for (core, slot, is_write) in seq {
            t += 10;
            if is_write {
                // Acquire-like: invalidate before the read-modify-write.
                m.invalidate_all(core, t);
                m.load(core, addr(slot), t + 1);
                m.store(core, addr(slot), t + 2);
                // Release-like: flush after writing.
                m.flush_all(core, t + 3);
            } else {
                m.invalidate_all(core, t);
                m.load(core, addr(slot), t + 1);
            }
        }
        prop_assert_eq!(m.total_stale_reads(), 0);
    }

    /// AMOs are always coherent: a sequence of AMOs from arbitrary cores
    /// never produces stale reads via subsequent invalidate+load.
    #[test]
    fn amo_then_disciplined_read_is_fresh(
        seq in proptest::collection::vec((0..CORES, 0u64..16), 1..80),
        tiny in protocols())
    {
        let mut m = system(tiny);
        let mut t = 0u64;
        for (core, slot) in seq {
            t += 20;
            m.amo(core, addr(slot), t);
            let reader = (core + 1) % CORES;
            m.invalidate_all(reader, t + 5);
            m.load(reader, addr(slot), t + 6);
        }
        prop_assert_eq!(m.total_stale_reads(), 0);
    }

    /// Latencies are always positive and hits are cheaper than the first
    /// (cold) access.
    #[test]
    fn hits_never_cost_more_than_misses(core in 0..CORES, slot in 0u64..64, tiny in protocols()) {
        let mut m = system(tiny);
        let miss = m.load(core, addr(slot), 0);
        let hit = m.load(core, addr(slot), miss + 1);
        prop_assert!(miss >= 1 && hit >= 1);
        prop_assert!(hit <= miss, "hit {} vs cold miss {}", hit, miss);
    }

    /// Bulk operations never report negative effects and respect the no-op
    /// table: MESI invalidates/flushes nothing; DeNovo and GPU-WT flush
    /// nothing.
    #[test]
    fn bulk_ops_respect_noop_table(
        writes in proptest::collection::vec((0..CORES, 0u64..32), 0..40),
        tiny in protocols())
    {
        let mut m = system(tiny);
        let mut t = 0;
        for (core, slot) in writes {
            t += 10;
            m.store(core, addr(slot), t);
        }
        for core in 0..CORES {
            let proto = m.protocol(core);
            let (_, flushed) = m.flush_all(core, t + 100);
            let (_, dropped) = m.invalidate_all(core, t + 200);
            if proto.flush_is_noop() {
                prop_assert_eq!(flushed, 0, "{:?}", proto);
            }
            if proto.invalidate_is_noop() {
                prop_assert_eq!(dropped, 0, "{:?}", proto);
            }
        }
    }
}
