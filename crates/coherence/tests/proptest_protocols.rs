//! Randomized-but-deterministic tests of the coherence protocols: for the
//! explored sequences of memory operations, the disciplined-use invariants
//! of the paper's Section III must hold.
//!
//! These were originally `proptest` properties; they are now driven by the
//! simulator's own seeded [`XorShift64`] so the workspace has no external
//! dependencies and every CI run explores exactly the same cases.

use bigtiny_coherence::{Addr, CoreMemConfig, MemConfig, MemorySystem, Protocol};
use bigtiny_mesh::{MeshConfig, Topology, XorShift64};

const CORES: usize = 4;

fn system(tiny: Protocol) -> MemorySystem {
    let cfg = MemConfig::paper(
        MeshConfig::with_topology(Topology::new(2, 2)),
        vec![
            CoreMemConfig::big(),
            CoreMemConfig::tiny(tiny),
            CoreMemConfig::tiny(tiny),
            CoreMemConfig::tiny(tiny),
        ],
    );
    MemorySystem::new(&cfg)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Load { core: usize, slot: u64 },
    Store { core: usize, slot: u64 },
    Amo { core: usize, slot: u64 },
    Invalidate { core: usize },
    Flush { core: usize },
}

fn random_op(rng: &mut XorShift64) -> Op {
    let core = rng.next_below(CORES as u64) as usize;
    let slot = rng.next_below(48);
    match rng.next_below(5) {
        0 => Op::Load { core, slot },
        1 => Op::Store { core, slot },
        2 => Op::Amo { core, slot },
        3 => Op::Invalidate { core },
        _ => Op::Flush { core },
    }
}

fn addr(slot: u64) -> Addr {
    Addr(0x10000 + slot * 8)
}

const PROTOCOLS: [Protocol; 4] =
    [Protocol::Mesi, Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb];

fn random_protocol(rng: &mut XorShift64) -> Protocol {
    PROTOCOLS[rng.next_below(4) as usize]
}

/// Structural cache invariants must hold after any operation sequence.
fn assert_invariants(m: &MemorySystem) {
    if let Err(e) = m.check_invariants() {
        panic!("cache invariant violated: {e}");
    }
}

/// In an all-MESI system, *no* access pattern can ever read stale data:
/// writer-initiated invalidation needs no software discipline at all.
#[test]
fn all_mesi_never_stale() {
    let mut rng = XorShift64::new(0x434f_4831);
    for _ in 0..64 {
        let mut m = system(Protocol::Mesi);
        let mut t = 0u64;
        for _ in 0..1 + rng.next_below(199) {
            t += 10;
            match random_op(&mut rng) {
                Op::Load { core, slot } => {
                    m.load(core, addr(slot), t);
                }
                Op::Store { core, slot } => {
                    m.store(core, addr(slot), t);
                }
                Op::Amo { core, slot } => {
                    m.amo(core, addr(slot), t);
                }
                Op::Invalidate { core } => {
                    m.invalidate_all(core, t);
                }
                Op::Flush { core } => {
                    m.flush_all(core, t);
                }
            }
        }
        assert_eq!(m.total_stale_reads(), 0);
        assert_invariants(&m);
    }
}

/// In an HCC system, the hardware-coherent core stays fresh as long as the
/// software-centric writers *flush after writing* — MESI readers need no
/// self-invalidation of their own (the flush commit invalidates their copies
/// through the directory).
#[test]
fn mesi_fresh_against_flushing_writers() {
    let mut rng = XorShift64::new(0x434f_4832);
    for _ in 0..64 {
        let tiny = random_protocol(&mut rng);
        let mut m = system(tiny);
        let mut t = 0u64;
        for _ in 0..1 + rng.next_below(99) {
            let writer = 1 + rng.next_below(CORES as u64 - 1) as usize;
            let slot = rng.next_below(32);
            t += 20;
            m.store(writer, addr(slot), t);
            m.flush_all(writer, t + 2);
            m.load(0, addr(slot), t + 10); // core 0 is MESI; no invalidate needed
        }
        assert_eq!(m.core_stats(0).stale_reads, 0, "core 0 is MESI");
        assert_invariants(&m);
    }
}

/// Disciplined use — every writer flushes after writing, every reader
/// self-invalidates before reading remote data — never reads stale, on any
/// protocol. This is the DAG-consistency discipline of Section III.
#[test]
fn disciplined_use_is_never_stale() {
    let mut rng = XorShift64::new(0x434f_4833);
    for _ in 0..64 {
        let tiny = random_protocol(&mut rng);
        let mut m = system(tiny);
        let mut t = 0u64;
        for _ in 0..1 + rng.next_below(99) {
            let core = rng.next_below(CORES as u64) as usize;
            let slot = rng.next_below(32);
            let is_write = rng.next_below(2) == 0;
            t += 10;
            if is_write {
                // Acquire-like: invalidate before the read-modify-write.
                m.invalidate_all(core, t);
                m.load(core, addr(slot), t + 1);
                m.store(core, addr(slot), t + 2);
                // Release-like: flush after writing.
                m.flush_all(core, t + 3);
            } else {
                m.invalidate_all(core, t);
                m.load(core, addr(slot), t + 1);
            }
        }
        assert_eq!(m.total_stale_reads(), 0);
        assert_invariants(&m);
    }
}

/// AMOs are always coherent: a sequence of AMOs from arbitrary cores never
/// produces stale reads via subsequent invalidate+load.
#[test]
fn amo_then_disciplined_read_is_fresh() {
    let mut rng = XorShift64::new(0x434f_4834);
    for _ in 0..64 {
        let tiny = random_protocol(&mut rng);
        let mut m = system(tiny);
        let mut t = 0u64;
        for _ in 0..1 + rng.next_below(79) {
            let core = rng.next_below(CORES as u64) as usize;
            let slot = rng.next_below(16);
            t += 20;
            m.amo(core, addr(slot), t);
            let reader = (core + 1) % CORES;
            m.invalidate_all(reader, t + 5);
            m.load(reader, addr(slot), t + 6);
        }
        assert_eq!(m.total_stale_reads(), 0);
        assert_invariants(&m);
    }
}

/// Latencies are always positive and hits are cheaper than the first (cold)
/// access.
#[test]
fn hits_never_cost_more_than_misses() {
    let mut rng = XorShift64::new(0x434f_4835);
    for _ in 0..64 {
        let tiny = random_protocol(&mut rng);
        let core = rng.next_below(CORES as u64) as usize;
        let slot = rng.next_below(64);
        let mut m = system(tiny);
        let miss = m.load(core, addr(slot), 0);
        let hit = m.load(core, addr(slot), miss + 1);
        assert!(miss >= 1 && hit >= 1);
        assert!(hit <= miss, "hit {hit} vs cold miss {miss}");
    }
}

/// Bulk operations never report negative effects and respect the no-op
/// table: MESI invalidates/flushes nothing; DeNovo and GPU-WT flush
/// nothing.
#[test]
fn bulk_ops_respect_noop_table() {
    let mut rng = XorShift64::new(0x434f_4836);
    for _ in 0..64 {
        let tiny = random_protocol(&mut rng);
        let mut m = system(tiny);
        let mut t = 0;
        for _ in 0..rng.next_below(40) {
            let core = rng.next_below(CORES as u64) as usize;
            let slot = rng.next_below(32);
            t += 10;
            m.store(core, addr(slot), t);
        }
        for core in 0..CORES {
            let proto = m.protocol(core);
            let (_, flushed) = m.flush_all(core, t + 100);
            let (_, dropped) = m.invalidate_all(core, t + 200);
            if proto.flush_is_noop() {
                assert_eq!(flushed, 0, "{proto:?}");
            }
            if proto.invalidate_is_noop() {
                assert_eq!(dropped, 0, "{proto:?}");
            }
        }
        assert_invariants(&m);
    }
}
