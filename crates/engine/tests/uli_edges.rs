//! ULI edge cases through the full engine (CorePort + sequencer + network),
//! not just the network model: NACK-on-disabled-receiver retry, the
//! one-request-in-flight limit, and polling a response after the victim has
//! already retired.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bigtiny_engine::{run_system, SystemConfig, UliOutcome, Worker};

/// A thief whose first request is NACKed (receiver still disabled) succeeds
/// by retrying once the victim has enabled reception and gets the handler's
/// response back.
#[test]
fn nack_on_disabled_receiver_then_retry_gets_served() {
    let config = SystemConfig::o3(2);
    let first_outcome = Arc::new(AtomicU64::new(0));
    let first = Arc::clone(&first_outcome);

    let victim: Worker = Box::new(|port| {
        // Stay disabled long enough that the thief's first send NACKs.
        port.idle(200);
        port.set_uli_handler(Box::new(|port, msg| {
            port.uli_send_response(msg.from, msg.payload + 1);
        }));
        port.uli_enable();
        while !port.is_done() {
            port.uli_poll();
            port.idle(5);
        }
    });
    let thief: Worker = Box::new(move |port| {
        let mut sends = 0u64;
        loop {
            sends += 1;
            match port.uli_send_request(0, 41) {
                UliOutcome::Sent => break,
                UliOutcome::Nack { .. } => {
                    if first.load(Ordering::Relaxed) == 0 {
                        first.store(1, Ordering::Relaxed); // first attempt NACKed
                    }
                    port.idle(20);
                }
                UliOutcome::Dead { .. } => panic!("no crash plan armed"),
            }
        }
        assert!(sends > 1, "first send must have been NACKed and retried");
        let resp = loop {
            if let Some(m) = port.uli_poll_response() {
                break m;
            }
            port.idle(5);
        };
        assert_eq!(resp.payload, 42, "handler response made it back");
        port.set_done();
    });
    run_system(&config, vec![victim, thief]);
    assert_eq!(first_outcome.load(Ordering::Relaxed), 1, "first attempt observed a NACK");
}

/// Receivers accept one request in flight: with a pending unserviced
/// request, a second thief is NACKed even though the receiver is enabled.
#[test]
fn one_in_flight_request_per_receiver() {
    let config = SystemConfig::o3(3);
    // Victim is core 0 so its enable sequences before the thieves' sends
    // (ties at cycle 0 break by core id); thief 1 sends before thief 2.
    let victim: Worker = Box::new(|port| {
        port.uli_enable(); // enabled, but no handler: the request stays pending
        while !port.is_done() {
            port.idle(10);
        }
    });
    let thief1: Worker = Box::new(|port| {
        assert_eq!(port.uli_send_request(0, 1), UliOutcome::Sent, "slot was free");
        while !port.is_done() {
            port.idle(10);
        }
    });
    let thief2: Worker = Box::new(|port| {
        port.idle(50); // well after thief 1's request is in flight
        assert!(
            matches!(port.uli_send_request(0, 2), UliOutcome::Nack { .. }),
            "second in-flight request must NACK"
        );
        port.set_done();
    });
    run_system(&config, vec![victim, thief1, thief2]);
}

/// A response sent just before the victim disables its receiver and retires
/// is still collectable by the thief arbitrarily later — victim death never
/// strands a response on the wire.
#[test]
fn uli_poll_response_after_victim_death() {
    let config = SystemConfig::o3(2);
    let served = Arc::new(AtomicBool::new(false));
    let served_v = Arc::clone(&served);

    let victim: Worker = Box::new(move |port| {
        let flag = Arc::clone(&served_v);
        port.set_uli_handler(Box::new(move |port, msg| {
            port.uli_send_response(msg.from, msg.payload * 2);
            flag.store(true, Ordering::Relaxed);
        }));
        port.uli_enable();
        while !served_v.load(Ordering::Relaxed) {
            port.uli_poll();
            port.idle(5);
        }
        port.uli_disable();
        // Worker returns: the core retires from the sequencer ("dies").
    });
    let thief: Worker = Box::new(|port| {
        loop {
            match port.uli_send_request(0, 21) {
                UliOutcome::Sent => break,
                UliOutcome::Nack { .. } => port.idle(10),
                UliOutcome::Dead { .. } => panic!("no crash plan armed"),
            }
        }
        // Let the victim respond, tear down, and retire before polling.
        port.idle(10_000);
        let resp = loop {
            if let Some(m) = port.uli_poll_response() {
                break m;
            }
            port.idle(5);
        };
        assert_eq!((resp.from, resp.payload), (0, 42));
        port.set_done();
    });
    run_system(&config, vec![victim, thief]);
    assert!(served.load(Ordering::Relaxed));
}
