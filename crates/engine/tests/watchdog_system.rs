//! Watchdog behaviour through `run_system`: the wall-clock fallback catches
//! a core that spins in purely local (unsequenced) host code, and the whole
//! machine unwinds into a diagnostic bundle instead of hanging.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bigtiny_engine::{run_system, SystemConfig, TimeCategory, Worker, WATCHDOG_MSG};

/// Core 1 burns local cycles forever and never enters the sequencer, so no
/// grant can ever happen; the wall-clock fallback trips on the parked core
/// and the poison flag unwinds the spinner (which holds no lock) too.
#[test]
fn host_spin_outside_sequencer_trips_wall_clock_and_unwinds() {
    let mut config = SystemConfig::o3(2).with_watchdog(1_000_000);
    config.watchdog_wall_ms = 200;

    let waiter: Worker = Box::new(|port| {
        while !port.is_done() {
            port.idle(50);
        }
    });
    let spinner: Worker = Box::new(|port| loop {
        port.wait_cycles(1024, TimeCategory::Idle);
    });

    let result = catch_unwind(AssertUnwindSafe(|| {
        run_system(&config, vec![waiter, spinner]);
    }));
    let payload = result.expect_err("a grant-free run must trip the wall-clock fallback");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("watchdog panic carries the diagnostic bundle");
    assert!(msg.contains(WATCHDOG_MSG), "got: {msg}");
    assert!(msg.contains("core   0"), "per-core state for core 0: {msg}");
    assert!(msg.contains("core   1"), "per-core state for core 1: {msg}");
}

/// A slow-but-progressing run must never be poisoned: here grants trickle
/// in slower than the wall-clock window (the token holder spends several
/// windows of host time on purely local compute between sequenced ops,
/// while the other core sits parked in the sequencer), yet the run
/// completes because productive local charges count as liveness evidence.
#[test]
fn grants_slower_than_wall_clock_window_complete_unpoisoned() {
    let mut config = SystemConfig::o3(2).with_watchdog(1_000_000);
    config.watchdog_wall_ms = 25;

    let slow: Worker = Box::new(|port| {
        for _ in 0..3 {
            // >2 full wall-clock windows of host time with no grant
            // anywhere, but with local compute trickling in (each advance
            // exceeds the coalescing threshold, so it charges immediately).
            for _ in 0..12 {
                port.advance(20_000);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            port.is_done(); // one sequenced op: a trickling grant
        }
        port.set_done();
    });
    let waiter: Worker = Box::new(|port| {
        // Parks in the sequencer far in the future; its wall-clock windows
        // keep timing out with zero grants while the slow core computes.
        while !port.is_done() {
            port.idle(1_000_000);
        }
    });
    let report = run_system(&config, vec![slow, waiter]);
    assert!(report.seq_grants > 0);
}

/// A core that fail-stops mid-run goes permanently silent — no grants, no
/// activity, ever again — but its silence is *expected* and must not trip
/// the wall-clock fallback or wedge dispatch: the survivor keeps granting
/// against an aggressive wall window and completes. (Before dead-core
/// retirement was taught to the sequencer, a mid-run exit like this could
/// leave the waiting set expecting a grant that never comes.)
#[test]
fn quarantined_dead_core_never_trips_wall_clock_fallback() {
    let mut config = SystemConfig::o3(2).with_watchdog(1_000_000);
    config.watchdog_wall_ms = 100;

    let survivor: Worker = Box::new(|port| {
        for _ in 0..500 {
            port.advance(10);
            port.is_done(); // sequenced op: the only grant source once core 1 dies
        }
        port.set_done();
    });
    let dier: Worker = Box::new(|port| {
        port.advance(50);
        port.crash_now();
        // Permanent fail-stop: the worker retires and never grants again.
    });
    let report = run_system(&config, vec![survivor, dier]);
    assert!(report.seq_grants > 0);
    assert_eq!(report.fault_counters.crashes, 1, "the crash was taken and counted");
}

/// The flip side: a dead core must never *mask* a genuine hang. With core 1
/// dead and the survivor spinning idle without ever marking progress, the
/// deterministic budget still trips — and the diagnostic bundle labels the
/// dead core as dead, not as a suspect hung core.
#[test]
fn idle_spinning_survivor_still_trips_watchdog_despite_dead_core() {
    let mut config = SystemConfig::o3(2).with_watchdog(5_000);
    config.watchdog_wall_ms = 60_000;

    let spinner: Worker = Box::new(|port| {
        while !port.is_done() {
            port.idle(50); // grants flow, but no progress is ever marked
        }
    });
    let dier: Worker = Box::new(|port| {
        port.advance(50);
        port.crash_now();
    });
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_system(&config, vec![spinner, dier]);
    }));
    let payload = result.expect_err("a progress-free spin must trip the budget watchdog");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("watchdog panic carries the diagnostic bundle");
    assert!(msg.contains(WATCHDOG_MSG), "got: {msg}");
    assert!(msg.contains("[dead"), "bundle labels the fail-stopped core as dead: {msg}");
}

/// The same machine with the spin replaced by a finishing worker completes
/// without tripping: the wall-clock fallback only fires when *nothing* is
/// granted for the whole window.
#[test]
fn finishing_run_never_trips_wall_clock() {
    let mut config = SystemConfig::o3(2).with_watchdog(1_000_000);
    config.watchdog_wall_ms = 200;

    let a: Worker = Box::new(|port| {
        for _ in 0..100 {
            port.advance(10);
            port.is_done(); // sequenced op: keeps grants flowing
        }
        port.set_done();
    });
    let b: Worker = Box::new(|port| {
        while !port.is_done() {
            port.idle(10);
        }
    });
    let report = run_system(&config, vec![a, b]);
    assert!(report.seq_grants > 0);
}
