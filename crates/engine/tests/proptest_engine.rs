//! Property tests of the simulation engine: accounting invariants, shared-
//! array semantics, and determinism under arbitrary operation streams.

use std::sync::Arc;

use proptest::prelude::*;

use bigtiny_engine::{
    run_system, AddrSpace, Protocol, RunReport, ShVec, SystemConfig, TimeCategory, Worker,
};
use bigtiny_mesh::{MeshConfig, Topology};

#[derive(Clone, Copy, Debug)]
enum PortOp {
    Advance(u16),
    Load(u16),
    Store(u16),
    Amo(u16),
    Invalidate,
    Flush,
    Idle(u16),
}

fn op_strategy() -> impl Strategy<Value = PortOp> {
    prop_oneof![
        (1u16..300).prop_map(PortOp::Advance),
        (0u16..64).prop_map(PortOp::Load),
        (0u16..64).prop_map(PortOp::Store),
        (0u16..16).prop_map(PortOp::Amo),
        Just(PortOp::Invalidate),
        Just(PortOp::Flush),
        (1u16..50).prop_map(PortOp::Idle),
    ]
}

fn sys(tiny: Protocol) -> SystemConfig {
    SystemConfig::big_tiny("prop", MeshConfig::with_topology(Topology::new(2, 2)), 1, 3, tiny)
}

fn run_ops(tiny: Protocol, per_core_ops: &[Vec<PortOp>]) -> RunReport {
    let config = sys(tiny);
    let mut space = AddrSpace::new();
    let data = Arc::new(ShVec::new(&mut space, 64, 0u64));
    let mut workers: Vec<Worker> = Vec::new();
    for ops in per_core_ops.iter().cloned() {
        let data = Arc::clone(&data);
        workers.push(Box::new(move |port| {
            for op in ops {
                match op {
                    PortOp::Advance(n) => port.advance(n as u64),
                    PortOp::Load(i) => {
                        data.read(port, i as usize);
                    }
                    PortOp::Store(i) => data.write(port, i as usize, 7),
                    PortOp::Amo(i) => {
                        data.amo(port, i as usize, |v| *v += 1);
                    }
                    PortOp::Invalidate => {
                        port.invalidate_cache();
                    }
                    PortOp::Flush => {
                        port.flush_cache();
                    }
                    PortOp::Idle(n) => port.idle(n as u64),
                }
            }
            if port.core() == 0 {
                port.set_done();
            }
        }));
    }
    run_system(&config, workers)
}

fn protocols() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Mesi),
        Just(Protocol::DeNovo),
        Just(Protocol::GpuWt),
        Just(Protocol::GpuWb),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A core's final clock equals the sum of its time-breakdown categories:
    /// every cycle is attributed to exactly one category.
    #[test]
    fn clock_equals_breakdown_total(
        ops in proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..60), 4..=4),
        tiny in protocols())
    {
        let report = run_ops(tiny, &ops);
        for core in 0..4 {
            prop_assert_eq!(
                report.core_cycles[core],
                report.breakdowns[core].total(),
                "core {} clock vs breakdown", core
            );
        }
    }

    /// The same operation streams produce bit-identical reports.
    #[test]
    fn arbitrary_streams_are_deterministic(
        ops in proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..40), 4..=4),
        tiny in protocols())
    {
        let a = run_ops(tiny, &ops);
        let b = run_ops(tiny, &ops);
        prop_assert_eq!(a.core_cycles, b.core_cycles);
        prop_assert_eq!(a.traffic, b.traffic);
        prop_assert_eq!(a.instructions, b.instructions);
    }

    /// ShVec is a faithful memory: after any interleaving of single-writer
    /// per-slot updates, the final contents match a sequential model.
    #[test]
    fn shvec_single_writer_contents(values in proptest::collection::vec(0u64..1000, 1..32)) {
        let config = sys(Protocol::GpuWb);
        let mut space = AddrSpace::new();
        let data = Arc::new(ShVec::new(&mut space, values.len(), 0u64));
        // Each core writes a disjoint stripe; core 0 waits then checks.
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            let data = Arc::clone(&data);
            let values = values.clone();
            workers.push(Box::new(move |port| {
                for (i, v) in values.iter().enumerate() {
                    if i % 4 == core {
                        data.write(port, i, *v);
                    }
                }
                port.flush_cache();
                if core == 0 {
                    port.set_done();
                }
            }));
        }
        run_system(&config, workers);
        prop_assert_eq!(data.snapshot(), values);
    }

    /// Instructions are monotone in the op stream: appending operations can
    /// only increase a core's instruction count.
    #[test]
    fn instructions_monotone(ops in proptest::collection::vec(op_strategy(), 1..40), tiny in protocols()) {
        let shorter = vec![ops[..ops.len() / 2].to_vec(), vec![], vec![], vec![]];
        let longer = vec![ops, vec![], vec![], vec![]];
        let a = run_ops(tiny, &shorter);
        let b = run_ops(tiny, &longer);
        prop_assert!(b.instructions[0] >= a.instructions[0]);
    }

    /// Idle cycles are attributed to the Idle category exactly.
    #[test]
    fn idle_accounting_exact(cycles in 1u64..10_000) {
        let config = sys(Protocol::Mesi);
        let c2 = cycles;
        let mut workers: Vec<Worker> = vec![Box::new(move |port| {
            port.idle(c2);
            port.set_done();
        })];
        for _ in 1..4 {
            workers.push(Box::new(|port| port.idle(1)));
        }
        let report = run_system(&config, workers);
        prop_assert_eq!(report.breakdowns[0].get(TimeCategory::Idle), cycles);
    }
}
