//! Randomized-but-deterministic tests of the simulation engine: accounting
//! invariants, shared-array semantics, and determinism under arbitrary
//! operation streams.
//!
//! These were originally `proptest` properties; they are now driven by the
//! simulator's own seeded [`XorShift64`] so the workspace has no external
//! dependencies and every CI run explores exactly the same cases.

use std::sync::Arc;

use bigtiny_engine::{
    run_system, AddrSpace, Protocol, RunReport, ShVec, SystemConfig, TimeCategory, Worker,
    XorShift64,
};
use bigtiny_mesh::{MeshConfig, Topology};

#[derive(Clone, Copy, Debug)]
enum PortOp {
    Advance(u16),
    Load(u16),
    Store(u16),
    Amo(u16),
    Invalidate,
    Flush,
    Idle(u16),
}

fn random_op(rng: &mut XorShift64) -> PortOp {
    match rng.next_below(7) {
        0 => PortOp::Advance(1 + rng.next_below(299) as u16),
        1 => PortOp::Load(rng.next_below(64) as u16),
        2 => PortOp::Store(rng.next_below(64) as u16),
        3 => PortOp::Amo(rng.next_below(16) as u16),
        4 => PortOp::Invalidate,
        5 => PortOp::Flush,
        _ => PortOp::Idle(1 + rng.next_below(49) as u16),
    }
}

fn random_ops(rng: &mut XorShift64, max: u64) -> Vec<PortOp> {
    (0..rng.next_below(max)).map(|_| random_op(rng)).collect()
}

const PROTOCOLS: [Protocol; 4] =
    [Protocol::Mesi, Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb];

fn random_protocol(rng: &mut XorShift64) -> Protocol {
    PROTOCOLS[rng.next_below(4) as usize]
}

fn sys(tiny: Protocol) -> SystemConfig {
    SystemConfig::big_tiny("prop", MeshConfig::with_topology(Topology::new(2, 2)), 1, 3, tiny)
}

fn run_ops(tiny: Protocol, per_core_ops: &[Vec<PortOp>]) -> RunReport {
    let config = sys(tiny);
    let mut space = AddrSpace::new();
    let data = Arc::new(ShVec::new(&mut space, 64, 0u64));
    let mut workers: Vec<Worker> = Vec::new();
    for ops in per_core_ops.iter().cloned() {
        let data = Arc::clone(&data);
        workers.push(Box::new(move |port| {
            for op in ops {
                match op {
                    PortOp::Advance(n) => port.advance(n as u64),
                    PortOp::Load(i) => {
                        data.read(port, i as usize);
                    }
                    PortOp::Store(i) => data.write(port, i as usize, 7),
                    PortOp::Amo(i) => {
                        data.amo(port, i as usize, |v| *v += 1);
                    }
                    PortOp::Invalidate => {
                        port.invalidate_cache();
                    }
                    PortOp::Flush => {
                        port.flush_cache();
                    }
                    PortOp::Idle(n) => port.idle(n as u64),
                }
            }
            if port.core() == 0 {
                port.set_done();
            }
        }));
    }
    run_system(&config, workers)
}

/// A core's final clock equals the sum of its time-breakdown categories:
/// every cycle is attributed to exactly one category.
#[test]
fn clock_equals_breakdown_total() {
    let mut rng = XorShift64::new(0x454e_4731);
    for _ in 0..12 {
        let ops: Vec<Vec<PortOp>> = (0..4).map(|_| random_ops(&mut rng, 60)).collect();
        let tiny = random_protocol(&mut rng);
        let report = run_ops(tiny, &ops);
        for core in 0..4 {
            assert_eq!(
                report.core_cycles[core],
                report.breakdowns[core].total(),
                "core {core} clock vs breakdown"
            );
        }
    }
}

/// The same operation streams produce bit-identical reports.
#[test]
fn arbitrary_streams_are_deterministic() {
    let mut rng = XorShift64::new(0x454e_4732);
    for _ in 0..8 {
        let ops: Vec<Vec<PortOp>> = (0..4).map(|_| random_ops(&mut rng, 40)).collect();
        let tiny = random_protocol(&mut rng);
        let a = run_ops(tiny, &ops);
        let b = run_ops(tiny, &ops);
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.instructions, b.instructions);
    }
}

/// ShVec is a faithful memory: after any interleaving of single-writer
/// per-slot updates, the final contents match a sequential model.
#[test]
fn shvec_single_writer_contents() {
    let mut rng = XorShift64::new(0x454e_4733);
    for _ in 0..8 {
        let values: Vec<u64> = (0..1 + rng.next_below(31)).map(|_| rng.next_below(1000)).collect();
        let config = sys(Protocol::GpuWb);
        let mut space = AddrSpace::new();
        let data = Arc::new(ShVec::new(&mut space, values.len(), 0u64));
        // Each core writes a disjoint stripe; core 0 waits then checks.
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            let data = Arc::clone(&data);
            let values = values.clone();
            workers.push(Box::new(move |port| {
                for (i, v) in values.iter().enumerate() {
                    if i % 4 == core {
                        data.write(port, i, *v);
                    }
                }
                port.flush_cache();
                if core == 0 {
                    port.set_done();
                }
            }));
        }
        run_system(&config, workers);
        assert_eq!(data.snapshot(), values);
    }
}

/// Instructions are monotone in the op stream: appending operations can
/// only increase a core's instruction count.
#[test]
fn instructions_monotone() {
    let mut rng = XorShift64::new(0x454e_4734);
    for _ in 0..8 {
        let mut ops = random_ops(&mut rng, 40);
        if ops.is_empty() {
            ops.push(PortOp::Advance(1));
        }
        let tiny = random_protocol(&mut rng);
        let shorter = vec![ops[..ops.len() / 2].to_vec(), vec![], vec![], vec![]];
        let longer = vec![ops, vec![], vec![], vec![]];
        let a = run_ops(tiny, &shorter);
        let b = run_ops(tiny, &longer);
        assert!(b.instructions[0] >= a.instructions[0]);
    }
}

/// Idle cycles are attributed to the Idle category exactly.
#[test]
fn idle_accounting_exact() {
    let mut rng = XorShift64::new(0x454e_4735);
    for _ in 0..8 {
        let cycles = 1 + rng.next_below(9_999);
        let config = sys(Protocol::Mesi);
        let mut workers: Vec<Worker> = vec![Box::new(move |port| {
            port.idle(cycles);
            port.set_done();
        })];
        for _ in 1..4 {
            workers.push(Box::new(|port| port.idle(1)));
        }
        let report = run_system(&config, workers);
        assert_eq!(report.breakdowns[0].get(TimeCategory::Idle), cycles);
    }
}
