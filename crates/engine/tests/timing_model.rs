//! Unit tests of the core timing model: issue width, memory-latency
//! overlap, the store buffer, and ULI interrupt costs.

use std::sync::Arc;

use bigtiny_engine::{run_system, AddrSpace, Protocol, ShVec, SystemConfig, TimeCategory, Worker};
use bigtiny_mesh::{MeshConfig, Topology};

fn two_core_sys() -> SystemConfig {
    // Core 0 big, core 1 tiny, same protocol.
    SystemConfig::big_tiny(
        "t2",
        MeshConfig::with_topology(Topology::new(2, 2)),
        1,
        1,
        Protocol::Mesi,
    )
}

/// Big cores retire `issue_width` instructions per cycle; tiny cores one.
#[test]
fn issue_width_scales_compute() {
    let config = two_core_sys();
    let insts = 1000u64;
    let workers: Vec<Worker> = vec![
        Box::new(move |port| {
            port.advance(insts);
            assert_eq!(port.breakdown().get(TimeCategory::Compute), insts.div_ceil(4));
            port.set_done();
        }),
        Box::new(move |port| {
            port.advance(insts);
            assert_eq!(port.breakdown().get(TimeCategory::Compute), insts);
        }),
    ];
    run_system(&config, workers);
}

/// Big cores overlap half of each memory stall; tiny cores stall fully.
#[test]
fn big_core_overlaps_memory_latency() {
    let config = two_core_sys();
    let mut space = AddrSpace::new();
    let data = Arc::new(ShVec::new(&mut space, 1024, 0u64));
    let (d0, d1) = (Arc::clone(&data), Arc::clone(&data));
    let results = Arc::new(parking_lot_free_cell());
    let (r0, r1) = (Arc::clone(&results), Arc::clone(&results));
    let workers: Vec<Worker> = vec![
        Box::new(move |port| {
            // Disjoint cold lines for each core.
            for i in 0..32 {
                d0.read(port, i * 8);
            }
            r0.lock().unwrap()[0] = port.breakdown().get(TimeCategory::Load);
            port.set_done();
        }),
        Box::new(move |port| {
            for i in 64..96 {
                d1.read(port, i * 8);
            }
            r1.lock().unwrap()[1] = port.breakdown().get(TimeCategory::Load);
        }),
    ];
    run_system(&config, workers);
    let r = results.lock().unwrap();
    assert!(
        r[0] * 3 < r[1] * 2,
        "big-core load stalls {} should be well under tiny's {}",
        r[0],
        r[1]
    );
}

fn parking_lot_free_cell() -> std::sync::Mutex<[u64; 2]> {
    std::sync::Mutex::new([0; 2])
}

/// The store buffer absorbs a short burst (stores cost ~1 cycle) but a long
/// burst of misses stalls once the 8 entries fill.
#[test]
fn store_buffer_absorbs_then_stalls() {
    let config = two_core_sys();
    let mut space = AddrSpace::new();
    // Cold lines: every store misses (MESI write-allocate fetch).
    let data = Arc::new(ShVec::new(&mut space, 4096, 0u64));
    let d = Arc::clone(&data);
    let workers: Vec<Worker> = vec![
        Box::new(move |port| {
            let mut cost_first8 = 0;
            for i in 0..64 {
                let before = port.breakdown().get(TimeCategory::Store);
                d.write(port, i * 8, 1);
                let c = port.breakdown().get(TimeCategory::Store) - before;
                if i < 8 {
                    cost_first8 += c;
                }
            }
            // First 8 stores retire into the buffer: 1 cycle each.
            assert_eq!(cost_first8, 8, "first burst absorbed");
            // Overall, misses must eventually stall the core.
            assert!(port.breakdown().get(TimeCategory::Store) > 64);
            // An AMO drains the buffer.
            let before = port.breakdown().get(TimeCategory::Atomic);
            d.amo(port, 0, |v| *v += 1);
            assert!(port.breakdown().get(TimeCategory::Atomic) > before);
            port.set_done();
        }),
        Box::new(|port| port.idle(1)),
    ];
    run_system(&config, workers);
}

/// ULI interrupt cost is charged to the Uli category on the victim, and big
/// cores pay more than tiny cores.
#[test]
fn uli_interrupt_costs_by_core_kind() {
    let config = SystemConfig::big_tiny(
        "t3",
        MeshConfig::with_topology(Topology::new(2, 2)),
        1,
        2,
        Protocol::GpuWb,
    );
    let uli_big = config.uli_cost_big;
    let uli_tiny = config.uli_cost_tiny;
    assert!(uli_big > uli_tiny, "paper: big-core interrupts drain a deep pipeline");

    let workers: Vec<Worker> = vec![
        Box::new(move |port| {
            // Big victim.
            port.set_uli_handler(Box::new(|p, m| p.uli_send_response(m.from, 1)));
            port.uli_enable();
            for _ in 0..200 {
                port.idle(5);
                port.uli_poll();
            }
            assert!(port.breakdown().get(TimeCategory::Uli) >= uli_big, "interrupt cost charged");
            port.uli_disable();
        }),
        Box::new(move |port| {
            // Thief pokes the big core once.
            port.idle(50);
            assert_eq!(port.uli_send_request(0, 7), bigtiny_engine::UliOutcome::Sent);
            loop {
                if port.uli_poll_response().is_some() {
                    break;
                }
                port.idle(4);
            }
            port.set_done();
        }),
        Box::new(|port| port.idle(2000)),
    ];
    run_system(&config, workers);
}
