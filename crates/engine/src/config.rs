//! System configurations, including every named configuration the paper
//! evaluates (Table II, Section V-A).

use bigtiny_coherence::{CoreMemConfig, MemConfig, Protocol};
use bigtiny_mesh::{MeshConfig, Topology};

use crate::event::CheckMode;
use crate::fault::FaultPlan;
use crate::flight::{Heartbeat, DEFAULT_FLIGHT_CAPACITY};

/// Host execution backend for the simulated cores. Both backends produce
/// the identical sequenced-op stream (pinned by the golden-trace tests);
/// they differ only in host wall clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecBackend {
    /// Pick automatically: fibers where supported (x86_64 Linux, watchdog
    /// disarmed, `BIGTINY_BACKEND` not set to `threads` or `sharded`),
    /// else threads. `BIGTINY_BACKEND=sharded` selects
    /// [`ExecBackend::ShardedFibers`] where supported.
    #[default]
    Auto,
    /// One OS thread per simulated core. Portable, and required by the
    /// watchdog's wall-clock fallback (a stalled run can only be observed
    /// from a second runnable thread).
    Threads,
    /// Every core as a stackful fiber on the simulation thread: a token
    /// handoff is a user-space stack switch instead of a futex wake plus a
    /// kernel context switch. Panics at run start where unsupported.
    Fibers,
    /// Cores sharded into mesh-quadrant islands, each island's fibers
    /// driven by its own OS thread: token handoffs inside an island are
    /// user-space stack switches, and only cross-island handoffs pay a
    /// futex wake. Scales the fiber backend's wall-clock win to the
    /// 256-core configuration, where one thread multiplexing every core
    /// serializes the host. Produces the identical sequenced-op stream
    /// (golden-pinned); supports the watchdog (the wall-clock fallback
    /// runs in the island launchers). Panics at run start where
    /// unsupported (non-x86_64-Linux).
    ShardedFibers,
}

/// Grant tie-breaking policy of the sequencer.
///
/// The sequencer always grants a waiter holding the globally minimum
/// *time*; when two or more waiters share that minimum time the choice
/// among them is semantically free — any of them is a legal next step of
/// the simulated machine. This policy picks.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum SchedulePolicy {
    /// Break ties by the lowest core id (the historical behavior). Zero
    /// cost, records nothing, and preserves every golden op-stream hash
    /// bit for bit.
    #[default]
    MinCore,
    /// Replay an explorer-chosen choice sequence: the `i`-th grant with
    /// ≥ 2 minimum-time candidates takes the candidate (in ascending
    /// core-id order) at index `script[i]`, and every such grant is
    /// recorded as a [`crate::ChoicePoint`] in
    /// [`crate::RunReport::choice_points`]. Out-of-range and exhausted
    /// script entries fall back to index 0, so `Scripted(vec![])` replays
    /// the `MinCore` schedule exactly while recording its choice points.
    Scripted(Vec<u32>),
}

/// Core microarchitecture class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CoreKind {
    /// 4-way out-of-order, 64 KB L1, hardware (MESI) coherence.
    Big,
    /// Single-issue in-order, 4 KB L1, per-configuration coherence.
    Tiny,
}

/// Configuration of one simulated core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreConfig {
    /// Microarchitecture class.
    pub kind: CoreKind,
    /// Private-cache configuration.
    pub mem: CoreMemConfig,
}

impl CoreConfig {
    /// The paper's big core (MESI, 64 KB L1D).
    pub fn big() -> Self {
        CoreConfig { kind: CoreKind::Big, mem: CoreMemConfig::big() }
    }

    /// The paper's tiny core with protocol `protocol` (4 KB L1D).
    pub fn tiny(protocol: Protocol) -> Self {
        CoreConfig { kind: CoreKind::Tiny, mem: CoreMemConfig::tiny(protocol) }
    }
}

/// Full simulated-system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Human-readable name, e.g. `b.T/HCC-gwb` or `O3x8`.
    pub name: String,
    /// Data-OCN configuration (fixes topology and bank count).
    pub mesh: MeshConfig,
    /// Cores, in core-id order. Core 0 runs the program's main thread.
    pub cores: Vec<CoreConfig>,
    /// Issue width of big cores (compute IPC).
    pub big_issue_width: u64,
    /// Divisor applied to big-core memory stall latency, modelling the
    /// out-of-order window overlapping misses with execution.
    pub big_overlap_div: u64,
    /// Cycles to interrupt a tiny core for a ULI (paper: "a few cycles").
    pub uli_cost_tiny: u64,
    /// Cycles to interrupt a big core (paper: 10-50 cycles to drain the
    /// out-of-order pipeline).
    pub uli_cost_big: u64,
    /// Global seed for deterministic pseudo-randomness.
    pub seed: u64,
    /// Enable the stale-read checker.
    pub track_staleness: bool,
    /// Record per-core execution traces (see [`crate::render_timeline`]).
    pub trace: bool,
    /// Record per-task attribution spans (see [`crate::AttrSpan`]): which
    /// task each core's cycles belong to, with a full [`TimeBreakdown`]
    /// per span. Off by default; recording only reads already-computed
    /// clocks and is bit-for-bit invisible to simulated timing.
    pub attr: bool,
    /// Fault-injection plan. Defaults to [`FaultPlan::none()`], which is
    /// zero-cost: no fault code runs and timing is bit-for-bit unchanged.
    pub faults: FaultPlan,
    /// Liveness watchdog: maximum sequencer grants between runtime
    /// progress marks before the run is declared stuck. `None` (default)
    /// disables the watchdog entirely.
    pub watchdog_budget: Option<u64>,
    /// Wall-clock fallback window of the watchdog in milliseconds (only
    /// meaningful with `watchdog_budget` set). Trips when no sequencer
    /// grant happens at all for this long.
    pub watchdog_wall_ms: u64,
    /// Host execution backend (fibers vs one thread per core). Simulated
    /// results are identical either way; see [`ExecBackend`].
    pub backend: ExecBackend,
    /// DRF conformance checking. `Off` (default) collects nothing and is
    /// bit-for-bit invisible; armed modes buffer the addressed per-op
    /// event stream in [`crate::RunReport::mem_events`] without changing a
    /// single simulated cycle or op-stream hash.
    pub check: CheckMode,
    /// Sequencer grant tie-breaking policy. `MinCore` (default) is the
    /// historical lowest-core-id rule; `Scripted` replays an explicit
    /// choice sequence and records every tie as a
    /// [`crate::ChoicePoint`] — the hook the schedule-space explorer
    /// (`bigtiny-checker::explore`) drives.
    pub schedule: SchedulePolicy,
    /// Host stack bytes reserved per simulated core (thread stack or fiber
    /// mmap). `None` (default) picks a core-count-aware size via
    /// [`SystemConfig::core_stack_bytes`]: big reservations are free for a
    /// handful of cores, but 1024 × 32 MB would burn 32 GB of address
    /// space and can exhaust `vm.max_map_count`.
    pub stack_bytes: Option<usize>,
    /// Per-core flight-recorder ring capacity in events
    /// ([`DEFAULT_FLIGHT_CAPACITY`] by default; 0 disables recording).
    /// The recorder is always on because it is observation-only: it reads
    /// clocks the simulation already computed and never sequences or
    /// charges a cycle, so armed and unarmed runs are bit-for-bit
    /// identical (golden-pinned).
    pub flight_ring: usize,
    /// Live heartbeat hook: emit a [`crate::HeartbeatSnap`] every
    /// `heartbeat.every` sequencer grants. `None` (default) is zero-cost.
    pub heartbeat: Option<Heartbeat>,
}

impl SystemConfig {
    fn new(name: &str, mesh: MeshConfig, cores: Vec<CoreConfig>) -> Self {
        SystemConfig {
            name: name.to_owned(),
            mesh,
            cores,
            big_issue_width: 4,
            big_overlap_div: 2,
            uli_cost_tiny: 5,
            uli_cost_big: 30,
            seed: 0x5eed,
            track_staleness: true,
            trace: false,
            attr: false,
            faults: FaultPlan::none(),
            watchdog_budget: None,
            watchdog_wall_ms: 5_000,
            backend: ExecBackend::Auto,
            check: CheckMode::Off,
            schedule: SchedulePolicy::MinCore,
            stack_bytes: None,
            flight_ring: DEFAULT_FLIGHT_CAPACITY,
            heartbeat: None,
        }
    }

    /// A traditional multicore with `n` big out-of-order cores (the paper's
    /// `O3x1`, `O3x4`, `O3x8` comparison points).
    pub fn o3(n: usize) -> Self {
        assert!((1..=64).contains(&n));
        Self::new(&format!("O3x{n}"), MeshConfig::paper_64_core(), vec![CoreConfig::big(); n])
    }

    /// A big.TINY system: `num_big` big cores followed by `num_tiny` tiny
    /// cores running `tiny_protocol`, on `mesh`.
    pub fn big_tiny(
        name: &str,
        mesh: MeshConfig,
        num_big: usize,
        num_tiny: usize,
        tiny_protocol: Protocol,
    ) -> Self {
        assert!(num_big + num_tiny <= mesh.topology.num_tiles(), "too many cores for the mesh");
        let mut cores = vec![CoreConfig::big(); num_big];
        cores.extend(std::iter::repeat_n(CoreConfig::tiny(tiny_protocol), num_tiny));
        Self::new(name, mesh, cores)
    }

    /// The paper's 64-core `big.TINY/MESI`: 4 big + 60 tiny, all MESI.
    pub fn big_tiny_mesi() -> Self {
        Self::big_tiny("b.T/MESI", MeshConfig::paper_64_core(), 4, 60, Protocol::Mesi)
    }

    /// The paper's 64-core `big.TINY/HCC-*`: 4 big MESI cores + 60 tiny
    /// cores running the given software-centric protocol.
    pub fn big_tiny_hcc(tiny_protocol: Protocol) -> Self {
        assert_ne!(tiny_protocol, Protocol::Mesi, "use big_tiny_mesi() for the MESI configuration");
        Self::big_tiny(
            &format!("b.T/HCC-{}", tiny_protocol.label()),
            MeshConfig::paper_64_core(),
            4,
            60,
            tiny_protocol,
        )
    }

    /// The paper's 256-core system (Table V): 4 big + 252 tiny on an 8×32
    /// mesh with 32 L2 banks and 4× the DRAM bandwidth.
    pub fn big_tiny_256(tiny_protocol: Protocol) -> Self {
        let name = if tiny_protocol == Protocol::Mesi {
            "b.T-256/MESI".to_owned()
        } else {
            format!("b.T-256/HCC-{}", tiny_protocol.label())
        };
        Self::big_tiny(&name, MeshConfig::paper_256_core(), 4, 252, tiny_protocol)
    }

    /// A 64-tiny-core system (used by the Figure 4 granularity study).
    pub fn tiny_only(n: usize, protocol: Protocol) -> Self {
        assert!((1..=64).contains(&n));
        Self::big_tiny(
            &format!("tiny{n}/{}", protocol.label()),
            MeshConfig::paper_64_core(),
            0,
            n,
            protocol,
        )
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of big cores.
    pub fn num_big(&self) -> usize {
        self.cores.iter().filter(|c| c.kind == CoreKind::Big).count()
    }

    /// Ids of tiny cores.
    pub fn tiny_cores(&self) -> Vec<usize> {
        (0..self.cores.len()).filter(|i| self.cores[*i].kind == CoreKind::Tiny).collect()
    }

    /// The mesh topology.
    pub fn topology(&self) -> Topology {
        self.mesh.topology
    }

    /// Derives the memory-system configuration.
    pub fn mem_config(&self) -> MemConfig {
        let mut cfg = MemConfig::paper(self.mesh, self.cores.iter().map(|c| c.mem).collect());
        cfg.track_staleness = self.track_staleness;
        cfg
    }

    /// Returns a copy with a different seed (for replicated experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given fault plan armed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns a copy with the liveness watchdog armed at `budget`
    /// sequencer grants between progress marks.
    pub fn with_watchdog(mut self, budget: u64) -> Self {
        self.watchdog_budget = Some(budget);
        self
    }

    /// Returns a copy pinned to the given host execution backend.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Returns a copy with the DRF conformance checker armed at `check`.
    pub fn with_check(mut self, check: CheckMode) -> Self {
        self.check = check;
        self
    }

    /// Returns a copy with the given sequencer tie-breaking policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Returns a copy with per-task attribution-span recording armed.
    pub fn with_attr(mut self) -> Self {
        self.attr = true;
        self
    }

    /// Returns a copy reserving `bytes` of host stack per simulated core.
    pub fn with_core_stack(mut self, bytes: usize) -> Self {
        self.stack_bytes = Some(bytes);
        self
    }

    /// Returns a copy with the per-core flight-recorder ring resized to
    /// `events` entries (0 disables recording).
    pub fn with_flight_ring(mut self, events: usize) -> Self {
        self.flight_ring = events;
        self
    }

    /// Returns a copy with the given heartbeat hook armed.
    pub fn with_heartbeat(mut self, heartbeat: Heartbeat) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// Host stack bytes per simulated core: the explicit
    /// [`SystemConfig::stack_bytes`] if set, else a core-count-aware
    /// default. Stacks are lazily committed, so the cost of a large size
    /// is address space and mapping count, both of which scale with core
    /// count — hence the default shrinks as the system grows: 32 MB up to
    /// 64 cores (the historical fixed size), 8 MB up to 256, 2 MB beyond
    /// (a 1024-core system then reserves 2 GB, not 32 GB).
    pub fn core_stack_bytes(&self) -> usize {
        if let Some(bytes) = self.stack_bytes {
            return bytes;
        }
        match self.num_cores() {
            0..=64 => 32 << 20,
            65..=256 => 8 << 20,
            _ => 2 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_64_core_shape() {
        let c = SystemConfig::big_tiny_mesi();
        assert_eq!(c.num_cores(), 64);
        assert_eq!(c.num_big(), 4);
        assert_eq!(c.tiny_cores().len(), 60);
        assert_eq!(c.topology().num_banks(), 8);
    }

    #[test]
    fn hcc_configs_name_protocols() {
        assert_eq!(SystemConfig::big_tiny_hcc(Protocol::DeNovo).name, "b.T/HCC-dnv");
        assert_eq!(SystemConfig::big_tiny_hcc(Protocol::GpuWt).name, "b.T/HCC-gwt");
        assert_eq!(SystemConfig::big_tiny_hcc(Protocol::GpuWb).name, "b.T/HCC-gwb");
    }

    #[test]
    fn o3_systems_are_all_big() {
        let c = SystemConfig::o3(8);
        assert_eq!(c.num_cores(), 8);
        assert_eq!(c.num_big(), 8);
        assert!(c.cores.iter().all(|cc| cc.mem.protocol == Protocol::Mesi));
    }

    #[test]
    fn large_system_shape() {
        let c = SystemConfig::big_tiny_256(Protocol::GpuWb);
        assert_eq!(c.num_cores(), 256);
        assert_eq!(c.topology().num_banks(), 32);
        assert_eq!(c.name, "b.T-256/HCC-gwb");
    }

    #[test]
    #[should_panic(expected = "use big_tiny_mesi")]
    fn hcc_with_mesi_rejected() {
        SystemConfig::big_tiny_hcc(Protocol::Mesi);
    }

    #[test]
    fn stack_default_shrinks_with_core_count() {
        assert_eq!(SystemConfig::big_tiny_mesi().core_stack_bytes(), 32 << 20);
        assert_eq!(SystemConfig::o3(4).core_stack_bytes(), 32 << 20);
        assert_eq!(SystemConfig::big_tiny_256(Protocol::GpuWb).core_stack_bytes(), 8 << 20);
        let c = SystemConfig::big_tiny_256(Protocol::GpuWb).with_core_stack(1 << 20);
        assert_eq!(c.core_stack_bytes(), 1 << 20, "explicit size wins");
    }

    #[test]
    fn area_equivalence_of_o3x8() {
        // The paper sizes O3x8 by total L1 capacity: 8 big L1s ~= 4 big + 60
        // tiny L1s (64KB*8 = 512KB vs 64KB*4 + 4KB*60 = 496KB).
        let o3 = SystemConfig::o3(8);
        let bt = SystemConfig::big_tiny_mesi();
        let cap = |c: &SystemConfig| c.cores.iter().map(|x| x.mem.l1_bytes).sum::<usize>();
        let (a, b) = (cap(&o3), cap(&bt));
        let ratio = a as f64 / b as f64;
        assert!((0.9..1.1).contains(&ratio), "L1 area ratio {ratio}");
    }
}
