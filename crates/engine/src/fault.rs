//! Deterministic fault injection for adversarial-schedule testing.
//!
//! A [`FaultPlan`] describes which faults to inject and how often; it is
//! part of [`SystemConfig`](crate::SystemConfig) and defaults to
//! [`FaultPlan::none()`], in which case **no fault code runs at all**: the
//! golden path is bit-for-bit identical to a build without this module.
//!
//! Determinism: every fault decision is a roll on a seeded xorshift stream.
//! Each core owns its own stream (seeded from the plan seed and the core
//! id) consumed in that core's program order, and the data-OCN owns one
//! stream consumed in message order — both orders are fixed by the global
//! token sequencer, so the same seed injects the same faults at the same
//! points on every run, even though faults change timing.
//!
//! The fault taxonomy (see DESIGN.md, "Fault model & liveness"):
//!
//! * **ULI request drop** — the thief's steal request is charged to the
//!   network but never arrives and no NACK returns; the thief believes the
//!   send succeeded and must time out.
//! * **ULI forced NACK** — the request bounces as if the victim's buffer
//!   were full, exercising the NACK-retry path far beyond its natural rate.
//! * **ULI delivery delay** — the request arrives late by a fixed number of
//!   cycles, widening steal/termination race windows.
//! * **ULI receive drop** — the victim's ULI unit takes the request but the
//!   handler never sees it (a lost interrupt).
//! * **Steal-victim miss** — the runtime's victim selection is forced to
//!   report an empty deque, starving thieves into long retry storms.
//! * **Mesh latency spike** — a data-OCN message suffers a large extra
//!   latency, perturbing every memory-system timing assumption.

use bigtiny_mesh::{MeshFaults, XorShift64};

/// A deterministic fault-injection plan (see the module docs).
///
/// All probabilities are in thousandths: `0` disables that fault, `1000`
/// fires on every opportunity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Probability a ULI request is silently dropped in the network.
    pub uli_drop_per_mille: u32,
    /// Probability a ULI request is force-NACKed.
    pub uli_nack_per_mille: u32,
    /// Probability a delivered ULI request is delayed by
    /// [`FaultPlan::uli_delay_cycles`].
    pub uli_delay_per_mille: u32,
    /// Extra delivery delay for delayed requests, in cycles.
    pub uli_delay_cycles: u64,
    /// Probability an arrived ULI request is dropped at the receiver
    /// instead of being dispatched to the handler.
    pub uli_rx_drop_per_mille: u32,
    /// Probability a steal-victim lookup is forced to miss (runtime-level).
    pub steal_miss_per_mille: u32,
    /// Probability a data-OCN message suffers a latency spike.
    pub mesh_spike_per_mille: u32,
    /// Extra latency of a spiked data-OCN message, in cycles.
    pub mesh_spike_cycles: u64,
    /// Seed of every fault decision stream.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults: the zero-cost default. With this plan the simulator's
    /// timing and determinism are bit-for-bit unchanged.
    pub const fn none() -> Self {
        FaultPlan {
            uli_drop_per_mille: 0,
            uli_nack_per_mille: 0,
            uli_delay_per_mille: 0,
            uli_delay_cycles: 0,
            uli_rx_drop_per_mille: 0,
            steal_miss_per_mille: 0,
            mesh_spike_per_mille: 0,
            mesh_spike_cycles: 0,
            seed: 0,
        }
    }

    /// ULI drop-storm: a quarter of steal requests vanish in the network
    /// and some arrive but are lost at the receiver.
    pub const fn uli_drop_storm(seed: u64) -> Self {
        FaultPlan {
            uli_drop_per_mille: 250,
            uli_nack_per_mille: 150,
            uli_rx_drop_per_mille: 100,
            ..Self::none_seeded(seed)
        }
    }

    /// Steal-miss storm: most victim lookups are forced empty, with extra
    /// ULI delivery delay widening the retry windows.
    pub const fn steal_miss_storm(seed: u64) -> Self {
        FaultPlan {
            steal_miss_per_mille: 600,
            uli_delay_per_mille: 200,
            uli_delay_cycles: 400,
            ..Self::none_seeded(seed)
        }
    }

    /// Mesh latency spikes: 5% of data-OCN messages take an extra 500
    /// cycles.
    pub const fn mesh_latency_spikes(seed: u64) -> Self {
        FaultPlan { mesh_spike_per_mille: 50, mesh_spike_cycles: 500, ..Self::none_seeded(seed) }
    }

    /// Everything at once: the hostile plan used by the chaos integration
    /// tests.
    pub const fn hostile(seed: u64) -> Self {
        FaultPlan {
            uli_drop_per_mille: 200,
            uli_nack_per_mille: 150,
            uli_delay_per_mille: 150,
            uli_delay_cycles: 300,
            uli_rx_drop_per_mille: 80,
            steal_miss_per_mille: 300,
            mesh_spike_per_mille: 30,
            mesh_spike_cycles: 400,
            ..Self::none_seeded(seed)
        }
    }

    const fn none_seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Self::none() }
    }

    /// Whether any fault is armed. `false` guarantees the golden path.
    pub fn is_active(&self) -> bool {
        self.uli_drop_per_mille > 0
            || self.uli_nack_per_mille > 0
            || self.uli_delay_per_mille > 0
            || self.uli_rx_drop_per_mille > 0
            || self.steal_miss_per_mille > 0
            || self.mesh_spike_per_mille > 0
    }

    /// The plan's data-OCN spike component, if armed.
    pub fn mesh_faults(&self) -> Option<MeshFaults> {
        (self.mesh_spike_per_mille > 0).then_some(MeshFaults {
            spike_per_mille: self.mesh_spike_per_mille,
            spike_cycles: self.mesh_spike_cycles,
            seed: self.seed,
        })
    }

    /// Looks up a named plan (`none`, `uli-drop-storm`, `steal-miss-storm`,
    /// `mesh-latency-spikes`, `hostile`) for CLI use.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "uli-drop-storm" => Some(Self::uli_drop_storm(seed)),
            "steal-miss-storm" => Some(Self::steal_miss_storm(seed)),
            "mesh-latency-spikes" => Some(Self::mesh_latency_spikes(seed)),
            "hostile" => Some(Self::hostile(seed)),
            _ => None,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-core injected-fault counts, reported through
/// [`RunReport`](crate::RunReport) for ablations and regression tracking.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultCounters {
    /// ULI requests silently dropped in the network.
    pub uli_drops: u64,
    /// ULI requests force-NACKed.
    pub uli_nacks: u64,
    /// ULI requests delivered late.
    pub uli_delays: u64,
    /// ULI requests dropped at the receiver.
    pub uli_rx_drops: u64,
    /// Steal-victim lookups forced to miss.
    pub steal_misses: u64,
}

impl FaultCounters {
    /// Sum of all injected faults.
    pub fn total(&self) -> u64 {
        self.uli_drops + self.uli_nacks + self.uli_delays + self.uli_rx_drops + self.steal_misses
    }

    /// All `(label, count)` pairs — the stable iteration surface the
    /// metrics exporter keys its schema on.
    pub fn pairs(&self) -> [(&'static str, u64); 5] {
        [
            ("uli_drops", self.uli_drops),
            ("uli_nacks", self.uli_nacks),
            ("uli_delays", self.uli_delays),
            ("uli_rx_drops", self.uli_rx_drops),
            ("steal_misses", self.steal_misses),
        ]
    }
}

impl std::ops::AddAssign for FaultCounters {
    fn add_assign(&mut self, o: Self) {
        self.uli_drops += o.uli_drops;
        self.uli_nacks += o.uli_nacks;
        self.uli_delays += o.uli_delays;
        self.uli_rx_drops += o.uli_rx_drops;
        self.steal_misses += o.steal_misses;
    }
}

/// One core's fault-decision state: a dedicated xorshift stream plus the
/// counts of what it injected. Inactive plans never touch the stream.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    active: bool,
    rng: XorShift64,
    pub counters: FaultCounters,
}

impl FaultState {
    pub fn new(plan: FaultPlan, core: usize) -> Self {
        FaultState {
            plan,
            active: plan.is_active(),
            rng: XorShift64::new(
                plan.seed ^ (core as u64 + 1).wrapping_mul(0x666c_745f_636f_7265),
            ),
            counters: FaultCounters::default(),
        }
    }

    pub fn active(&self) -> bool {
        self.active
    }

    fn roll(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.rng.next_below(1000) < per_mille as u64
    }

    /// Decides the fate of an outgoing ULI request.
    pub fn on_uli_send(&mut self) -> UliSendFault {
        if !self.active {
            return UliSendFault::None;
        }
        if self.roll(self.plan.uli_drop_per_mille) {
            self.counters.uli_drops += 1;
            return UliSendFault::Drop;
        }
        if self.roll(self.plan.uli_nack_per_mille) {
            self.counters.uli_nacks += 1;
            return UliSendFault::Nack;
        }
        if self.roll(self.plan.uli_delay_per_mille) {
            self.counters.uli_delays += 1;
            return UliSendFault::Delay(self.plan.uli_delay_cycles);
        }
        UliSendFault::None
    }

    /// Whether an arrived ULI request should be dropped at the receiver.
    pub fn on_uli_receive(&mut self) -> bool {
        if self.active && self.roll(self.plan.uli_rx_drop_per_mille) {
            self.counters.uli_rx_drops += 1;
            return true;
        }
        false
    }

    /// Whether a steal-victim lookup should be forced to miss.
    pub fn on_steal_lookup(&mut self) -> bool {
        if self.active && self.roll(self.plan.steal_miss_per_mille) {
            self.counters.steal_misses += 1;
            return true;
        }
        false
    }
}

/// Fate of one outgoing ULI request under fault injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum UliSendFault {
    /// Deliver normally.
    None,
    /// Drop silently (sender believes it was sent).
    Drop,
    /// Bounce with a forced NACK.
    Nack,
    /// Deliver, but `0.cycles` late.
    Delay(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_rolls_nothing() {
        let mut s = FaultState::new(FaultPlan::none(), 3);
        for _ in 0..100 {
            assert_eq!(s.on_uli_send(), UliSendFault::None);
            assert!(!s.on_uli_receive());
            assert!(!s.on_steal_lookup());
        }
        assert_eq!(s.counters.total(), 0);
    }

    #[test]
    fn decision_streams_are_deterministic_per_core() {
        let decisions = |core| {
            let mut s = FaultState::new(FaultPlan::hostile(42), core);
            (0..200).map(|_| s.on_uli_send()).collect::<Vec<_>>()
        };
        assert_eq!(decisions(1), decisions(1), "same core, same stream");
        assert_ne!(decisions(1), decisions(2), "cores have independent streams");
    }

    #[test]
    fn storm_plans_fire_at_roughly_configured_rates() {
        let mut s = FaultState::new(FaultPlan::uli_drop_storm(7), 0);
        for _ in 0..1000 {
            let _ = s.on_uli_send();
        }
        let drops = s.counters.uli_drops;
        assert!((150..350).contains(&drops), "250/1000 nominal, got {drops}");
    }

    #[test]
    fn named_plans_resolve() {
        for name in ["none", "uli-drop-storm", "steal-miss-storm", "mesh-latency-spikes", "hostile"] {
            assert!(FaultPlan::by_name(name, 1).is_some(), "{name}");
        }
        assert!(FaultPlan::by_name("bogus", 1).is_none());
        assert!(!FaultPlan::by_name("none", 1).unwrap().is_active());
        assert!(FaultPlan::by_name("hostile", 1).unwrap().is_active());
    }

    #[test]
    fn mesh_component_extracted_only_when_armed() {
        assert!(FaultPlan::none().mesh_faults().is_none());
        let f = FaultPlan::mesh_latency_spikes(9).mesh_faults().unwrap();
        assert_eq!(f.spike_per_mille, 50);
        assert_eq!(f.seed, 9);
    }
}
