//! Deterministic fault injection for adversarial-schedule testing.
//!
//! A [`FaultPlan`] describes which faults to inject and how often; it is
//! part of [`SystemConfig`](crate::SystemConfig) and defaults to
//! [`FaultPlan::none()`], in which case **no fault code runs at all**: the
//! golden path is bit-for-bit identical to a build without this module.
//!
//! Determinism: every fault decision is a roll on a seeded xorshift stream.
//! Each core owns its own stream (seeded from the plan seed and the core
//! id) consumed in that core's program order, and the data-OCN owns one
//! stream consumed in message order — both orders are fixed by the global
//! token sequencer, so the same seed injects the same faults at the same
//! points on every run, even though faults change timing.
//!
//! The fault taxonomy (see DESIGN.md, "Fault model & liveness"):
//!
//! * **ULI request drop** — the thief's steal request is charged to the
//!   network but never arrives and no NACK returns; the thief believes the
//!   send succeeded and must time out.
//! * **ULI forced NACK** — the request bounces as if the victim's buffer
//!   were full, exercising the NACK-retry path far beyond its natural rate.
//! * **ULI delivery delay** — the request arrives late by a fixed number of
//!   cycles, widening steal/termination race windows.
//! * **ULI receive drop** — the victim's ULI unit takes the request but the
//!   handler never sees it (a lost interrupt).
//! * **Steal-victim miss** — the runtime's victim selection is forced to
//!   report an empty deque, starving thieves into long retry storms.
//! * **Mesh latency spike** — a data-OCN message suffers a large extra
//!   latency, perturbing every memory-system timing assumption.
//! * **Fail-stop core crash** — a tiny core goes permanently (or, with
//!   `revive_after_cycles`, temporarily) dark at a sequenced cycle
//!   boundary: its ULI unit answers every future steal request with a dead
//!   indication and the surviving cores must recover its lost work. Unlike
//!   the transient faults above, the doomed set and crash cycles are rolled
//!   **once per core at system start** (not per opportunity), so the crash
//!   schedule is a pure function of the plan and seed.

use bigtiny_mesh::{CoreSet, MeshFaults, XorShift64};

/// A deterministic fault-injection plan (see the module docs).
///
/// All probabilities are in thousandths: `0` disables that fault, `1000`
/// fires on every opportunity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Probability a ULI request is silently dropped in the network.
    pub uli_drop_per_mille: u32,
    /// Probability a ULI request is force-NACKed.
    pub uli_nack_per_mille: u32,
    /// Probability a delivered ULI request is delayed by
    /// [`FaultPlan::uli_delay_cycles`].
    pub uli_delay_per_mille: u32,
    /// Extra delivery delay for delayed requests, in cycles.
    pub uli_delay_cycles: u64,
    /// Probability an arrived ULI request is dropped at the receiver
    /// instead of being dispatched to the handler.
    pub uli_rx_drop_per_mille: u32,
    /// Probability a steal-victim lookup is forced to miss (runtime-level).
    pub steal_miss_per_mille: u32,
    /// Probability a data-OCN message suffers a latency spike.
    pub mesh_spike_per_mille: u32,
    /// Extra latency of a spiked data-OCN message, in cycles.
    pub mesh_spike_cycles: u64,
    /// Probability (rolled **once** per crash-eligible core at system
    /// start) that the core fail-stops mid-run. Crash-eligible cores are
    /// tiny cores other than core 0 (core 0 runs the program's root task).
    pub crash_per_mille: u32,
    /// Set of cores forced to fail-stop, independent of
    /// [`FaultPlan::crash_per_mille`]. Unbounded in core index (a 256-core
    /// plan can doom core 200); entries naming crash-ineligible cores are
    /// ignored.
    pub crash_cores: CoreSet,
    /// Cycle at which doomed cores fail-stop (each dies at its first
    /// scheduler safe point at or after this cycle). `0` picks a
    /// deterministic per-core cycle in `[1024, 9216)`.
    pub crash_at_cycle: u64,
    /// Cycles after its crash at which a dead core comes back and rejoins
    /// the computation. `0` means the crash is permanent.
    pub revive_after_cycles: u64,
    /// Seed of every fault decision stream.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults: the zero-cost default. With this plan the simulator's
    /// timing and determinism are bit-for-bit unchanged.
    pub const fn none() -> Self {
        FaultPlan {
            uli_drop_per_mille: 0,
            uli_nack_per_mille: 0,
            uli_delay_per_mille: 0,
            uli_delay_cycles: 0,
            uli_rx_drop_per_mille: 0,
            steal_miss_per_mille: 0,
            mesh_spike_per_mille: 0,
            mesh_spike_cycles: 0,
            crash_per_mille: 0,
            crash_cores: CoreSet::new(),
            crash_at_cycle: 0,
            revive_after_cycles: 0,
            seed: 0,
        }
    }

    /// ULI drop-storm: a quarter of steal requests vanish in the network
    /// and some arrive but are lost at the receiver.
    pub fn uli_drop_storm(seed: u64) -> Self {
        FaultPlan {
            uli_drop_per_mille: 250,
            uli_nack_per_mille: 150,
            uli_rx_drop_per_mille: 100,
            ..Self::none_seeded(seed)
        }
    }

    /// Steal-miss storm: most victim lookups are forced empty, with extra
    /// ULI delivery delay widening the retry windows.
    pub fn steal_miss_storm(seed: u64) -> Self {
        FaultPlan {
            steal_miss_per_mille: 600,
            uli_delay_per_mille: 200,
            uli_delay_cycles: 400,
            ..Self::none_seeded(seed)
        }
    }

    /// Mesh latency spikes: 5% of data-OCN messages take an extra 500
    /// cycles.
    pub fn mesh_latency_spikes(seed: u64) -> Self {
        FaultPlan { mesh_spike_per_mille: 50, mesh_spike_cycles: 500, ..Self::none_seeded(seed) }
    }

    /// Everything at once: the hostile plan used by the chaos integration
    /// tests.
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            uli_drop_per_mille: 200,
            uli_nack_per_mille: 150,
            uli_delay_per_mille: 150,
            uli_delay_cycles: 300,
            uli_rx_drop_per_mille: 80,
            steal_miss_per_mille: 300,
            mesh_spike_per_mille: 30,
            mesh_spike_cycles: 400,
            ..Self::none_seeded(seed)
        }
    }

    /// A single mid-run fail-stop: tiny core 5 dies and stays dead.
    pub fn crash_one(seed: u64) -> Self {
        FaultPlan {
            crash_cores: CoreSet::from_mask(1 << 5),
            crash_at_cycle: 1500,
            ..Self::none_seeded(seed)
        }
    }

    /// The acceptance-criteria crash storm: three tiny cores (5, 9, 13 —
    /// tiny in both the 64-core paper machine and the 16-core ablation
    /// machine) all die mid-run and never return.
    pub fn crash_storm(seed: u64) -> Self {
        FaultPlan {
            crash_cores: CoreSet::from_mask((1 << 5) | (1 << 9) | (1 << 13)),
            crash_at_cycle: 1500,
            ..Self::none_seeded(seed)
        }
    }

    /// Two tiny cores die mid-run and revive 4000 cycles later, exercising
    /// the quarantine re-probe and graceful-rejoin paths.
    pub fn crash_revive(seed: u64) -> Self {
        FaultPlan {
            crash_cores: CoreSet::from_mask((1 << 5) | (1 << 9)),
            crash_at_cycle: 1500,
            revive_after_cycles: 4000,
            ..Self::none_seeded(seed)
        }
    }

    /// Crash × transient mix: a core crash on top of the hostile transient
    /// storm — the worst chaos plan the integration tests run directly.
    pub fn crash_hostile(seed: u64) -> Self {
        FaultPlan {
            crash_cores: CoreSet::from_mask(1 << 5),
            crash_at_cycle: 1500,
            ..Self::hostile(seed)
        }
    }

    fn none_seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Self::none() }
    }

    /// Whether any fault is armed. `false` guarantees the golden path.
    pub fn is_active(&self) -> bool {
        self.uli_drop_per_mille > 0
            || self.uli_nack_per_mille > 0
            || self.uli_delay_per_mille > 0
            || self.uli_rx_drop_per_mille > 0
            || self.steal_miss_per_mille > 0
            || self.mesh_spike_per_mille > 0
            || self.crash_armed()
    }

    /// Whether fail-stop crashes are armed. Runtimes gate their recovery
    /// machinery (exec-frame recording, respawn factories, dead-core
    /// polling) on this, the same way [`FaultPlan::is_active`] gates the
    /// transient-hardening paths.
    pub fn crash_armed(&self) -> bool {
        self.crash_per_mille > 0 || !self.crash_cores.is_empty()
    }

    /// The plan's data-OCN spike component, if armed.
    pub fn mesh_faults(&self) -> Option<MeshFaults> {
        (self.mesh_spike_per_mille > 0).then_some(MeshFaults {
            spike_per_mille: self.mesh_spike_per_mille,
            spike_cycles: self.mesh_spike_cycles,
            seed: self.seed,
        })
    }

    /// Every named plan [`FaultPlan::by_name`] resolves, in its match
    /// order. CLI error messages enumerate this list so a typo shows the
    /// valid spellings.
    pub const NAMES: [&'static str; 9] = [
        "none",
        "uli-drop-storm",
        "steal-miss-storm",
        "mesh-latency-spikes",
        "hostile",
        "crash-one",
        "crash-storm",
        "crash-revive",
        "crash-hostile",
    ];

    /// Looks up a named plan (one of [`FaultPlan::NAMES`]) for CLI use.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "uli-drop-storm" => Some(Self::uli_drop_storm(seed)),
            "steal-miss-storm" => Some(Self::steal_miss_storm(seed)),
            "mesh-latency-spikes" => Some(Self::mesh_latency_spikes(seed)),
            "hostile" => Some(Self::hostile(seed)),
            "crash-one" => Some(Self::crash_one(seed)),
            "crash-storm" => Some(Self::crash_storm(seed)),
            "crash-revive" => Some(Self::crash_revive(seed)),
            "crash-hostile" => Some(Self::crash_hostile(seed)),
            _ => None,
        }
    }

    /// Resolves a named plan or, failing that, parses a
    /// [`FaultPlan::from_spec`] `key=value` spec — the form the chaos
    /// fuzzer prints for minimal reproducers.
    pub fn parse(s: &str, seed: u64) -> Option<Self> {
        Self::by_name(s, seed).or_else(|| {
            Self::from_spec(s).map(|mut p| {
                if p.seed == 0 {
                    p.seed = seed;
                }
                p
            })
        })
    }

    /// Renders the plan as a comma-separated `key=value` spec listing only
    /// its non-default dimensions (`"none"` for the empty plan). The
    /// output round-trips through [`FaultPlan::from_spec`]; the chaos
    /// fuzzer prints it as the `--fault-plan` argument of a minimal
    /// reproducer.
    pub fn to_spec(&self) -> String {
        let mut parts: Vec<String> = [
            ("uli_drop", self.uli_drop_per_mille as u64),
            ("uli_nack", self.uli_nack_per_mille as u64),
            ("uli_delay", self.uli_delay_per_mille as u64),
            ("uli_delay_cycles", self.uli_delay_cycles),
            ("uli_rx_drop", self.uli_rx_drop_per_mille as u64),
            ("steal_miss", self.steal_miss_per_mille as u64),
            ("mesh_spike", self.mesh_spike_per_mille as u64),
            ("mesh_spike_cycles", self.mesh_spike_cycles),
        ]
        .iter()
        .filter(|(_, v)| *v != 0)
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
        if !self.crash_cores.is_empty() {
            parts.push(format!("crash_cores={}", self.crash_cores.to_hex()));
        }
        for (k, v) in [
            ("crash", self.crash_per_mille as u64),
            ("crash_at", self.crash_at_cycle),
            ("revive_after", self.revive_after_cycles),
            ("seed", self.seed),
        ] {
            if v != 0 {
                parts.push(format!("{k}={v}"));
            }
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join(",")
        }
    }

    /// Parses a comma-separated `key=value` spec produced by
    /// [`FaultPlan::to_spec`] (`crash_cores` also accepts `0x` hex).
    /// Returns `None` on any unknown key or malformed value.
    pub fn from_spec(spec: &str) -> Option<Self> {
        if spec == "none" {
            return Some(Self::none());
        }
        let mut p = Self::none();
        for part in spec.split(',') {
            let (k, raw) = part.split_once('=')?;
            let raw = raw.trim();
            // `crash_cores` is a set of arbitrary width (hex or decimal
            // mask); every other value is a plain u64 (with `0x` accepted).
            if k.trim() == "crash_cores" {
                p.crash_cores = CoreSet::parse(raw)?;
                continue;
            }
            let parse = |v: &str| -> Option<u64> {
                if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    v.parse().ok()
                }
            };
            let v = parse(raw)?;
            let mille = |v: u64| -> Option<u32> { (v <= 1000).then_some(v as u32) };
            match k.trim() {
                "uli_drop" => p.uli_drop_per_mille = mille(v)?,
                "uli_nack" => p.uli_nack_per_mille = mille(v)?,
                "uli_delay" => p.uli_delay_per_mille = mille(v)?,
                "uli_delay_cycles" => p.uli_delay_cycles = v,
                "uli_rx_drop" => p.uli_rx_drop_per_mille = mille(v)?,
                "steal_miss" => p.steal_miss_per_mille = mille(v)?,
                "mesh_spike" => p.mesh_spike_per_mille = mille(v)?,
                "mesh_spike_cycles" => p.mesh_spike_cycles = v,
                "crash" => p.crash_per_mille = mille(v)?,
                "crash_at" => p.crash_at_cycle = v,
                "revive_after" => p.revive_after_cycles = v,
                "seed" => p.seed = v,
                _ => return None,
            }
        }
        Some(p)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-core injected-fault counts, reported through
/// [`RunReport`](crate::RunReport) for ablations and regression tracking.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultCounters {
    /// ULI requests silently dropped in the network.
    pub uli_drops: u64,
    /// ULI requests force-NACKed.
    pub uli_nacks: u64,
    /// ULI requests delivered late.
    pub uli_delays: u64,
    /// ULI requests dropped at the receiver.
    pub uli_rx_drops: u64,
    /// Steal-victim lookups forced to miss.
    pub steal_misses: u64,
    /// Fail-stop crashes taken (at most one per doomed core per life).
    pub crashes: u64,
}

impl FaultCounters {
    /// Sum of all injected faults.
    pub fn total(&self) -> u64 {
        self.uli_drops
            + self.uli_nacks
            + self.uli_delays
            + self.uli_rx_drops
            + self.steal_misses
            + self.crashes
    }

    /// All `(label, count)` pairs — the stable iteration surface the
    /// metrics exporter keys its schema on.
    pub fn pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("uli_drops", self.uli_drops),
            ("uli_nacks", self.uli_nacks),
            ("uli_delays", self.uli_delays),
            ("uli_rx_drops", self.uli_rx_drops),
            ("steal_misses", self.steal_misses),
            ("crashes", self.crashes),
        ]
    }
}

impl std::ops::AddAssign for FaultCounters {
    fn add_assign(&mut self, o: Self) {
        self.uli_drops += o.uli_drops;
        self.uli_nacks += o.uli_nacks;
        self.uli_delays += o.uli_delays;
        self.uli_rx_drops += o.uli_rx_drops;
        self.steal_misses += o.steal_misses;
        self.crashes += o.crashes;
    }
}

/// One core's fault-decision state: a dedicated xorshift stream plus the
/// counts of what it injected. Inactive plans never touch the stream.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    active: bool,
    rng: XorShift64,
    /// This core is scheduled to fail-stop (forced by the crash-core mask
    /// or rolled by `crash_per_mille`); decided once at construction.
    doomed: bool,
    /// The cycle at or after which a doomed core dies.
    crash_at: u64,
    /// Set once the crash has been taken (a revived core does not re-die).
    crashed: bool,
    pub counters: FaultCounters,
}

impl FaultState {
    pub fn new(plan: FaultPlan, core: usize, crash_eligible: bool) -> Self {
        // The doom roll uses its own one-shot stream, separate from the
        // per-opportunity stream below: transient-fault consumption in
        // program order must not shift the crash schedule.
        let mut doomed = false;
        let mut crash_at = 0;
        if crash_eligible && plan.crash_armed() {
            let forced = plan.crash_cores.contains(core);
            let mut crng =
                XorShift64::new(plan.seed ^ (core as u64 + 1).wrapping_mul(0x6372_6173_685f_6174));
            let rolled =
                plan.crash_per_mille > 0 && crng.next_below(1000) < plan.crash_per_mille as u64;
            if forced || rolled {
                doomed = true;
                crash_at = if plan.crash_at_cycle > 0 {
                    plan.crash_at_cycle
                } else {
                    1024 + crng.next_below(8192)
                };
            }
        }
        FaultState {
            active: plan.is_active(),
            rng: XorShift64::new(plan.seed ^ (core as u64 + 1).wrapping_mul(0x666c_745f_636f_7265)),
            plan,
            doomed,
            crash_at,
            crashed: false,
            counters: FaultCounters::default(),
        }
    }

    pub fn active(&self) -> bool {
        self.active
    }

    /// Whether fail-stop crashes are armed in the plan (on any core, not
    /// necessarily this one).
    pub fn crash_armed(&self) -> bool {
        self.plan.crash_armed()
    }

    /// Whether this core's scheduled crash is due at local time `now`.
    pub fn crash_pending(&self, now: u64) -> bool {
        self.doomed && !self.crashed && now >= self.crash_at
    }

    /// Records that this core took its crash.
    pub fn note_crashed(&mut self) {
        self.crashed = true;
        self.counters.crashes += 1;
    }

    /// Cycles after a crash at which the dead core revives (0 = never).
    pub fn revive_after(&self) -> u64 {
        self.plan.revive_after_cycles
    }

    fn roll(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.rng.next_below(1000) < per_mille as u64
    }

    /// Decides the fate of an outgoing ULI request.
    pub fn on_uli_send(&mut self) -> UliSendFault {
        if !self.active {
            return UliSendFault::None;
        }
        if self.roll(self.plan.uli_drop_per_mille) {
            self.counters.uli_drops += 1;
            return UliSendFault::Drop;
        }
        if self.roll(self.plan.uli_nack_per_mille) {
            self.counters.uli_nacks += 1;
            return UliSendFault::Nack;
        }
        if self.roll(self.plan.uli_delay_per_mille) {
            self.counters.uli_delays += 1;
            return UliSendFault::Delay(self.plan.uli_delay_cycles);
        }
        UliSendFault::None
    }

    /// Whether an arrived ULI request should be dropped at the receiver.
    pub fn on_uli_receive(&mut self) -> bool {
        if self.active && self.roll(self.plan.uli_rx_drop_per_mille) {
            self.counters.uli_rx_drops += 1;
            return true;
        }
        false
    }

    /// Whether a steal-victim lookup should be forced to miss.
    pub fn on_steal_lookup(&mut self) -> bool {
        if self.active && self.roll(self.plan.steal_miss_per_mille) {
            self.counters.steal_misses += 1;
            return true;
        }
        false
    }
}

/// Fate of one outgoing ULI request under fault injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum UliSendFault {
    /// Deliver normally.
    None,
    /// Drop silently (sender believes it was sent).
    Drop,
    /// Bounce with a forced NACK.
    Nack,
    /// Deliver, but `0.cycles` late.
    Delay(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_rolls_nothing() {
        let mut s = FaultState::new(FaultPlan::none(), 3, true);
        for _ in 0..100 {
            assert_eq!(s.on_uli_send(), UliSendFault::None);
            assert!(!s.on_uli_receive());
            assert!(!s.on_steal_lookup());
        }
        assert_eq!(s.counters.total(), 0);
    }

    #[test]
    fn decision_streams_are_deterministic_per_core() {
        let decisions = |core| {
            let mut s = FaultState::new(FaultPlan::hostile(42), core, true);
            (0..200).map(|_| s.on_uli_send()).collect::<Vec<_>>()
        };
        assert_eq!(decisions(1), decisions(1), "same core, same stream");
        assert_ne!(decisions(1), decisions(2), "cores have independent streams");
    }

    #[test]
    fn storm_plans_fire_at_roughly_configured_rates() {
        let mut s = FaultState::new(FaultPlan::uli_drop_storm(7), 0, false);
        for _ in 0..1000 {
            let _ = s.on_uli_send();
        }
        let drops = s.counters.uli_drops;
        assert!((150..350).contains(&drops), "250/1000 nominal, got {drops}");
    }

    #[test]
    fn named_plans_resolve() {
        // NAMES is the CLI's error-message surface: every entry must
        // resolve, and every plan `by_name` resolves must be listed.
        assert_eq!(
            FaultPlan::NAMES,
            [
                "none",
                "uli-drop-storm",
                "steal-miss-storm",
                "mesh-latency-spikes",
                "hostile",
                "crash-one",
                "crash-storm",
                "crash-revive",
                "crash-hostile",
            ]
        );
        for name in FaultPlan::NAMES {
            assert!(FaultPlan::by_name(name, 1).is_some(), "{name}");
        }
        assert!(FaultPlan::by_name("bogus", 1).is_none());
        assert!(!FaultPlan::by_name("none", 1).unwrap().is_active());
        assert!(FaultPlan::by_name("hostile", 1).unwrap().is_active());
        assert!(FaultPlan::by_name("crash-storm", 1).unwrap().is_active());
        assert!(FaultPlan::by_name("crash-storm", 1).unwrap().crash_armed());
        assert!(!FaultPlan::by_name("hostile", 1).unwrap().crash_armed());
    }

    #[test]
    fn crash_schedule_is_decided_once_and_deterministic() {
        // Forced mask: exactly the named cores are doomed, at the plan's
        // cycle, regardless of how much transient stream is consumed.
        let plan = FaultPlan::crash_storm(7);
        for core in 0..16 {
            let mut s = FaultState::new(plan.clone(), core, core != 0);
            let doomed = core == 5 || core == 9 || core == 13;
            assert_eq!(s.crash_pending(1500), doomed, "core {core}");
            assert!(!s.crash_pending(1499), "core {core} early");
            for _ in 0..100 {
                let _ = s.on_uli_send();
            }
            assert_eq!(s.crash_pending(1500), doomed, "core {core} after rolls");
            if doomed {
                s.note_crashed();
                assert!(!s.crash_pending(2000), "a taken crash never re-fires");
                assert_eq!(s.counters.crashes, 1);
            }
        }
        // Ineligible cores never die even when the mask names them.
        let s = FaultState::new(plan, 5, false);
        assert!(!s.crash_pending(u64::MAX));
        // Probabilistic doom: same seed, same doomed set; the per-core
        // crash cycle lands in the documented default window.
        let doomed_set = |seed| {
            (1..64usize)
                .filter(|&c| {
                    FaultState::new(
                        FaultPlan { crash_per_mille: 300, ..FaultPlan::none_seeded(seed) },
                        c,
                        true,
                    )
                    .crash_pending(u64::MAX)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(doomed_set(3), doomed_set(3));
        assert_ne!(doomed_set(3), doomed_set(4), "seed varies the doomed set");
        let n = doomed_set(3).len();
        assert!((5..=35).contains(&n), "300/1000 nominal over 63 cores, got {n}");
    }

    /// Regression: the old `u64` crash mask had a silent `core < 64` guard,
    /// so a plan dooming core 200 in a 256-core machine never fired.
    #[test]
    fn forced_crash_works_past_core_64() {
        let mut plan = FaultPlan::none();
        plan.crash_cores.insert(200);
        plan.crash_at_cycle = 1500;
        let s = FaultState::new(plan.clone(), 200, true);
        assert!(s.crash_pending(1500), "core 200 must be doomed");
        assert!(!s.crash_pending(1499));
        // Only the named core is doomed.
        assert!(!FaultState::new(plan.clone(), 199, true).crash_pending(u64::MAX));
        assert!(!FaultState::new(plan, 201, true).crash_pending(u64::MAX));
    }

    #[test]
    fn specs_round_trip() {
        assert_eq!(FaultPlan::none().to_spec(), "none");
        assert_eq!(FaultPlan::from_spec("none"), Some(FaultPlan::none()));
        for name in FaultPlan::NAMES {
            let p = FaultPlan::by_name(name, 11).unwrap();
            assert_eq!(FaultPlan::from_spec(&p.to_spec()), Some(p), "{name}");
        }
        let p = FaultPlan::from_spec("uli_drop=250,crash_cores=0x20,crash_at=1500").unwrap();
        assert_eq!(p.uli_drop_per_mille, 250);
        assert_eq!(p.crash_cores, CoreSet::from_mask(0x20));
        assert_eq!(p.crash_at_cycle, 1500);
        // Wide sets (cores ≥ 64) round-trip through the hex spec too.
        let mut wide = FaultPlan::none();
        wide.crash_cores.insert(200);
        wide.crash_cores.insert(5);
        wide.crash_at_cycle = 1500;
        assert_eq!(FaultPlan::from_spec(&wide.to_spec()), Some(wide.clone()), "{}", wide.to_spec());
        assert!(FaultPlan::from_spec(&wide.to_spec()).unwrap().crash_cores.contains(200));
        assert!(FaultPlan::from_spec("crash_cores=zz").is_none());
        assert!(FaultPlan::from_spec("bogus_key=1").is_none());
        assert!(FaultPlan::from_spec("uli_drop=1001").is_none(), "per-mille out of range");
        assert!(FaultPlan::from_spec("uli_drop").is_none(), "missing value");
        // `parse` accepts both forms and threads the CLI seed through.
        assert_eq!(FaultPlan::parse("hostile", 5), Some(FaultPlan::hostile(5)));
        assert_eq!(FaultPlan::parse("crash_cores=0x20", 5).unwrap().seed, 5);
        assert!(FaultPlan::parse("nope", 5).is_none());
    }

    #[test]
    fn mesh_component_extracted_only_when_armed() {
        assert!(FaultPlan::none().mesh_faults().is_none());
        let f = FaultPlan::mesh_latency_spikes(9).mesh_faults().unwrap();
        assert_eq!(f.spike_per_mille, 50);
        assert_eq!(f.seed, 9);
    }
}
