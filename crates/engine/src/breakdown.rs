//! Per-core execution-time breakdown, as reported in Figure 7 of the paper.

use std::fmt;
use std::ops::AddAssign;

/// Where a core's cycles went.
///
/// The paper's Figure 7 reports six groups for the tiny cores: *Inst Fetch*,
/// *Data Load*, *Data Store*, *Atomic*, *Flush*, *Others*. The simulator
/// tracks a finer split and [`TimeBreakdown::paper_groups`] folds it into
/// the paper's legend.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimeCategory {
    /// Instruction execution (maps to the paper's "Inst Fetch" on the
    /// single-issue tiny cores, where every instruction occupies the front
    /// end for one cycle).
    Compute,
    /// Stalls on demand loads.
    Load,
    /// Stalls on demand stores.
    Store,
    /// Stalls on atomic memory operations.
    Atomic,
    /// Bulk cache flushes (`cache_flush`).
    Flush,
    /// Bulk self-invalidations (`cache_invalidate`).
    Invalidate,
    /// ULI send/receive/handler overhead.
    Uli,
    /// Waiting for a ULI steal response.
    UliWait,
    /// Idle: steal back-off and waiting for work.
    Idle,
}

/// All categories in display order.
pub const TIME_CATEGORIES: [TimeCategory; 9] = [
    TimeCategory::Compute,
    TimeCategory::Load,
    TimeCategory::Store,
    TimeCategory::Atomic,
    TimeCategory::Flush,
    TimeCategory::Invalidate,
    TimeCategory::Uli,
    TimeCategory::UliWait,
    TimeCategory::Idle,
];

impl TimeCategory {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TimeCategory::Compute => "compute",
            TimeCategory::Load => "load",
            TimeCategory::Store => "store",
            TimeCategory::Atomic => "atomic",
            TimeCategory::Flush => "flush",
            TimeCategory::Invalidate => "invalidate",
            TimeCategory::Uli => "uli",
            TimeCategory::UliWait => "uli_wait",
            TimeCategory::Idle => "idle",
        }
    }

    /// Index into [`TIME_CATEGORIES`] / the breakdown array. A direct match
    /// (this runs on every cycle charge; a linear scan over the category
    /// table showed up in engine profiles).
    fn index(self) -> usize {
        match self {
            TimeCategory::Compute => 0,
            TimeCategory::Load => 1,
            TimeCategory::Store => 2,
            TimeCategory::Atomic => 3,
            TimeCategory::Flush => 4,
            TimeCategory::Invalidate => 5,
            TimeCategory::Uli => 6,
            TimeCategory::UliWait => 7,
            TimeCategory::Idle => 8,
        }
    }
}

/// Cycles attributed per [`TimeCategory`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TimeBreakdown {
    cycles: [u64; 9],
}

impl TimeBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `category`.
    pub fn add(&mut self, category: TimeCategory, cycles: u64) {
        self.cycles[category.index()] += cycles;
    }

    /// Cycles in `category`.
    pub fn get(&self, category: TimeCategory) -> u64 {
        self.cycles[category.index()]
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// All `(label, cycles)` pairs in display order, including zero
    /// categories — the stable iteration surface the metrics exporter keys
    /// its schema on.
    pub fn pairs(&self) -> [(&'static str, u64); 9] {
        TIME_CATEGORIES.map(|c| (c.label(), self.get(c)))
    }

    /// Category-wise difference `self - earlier`, for turning two
    /// monotonically growing snapshots of the same core's breakdown into
    /// the breakdown of the interval between them.
    pub fn diff(&self, earlier: &TimeBreakdown) -> TimeBreakdown {
        let mut out = TimeBreakdown::new();
        for i in 0..self.cycles.len() {
            debug_assert!(
                self.cycles[i] >= earlier.cycles[i],
                "breakdown snapshots taken out of order"
            );
            out.cycles[i] = self.cycles[i] - earlier.cycles[i];
        }
        out
    }

    /// Folds the fine categories into the paper's Figure 7 legend:
    /// `(inst_fetch, data_load, data_store, atomic, flush, others)`.
    pub fn paper_groups(&self) -> [(&'static str, u64); 6] {
        [
            ("Inst Fetch", self.get(TimeCategory::Compute)),
            ("Data Load", self.get(TimeCategory::Load)),
            ("Data Store", self.get(TimeCategory::Store)),
            ("Atomic", self.get(TimeCategory::Atomic)),
            ("Flush", self.get(TimeCategory::Flush)),
            (
                "Others",
                self.get(TimeCategory::Invalidate)
                    + self.get(TimeCategory::Uli)
                    + self.get(TimeCategory::UliWait)
                    + self.get(TimeCategory::Idle),
            ),
        ]
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        for i in 0..self.cycles.len() {
            self.cycles[i] += rhs.cycles[i];
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(1);
        for c in TIME_CATEGORIES {
            let v = self.get(c);
            if v > 0 {
                writeln!(
                    f,
                    "{:>10}: {:>12} ({:5.1}%)",
                    c.label(),
                    v,
                    100.0 * v as f64 / total as f64
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_display_order() {
        for (i, c) in TIME_CATEGORIES.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} must map to its display position");
        }
    }

    #[test]
    fn add_and_total() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::Compute, 100);
        b.add(TimeCategory::Load, 40);
        b.add(TimeCategory::Compute, 10);
        assert_eq!(b.get(TimeCategory::Compute), 110);
        assert_eq!(b.total(), 150);
    }

    #[test]
    fn paper_groups_fold_others() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::Idle, 5);
        b.add(TimeCategory::Uli, 3);
        b.add(TimeCategory::Invalidate, 2);
        b.add(TimeCategory::Flush, 7);
        let g = b.paper_groups();
        assert_eq!(g[4], ("Flush", 7));
        assert_eq!(g[5], ("Others", 10));
    }

    /// Regression pin: a zero-total breakdown must render without `NaN%`
    /// (the percentage denominator is clamped to 1) and an all-zero
    /// breakdown simply prints nothing rather than nine NaN rows.
    #[test]
    fn zero_total_display_has_no_nan() {
        let b = TimeBreakdown::new();
        let s = format!("{b}");
        assert!(!s.contains("NaN"), "zero-total display produced NaN: {s:?}");
        assert!(s.is_empty(), "all-zero breakdown prints no rows: {s:?}");
        // A breakdown with cycles still shows sane percentages.
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::Compute, 3);
        let s = format!("{b}");
        assert!(s.contains("100.0%"), "{s:?}");
        assert!(!s.contains("NaN"), "{s:?}");
    }

    #[test]
    fn pairs_cover_all_categories_in_order() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::Load, 7);
        let p = b.pairs();
        assert_eq!(p.len(), TIME_CATEGORIES.len());
        assert_eq!(p[0], ("compute", 0));
        assert_eq!(p[1], ("load", 7));
        assert_eq!(p[8], ("idle", 0));
    }

    #[test]
    fn merge_breakdowns() {
        let mut a = TimeBreakdown::new();
        a.add(TimeCategory::Store, 1);
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::Store, 2);
        a += b;
        assert_eq!(a.get(TimeCategory::Store), 3);
    }
}
