//! Optional per-core execution traces and an ASCII timeline renderer.
//!
//! When [`SystemConfig::trace`](crate::SystemConfig) is enabled, every
//! charge to a core's clock is recorded as a [`TraceEvent`]; the collected
//! traces come back in [`RunReport::traces`](crate::RunReport) and can be
//! rendered as a per-core timeline with [`render_timeline`] — handy for
//! seeing steal storms, flush stalls, or idle tails at a glance.

use crate::breakdown::TimeCategory;

/// One contiguous span of a core's time attributed to a single category.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub cycles: u64,
    /// What the core was doing.
    pub category: TimeCategory,
}

/// A timestamped ULI protocol point on one core, recorded only while
/// tracing is enabled. The observability layer pairs sends with receives
/// (FIFO per directed core pair, which is the ULI network's delivery
/// order) to draw request/response flow arrows between cores in exported
/// Perfetto traces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UliMark {
    /// Cycle at which the mark was recorded on its core.
    pub cycle: u64,
    /// Which protocol point this is.
    pub kind: UliMarkKind,
}

/// The ULI protocol points recorded as [`UliMark`]s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UliMarkKind {
    /// A steal request left this core for `to` (recorded only when the
    /// network accepted it — NACKs and fault-dropped sends leave no mark).
    ReqSend {
        /// Destination (victim) core.
        to: usize,
    },
    /// A steal request from `from` was delivered to this core's handler.
    ReqRecv {
        /// Originating (thief) core.
        from: usize,
    },
    /// A steal response left this core for `to`.
    RespSend {
        /// Destination (thief) core.
        to: usize,
    },
    /// A steal response from `from` was collected on this core.
    RespRecv {
        /// Originating (victim) core.
        from: usize,
    },
}

/// Single-character glyph per category for the timeline.
fn glyph(cat: TimeCategory) -> char {
    match cat {
        TimeCategory::Compute => '#',
        TimeCategory::Load => 'L',
        TimeCategory::Store => 'S',
        TimeCategory::Atomic => 'A',
        TimeCategory::Flush => 'F',
        TimeCategory::Invalidate => 'I',
        TimeCategory::Uli => 'U',
        TimeCategory::UliWait => 'w',
        TimeCategory::Idle => '.',
    }
}

/// Renders per-core traces as an ASCII timeline covering
/// `[from, from + columns * cycles_per_col)` (clamped to `u64::MAX`); each
/// column shows the category that dominated that time slice (' ' = nothing
/// recorded). All window arithmetic saturates, so a huge `from` or
/// `cycles_per_col` degrades to an empty window instead of wrapping into
/// garbage columns (or panicking in debug builds).
///
/// # Panics
///
/// Panics if `cycles_per_col` or `columns` is zero.
pub fn render_timeline(
    traces: &[Vec<TraceEvent>],
    from: u64,
    cycles_per_col: u64,
    columns: usize,
) -> String {
    assert!(cycles_per_col > 0 && columns > 0);
    let mut out = String::new();
    let to = from.saturating_add(cycles_per_col.saturating_mul(columns as u64));
    out.push_str(&format!(
        "cycles {from}..{to} ({cycles_per_col}/col)  legend: #=compute L=load S=store A=atomic F=flush I=inv U=uli w=uli-wait .=idle\n"
    ));
    for (core, trace) in traces.iter().enumerate() {
        let mut buckets = vec![[0u64; 9]; columns];
        for ev in trace {
            let ev_end = ev.start.saturating_add(ev.cycles);
            if ev.cycles == 0 || ev.start >= to || ev_end <= from {
                continue;
            }
            let s = ev.start.max(from);
            let e = ev_end.min(to);
            let cat_idx = crate::breakdown::TIME_CATEGORIES
                .iter()
                .position(|c| *c == ev.category)
                .expect("listed category");
            let mut c = s;
            while c < e {
                let col = ((c - from) / cycles_per_col) as usize;
                let col_end = from
                    .saturating_add((col as u64).saturating_add(1).saturating_mul(cycles_per_col));
                let span = e.min(col_end) - c;
                buckets[col][cat_idx] += span;
                c += span;
            }
        }
        let row: String = buckets
            .iter()
            .map(|b| match b.iter().enumerate().max_by_key(|(_, v)| **v) {
                Some((i, v)) if *v > 0 => glyph(crate::breakdown::TIME_CATEGORIES[i]),
                _ => ' ',
            })
            .collect();
        out.push_str(&format!("core {core:>3} |{row}|\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_buckets_dominant_category() {
        let traces = vec![vec![
            TraceEvent { start: 0, cycles: 10, category: TimeCategory::Compute },
            TraceEvent { start: 10, cycles: 30, category: TimeCategory::Load },
            TraceEvent { start: 40, cycles: 60, category: TimeCategory::Idle },
        ]];
        let s = render_timeline(&traces, 0, 10, 10);
        let row = s.lines().nth(1).unwrap();
        let cells: Vec<char> = row.chars().skip_while(|c| *c != '|').skip(1).take(10).collect();
        assert_eq!(cells[0], '#');
        assert_eq!(cells[1], 'L');
        assert_eq!(cells[2], 'L');
        assert_eq!(cells[3], 'L');
        assert_eq!(cells[4], '.');
        assert_eq!(cells[9], '.');
    }

    #[test]
    fn events_spanning_columns_are_split() {
        let traces = vec![vec![TraceEvent { start: 5, cycles: 10, category: TimeCategory::Flush }]];
        let s = render_timeline(&traces, 0, 10, 2);
        let row = s.lines().nth(1).unwrap();
        // 5 cycles in each column: flush dominates both (nothing else).
        assert!(row.contains("FF"), "{row}");
    }

    #[test]
    fn empty_trace_renders_blank() {
        let traces = vec![Vec::new()];
        let s = render_timeline(&traces, 0, 10, 4);
        assert!(s.lines().nth(1).unwrap().contains("|    |"));
    }

    /// Regression: `from + cycles_per_col * columns` used unchecked u64
    /// arithmetic, so a window near `u64::MAX` panicked in debug builds and
    /// wrapped into garbage columns in release. The window must saturate
    /// and still bucket in-range events correctly.
    #[test]
    fn window_near_u64_max_saturates_instead_of_overflowing() {
        let base = u64::MAX - 25;
        let traces = vec![vec![
            TraceEvent { start: base, cycles: 10, category: TimeCategory::Compute },
            // An event whose own end would overflow u64.
            TraceEvent { start: u64::MAX - 4, cycles: 100, category: TimeCategory::Flush },
        ]];
        // Window [MAX-25, MAX-25 + 10*10) saturates at u64::MAX.
        let s = render_timeline(&traces, base, 10, 10);
        let row = s.lines().nth(1).unwrap();
        let cells: Vec<char> = row.chars().skip_while(|c| *c != '|').skip(1).take(10).collect();
        assert_eq!(cells[0], '#', "{row}");
        // The flush event starts 21 cycles in (column 2) and runs to the
        // saturated end of time.
        assert_eq!(cells[2], 'F', "{row}");
        // A window entirely past every event renders blank, not garbage.
        let s2 = render_timeline(&traces, 10, u64::MAX / 2, 4);
        assert!(s2.lines().nth(1).unwrap().contains("|"));
    }
}
