//! Optional per-core execution traces and an ASCII timeline renderer.
//!
//! When [`SystemConfig::trace`](crate::SystemConfig) is enabled, every
//! charge to a core's clock is recorded as a [`TraceEvent`]; the collected
//! traces come back in [`RunReport::traces`](crate::RunReport) and can be
//! rendered as a per-core timeline with [`render_timeline`] — handy for
//! seeing steal storms, flush stalls, or idle tails at a glance.

use crate::breakdown::TimeCategory;

/// One contiguous span of a core's time attributed to a single category.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub cycles: u64,
    /// What the core was doing.
    pub category: TimeCategory,
}

/// Single-character glyph per category for the timeline.
fn glyph(cat: TimeCategory) -> char {
    match cat {
        TimeCategory::Compute => '#',
        TimeCategory::Load => 'L',
        TimeCategory::Store => 'S',
        TimeCategory::Atomic => 'A',
        TimeCategory::Flush => 'F',
        TimeCategory::Invalidate => 'I',
        TimeCategory::Uli => 'U',
        TimeCategory::UliWait => 'w',
        TimeCategory::Idle => '.',
    }
}

/// Renders per-core traces as an ASCII timeline covering
/// `[from, from + columns * cycles_per_col)`; each column shows the
/// category that dominated that time slice (' ' = nothing recorded).
///
/// # Panics
///
/// Panics if `cycles_per_col` or `columns` is zero.
pub fn render_timeline(
    traces: &[Vec<TraceEvent>],
    from: u64,
    cycles_per_col: u64,
    columns: usize,
) -> String {
    assert!(cycles_per_col > 0 && columns > 0);
    let mut out = String::new();
    let to = from + cycles_per_col * columns as u64;
    out.push_str(&format!(
        "cycles {from}..{to} ({cycles_per_col}/col)  legend: #=compute L=load S=store A=atomic F=flush I=inv U=uli w=uli-wait .=idle\n"
    ));
    for (core, trace) in traces.iter().enumerate() {
        let mut buckets = vec![[0u64; 9]; columns];
        for ev in trace {
            if ev.cycles == 0 || ev.start >= to || ev.start + ev.cycles <= from {
                continue;
            }
            let s = ev.start.max(from);
            let e = (ev.start + ev.cycles).min(to);
            let cat_idx = crate::breakdown::TIME_CATEGORIES
                .iter()
                .position(|c| *c == ev.category)
                .expect("listed category");
            let mut c = s;
            while c < e {
                let col = ((c - from) / cycles_per_col) as usize;
                let col_end = from + (col as u64 + 1) * cycles_per_col;
                let span = e.min(col_end) - c;
                buckets[col][cat_idx] += span;
                c += span;
            }
        }
        let row: String = buckets
            .iter()
            .map(|b| {
                match b.iter().enumerate().max_by_key(|(_, v)| **v) {
                    Some((i, v)) if *v > 0 => glyph(crate::breakdown::TIME_CATEGORIES[i]),
                    _ => ' ',
                }
            })
            .collect();
        out.push_str(&format!("core {core:>3} |{row}|\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_buckets_dominant_category() {
        let traces = vec![vec![
            TraceEvent { start: 0, cycles: 10, category: TimeCategory::Compute },
            TraceEvent { start: 10, cycles: 30, category: TimeCategory::Load },
            TraceEvent { start: 40, cycles: 60, category: TimeCategory::Idle },
        ]];
        let s = render_timeline(&traces, 0, 10, 10);
        let row = s.lines().nth(1).unwrap();
        let cells: Vec<char> = row.chars().skip_while(|c| *c != '|').skip(1).take(10).collect();
        assert_eq!(cells[0], '#');
        assert_eq!(cells[1], 'L');
        assert_eq!(cells[2], 'L');
        assert_eq!(cells[3], 'L');
        assert_eq!(cells[4], '.');
        assert_eq!(cells[9], '.');
    }

    #[test]
    fn events_spanning_columns_are_split() {
        let traces = vec![vec![TraceEvent { start: 5, cycles: 10, category: TimeCategory::Flush }]];
        let s = render_timeline(&traces, 0, 10, 2);
        let row = s.lines().nth(1).unwrap();
        // 5 cycles in each column: flush dominates both (nothing else).
        assert!(row.contains("FF"), "{row}");
    }

    #[test]
    fn empty_trace_renders_blank() {
        let traces = vec![Vec::new()];
        let s = render_timeline(&traces, 0, 10, 4);
        assert!(s.lines().nth(1).unwrap().contains("|    |"));
    }
}
