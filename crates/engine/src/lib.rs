#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine for big.TINY systems.
//!
//! This crate assembles the substrates of the ISCA 2020 big.TINY
//! reproduction — the [`bigtiny_coherence`] heterogeneous memory system and
//! the [`bigtiny_mesh`] networks — into a runnable machine:
//!
//! * [`SystemConfig`] describes a machine, with constructors for every named
//!   configuration the paper evaluates (`O3x{1,4,8}`, `big.TINY/MESI`,
//!   `big.TINY/HCC-{dnv,gwt,gwb}`, the 256-core system).
//! * [`run_system`] executes one worker closure per core. Each worker drives
//!   its core through a [`CorePort`]: compute, simulated loads/stores/AMOs,
//!   bulk cache operations, and user-level interrupts. Execution is
//!   serialized in simulated-time order by a min-time token
//!   scheduler, making runs bit-for-bit deterministic.
//! * [`ShVec`]/[`ShScalar`] pair real Rust values with simulated addresses
//!   so applications stay functionally checkable while producing accurate
//!   memory traffic.
//! * [`RunReport`] carries everything the paper's figures need: cycles,
//!   per-core time breakdowns, cache hit rates, invalidation/flush counts,
//!   per-category network traffic, and ULI statistics.
//!
//! # Example
//!
//! ```
//! use bigtiny_engine::{run_system, AddrSpace, ShVec, SystemConfig, Worker};
//! use std::sync::Arc;
//!
//! let config = SystemConfig::o3(1);
//! let mut space = AddrSpace::new();
//! let data = Arc::new(ShVec::from_vec(&mut space, vec![1u64, 2, 3, 4]));
//! let d = Arc::clone(&data);
//! let workers: Vec<Worker> = vec![Box::new(move |port| {
//!     let mut sum = 0;
//!     for i in 0..d.len() {
//!         sum += d.read(port, i);
//!     }
//!     assert_eq!(sum, 10);
//!     port.set_done();
//! })];
//! let report = run_system(&config, workers);
//! assert!(report.completion_cycles > 0);
//! ```

mod breakdown;
mod config;
mod energy;
mod event;
mod fault;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod fiber;
mod flight;
pub mod hash;
mod port;
mod sequencer;
mod space;
pub mod sync;
mod system;
mod trace;
mod watchdog;

pub use breakdown::{TimeBreakdown, TimeCategory, TIME_CATEGORIES};
pub use config::{CoreConfig, CoreKind, ExecBackend, SchedulePolicy, SystemConfig};
pub use energy::{EnergyModel, EnergyReport};
pub use event::{CheckMode, MemEvent, MemOp, RacyTag, SyncNote};
pub use fault::{FaultCounters, FaultPlan};
pub use flight::{
    CoreBeat, FlightEvent, FlightKind, FlightRing, Heartbeat, HeartbeatSnap,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use port::{AttrSpan, CorePort, UliHandler};
pub use sequencer::{ChoicePoint, Sequencer};
pub use space::{AddrSpace, ShScalar, ShVec};
pub use system::{backend_label, run_system, RunReport, UliReport, Worker};
pub use trace::{render_timeline, TraceEvent, UliMark, UliMarkKind};
pub use watchdog::{
    last_bundle, last_bundle_for, CoreDiag, DiagnosticBundle, PoisonReason, SeqCoreDiag,
    WatchdogConfig, WATCHDOG_MSG,
};

// Re-export the vocabulary types callers need alongside the engine.
pub use bigtiny_coherence::{Addr, CoreMemStats, Protocol};
pub use bigtiny_mesh::{CoreSet, TrafficClass, UliCoreState, UliMessage, UliOutcome, XorShift64};
