//! Minimal stackful fibers for the single-threaded execution backend.
//!
//! The sequencer serializes the simulation to one core at a time, so with
//! one OS thread per core almost every token handoff is a futex wake plus a
//! kernel context switch — about 1.4 µs of system time per sequenced op on
//! a busy host, which dominates engine wall clock (measured ~2/3 of the
//! whole perf suite). This module runs every simulated core as a *fiber*: a
//! heap stack plus a saved stack pointer, all multiplexed on the one
//! simulation thread. A token handoff becomes a user-space stack switch
//! (tens of nanoseconds) and the kernel is never involved.
//!
//! Only the switching primitive lives here; scheduling policy stays in the
//! [`Sequencer`](crate::sequencer::Sequencer), which drives fibers through
//! [`FiberRt`] — one runtime for the whole run on the single-threaded
//! backend, or one per island on the sharded backend (where each runtime is
//! still driven by exactly one OS thread: its island's launcher). The
//! implementation is x86_64-Linux-only (the module is compiled out
//! elsewhere and the engine falls back to the thread backend):
//!
//! - Stacks come from anonymous `mmap` with a `PROT_NONE` guard page at the
//!   low end, so stack overflow faults like it does on a real thread stack
//!   instead of silently corrupting the heap. Pages are committed lazily,
//!   so 64 fibers × 32 MB only reserve address space.
//! - The switch saves the System-V callee-saved registers on the current
//!   stack, stores the stack pointer, loads the target's, and returns. A
//!   fresh fiber's "saved context" is a hand-built frame whose return
//!   address is a trampoline that calls the entry closure, making first
//!   start and resume the same operation.
//!
//! Safety rules the callers uphold:
//! - All fibers of one `FiberRt` are switched only from the one OS thread
//!   that drives that runtime (the simulation thread, or the owning
//!   island's thread under the sharded backend).
//! - An entry closure never returns: it must exit by switching away for
//!   good (the trampoline aborts the process if one does return).
//! - No lock guard is held across a switch (the target fiber may take the
//!   same lock; everything is on one thread, so that would self-deadlock).

use std::cell::{Cell, UnsafeCell};
use std::ffi::c_void;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
}

const PROT_NONE: i32 = 0;
const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_PRIVATE: i32 = 0x02;
const MAP_ANONYMOUS: i32 = 0x20;

const PAGE: usize = 4096;

/// A lazily-committed `mmap`ed stack with a guard page at the low end.
struct FiberStack {
    base: *mut u8,
    len: usize,
}

impl FiberStack {
    fn new(usable: usize) -> FiberStack {
        let usable = usable.div_ceil(PAGE) * PAGE;
        let len = usable + PAGE;
        // SAFETY: plain anonymous mapping; failure is checked below.
        let base = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(base as isize != -1, "mmap of a {len}-byte fiber stack failed");
        // SAFETY: base..base+PAGE is inside the fresh mapping.
        let rc = unsafe { mprotect(base, PAGE, PROT_NONE) };
        assert_eq!(rc, 0, "mprotect of the fiber guard page failed");
        FiberStack { base: base.cast(), len }
    }

    /// One-past-the-end of the stack (stacks grow down). Page-aligned, so
    /// also 16-byte-aligned as the ABI requires.
    fn top(&self) -> *mut u8 {
        // SAFETY: in-bounds one-past-the-end pointer of the mapping.
        unsafe { self.base.add(self.len) }
    }
}

impl Drop for FiberStack {
    fn drop(&mut self) {
        // SAFETY: exactly the region mapped in `new`.
        unsafe { munmap(self.base.cast(), self.len) };
    }
}

/// Saves the six SysV callee-saved registers on the current stack, parks
/// the stack pointer in `*save`, adopts the one in `*load`, restores that
/// stack's registers and returns *on the target stack*. Caller-saved state
/// is handled by the compiler because this is an ordinary `extern` call.
///
/// # Safety
///
/// `*load` must be a stack pointer previously produced by this function (or
/// by [`Fiber::new`]'s initial frame), on a live stack, resumed at most
/// once per suspension.
#[unsafe(naked)]
unsafe extern "sysv64" fn switch_stack(save: *mut *mut u8, load: *const *mut u8) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First-start shim: [`Fiber::new`] parks the entry-closure pointer in the
/// initial frame's `r12` slot, so after the first switch into the fiber it
/// lands here with that pointer in `r12`. Realign, then enter Rust.
///
/// # Safety
///
/// Never called directly: reachable only by the first [`switch_stack`]
/// into a frame built by [`Fiber::new`], which guarantees `r12` holds the
/// `Box::into_raw`'d entry closure and `rsp` points into the fiber's own
/// mapped stack.
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_trampoline() {
    core::arch::naked_asm!(
        "mov rdi, r12",
        "and rsp, -16",
        "call {main}",
        "ud2",
        main = sym fiber_main,
    )
}

extern "sysv64" fn fiber_main(entry: *mut u8) {
    // SAFETY: `entry` is the Box::into_raw'd closure from Fiber::new,
    // reachable exactly once (the trampoline runs once per fiber).
    let f: Box<Box<dyn FnOnce()>> = unsafe { Box::from_raw(entry.cast()) };
    f();
    // An entry closure must exit by switching away permanently; returning
    // would `ret` into the hand-built frame below the stack top.
    std::process::abort();
}

/// One simulated core's execution context: a stack and, while suspended,
/// the saved stack pointer (held in [`FiberRt`], not here, so the sequencer
/// can switch without borrowing the fiber list).
pub(crate) struct Fiber {
    #[allow(dead_code)] // held for Drop (munmap) only
    stack: FiberStack,
    /// The entry closure, reclaimed on drop if the fiber never started.
    unstarted_entry: Cell<*mut u8>,
    initial_ctx: *mut u8,
}

impl Fiber {
    /// Creates a fiber that will run `entry` (which must never return) on a
    /// fresh `stack_bytes` stack when first switched to.
    pub(crate) fn new(stack_bytes: usize, entry: Box<dyn FnOnce()>) -> Fiber {
        let stack = FiberStack::new(stack_bytes);
        let data: *mut u8 = Box::into_raw(Box::new(entry)).cast();
        // Hand-build the frame switch_stack pops: (ascending addresses)
        // r15 r14 r13 r12 rbx rbp <return address = trampoline>.
        let mut sp = stack.top().cast::<u64>();
        // SAFETY: seven in-bounds words just below the stack top.
        unsafe {
            sp = sp.sub(1);
            *sp = fiber_trampoline as *const () as usize as u64; // ret target
            sp = sp.sub(1);
            *sp = 0; // rbp
            sp = sp.sub(1);
            *sp = 0; // rbx
            sp = sp.sub(1);
            *sp = data as u64; // r12: entry closure for the trampoline
            sp = sp.sub(1);
            *sp = 0; // r13
            sp = sp.sub(1);
            *sp = 0; // r14
            sp = sp.sub(1);
            *sp = 0; // r15
        }
        Fiber { stack, unstarted_entry: Cell::new(data), initial_ctx: sp.cast() }
    }

    /// The context to switch to for the fiber's first start.
    pub(crate) fn initial_ctx(&self) -> *mut u8 {
        self.unstarted_entry.set(std::ptr::null_mut()); // trampoline owns it now
        self.initial_ctx
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        let entry = self.unstarted_entry.get();
        if !entry.is_null() {
            // Never started: the trampoline will not reclaim the closure.
            // SAFETY: still the untouched Box::into_raw pointer.
            drop(unsafe { Box::from_raw(entry.cast::<Box<dyn FnOnce()>>()) });
        }
    }
}

/// Identifies a switch endpoint: a core fiber or the launcher (the real OS
/// thread driving `run_system`, which starts fibers and drains poison).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FiberId {
    Core(usize),
    Launcher,
}

/// The saved contexts of one fiber-backed run (or of one island of a
/// sharded run). Lives inside the
/// [`Sequencer`](crate::sequencer::Sequencer) so token handoffs can switch
/// directly between core fibers.
///
/// All cells of a given runtime are only ever touched from the one OS
/// thread that drives it: the simulation thread on the single-threaded
/// backend, or the owning island's launcher thread (and the fibers it
/// runs) on the sharded backend. The `Send`/`Sync` impls exist because the
/// sequencer sits in an `Arc` shared across threads — core threads on the
/// thread backend, island threads on the sharded one — and rustc cannot
/// see that each runtime's cells stay thread-local by construction.
#[derive(Debug)]
pub(crate) struct FiberRt {
    /// Saved stack pointer of each suspended core fiber (or its initial
    /// frame before first start).
    ctxs: Vec<UnsafeCell<*mut u8>>,
    /// Saved context of the launcher while a fiber runs.
    launcher: UnsafeCell<*mut u8>,
    /// Set once a fiber's entry closure has finished; it must never be
    /// switched to again.
    done: Vec<Cell<bool>>,
}

// SAFETY: see the struct docs — every runtime's cells are used from a
// single driving thread by construction.
unsafe impl Send for FiberRt {}
unsafe impl Sync for FiberRt {}

impl FiberRt {
    pub(crate) fn new(num_cores: usize) -> FiberRt {
        FiberRt {
            ctxs: (0..num_cores).map(|_| UnsafeCell::new(std::ptr::null_mut())).collect(),
            launcher: UnsafeCell::new(std::ptr::null_mut()),
            done: vec![Cell::new(false); num_cores],
        }
    }

    fn slot(&self, id: FiberId) -> *mut *mut u8 {
        match id {
            FiberId::Core(c) => self.ctxs[c].get(),
            FiberId::Launcher => self.launcher.get(),
        }
    }

    /// Registers a fiber's initial context before the run starts.
    pub(crate) fn set_initial(&self, core: usize, ctx: *mut u8) {
        // SAFETY: run not started; no aliasing access exists yet.
        unsafe { *self.ctxs[core].get() = ctx };
    }

    /// Suspends the current context into `from`'s slot and resumes `to`.
    /// Returns when something later switches back to `from`.
    ///
    /// # Safety
    ///
    /// Must be called on the simulation thread, with `from` actually being
    /// the currently executing context and `to` a live suspended one; no
    /// lock guard may be held across the call.
    pub(crate) unsafe fn switch(&self, from: FiberId, to: FiberId) {
        debug_assert_ne!(from, to, "cannot switch a context to itself");
        if let FiberId::Core(c) = to {
            debug_assert!(!self.done[c].get(), "switching to a finished fiber");
        }
        // SAFETY: per the contract above; slots are distinct.
        unsafe { switch_stack(self.slot(from), self.slot(to)) };
    }

    /// Marks `core`'s fiber as finished (its entry closure completed).
    pub(crate) fn mark_done(&self, core: usize) {
        self.done[core].set(true);
    }

    /// Whether `core`'s fiber has finished.
    pub(crate) fn is_done(&self, core: usize) -> bool {
        self.done[core].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    /// A fiber and the main thread bounce control back and forth through
    /// raw switches, interleaving their counters deterministically.
    #[test]
    fn ping_pong_switches() {
        let rt = Rc::new(FiberRt::new(1));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let (rt2, log2) = (Rc::clone(&rt), Rc::clone(&log));
        let fiber = Fiber::new(
            64 * 1024,
            Box::new(move || {
                for i in 0..3 {
                    log2.borrow_mut().push(format!("fiber {i}"));
                    // SAFETY: single-threaded test; launcher context is live.
                    unsafe { rt2.switch(FiberId::Core(0), FiberId::Launcher) };
                }
                rt2.mark_done(0);
                // SAFETY: as above; never returns to this closure.
                unsafe { rt2.switch(FiberId::Core(0), FiberId::Launcher) };
                unreachable!("finished fiber must never be resumed");
            }),
        );
        rt.set_initial(0, fiber.initial_ctx());
        let mut round = 0;
        while !rt.is_done(0) {
            log.borrow_mut().push(format!("main {round}"));
            round += 1;
            // SAFETY: single-threaded test; fiber context is live.
            unsafe { rt.switch(FiberId::Launcher, FiberId::Core(0)) };
        }
        assert_eq!(
            *log.borrow(),
            ["main 0", "fiber 0", "main 1", "fiber 1", "main 2", "fiber 2", "main 3"]
        );
    }

    fn run_recursion(stack_bytes: usize, depth: u64) {
        fn deep(n: u64) -> u64 {
            let pad = [n; 16]; // force real frame growth
            if n == 0 {
                pad[0]
            } else {
                deep(n - 1) + std::hint::black_box(pad)[1]
            }
        }
        let rt = Rc::new(FiberRt::new(1));
        let rt2 = Rc::clone(&rt);
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        let fiber = Fiber::new(
            stack_bytes,
            Box::new(move || {
                out2.set(deep(depth));
                rt2.mark_done(0);
                // SAFETY: single-threaded test.
                unsafe { rt2.switch(FiberId::Core(0), FiberId::Launcher) };
                unreachable!();
            }),
        );
        rt.set_initial(0, fiber.initial_ctx());
        // SAFETY: single-threaded test.
        unsafe { rt.switch(FiberId::Launcher, FiberId::Core(0)) };
        assert!(rt.is_done(0));
        // deep(n) = n + deep(n-1), deep(0) = 0.
        assert_eq!(out.get(), (1..=depth).sum::<u64>());
    }

    /// Deep recursion on the fiber stack works (the frames live on the
    /// mmap'ed stack, not the thread stack).
    #[test]
    fn fiber_stack_supports_recursion() {
        run_recursion(8 * 1024 * 1024, 10_000);
    }

    /// Both stack sizes `SystemConfig::core_stack_bytes` defaults to are
    /// usable, with recursion depth scaled to the configured size: the
    /// guard page sits below the deepest frame either way, and the frames
    /// of the deeper run would overrun the smaller stack's reservation if
    /// the size knob were ignored.
    #[test]
    fn fiber_stack_size_is_configurable() {
        run_recursion(32 * 1024 * 1024, 40_000); // <=64-core default
        run_recursion(8 * 1024 * 1024, 10_000); // 256-core default
        run_recursion(64 * 1024, 50); // a deliberately tiny explicit size
    }

    /// An unstarted fiber reclaims its entry closure on drop.
    #[test]
    fn unstarted_fiber_does_not_leak() {
        let flag = Rc::new(Cell::new(false));
        struct SetOnDrop(Rc<Cell<bool>>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.set(true);
            }
        }
        let guard = SetOnDrop(Rc::clone(&flag));
        let fiber = Fiber::new(
            64 * 1024,
            Box::new(move || {
                let _hold = &guard;
                unreachable!("never started");
            }),
        );
        drop(fiber);
        assert!(flag.get(), "entry closure dropped with the fiber");
    }
}
