//! Liveness watchdog and crash-consistent diagnostics.
//!
//! A hung simulation — a livelocked steal loop, a task waiting on a child
//! that is never spawned, a lost ULI — used to hang `cargo test` forever.
//! The watchdog turns a hang into a diagnosed failure:
//!
//! * **Sequenced-op budget** (deterministic): the runtime marks *progress*
//!   (a task executed, a steal completed, completion signalled) through
//!   [`CorePort::mark_progress`](crate::CorePort::mark_progress). If more
//!   than `budget` sequencer grants happen with no progress mark, every
//!   core is demonstrably spinning and the run is declared stuck. Because
//!   grants are counted in simulated order, the trip point is bit-for-bit
//!   reproducible.
//! * **Wall-clock fallback** (safety net): a core parked in the sequencer
//!   that observes no grant activity at all for `wall_ms` trips the
//!   watchdog even if the token holder never re-enters the sequencer
//!   (e.g. an accidental host-level deadlock). This path is inherently
//!   non-deterministic and exists only to guarantee termination.
//!
//! On a trip the sequencer is poisoned with [`PoisonReason::Watchdog`],
//! every core thread unwinds, and [`run_system`](crate::run_system)
//! panics with a rendered [`DiagnosticBundle`]: per-core clocks,
//! instruction counts, sequencer state, in-flight ULI state, and the last
//! few trace events per core (when tracing is enabled).
//!
//! The watchdog is **off by default** ([`SystemConfig::watchdog_budget`]
//! `= None`): golden-path runs are untouched.

use bigtiny_mesh::UliCoreState;

use crate::breakdown::TimeCategory;
use crate::flight::FlightEvent;
use crate::port::PortReport;
use crate::sync::Mutex;
use crate::trace::TraceEvent;

/// Prefix of the panic message raised when the watchdog trips. Callers
/// (e.g. the runtime layer) match on this to recognise a watchdog abort
/// and enrich the diagnostic before re-raising.
pub const WATCHDOG_MSG: &str = "watchdog: simulation made no progress within its budget";

/// Why the sequencer was poisoned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoisonReason {
    /// A worker closure panicked.
    WorkerPanic,
    /// The liveness watchdog tripped on `core` at simulated time `time`.
    Watchdog {
        /// Core holding the token when the budget ran out.
        core: usize,
        /// That core's simulated time at the trip.
        time: u64,
    },
}

/// Watchdog parameters, derived from
/// [`SystemConfig`](crate::SystemConfig).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WatchdogConfig {
    /// Maximum sequencer grants between progress marks.
    pub budget: u64,
    /// Wall-clock fallback: a parked core seeing no grants for this long
    /// trips the watchdog regardless of the budget.
    pub wall_ms: u64,
}

/// One core's sequencer-level state at the moment of a trip.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SeqCoreDiag {
    /// Simulated time at which the core is parked waiting for the token
    /// (`None` if it is running or retired).
    pub waiting_at: Option<u64>,
    /// Total token grants to this core.
    pub grants: u64,
    /// Simulated time of the core's last grant.
    pub last_time: u64,
    /// Whether the core's worker returned.
    pub retired: bool,
}

/// One core's slice of the crash diagnostic.
#[derive(Clone, Debug)]
pub struct CoreDiag {
    /// Core id.
    pub core: usize,
    /// Final local clock.
    pub clock: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles spent idle (a spinning core is mostly idle/uli-wait).
    pub idle_cycles: u64,
    /// Sequencer-level state.
    pub seq: SeqCoreDiag,
    /// In-flight ULI state of the core's ULI unit.
    pub uli: UliCoreState,
    /// The last few trace events (empty unless tracing was enabled).
    pub last_events: Vec<TraceEvent>,
    /// The core's flight-recorder tail — the black box. Non-empty whenever
    /// the default always-on ring is not disabled.
    pub flight_tail: Vec<FlightEvent>,
    /// Events ever recorded on the core's ring.
    pub flight_total: u64,
}

/// Crash-consistent snapshot of a watchdog-aborted run, assembled after
/// every core thread has unwound (so no state is mid-update).
#[derive(Clone, Debug)]
pub struct DiagnosticBundle {
    /// The trip that produced this bundle.
    pub reason: PoisonReason,
    /// Name of the [`SystemConfig`](crate::SystemConfig) that ran.
    pub config_name: String,
    /// Host execution backend the run actually used (after `Auto`
    /// resolution), e.g. `threads` or `sharded-fibers`.
    pub backend: String,
    /// The run's fault plan as a [`FaultPlan::to_spec`](crate::FaultPlan)
    /// string (`"none"` when no faults were armed). Together with
    /// `config_name` and `backend` this makes the bundle a self-contained
    /// repro recipe.
    pub fault_spec: String,
    /// Per-core diagnostics.
    pub cores: Vec<CoreDiag>,
    /// Total ULI messages at the trip.
    pub uli_messages: u64,
    /// Total ULI NACKs at the trip.
    pub uli_nacks: u64,
    /// Total sequencer grants over the run.
    pub total_grants: u64,
}

/// How many trailing trace events each core contributes to a bundle.
pub(crate) const DIAG_LAST_EVENTS: usize = 8;

impl DiagnosticBundle {
    pub(crate) fn core_diag(
        core: usize,
        report: &PortReport,
        seq: SeqCoreDiag,
        uli: UliCoreState,
    ) -> CoreDiag {
        CoreDiag {
            core,
            clock: report.clock,
            instructions: report.instructions,
            idle_cycles: report.breakdown.get(TimeCategory::Idle)
                + report.breakdown.get(TimeCategory::UliWait),
            seq,
            uli,
            last_events: report.trace.iter().rev().take(DIAG_LAST_EVENTS).rev().copied().collect(),
            flight_tail: report.flight.clone(),
            flight_total: report.flight_total,
        }
    }
}

/// How many bundles the engine-global black-box ring retains.
const BUNDLE_RING: usize = 16;

/// Engine-global ring of the most recent [`DiagnosticBundle`]s. A watchdog
/// trip surfaces as a *panic* out of [`run_system`](crate::run_system), so
/// the bundle itself would be lost to the caller (the panic payload is a
/// rendered string); the engine records it here first, and harnesses that
/// caught the panic retrieve it with [`last_bundle_for`] to write a
/// black-box dump. Bounded and process-wide; entries are keyed by config
/// name so concurrent tests do not race each other's retrievals.
fn bundle_ring() -> &'static Mutex<Vec<DiagnosticBundle>> {
    static RING: std::sync::OnceLock<Mutex<Vec<DiagnosticBundle>>> = std::sync::OnceLock::new();
    RING.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records `bundle` in the engine-global black-box ring (called by
/// `run_system` before it panics with the rendered bundle).
pub(crate) fn record_bundle(bundle: DiagnosticBundle) {
    let mut ring = bundle_ring().lock();
    if ring.len() >= BUNDLE_RING {
        ring.remove(0);
    }
    ring.push(bundle);
}

/// The most recently recorded [`DiagnosticBundle`] whose config name is
/// `config_name`, if any. Non-destructive: repeated calls return the same
/// bundle, and bundles from other configurations (e.g. parallel tests) are
/// left untouched.
pub fn last_bundle_for(config_name: &str) -> Option<DiagnosticBundle> {
    bundle_ring().lock().iter().rev().find(|b| b.config_name == config_name).cloned()
}

/// The most recently recorded [`DiagnosticBundle`] from any run in this
/// process, if any. Prefer [`last_bundle_for`] when the config name is
/// known (it is immune to interleaving from concurrent runs).
pub fn last_bundle() -> Option<DiagnosticBundle> {
    bundle_ring().lock().last().cloned()
}

impl std::fmt::Display for DiagnosticBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            PoisonReason::Watchdog { core, time } => writeln!(
                f,
                "watchdog tripped on core {core} at cycle {time} after {} grants without progress",
                self.total_grants
            )?,
            PoisonReason::WorkerPanic => writeln!(f, "a worker panicked; partial state follows")?,
        }
        writeln!(
            f,
            "run: config={} backend={} faults={}",
            self.config_name, self.backend, self.fault_spec
        )?;
        writeln!(f, "uli: {} messages, {} nacks", self.uli_messages, self.uli_nacks)?;
        for c in &self.cores {
            // A fail-stopped core is *expected*-silent: its worker either
            // retired (permanent crash) or idles awaiting revival. Label it
            // distinctly from a hung core so the bundle reads correctly.
            let state = if c.uli.dead {
                if c.seq.retired {
                    "dead".to_owned()
                } else {
                    "dead(revivable)".to_owned()
                }
            } else if c.seq.retired {
                "retired".to_owned()
            } else if let Some(t) = c.seq.waiting_at {
                format!("waiting@{t}")
            } else {
                "running".to_owned()
            };
            write!(
                f,
                "core {:>3} [{state:<14}] clock={} insts={} idle={} grants={} last_grant@{}",
                c.core, c.clock, c.instructions, c.idle_cycles, c.seq.grants, c.seq.last_time
            )?;
            if c.uli.enabled {
                write!(f, " uli=on")?;
            }
            if let Some(from) = c.uli.pending_req_from {
                write!(f, " uli_req(from={from}@{})", c.uli.pending_req_arrives_at.unwrap_or(0))?;
            }
            if c.uli.pending_responses > 0 {
                write!(f, " uli_resp={}", c.uli.pending_responses)?;
            }
            if !c.last_events.is_empty() {
                let tail: Vec<String> = c
                    .last_events
                    .iter()
                    .map(|e| format!("{:?}@{}+{}", e.category, e.start, e.cycles))
                    .collect();
                write!(f, " tail=[{}]", tail.join(" "))?;
            }
            if !c.flight_tail.is_empty() {
                let shown: Vec<String> = c
                    .flight_tail
                    .iter()
                    .rev()
                    .take(4)
                    .rev()
                    .map(|e| format!("{}@{}", e.kind.label(), e.time))
                    .collect();
                write!(f, " box({})=[{}]", c.flight_total, shown.join(" "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
