//! The addressed per-op event stream consumed by the DRF conformance
//! checker (`bigtiny-checker`).
//!
//! When [`CheckMode`](crate::CheckMode) is armed, every [`CorePort`]
//! buffers one [`MemEvent`] per sequenced memory operation plus
//! zero-cost [`SyncNote`] annotations the runtime inserts at its
//! synchronization points (deque lock/unlock, `has_stolen_child`
//! transitions, ULI sends/receives). Emission never takes the sequencer
//! token and never charges a cycle, so an armed run replays the exact
//! sequenced-op stream of an unarmed one — the golden hashes pin this.
//!
//! Events carry the core's local clock at the moment the underlying
//! operation was *granted* (for sync notes: the clock at the annotation
//! point). Per-core clocks are nondecreasing and the sequencer grants in
//! `(time, core)` order, so sorting the merged stream by
//! `(cycle, core, per-core index)` reproduces grant order exactly.

use bigtiny_coherence::Addr;

/// What the checker should verify. `Off` is the default and is bit-for-bit
/// invisible: no events are buffered, no branches in the hot path beyond a
/// `None` check on an `Option` that is never `Some`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CheckMode {
    /// No event collection, no checking. The only mode timed runs may use.
    #[default]
    Off,
    /// Collect events; run the happens-before race pass only.
    Hb,
    /// Collect events; run all three passes (happens-before races,
    /// protocol staleness oracle, Figure-3 sync-discipline lint).
    Full,
}

impl CheckMode {
    /// Whether event collection is armed.
    pub fn armed(self) -> bool {
        self != CheckMode::Off
    }
}

/// A named, audited benign-race annotation for a `load_words_racy` or
/// `store_words_racy` call site. The HB pass treats tagged loads as
/// race-exempt and tagged stores as atomic-like write epochs (no race
/// against other audited accesses, still a race against unordered plain
/// accesses); the checker counts tagged loads per tag so the audit is
/// visible in reports. The checker's whitelist and the set of tags used in
/// the source tree are pinned against each other by a test — adding a racy
/// access without a tag (or a tag without a call site) fails the suite.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RacyTag {
    /// Runtime join-counter wait loop: a stale (over-large) `rc` only costs
    /// an extra polling iteration; the terminal read is an AMO or is
    /// ordered by the steal-free join argument (Figure 3(c) line 8).
    RcWaitLoop,
    /// Ligra frontier dedup flag (probe *and* insert): a missed concurrent
    /// insert only means a duplicate visit attempt, and concurrent inserts
    /// all store the same value (flags only go 0 -> 1 within a round).
    LigraDedupFlag,
    /// Ligra `edge_map` condition probe (visited/claimed test): stale
    /// "unclaimed" answers are repaired by the CAS in the update function.
    LigraCondProbe,
    /// Ligra read-back of a per-round claim slot right after the CAS: every
    /// same-round writer stores the same value, so any outcome is correct.
    LigraClaimedLevel,
    /// Ligra monotone relaxation source read (CC labels, Bellman-Ford
    /// distances): a stale value is a valid earlier state; a later round
    /// repairs it and an AMO min decides the winner.
    LigraMonotoneSrc,
    /// Deque owner's unsynchronized peek at the thief-owned `head` word
    /// (Chase-Lev and the multiplicity deques). `head` is monotone, so a
    /// stale value only *over*-estimates occupancy; every claim the owner
    /// makes from a stale view still linearizes at a later sequenced
    /// `tail` store or AMO, where the multiplicity/emptiness verdict is
    /// decided against the fresh state.
    DequeOwnerPeek,
    /// Thief's unsynchronized peek at the owner-owned `tail` word and its
    /// speculative read of the slot it hopes to claim. A stale `tail` only
    /// costs a missed steal; the speculative slot value is discarded unless
    /// the claiming `head` AMO (which re-reads fresh state) validates it.
    DequeThiefPeek,
    /// Idempotent-deque owner's fence-free `head` advance: a plain racy
    /// store that publishes the owner's FIFO claim without an AMO. Racing
    /// thief AMOs can overlap one claim — the claim is then re-executed as
    /// an audited duplicate, never lost (`head` merges by max, monotone).
    DequeOwnerCommit,
    /// Lock-free owner push's `tail` store (Chase-Lev and the multiplicity
    /// deques): a release-publish. The happens-before pass gives it
    /// store-release semantics — a thief's later acquiring `tail` peek
    /// ([`RacyTag::DequeThiefPeek`]) picks up everything the owner did
    /// before the push, which is what makes the stolen task's descriptor
    /// reads race-free without a deque lock.
    DequeTailPublish,
}

impl RacyTag {
    /// Every tag, in whitelist order.
    pub const ALL: [RacyTag; 9] = [
        RacyTag::RcWaitLoop,
        RacyTag::LigraDedupFlag,
        RacyTag::LigraCondProbe,
        RacyTag::LigraClaimedLevel,
        RacyTag::LigraMonotoneSrc,
        RacyTag::DequeOwnerPeek,
        RacyTag::DequeThiefPeek,
        RacyTag::DequeOwnerCommit,
        RacyTag::DequeTailPublish,
    ];

    /// Stable label used in reports and the source-audit test.
    pub fn label(self) -> &'static str {
        match self {
            RacyTag::RcWaitLoop => "RcWaitLoop",
            RacyTag::LigraDedupFlag => "LigraDedupFlag",
            RacyTag::LigraCondProbe => "LigraCondProbe",
            RacyTag::LigraClaimedLevel => "LigraClaimedLevel",
            RacyTag::LigraMonotoneSrc => "LigraMonotoneSrc",
            RacyTag::DequeOwnerPeek => "DequeOwnerPeek",
            RacyTag::DequeThiefPeek => "DequeThiefPeek",
            RacyTag::DequeOwnerCommit => "DequeOwnerCommit",
            RacyTag::DequeTailPublish => "DequeTailPublish",
        }
    }
}

/// A zero-cost synchronization annotation from the runtime. Sync notes are
/// pure metadata: emitting one takes no sequencer grant and charges no
/// cycles, so they exist only in armed runs' event streams.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncNote {
    /// A deque lock was just acquired (the successful `try_lock` AMO on
    /// `lock` immediately precedes this note). Figure 3(b) line 2/7.
    DequeAcquire {
        /// Address of the lock word.
        lock: Addr,
    },
    /// A deque lock is about to be released: the next plain store to
    /// `lock` by this core is the release store and carries release
    /// semantics in the HB pass. Figure 3(b) line 5/10.
    DequeRelease {
        /// Address of the lock word.
        lock: Addr,
    },
    /// A steal marked `has_stolen_child` on the victim's current task.
    HscSet {
        /// Runtime task id whose flag was set.
        task: u32,
    },
    /// A join elided its invalidate/AMO because `has_stolen_child` read
    /// false (Figure 3(c) line 8-10). Legal only if no steal of this
    /// task's children ever happened.
    HscElide {
        /// Runtime task id whose flag was consulted.
        task: u32,
    },
    /// A ULI steal request was sent (and not dropped by fault injection).
    UliReqSend {
        /// Receiving (victim) core.
        to: usize,
    },
    /// A ULI response was sent back to a waiting thief.
    UliRespSend {
        /// Receiving (thief) core.
        to: usize,
    },
    /// A ULI response was received by the thief that polled for it.
    UliRespRecv {
        /// Responding (victim) core.
        from: usize,
    },
    /// The victim's ULI handler began executing a received request.
    HandlerEnter {
        /// Requesting (thief) core.
        from: usize,
    },
}

/// The memory-model-relevant payload of one event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemOp {
    /// A sequenced word load. `racy: Some(tag)` marks an audited
    /// benign-race load the HB pass exempts.
    Load {
        /// Word address loaded.
        addr: Addr,
        /// Benign-race annotation, if any.
        racy: Option<RacyTag>,
    },
    /// A sequenced word store. `racy: Some(tag)` marks an audited
    /// benign-race store (same-value idempotent writes) the HB pass treats
    /// as an atomic-like write.
    Store {
        /// Word address stored.
        addr: Addr,
        /// Benign-race annotation, if any.
        racy: Option<RacyTag>,
    },
    /// A sequenced atomic read-modify-write (acquire-release in HB).
    Amo {
        /// Word address operated on.
        addr: Addr,
    },
    /// Bulk self-invalidation of the core's clean cached data
    /// (`cache_invalidate`, Figure 3(b) line 3).
    InvalidateAll,
    /// Bulk write-back of the core's dirty data (`cache_flush`,
    /// Figure 3(b) line 4/9).
    FlushAll,
    /// A runtime synchronization annotation (no memory traffic).
    Sync(SyncNote),
}

/// One entry of the checker's event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemEvent {
    /// The emitting core's local clock when the operation was granted.
    pub cycle: u64,
    /// The emitting core.
    pub core: usize,
    /// What happened.
    pub op: MemOp,
}
