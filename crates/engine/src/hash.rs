//! The workspace's one FNV-1a implementation.
//!
//! The sequencer's op-stream fingerprint, the checker's verdict hash, and
//! any test that wants to pin a byte stream all fold through these
//! functions, so "two components hashed the same data" is checkable by
//! construction rather than by keeping copy-pasted constants in sync.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, starting from [`FNV_OFFSET`].
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a fold over more bytes.
#[inline]
pub fn fnv1a_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one 64-bit word into an FNV-1a-style hash in a single step.
///
/// This is the whole-word variant the sequencer has always used for its
/// `(time, core)` grant stream: one xor-multiply per word rather than
/// eight per-byte rounds. It is *not* byte-wise FNV-1a, so it must never
/// be mixed into the same fold as [`fnv1a_continue`] for the same data —
/// pick one per stream. Kept because the golden op-stream hashes pin it.
#[inline]
pub fn fold_u64(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn continue_composes() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_continue(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn fold_u64_is_one_xor_multiply() {
        assert_eq!(fold_u64(FNV_OFFSET, 0), FNV_OFFSET.wrapping_mul(FNV_PRIME));
    }
}
