//! Minimal lock primitives with a `parking_lot`-style API on top of `std`.
//!
//! The simulator needs three properties from its host-side locks:
//!
//! 1. **No lock poisoning.** A panicking simulated core must not poison the
//!    host locks it held: the other core threads still need to lock shared
//!    state to unwind cleanly and to assemble the crash diagnostic bundle.
//!    Poison errors are therefore swallowed (`into_inner`) — the simulated
//!    state itself is guarded by the [`Sequencer`](crate::sequencer)'s own
//!    poison flag, which carries a reason and a diagnostic.
//! 2. **Guard-by-reference condvar waits**, so the sequencer can park a core
//!    without re-acquiring the lock by hand.
//! 3. **No external dependency**, so the workspace builds fully offline and
//!    lock behaviour cannot shift under a third-party version bump.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never fails: poisoning from a
/// panicked holder is ignored (see the module docs for why that is safe
/// here).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so a
/// [`Condvar::wait`] can move the underlying std guard out and back.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside a condvar wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside a condvar wait")
    }
}

/// A condition variable operating on [`MutexGuard`]s by reference.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard present");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose acquisitions never fail (poisoning ignored).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a panicked holder");
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("die holding the write lock");
        })
        .join();
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)), "must time out");
    }
}
