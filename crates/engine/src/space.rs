//! Simulated address space and typed shared data.
//!
//! Applications and the runtime operate on real Rust values (so results can
//! be checked functionally) that are *paired with simulated addresses* (so
//! every access produces the right cache/coherence/network behaviour).
//! [`ShVec`] is the core abstraction: a shared, fixed-length array whose
//! element accesses go through a [`CorePort`](crate::CorePort) and therefore
//! cost simulated time and traffic.

use crate::sync::RwLock;

use bigtiny_coherence::Addr;

use crate::port::CorePort;

/// A bump allocator for simulated physical addresses.
///
/// Allocation only assigns address ranges; there is no simulated backing
/// store to initialize (functional data lives in the [`ShVec`]s themselves).
#[derive(Debug)]
pub struct AddrSpace {
    next: u64,
}

impl AddrSpace {
    /// Creates an empty address space (allocation starts above page zero).
    pub fn new() -> Self {
        AddrSpace { next: 0x1_0000 }
    }

    /// Reserves `bytes` with the given power-of-two `align`ment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn reserve(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next = (self.next + align - 1) & !(align - 1);
        let base = self.next;
        self.next += bytes;
        Addr(base)
    }

    /// Reserves a line-aligned region (64-byte alignment), the common case
    /// for arrays whose false sharing we do not want to model accidentally.
    pub fn reserve_lines(&mut self, bytes: u64) -> Addr {
        self.reserve(bytes, 64)
    }

    /// Total bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next
    }
}

impl Default for AddrSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of 8-byte words an element of size `bytes` occupies.
fn words_for(bytes: usize) -> u64 {
    (bytes.max(1) as u64).div_ceil(8)
}

/// A shared, fixed-length array in simulated memory.
///
/// Elements are word-aligned (stride is `size_of::<T>()` rounded up to 8
/// bytes), so neighbouring elements of small types share cache lines just
/// as a real array of words would. All simulated accesses take a
/// [`CorePort`] and charge the issuing core the modelled latency; the
/// functional value is read/written under the engine's global token, making
/// the data race-free.
///
/// Host-side accessors ([`ShVec::snapshot`], [`ShVec::host_write`]) are for
/// setup and verification outside simulation; they take the same lock, so
/// they are safe (though meaningless for timing) at any point.
#[derive(Debug)]
pub struct ShVec<T> {
    base: u64,
    stride: u64,
    data: RwLock<Box<[T]>>,
}

impl<T: Clone + Send + Sync> ShVec<T> {
    /// Allocates a length-`len` array filled with `init` at a fresh
    /// simulated address.
    pub fn new(space: &mut AddrSpace, len: usize, init: T) -> Self {
        Self::from_vec(space, vec![init; len])
    }

    /// Allocates an array with the given initial contents.
    pub fn from_vec(space: &mut AddrSpace, data: Vec<T>) -> Self {
        let stride = words_for(std::mem::size_of::<T>()) * 8;
        let base = space.reserve_lines(stride * data.len().max(1) as u64);
        ShVec { base: base.0, stride, data: RwLock::new(data.into_boxed_slice()) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulated address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        Addr(self.base + i as u64 * self.stride)
    }

    /// Words per element (each one is a separate simulated access).
    fn words(&self) -> u64 {
        self.stride / 8
    }

    /// Simulated load of element `i` by the core behind `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn read(&self, cpu: &mut CorePort, i: usize) -> T {
        cpu.load_words(self.addr(i), self.words(), || self.data.read()[i].clone())
    }

    /// Simulated load of element `i` that tolerates stale data on real
    /// hardware: identical timing, but exempt from the staleness checker.
    /// Use only where the algorithm is correct under stale reads (e.g.
    /// Ligra's monotone relaxations, where a CAS/AMO decides the winner).
    /// The `tag` names the audited benign-race pattern for the DRF checker.
    pub fn read_racy(&self, cpu: &mut CorePort, i: usize, tag: crate::event::RacyTag) -> T {
        cpu.load_words_racy(self.addr(i), self.words(), tag, || self.data.read()[i].clone())
    }

    /// Simulated store of `v` into element `i`.
    pub fn write(&self, cpu: &mut CorePort, i: usize, v: T) {
        cpu.store_words(self.addr(i), self.words(), || self.data.write()[i] = v);
    }

    /// Simulated store of `v` into element `i` as a declared benign
    /// write-write race (concurrent same-value idempotent stores),
    /// race-whitelisted in the DRF checker under the audited `tag`.
    /// Timing is identical to [`ShVec::write`].
    pub fn write_racy(&self, cpu: &mut CorePort, i: usize, v: T, tag: crate::event::RacyTag) {
        cpu.store_words_racy(self.addr(i), self.words(), tag, || self.data.write()[i] = v);
    }

    /// Simulated atomic read-modify-write of element `i`: applies `f` to the
    /// element under the AMO timing path and returns `f`'s result.
    pub fn amo<R>(&self, cpu: &mut CorePort, i: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let addr = self.addr(i);
        cpu.amo_word(addr, || f(&mut self.data.write()[i]))
    }

    /// Simulated compare-and-swap (an AMO): if element `i` equals
    /// `expected`, replaces it with `new` and returns `true`.
    pub fn cas(&self, cpu: &mut CorePort, i: usize, expected: T, new: T) -> bool
    where
        T: PartialEq,
    {
        self.amo(cpu, i, |v| {
            if *v == expected {
                *v = new;
                true
            } else {
                false
            }
        })
    }

    /// Host-side (non-simulated) read, for setup and verification.
    pub fn host_read(&self, i: usize) -> T {
        self.data.read()[i].clone()
    }

    /// Host-side (non-simulated) write, for setup.
    pub fn host_write(&self, i: usize, v: T) {
        self.data.write()[i] = v;
    }

    /// Host-side copy of the whole array, for verification after a run.
    pub fn snapshot(&self) -> Vec<T> {
        self.data.read().to_vec()
    }
}

/// A single shared value in simulated memory (a length-1 [`ShVec`]).
#[derive(Debug)]
pub struct ShScalar<T> {
    inner: ShVec<T>,
}

impl<T: Clone + Send + Sync> ShScalar<T> {
    /// Allocates the scalar with initial value `init`.
    pub fn new(space: &mut AddrSpace, init: T) -> Self {
        ShScalar { inner: ShVec::new(space, 1, init) }
    }

    /// Simulated address of the value.
    pub fn addr(&self) -> Addr {
        self.inner.addr(0)
    }

    /// Simulated load.
    pub fn read(&self, cpu: &mut CorePort) -> T {
        self.inner.read(cpu, 0)
    }

    /// Simulated store.
    pub fn write(&self, cpu: &mut CorePort, v: T) {
        self.inner.write(cpu, 0, v)
    }

    /// Simulated atomic read-modify-write.
    pub fn amo<R>(&self, cpu: &mut CorePort, f: impl FnOnce(&mut T) -> R) -> R {
        self.inner.amo(cpu, 0, f)
    }

    /// Host-side read for verification.
    pub fn host_read(&self) -> T {
        self.inner.host_read(0)
    }

    /// Host-side write for setup.
    pub fn host_write(&self, v: T) {
        self.inner.host_write(0, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_respects_alignment() {
        let mut s = AddrSpace::new();
        s.reserve(3, 1);
        let a = s.reserve(10, 64);
        assert_eq!(a.0 % 64, 0);
        let b = s.reserve(1, 8);
        assert!(b.0 >= a.0 + 10);
    }

    #[test]
    fn shvec_addresses_are_word_strided() {
        let mut s = AddrSpace::new();
        let v: ShVec<u32> = ShVec::new(&mut s, 10, 0);
        // u32 elements still occupy one word each.
        assert_eq!(v.addr(1).0 - v.addr(0).0, 8);
        let w: ShVec<[u64; 3]> = ShVec::new(&mut s, 4, [0; 3]);
        assert_eq!(w.addr(1).0 - w.addr(0).0, 24);
        assert_ne!(v.addr(0).line(), w.addr(0).line(), "distinct allocations");
    }

    #[test]
    fn host_access_round_trips() {
        let mut s = AddrSpace::new();
        let v = ShVec::from_vec(&mut s, vec![1u64, 2, 3]);
        assert_eq!(v.len(), 3);
        v.host_write(1, 42);
        assert_eq!(v.host_read(1), 42);
        assert_eq!(v.snapshot(), vec![1, 42, 3]);
    }

    #[test]
    fn scalar_wraps_single_element() {
        let mut s = AddrSpace::new();
        let x = ShScalar::new(&mut s, 7i64);
        assert_eq!(x.host_read(), 7);
        x.host_write(-1);
        assert_eq!(x.host_read(), -1);
        assert_eq!(x.addr().0 % 8, 0);
    }
}
