//! Always-on flight recorder and live heartbeat telemetry.
//!
//! # Flight recorder
//!
//! Every [`CorePort`](crate::CorePort) owns a [`FlightRing`]: a
//! fixed-capacity ring buffer of the last N simulation events on that core
//! (token grants, ULI request/response/Dead traffic, steal attempts and
//! hits, task lifecycle, fault injections, deque operations). Recording is
//! *observation only*: every hook reads clocks and identifiers the
//! simulation already computed and never sequences, charges cycles, or
//! touches shared simulated state — so armed and unarmed runs are
//! bit-for-bit identical (pinned by the `armed_observability` golden-trace
//! test on all three backends). When a run dies — watchdog trip, poison,
//! crash-audit failure — each core's ring tail is serialized into the
//! [`DiagnosticBundle`](crate::DiagnosticBundle) as a black box: the last
//! few thousand cycles of history instead of bare counters.
//!
//! # Heartbeat
//!
//! A [`Heartbeat`] hook installed on the sequencer emits a
//! [`HeartbeatSnap`] every K *grants* (not wall time), so the cadence is a
//! deterministic function of the op stream. Fields published only while a
//! core holds the sequencer token (snapshot sequence number, trigger cycle,
//! total grants, [`LiveCounters`] sums) are identical across reruns and
//! backends; the per-core strip (waiting/running states), fast-grant count,
//! and anything wall-clock are host-timing artifacts and are documented as
//! out-of-band. Serialization to line JSON lives in `bigtiny-obs`
//! (`bigtiny-obs-heartbeat-v1`); the engine only hands the snapshot to an
//! opaque sink.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::breakdown::{TimeBreakdown, TIME_CATEGORIES};
use crate::fault::FaultCounters;

/// Default per-core flight-ring capacity (events). Large enough to span
/// several steal protocols' worth of history, small enough that a 256-core
/// system keeps the whole recorder under ~1 MiB of host memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What happened, from the recording core's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// The sequencer granted this core the token.
    Grant,
    /// A ULI steal request left this core for `to`.
    UliReqSend {
        /// Destination (victim) core.
        to: usize,
    },
    /// A ULI steal request from `from` was delivered to this core.
    UliReqRecv {
        /// Originating (thief) core.
        from: usize,
    },
    /// A ULI steal response left this core for `to`.
    UliRespSend {
        /// Destination (thief) core.
        to: usize,
    },
    /// A ULI steal response from `from` was collected on this core.
    UliRespRecv {
        /// Originating (victim) core.
        from: usize,
    },
    /// A send to `to` bounced: the victim was already in a handler.
    UliNack {
        /// Destination core that NACKed.
        to: usize,
    },
    /// A send to `to` bounced with a Dead outcome (fail-stopped core).
    UliDead {
        /// Destination core that was dead.
        to: usize,
    },
    /// The runtime started a steal attempt against `victim`.
    StealAttempt {
        /// Victim core probed.
        victim: usize,
    },
    /// A steal attempt against `victim` returned a task.
    StealHit {
        /// Victim core the task came from.
        victim: usize,
    },
    /// A task was created on this core.
    TaskSpawn {
        /// Task id.
        task: u32,
    },
    /// A task body began executing on this core.
    TaskBegin {
        /// Task id.
        task: u32,
    },
    /// A task body returned on this core.
    TaskEnd {
        /// Task id.
        task: u32,
    },
    /// This core (the thief) claimed a stolen task.
    TaskStolen {
        /// Task id.
        task: u32,
    },
    /// A task's `wait()` returned on this core.
    TaskJoin {
        /// Task id.
        task: u32,
    },
    /// Crash recovery re-created a task on this core.
    TaskRespawn {
        /// Replacement task id.
        task: u32,
    },
    /// Crash recovery discarded an unstarted orphan task.
    TaskDiscarded {
        /// Task id.
        task: u32,
    },
    /// A multiplicity deque double-claim re-executed a task as an audited
    /// duplicate.
    TaskDuplicate {
        /// Replacement task id.
        task: u32,
    },
    /// A deque push on this core.
    DequePush,
    /// A deque pop on this core.
    DequePop,
    /// A deque steal executed by this core's handler.
    DequeSteal,
    /// Fault injection dropped an outbound ULI send.
    FaultUliDrop,
    /// Fault injection forced a NACK on an outbound ULI send.
    FaultUliNack,
    /// Fault injection delayed an outbound ULI send by `extra` cycles.
    FaultUliDelay {
        /// Injected extra latency in cycles.
        extra: u64,
    },
    /// Fault injection dropped an inbound ULI request on this core.
    FaultRxDrop,
    /// Fault injection forced an empty steal lookup on this core.
    FaultStealMiss,
    /// This core fail-stopped.
    Crash,
    /// This core was revived.
    Revive,
}

impl FlightKind {
    /// Stable lower-snake label used in black-box dumps and traces.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Grant => "grant",
            FlightKind::UliReqSend { .. } => "uli_req_send",
            FlightKind::UliReqRecv { .. } => "uli_req_recv",
            FlightKind::UliRespSend { .. } => "uli_resp_send",
            FlightKind::UliRespRecv { .. } => "uli_resp_recv",
            FlightKind::UliNack { .. } => "uli_nack",
            FlightKind::UliDead { .. } => "uli_dead",
            FlightKind::StealAttempt { .. } => "steal_attempt",
            FlightKind::StealHit { .. } => "steal_hit",
            FlightKind::TaskSpawn { .. } => "task_spawn",
            FlightKind::TaskBegin { .. } => "task_begin",
            FlightKind::TaskEnd { .. } => "task_end",
            FlightKind::TaskStolen { .. } => "task_stolen",
            FlightKind::TaskJoin { .. } => "task_join",
            FlightKind::TaskRespawn { .. } => "task_respawn",
            FlightKind::TaskDiscarded { .. } => "task_discarded",
            FlightKind::TaskDuplicate { .. } => "task_duplicate",
            FlightKind::DequePush => "deque_push",
            FlightKind::DequePop => "deque_pop",
            FlightKind::DequeSteal => "deque_steal",
            FlightKind::FaultUliDrop => "fault_uli_drop",
            FlightKind::FaultUliNack => "fault_uli_nack",
            FlightKind::FaultUliDelay { .. } => "fault_uli_delay",
            FlightKind::FaultRxDrop => "fault_rx_drop",
            FlightKind::FaultStealMiss => "fault_steal_miss",
            FlightKind::Crash => "crash",
            FlightKind::Revive => "revive",
        }
    }

    /// The event's argument as a named value, if it carries one (`peer`,
    /// `task`, or `extra`). Lets serializers stay exhaustive without
    /// matching every variant.
    pub fn arg(self) -> Option<(&'static str, u64)> {
        match self {
            FlightKind::Grant
            | FlightKind::DequePush
            | FlightKind::DequePop
            | FlightKind::DequeSteal
            | FlightKind::FaultUliDrop
            | FlightKind::FaultUliNack
            | FlightKind::FaultRxDrop
            | FlightKind::FaultStealMiss
            | FlightKind::Crash
            | FlightKind::Revive => None,
            FlightKind::UliReqSend { to }
            | FlightKind::UliRespSend { to }
            | FlightKind::UliNack { to }
            | FlightKind::UliDead { to } => Some(("peer", to as u64)),
            FlightKind::UliReqRecv { from } | FlightKind::UliRespRecv { from } => {
                Some(("peer", from as u64))
            }
            FlightKind::StealAttempt { victim } | FlightKind::StealHit { victim } => {
                Some(("peer", victim as u64))
            }
            FlightKind::TaskSpawn { task }
            | FlightKind::TaskBegin { task }
            | FlightKind::TaskEnd { task }
            | FlightKind::TaskStolen { task }
            | FlightKind::TaskJoin { task }
            | FlightKind::TaskRespawn { task }
            | FlightKind::TaskDiscarded { task }
            | FlightKind::TaskDuplicate { task } => Some(("task", task as u64)),
            FlightKind::FaultUliDelay { extra } => Some(("extra", extra)),
        }
    }
}

/// One recorded event: the core's simulated clock when it happened plus
/// what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Recording core's simulated cycle at the event.
    pub time: u64,
    /// What happened.
    pub kind: FlightKind,
}

/// Fixed-capacity per-core event ring. Capacity 0 disables recording
/// entirely (every `record` is a single never-taken branch).
#[derive(Debug, Clone, Default)]
pub struct FlightRing {
    buf: Vec<FlightEvent>,
    cap: usize,
    /// Index of the next slot to overwrite once the ring is full.
    next: usize,
    /// Events ever recorded (≥ `buf.len()`; the ring holds the last `cap`).
    total: u64,
}

impl FlightRing {
    /// A ring holding the last `cap` events (0 disables recording).
    pub fn new(cap: usize) -> Self {
        FlightRing { buf: Vec::new(), cap, next: 0, total: 0 }
    }

    /// Records one event. Never touches simulated state.
    #[inline]
    pub fn record(&mut self, time: u64, kind: FlightKind) {
        if self.cap == 0 {
            return;
        }
        self.total += 1;
        let ev = FlightEvent { time, kind };
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// The retained tail in chronological (recording) order.
    pub fn tail(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Events ever recorded on this ring (the tail keeps the last
    /// `capacity()` of them).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Configured capacity (0 = recording disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Per-core live counters published by each [`CorePort`](crate::CorePort)
/// at the top of every sequenced section — i.e. only while the publisher
/// holds the sequencer token, which makes every value read at a heartbeat
/// boundary a deterministic function of the grant stream. Allocated only
/// when a heartbeat is armed, so unarmed runs pay nothing.
#[derive(Debug)]
pub struct LiveCounters {
    cores: Vec<LiveCore>,
}

#[derive(Debug)]
struct LiveCore {
    clock: AtomicU64,
    cats: [AtomicU64; 9],
    faults: [AtomicU64; 6],
}

impl LiveCounters {
    pub(crate) fn new(num_cores: usize) -> Self {
        LiveCounters {
            cores: (0..num_cores)
                .map(|_| LiveCore {
                    clock: AtomicU64::new(0),
                    cats: Default::default(),
                    faults: Default::default(),
                })
                .collect(),
        }
    }

    /// Publishes one core's current clock, time breakdown, and fault
    /// counters. Called under the sequencer token.
    pub(crate) fn publish(
        &self,
        core: usize,
        clock: u64,
        breakdown: &TimeBreakdown,
        faults: &FaultCounters,
    ) {
        let slot = &self.cores[core];
        slot.clock.store(clock, Ordering::Relaxed);
        for (i, cat) in TIME_CATEGORIES.iter().enumerate() {
            slot.cats[i].store(breakdown.get(*cat), Ordering::Relaxed);
        }
        for (i, (_, v)) in faults.pairs().iter().enumerate() {
            slot.faults[i].store(*v, Ordering::Relaxed);
        }
    }

    /// Maximum published core clock.
    fn max_clock(&self) -> u64 {
        self.cores.iter().map(|c| c.clock.load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    /// Sum of each time category across cores, in [`TIME_CATEGORIES`]
    /// order.
    fn breakdown_sums(&self) -> [u64; 9] {
        let mut out = [0u64; 9];
        for c in &self.cores {
            for (i, v) in c.cats.iter().enumerate() {
                out[i] += v.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Sum of each fault counter across cores, in
    /// [`FaultCounters::pairs`] order.
    fn fault_sums(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for c in &self.cores {
            for (i, v) in c.faults.iter().enumerate() {
                out[i] += v.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// One core's line in the heartbeat strip. All fields except `grants` and
/// `last_time` of the *currently granted* core reflect host-instantaneous
/// scheduler state and are out-of-band (not rerun-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreBeat {
    /// Token grants to this core so far.
    pub grants: u64,
    /// Simulated time of this core's most recent grant.
    pub last_time: u64,
    /// Whether the core's worker has returned.
    pub retired: bool,
    /// `Some(t)` if the core is currently parked in `enter` at time `t`.
    pub waiting_at: Option<u64>,
}

/// One heartbeat snapshot, taken every K grants.
///
/// Deterministic fields (identical across reruns and backends for the same
/// config): `seq`, `time`, `total_grants`, `max_clock`, `breakdown`,
/// `faults`. Out-of-band fields (host-timing artifacts): `fast_grants`,
/// `cores`, `islands`. Wall-clock rates are added by the sink, never here.
#[derive(Debug, Clone)]
pub struct HeartbeatSnap {
    /// Snapshot index (1-based; `total_grants / every`).
    pub seq: u64,
    /// Simulated time of the grant that triggered this snapshot.
    pub time: u64,
    /// Total token grants at the trigger.
    pub total_grants: u64,
    /// Grants taken through the inline fast re-grant path (out-of-band:
    /// fast-path eligibility depends on host thread timing).
    pub fast_grants: u64,
    /// Maximum core clock published to [`LiveCounters`] (0 when live
    /// counters are not armed).
    pub max_clock: u64,
    /// Live per-category cycle sums across cores, in
    /// [`TIME_CATEGORIES`] order.
    pub breakdown: [u64; 9],
    /// Live fault-injection counter sums across cores, in
    /// [`FaultCounters::pairs`] order.
    pub faults: [u64; 6],
    /// Per-core scheduler strip (out-of-band).
    pub cores: Vec<CoreBeat>,
    /// Per-island maximum granted time under ShardedFibers (empty on the
    /// other backends); island lag is `max(islands) - islands[i]`.
    pub islands: Vec<u64>,
}

impl HeartbeatSnap {
    pub(crate) fn new(
        seq: u64,
        time: u64,
        total_grants: u64,
        fast_grants: u64,
        live: Option<&LiveCounters>,
        cores: Vec<CoreBeat>,
        islands: Vec<u64>,
    ) -> Self {
        HeartbeatSnap {
            seq,
            time,
            total_grants,
            fast_grants,
            max_clock: live.map_or(0, |l| l.max_clock()),
            breakdown: live.map_or([0; 9], |l| l.breakdown_sums()),
            faults: live.map_or([0; 6], |l| l.fault_sums()),
            cores,
            islands,
        }
    }
}

/// Heartbeat configuration: emit a [`HeartbeatSnap`] to `sink` every
/// `every` grants. The sink runs on whichever simulation thread took the
/// triggering grant, with no engine locks held — it may do I/O, but must
/// never touch simulated state.
#[derive(Clone)]
pub struct Heartbeat {
    /// Emission cadence in grants (must be > 0).
    pub every: u64,
    /// Snapshot consumer.
    pub sink: Arc<dyn Fn(&HeartbeatSnap) + Send + Sync>,
}

impl Heartbeat {
    /// A heartbeat firing every `every` grants into `sink`.
    pub fn new(every: u64, sink: Arc<dyn Fn(&HeartbeatSnap) + Send + Sync>) -> Self {
        assert!(every > 0, "heartbeat cadence must be at least one grant");
        Heartbeat { every, sink }
    }
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeat").field("every", &self.every).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_cap_events_in_order() {
        let mut r = FlightRing::new(4);
        for t in 0..10u64 {
            r.record(t, FlightKind::Grant);
        }
        assert_eq!(r.total(), 10);
        let tail = r.tail();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail.iter().map(|e| e.time).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_partial_fill_preserves_order() {
        let mut r = FlightRing::new(8);
        for t in [3u64, 5, 9] {
            r.record(t, FlightKind::DequePush);
        }
        assert_eq!(r.tail().iter().map(|e| e.time).collect::<Vec<_>>(), vec![3, 5, 9]);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = FlightRing::new(0);
        r.record(1, FlightKind::Grant);
        assert_eq!(r.total(), 0);
        assert!(r.tail().is_empty());
    }

    #[test]
    fn kind_labels_and_args() {
        assert_eq!(FlightKind::Grant.label(), "grant");
        assert_eq!(FlightKind::Grant.arg(), None);
        assert_eq!(FlightKind::UliReqSend { to: 3 }.arg(), Some(("peer", 3)));
        assert_eq!(FlightKind::TaskSpawn { task: 7 }.arg(), Some(("task", 7)));
        assert_eq!(FlightKind::FaultUliDelay { extra: 40 }.arg(), Some(("extra", 40)));
    }
}
